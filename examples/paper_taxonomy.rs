//! Tagging papers against a taxonomy with only class names.
//!
//! A MAG-style corpus of multi-label "papers" over a DAG taxonomy whose
//! class names and descriptions are the only supervision. TaxoClass scores
//! document-class relevance with the NLI head, explores the taxonomy
//! top-down, and self-trains from the discovered core classes. MICoL gets
//! the same corpus but leans on the citation metadata instead.
//!
//! ```bash
//! cargo run --release --example paper_taxonomy
//! ```

use structmine::micol::{MetaPath, MiCoL};
use structmine::taxoclass::TaxoClass;
use structmine_eval::{example_f1, ndcg_at_k, precision_at_1_sets, precision_at_k};
use structmine_plm::cache::{pretrained, Tier};
use structmine_text::synth::recipes;

fn main() {
    let data = recipes::mag_cs(0.12, 3).unwrap();
    let plm = pretrained(Tier::Test, 0);
    let tax = data.taxonomy.as_ref().unwrap();
    println!(
        "{} papers, {} classes on a DAG (depth {}), {} venues, {} authors, citations attached",
        data.corpus.len(),
        data.n_classes(),
        tax.max_depth(),
        data.meta.n_venues,
        data.meta.n_authors,
    );

    // ---- TaxoClass ---------------------------------------------------------
    let out = TaxoClass::default()
        .run(&data, &plm)
        .expect("the paper-taxonomy recipe is hierarchical");
    let pred_sets: Vec<Vec<usize>> = data
        .test_idx
        .iter()
        .map(|&i| out.label_sets[i].clone())
        .collect();
    let top1: Vec<usize> = data.test_idx.iter().map(|&i| out.top1[i]).collect();
    let gold = data.test_gold_sets();
    println!(
        "\nTaxoClass: Example-F1 {:.3}, P@1 {:.3}",
        example_f1(&pred_sets, &gold),
        precision_at_1_sets(&top1, &gold)
    );

    println!("\nsample label sets:");
    for &i in data.test_idx.iter().take(4) {
        let render = |set: &[usize]| {
            set.iter()
                .map(|&c| data.labels.names[c].as_str())
                .collect::<Vec<_>>()
                .join(", ")
        };
        println!("  predicted [{}]", render(&out.label_sets[i]));
        println!("       gold [{}]\n", render(&data.corpus.docs[i].labels));
    }

    // ---- MICoL (zero labeled docs, metadata contrastive) -------------------
    let rankings = MiCoL {
        meta_path: MetaPath::SharedReference,
        ..Default::default()
    }
    .run(&data, &plm);
    let ranked: Vec<Vec<usize>> = data.test_idx.iter().map(|&i| rankings[i].clone()).collect();
    println!(
        "MICoL (bi-encoder, P→P←P): P@1 {:.3}, P@3 {:.3}, NDCG@3 {:.3}",
        precision_at_k(&ranked, &gold, 1),
        precision_at_k(&ranked, &gold, 3),
        ndcg_at_k(&ranked, &gold, 3),
    );
}
