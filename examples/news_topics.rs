//! News topic classification, three ways.
//!
//! The scenario that motivates the tutorial: you have a pile of news
//! articles and four topic names — no annotations. This example compares
//! the static-embedding route (WeSTClass), the representation route
//! (X-Class) and the prompting route (zero-shot + PromptClass) on the same
//! corpus, then classifies a hand-written headline.
//!
//! ```bash
//! cargo run --release --example news_topics
//! ```

use structmine::promptclass::{PromptClass, PromptStyle};
use structmine::westclass::WeSTClass;
use structmine::xclass::XClass;
use structmine_embed::{Sgns, SgnsConfig};
use structmine_eval::accuracy;
use structmine_plm::cache::{pretrained, Tier};
use structmine_text::synth::recipes;

fn main() {
    let data = recipes::agnews(0.15, 7).unwrap();
    let plm = pretrained(Tier::Test, 0);
    let gold = data.test_gold();
    let eval = |preds: &[usize]| {
        let test: Vec<usize> = data.test_idx.iter().map(|&i| preds[i]).collect();
        accuracy(&test, &gold)
    };

    println!(
        "{} news documents, labels: {:?}\n",
        data.corpus.len(),
        data.labels.names
    );

    // Route 1: static embeddings (WeSTClass).
    let wv = Sgns::train(
        &data.corpus,
        &SgnsConfig {
            epochs: 4,
            dim: 32,
            ..Default::default()
        },
    );
    let west = WeSTClass::default().run(&data, &data.supervision_names(), &wv);
    println!(
        "WeSTClass (static embeddings, vMF pseudo docs): {:.3}",
        eval(&west.predictions)
    );

    // Route 2: class-oriented PLM representations (X-Class).
    let x = XClass::default().run(&data, &plm);
    println!(
        "X-Class   (class-oriented PLM representations): {:.3}",
        eval(&x.predictions)
    );

    // Route 3: prompting (zero-shot, then iterative PromptClass).
    let pc = PromptClass {
        style: PromptStyle::Mlm,
        ..Default::default()
    };
    let out = pc
        .run(&data, &plm)
        .expect("the synthetic corpus contains every template word");
    println!(
        "Prompting (zero-shot cloze):                    {:.3}",
        eval(&out.zero_shot_predictions)
    );
    println!(
        "PromptClass (iterative co-training):            {:.3}",
        eval(&out.predictions)
    );

    // Classify a new headline by representation matching (robust for short
    // out-of-corpus text; see `prompt::cloze_label_scores` for the cloze way).
    let headline = "the striker scored a late goal and the keeper could not stop the penalty";
    let tokens: Vec<_> = structmine_text::tokenize::encode(headline, &data.corpus.vocab)
        .into_iter()
        .filter(|&t| t != structmine_text::vocab::UNK)
        .collect();
    let names = data.label_name_tokens();
    let doc_rep = plm.mean_embed(&tokens);
    let scores: Vec<f32> = names
        .iter()
        .map(|n| structmine_linalg::vector::cosine(&doc_rep, &plm.mean_embed(n)))
        .collect();
    let best = structmine_linalg::vector::argmax(&scores).unwrap();
    println!("\nheadline: \"{headline}\"");
    for (c, s) in scores.iter().enumerate() {
        println!(
            "  {} {:<12} {s:.4}",
            if c == best { "→" } else { " " },
            data.labels.names[c]
        );
    }
}
