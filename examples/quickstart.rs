//! Quickstart: weakly-supervised classification with label names only.
//!
//! Builds a synthetic AG-News-style corpus, grabs a pretrained mini-PLM,
//! runs X-Class (no labeled documents — just the four category names), and
//! prints the accuracy plus a few classified documents.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use structmine::xclass::XClass;
use structmine_eval::accuracy;
use structmine_plm::cache::{pretrained, Tier};
use structmine_text::synth::recipes;

fn main() {
    // 1. A corpus with four topical classes (world / sports / business /
    //    technology). Only the *names* of the classes are given to the
    //    method — no labeled documents, no keyword lists.
    let data = recipes::agnews(0.15, 42).unwrap();
    println!(
        "corpus: {} docs, {} classes, vocabulary {}",
        data.corpus.len(),
        data.n_classes(),
        data.corpus.vocab.len()
    );

    // 2. The pretrained language model. `Tier::Test` is a small fast model
    //    (pretrained once, cached on disk); switch to `Tier::Standard` for
    //    benchmark-quality numbers.
    let plm = pretrained(Tier::Test, 0);
    println!(
        "PLM: {} params, d_model={}",
        plm.store().n_scalars(),
        plm.config.d_model
    );

    // 3. Classify with X-Class.
    let out = XClass::default().run(&data, &plm);

    // 4. Score on the held-out split.
    let test_preds: Vec<usize> = data.test_idx.iter().map(|&i| out.predictions[i]).collect();
    let acc = accuracy(&test_preds, &data.test_gold());
    println!("\nX-Class accuracy with label names only: {acc:.3}");

    // 5. Show a few classified documents.
    println!("\nsample predictions:");
    for &i in data.test_idx.iter().take(5) {
        let doc = &data.corpus.docs[i];
        let text: String = data
            .corpus
            .render(i)
            .split_whitespace()
            .take(12)
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "  [{}] (gold {}) \"{text}…\"",
            data.labels.names[out.predictions[i]], data.labels.names[doc.labels[0]],
        );
    }

    // 6. The class representations X-Class discovered.
    println!("\ndiscovered class words:");
    for (c, words) in out.class_words.iter().enumerate() {
        let rendered: Vec<&str> = words
            .iter()
            .take(6)
            .map(|&t| data.corpus.vocab.word(t))
            .collect();
        println!("  {}: {}", data.labels.names[c], rendered.join(", "));
    }
}
