//! Categorizing metadata-rich documents from a handful of labels.
//!
//! A GitHub-style corpus where every "repository" has a posting user and
//! descriptive tags, and only five labeled documents exist per category.
//! MetaCat embeds text, labels and metadata into one space, synthesizes
//! training documents from the generative model, and beats both the
//! text-only and the graph-only views of the same data.
//!
//! ```bash
//! cargo run --release --example metadata_reviews
//! ```

use structmine::metacat::{MetaCat, SignalSet};
use structmine_eval::{accuracy, macro_f1};
use structmine_text::synth::meta::user_label_agreement;
use structmine_text::synth::recipes;

fn main() {
    let data = recipes::github_bio(0.5, 9).unwrap();
    println!(
        "{} repos, {} categories, {} users, {} tags",
        data.corpus.len(),
        data.n_classes(),
        data.meta.n_users,
        data.meta.n_tags,
    );
    println!(
        "user→label agreement in the corpus: {:.2} (the signal MetaCat exploits)\n",
        user_label_agreement(&data.corpus, data.meta.n_users / data.n_classes())
    );

    let sup = data.supervision_docs(5, 1);
    println!(
        "supervision: {} labeled documents total\n",
        sup.labeled_docs().unwrap().len()
    );

    let gold = data.test_gold();
    let eval = |preds: &[usize]| {
        let test: Vec<usize> = data.test_idx.iter().map(|&i| preds[i]).collect();
        (
            accuracy(&test, &gold),
            macro_f1(&test, &gold, data.n_classes()),
        )
    };

    let metacat = MetaCat::default();
    for (name, signals) in [
        ("text-only  (PTE-style)", SignalSet::TextOnly),
        ("graph-only (metapath2vec-style)", SignalSet::GraphOnly),
        ("MetaCat    (text + metadata + labels)", SignalSet::Full),
    ] {
        let out = metacat
            .run_with_signals(&data, &sup, signals)
            .expect("labeled-doc supervision was built above");
        let (micro, macro_) = eval(&out.predictions);
        println!("{name:40} micro-F1 {micro:.3}  macro-F1 {macro_:.3}");
    }
}
