//! Result tables: measured numbers next to the paper's reported numbers.

use std::fmt;

/// A results table with a title, commentary, headers and string rows.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Table title (e.g. `E1 — WeSTClass Macro-F1`).
    pub title: String,
    /// Free-form notes printed under the title (setup, caveats).
    pub notes: Vec<String>,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (first cell usually the method name).
    pub rows: Vec<Vec<String>>,
    /// Shape-check verdicts printed under the table (`✓` / `✗` lines).
    pub checks: Vec<(String, bool)>,
}

impl Table {
    /// Start a table with a title.
    pub fn new(title: impl Into<String>) -> Self {
        Table {
            title: title.into(),
            ..Default::default()
        }
    }

    /// Add a note line.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Set headers.
    pub fn headers(&mut self, headers: &[&str]) -> &mut Self {
        self.headers = headers.iter().map(|h| h.to_string()).collect();
        self
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Append a shape-check verdict.
    pub fn check(&mut self, description: impl Into<String>, holds: bool) -> &mut Self {
        self.checks.push((description.into(), holds));
        self
    }

    /// True when every recorded shape check holds.
    pub fn all_checks_pass(&self) -> bool {
        self.checks.iter().all(|&(_, ok)| ok)
    }

    /// Render as GitHub-flavored markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        for n in &self.notes {
            out.push_str(&format!("*{n}*\n\n"));
        }
        if !self.headers.is_empty() {
            out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
            out.push_str(&format!("|{}|\n", "---|".repeat(self.headers.len())));
            for row in &self.rows {
                out.push_str(&format!("| {} |\n", row.join(" | ")));
            }
        }
        if !self.checks.is_empty() {
            out.push('\n');
            for (desc, ok) in &self.checks {
                out.push_str(&format!(
                    "- {} {desc}\n",
                    if *ok { "[x]" } else { "[ ] FAILED:" }
                ));
            }
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "\n== {} ==", self.title)?;
        for n in &self.notes {
            writeln!(f, "   {n}")?;
        }
        // Column widths.
        let n_cols = self
            .headers
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; n_cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                line.push_str(&format!(
                    "{:width$}  ",
                    c,
                    width = widths.get(i).copied().unwrap_or(8)
                ));
            }
            writeln!(f, "   {}", line.trim_end())
        };
        if !self.headers.is_empty() {
            print_row(f, &self.headers)?;
            writeln!(
                f,
                "   {}",
                "-".repeat(widths.iter().sum::<usize>() + 2 * n_cols)
            )?;
        }
        for row in &self.rows {
            print_row(f, row)?;
        }
        for (desc, ok) in &self.checks {
            writeln!(f, "   {} {desc}", if *ok { "✓" } else { "✗" })?;
        }
        Ok(())
    }
}

/// Format a float to 3 decimals.
pub fn f3(v: f32) -> String {
    format!("{v:.3}")
}

/// Format mean ± std.
pub fn ms(m: structmine_eval::MeanStd) -> String {
    format!("{:.3}±{:.3}", m.mean, m.std)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown_and_text() {
        let mut t = Table::new("demo");
        t.note("a note")
            .headers(&["method", "acc"])
            .row(vec!["ours".into(), "0.9".into()])
            .check("ours beats baseline", true);
        let md = t.to_markdown();
        assert!(md.contains("### demo"));
        assert!(md.contains("| method | acc |"));
        assert!(md.contains("[x] ours beats baseline"));
        let text = t.to_string();
        assert!(text.contains("== demo =="));
        assert!(t.all_checks_pass());
    }

    #[test]
    fn failed_checks_are_flagged() {
        let mut t = Table::new("x");
        t.check("bad", false);
        assert!(!t.all_checks_pass());
        assert!(t.to_markdown().contains("[ ] FAILED:"));
    }
}
