//! E11 — streaming topic drift: accuracy over generations for servable
//! methods whose rule was frozen on the pre-drift fit corpus.
//!
//! The `topic-drift` recipe fits a serving rule on a balanced corpus, then
//! [`drift_stream`] feeds generations whose class priors tilt and whose
//! vocabulary shifts from each class's broad core lexicon to a narrower
//! domain lexicon. Each generation is ingested through
//! [`Engine::ingest`] — the generation-keyed incremental pipeline — and
//! scored against the batch's gold labels, so the table shows how a frozen
//! rule holds up as the stream leaves its fit distribution.

use crate::table::ms;
use crate::{BenchConfig, BenchError, Table};
use structmine_engine::{Engine, EngineConfig, EngineSource, MethodKind, PlmSpec};
use structmine_eval::MeanStd;
use structmine_linalg::ExecPolicy;
use structmine_text::synth::{drift_stream, topic_drift};

/// The servable methods the drift table reports on.
const METHODS: &[MethodKind] = &[MethodKind::XClass, MethodKind::Match];

/// Generations of drifted stream fed to each engine.
const GENERATIONS: usize = 4;

/// Run E11.
pub fn run(cfg: &BenchConfig) -> Result<Vec<Table>, BenchError> {
    let mut t = Table::new("E11 — topic drift (accuracy per ingested generation)");
    t.note(format!(
        "seeds={}, scale={}; rule frozen on the pre-drift fit corpus, each \
         generation ingested incrementally (class priors tilt and vocabulary \
         narrows core->domain as the stream advances)",
        cfg.seeds, cfg.scale
    ));
    let mut header = vec!["method".to_string()];
    header.extend((1..=GENERATIONS).map(|g| format!("gen {g}")));
    t.headers(&header.iter().map(|s| s.as_str()).collect::<Vec<_>>());

    // cells[m][g] collects per-seed accuracies for method m at generation g+1.
    let mut cells: Vec<Vec<Vec<f32>>> = vec![vec![Vec::new(); GENERATIONS]; METHODS.len()];
    let mut n_classes = 0usize;
    for &seed in &cfg.seed_values() {
        let d = topic_drift(cfg.scale, seed)?;
        n_classes = d.n_classes();
        let stream = drift_stream(cfg.scale, seed, GENERATIONS)?;
        for (m, &method) in METHODS.iter().enumerate() {
            let engine = Engine::load(EngineConfig {
                source: EngineSource::Dataset(Box::new(d.clone())),
                method,
                plm: PlmSpec::Adapted { seed },
                seed: Some(seed),
                exec: ExecPolicy::default(),
            })?;
            for (g, batch) in stream.iter().enumerate() {
                let ingested = engine.ingest(&batch.lines)?;
                let preds: Vec<usize> = ingested.predictions.iter().map(|p| p.class).collect();
                cells[m][g].push(structmine_eval::accuracy(&preds, &batch.labels));
            }
        }
    }

    for (m, &method) in METHODS.iter().enumerate() {
        let mut row = vec![method.name().to_string()];
        row.extend(cells[m].iter().map(|v| ms(MeanStd::of(v))));
        t.row(row);
    }

    // Robust shape checks only: exact accuracies vary with scale/tier, but a
    // frozen rule must beat chance on the first, least-drifted generation.
    let chance = 1.0 / n_classes.max(1) as f32;
    for (m, &method) in METHODS.iter().enumerate() {
        let first = &cells[m][0];
        let mean = first.iter().sum::<f32>() / first.len().max(1) as f32;
        t.check(
            format!(
                "{} beats chance ({chance:.3}) on generation 1 ({mean:.3})",
                method.name()
            ),
            mean > chance,
        );
    }
    t.check(
        format!(
            "stream spans {GENERATIONS} generations for {} methods",
            METHODS.len()
        ),
        cells
            .iter()
            .all(|m| m.iter().all(|g| g.len() == cfg.seeds as usize)),
    );
    Ok(vec![t])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_stream_inputs_build_cheaply() {
        // The full table needs a PLM; the dataset/stream halves are cheap
        // enough to pin here.
        let d = topic_drift(0.05, 1).unwrap();
        assert_eq!(d.n_classes(), 3);
        let stream = drift_stream(0.05, 1, GENERATIONS).unwrap();
        assert_eq!(stream.len(), GENERATIONS);
        for batch in &stream {
            assert_eq!(batch.lines.len(), batch.labels.len());
            assert!(!batch.lines.is_empty());
            assert!(batch.labels.iter().all(|&l| l < d.n_classes()));
        }
    }
}
