//! Experiment reproductions, one module per table/figure of the paper
//! (`DESIGN.md` §3).

pub mod ablations;
pub mod conwea;
pub mod drift;
pub mod figures;
pub mod lotclass;
pub mod metacat;
pub mod micol;
pub mod promptclass;
pub mod taxoclass;
pub mod weshclass;
pub mod westclass;
pub mod xclass;

use crate::{BenchConfig, BenchError, Table};

/// Run every experiment, in paper order. Expensive; used by `run_all`.
pub fn run_all(cfg: &BenchConfig) -> Result<Vec<Table>, BenchError> {
    let mut tables = Vec::new();
    tables.extend(westclass::run(cfg)?);
    tables.extend(conwea::run(cfg)?);
    tables.extend(lotclass::run(cfg)?);
    tables.extend(xclass::run(cfg)?);
    tables.extend(figures::run(cfg)?);
    tables.extend(promptclass::run(cfg)?);
    tables.extend(weshclass::run(cfg)?);
    tables.extend(taxoclass::run(cfg)?);
    tables.extend(metacat::run(cfg)?);
    tables.extend(micol::run(cfg)?);
    tables.extend(drift::run(cfg)?);
    Ok(tables)
}
