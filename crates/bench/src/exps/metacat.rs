//! E8 — the MetaCat tables (SIGIR'20): Micro- and Macro-F1 on GitHub-Bio,
//! GitHub-AI, GitHub-Sec, Amazon and Twitter stand-ins with a few labeled
//! documents, against text-only and graph-only baselines.

use crate::table::ms;
use crate::{standard_word_vectors, BenchConfig, BenchError, Table};
use structmine::metacat::{MetaCat, SignalSet};
use structmine::westclass::WeSTClass;
use structmine_eval::MeanStd;
use structmine_text::synth::recipes;

const DATASETS: &[&str] = &[
    "github-bio",
    "github-ai",
    "github-sec",
    "amazon-meta",
    "twitter",
];
const DOCS_PER_CLASS: usize = 5;

/// Run E8.
pub fn run(cfg: &BenchConfig) -> Result<Vec<Table>, BenchError> {
    let mut micro_t = Table::new("E8 — MetaCat reproduction (Micro-F1, 5 labeled docs/class)");
    micro_t.note(format!(
        "seeds={}, scale={}; paper reference (GitHub-Bio micro): CNN 0.223, WeSTClass 0.368, \
         PTE 0.317, metapath2vec 0.396, MetaCat 0.526",
        cfg.seeds, cfg.scale
    ));
    let mut header = vec!["method".to_string()];
    header.extend(DATASETS.iter().map(|d| d.to_string()));
    micro_t.headers(&header.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    let mut macro_t = Table::new("E8 — MetaCat reproduction (Macro-F1)");
    macro_t.headers(&header.iter().map(|s| s.as_str()).collect::<Vec<_>>());

    let methods: &[&str] = &[
        "WeSTClass (text)",
        "PTE-style (text-only HIN)",
        "metapath2vec-style (graph-only HIN)",
        "MetaCat",
    ];
    let mut micro_rows: Vec<Vec<String>> = methods.iter().map(|m| vec![m.to_string()]).collect();
    let mut macro_rows = micro_rows.clone();
    let mut agg: std::collections::HashMap<(&str, &str), Vec<f32>> =
        std::collections::HashMap::new();

    for ds in DATASETS {
        let mut micro: Vec<Vec<f32>> = vec![Vec::new(); methods.len()];
        let mut macro_: Vec<Vec<f32>> = vec![Vec::new(); methods.len()];
        for &seed in &cfg.seed_values() {
            let d = recipes::by_name(ds, cfg.scale, seed)?;
            let sup = d.supervision_docs(DOCS_PER_CLASS, seed);
            let wv = standard_word_vectors(&d);
            let cfg_mc = MetaCat {
                seed,
                ..Default::default()
            };
            let results: Vec<Vec<usize>> = vec![
                WeSTClass {
                    seed,
                    ..Default::default()
                }
                .run(&d, &sup, &wv)
                .predictions,
                cfg_mc
                    .run_with_signals(&d, &sup, SignalSet::TextOnly)?
                    .predictions,
                cfg_mc
                    .run_with_signals(&d, &sup, SignalSet::GraphOnly)?
                    .predictions,
                cfg_mc.run(&d, &sup)?.predictions,
            ];
            for (m, preds) in results.iter().enumerate() {
                micro[m].push(crate::test_accuracy(&d, preds));
                macro_[m].push(crate::test_macro_f1(&d, preds));
                agg.entry((methods[m], ds))
                    .or_default()
                    .push(crate::test_accuracy(&d, preds));
            }
        }
        for m in 0..methods.len() {
            micro_rows[m].push(ms(MeanStd::of(&micro[m])));
            macro_rows[m].push(ms(MeanStd::of(&macro_[m])));
        }
    }
    for row in micro_rows {
        micro_t.row(row);
    }
    for row in macro_rows {
        macro_t.row(row);
    }

    let mean = |m: &str| {
        let vals: Vec<f32> = DATASETS
            .iter()
            .flat_map(|ds| agg[&(m, *ds)].iter().copied())
            .collect();
        vals.iter().sum::<f32>() / vals.len() as f32
    };
    let small_mean = |m: &str| {
        // GitHub-Bio and GitHub-AI are the small corpora where the paper
        // says metadata helps most.
        let vals: Vec<f32> = ["github-bio", "github-ai"]
            .iter()
            .flat_map(|ds| agg[&(m, *ds)].iter().copied())
            .collect();
        vals.iter().sum::<f32>() / vals.len() as f32
    };
    micro_t.check(
        format!(
            "MetaCat ({:.3}) beats text-only HIN ({:.3})",
            mean("MetaCat"),
            mean("PTE-style (text-only HIN)")
        ),
        mean("MetaCat") >= mean("PTE-style (text-only HIN)") - 0.01,
    );
    micro_t.check(
        format!(
            "MetaCat ({:.3}) beats graph-only HIN ({:.3})",
            mean("MetaCat"),
            mean("metapath2vec-style (graph-only HIN)")
        ),
        mean("MetaCat") > mean("metapath2vec-style (graph-only HIN)"),
    );
    micro_t.check(
        format!(
            "on small corpora MetaCat ({:.3}) beats WeSTClass ({:.3})",
            small_mean("MetaCat"),
            small_mean("WeSTClass (text)")
        ),
        small_mean("MetaCat") > small_mean("WeSTClass (text)") - 0.01,
    );
    Ok(vec![micro_t, macro_t])
}
