//! E3 — the LOTClass table (EMNLP'20): accuracy on AG News, DBpedia, IMDB
//! and Amazon with label names only, plus the "w/o self train" ablation and
//! the Table-1 MLM replacement demo (E3b).

use crate::table::ms;
use crate::{adapted_plm, standard_plm, standard_word_vectors, BenchConfig, BenchError, Table};
use structmine::baselines;
use structmine::lotclass::{replacement_demo, LotClass};
use structmine::westclass::WeSTClass;
use structmine_eval::MeanStd;
use structmine_text::synth::recipes;

const DATASETS: &[&str] = &["agnews", "dbpedia", "imdb", "amazon"];

/// Run E3.
pub fn run(cfg: &BenchConfig) -> Result<Vec<Table>, BenchError> {
    let mut t = Table::new("E3 — LOTClass reproduction (accuracy, label names only)");
    t.note(format!(
        "seeds={}, scale={}; paper reference (AG News): Dataless 0.696, WeSTClass 0.823, \
         BERT-match 0.752, LOTClass w/o self-train 0.822, LOTClass 0.864, Supervised BERT 0.944",
        cfg.seeds, cfg.scale
    ));
    let mut header = vec!["method".to_string()];
    header.extend(DATASETS.iter().map(|d| d.to_string()));
    t.headers(&header.iter().map(|s| s.as_str()).collect::<Vec<_>>());

    let methods: &[&str] = &[
        "Dataless",
        "WeSTClass",
        "BERT-simple-match",
        "LOTClass w/o self-train",
        "LOTClass",
        "Supervised",
    ];
    let mut rows: Vec<Vec<String>> = methods.iter().map(|m| vec![m.to_string()]).collect();
    let mut agg: std::collections::HashMap<&str, Vec<f32>> = std::collections::HashMap::new();

    for ds in DATASETS {
        let mut accs: Vec<Vec<f32>> = vec![Vec::new(); methods.len()];
        for &seed in &cfg.seed_values() {
            let d = recipes::by_name(ds, cfg.scale, seed)?;
            let names = d.supervision_names();
            let wv = standard_word_vectors(&d);
            let plm = adapted_plm(&d, seed);
            let lot = LotClass {
                seed,
                ..Default::default()
            }
            .run(&d, &plm);
            let results: Vec<Vec<usize>> = vec![
                baselines::dataless(&d, &names, &wv),
                WeSTClass {
                    seed,
                    ..Default::default()
                }
                .run(&d, &names, &wv)
                .predictions,
                baselines::bert_simple_match(&d, &plm),
                lot.pretrain_predictions.clone(),
                lot.predictions.clone(),
                {
                    let features = structmine::common::plm_features(&d, &plm);
                    baselines::supervised(&d, &features, seed)
                },
            ];
            for (m, preds) in results.iter().enumerate() {
                let acc = crate::test_accuracy(&d, preds);
                accs[m].push(acc);
                agg.entry(methods[m]).or_default().push(acc);
            }
        }
        for m in 0..methods.len() {
            rows[m].push(ms(MeanStd::of(&accs[m])));
        }
    }
    for row in rows {
        t.row(row);
    }

    let mean = |m: &str| {
        let v = &agg[m];
        v.iter().sum::<f32>() / v.len() as f32
    };
    t.check(
        format!(
            "LOTClass ({:.3}) beats BERT simple match ({:.3})",
            mean("LOTClass"),
            mean("BERT-simple-match")
        ),
        mean("LOTClass") > mean("BERT-simple-match"),
    );
    t.check(
        format!(
            "self-training helps: LOTClass ({:.3}) >= w/o self-train ({:.3})",
            mean("LOTClass"),
            mean("LOTClass w/o self-train")
        ),
        mean("LOTClass") >= mean("LOTClass w/o self-train") - 0.01,
    );
    t.check(
        format!(
            "LOTClass ({:.3}) beats Dataless ({:.3})",
            mean("LOTClass"),
            mean("Dataless")
        ),
        mean("LOTClass") > mean("Dataless"),
    );
    t.check(
        format!(
            "supervised bound ({:.3}) >= LOTClass ({:.3})",
            mean("Supervised"),
            mean("LOTClass")
        ),
        mean("Supervised") >= mean("LOTClass") - 0.02,
    );

    Ok(vec![t, table1_demo()?])
}

/// E3b — the paper's Table 1: MLM replacements for one surface word under
/// two different contexts.
pub fn table1_demo() -> Result<Table, BenchError> {
    let plm = standard_plm();
    let corpus = recipes::pretraining_corpus(2, 1);
    let v = &corpus.vocab;
    let id = |w: &str| {
        v.id(w).ok_or_else(|| {
            BenchError::Invalid(format!(
                "demo word '{w}' missing from the pretraining vocabulary"
            ))
        })
    };
    // "pitch" as the playing surface vs as a musical property.
    let soccer_ctx = vec![
        id("soccer")?,
        id("striker")?,
        id("pitch")?,
        id("goal")?,
        id("keeper")?,
        id("offside")?,
    ];
    let music_ctx = vec![
        id("band")?,
        id("singer")?,
        id("pitch")?,
        id("melody")?,
        id("concert")?,
        id("chorus")?,
    ];
    let demos = replacement_demo(&plm, v, &[soccer_ctx, music_ctx], id("pitch")?, 8)?;

    let mut t = Table::new("E3b — LOTClass Table 1: MLM predictions for 'pitch' in two contexts");
    t.note("paper analogue: BERT's replacements for 'sports' differ between a sports story and a gadget story");
    t.headers(&["context", "top MLM replacements"]);
    let render = |d: &[(String, f32)]| {
        d.iter()
            .map(|(w, p)| format!("{w}({p:.3})"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    t.row(vec![
        "soccer: 'striker … goal keeper offside'".into(),
        render(&demos[0]),
    ]);
    t.row(vec![
        "music:  'band singer … melody concert'".into(),
        render(&demos[1]),
    ]);

    let words = |d: &[(String, f32)]| -> std::collections::HashSet<String> {
        d.iter().map(|(w, _)| w.clone()).collect()
    };
    let a = words(&demos[0]);
    let b = words(&demos[1]);
    let overlap = a.intersection(&b).count();
    t.check(
        format!("contexts produce different replacement lists (overlap {overlap}/8)"),
        overlap < 6,
    );
    let soccer_lex = structmine_text::synth::lexicon::lexicon("soccer");
    let music_lex = structmine_text::synth::lexicon::lexicon("music");
    let soccer_hits = a
        .iter()
        .filter(|w| soccer_lex.contains(&w.as_str()))
        .count();
    let music_hits = b.iter().filter(|w| music_lex.contains(&w.as_str())).count();
    t.check(
        format!("replacements are context-topical (soccer {soccer_hits}/8, music {music_hits}/8)"),
        soccer_hits >= 2 && music_hits >= 2,
    );
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_demo_runs_and_differs() {
        let t = table1_demo().unwrap();
        assert_eq!(t.rows.len(), 2);
        assert!(
            t.checks[0].1,
            "replacement lists should differ: {:?}",
            t.rows
        );
    }
}
