//! E6 — the WeSHClass table (AAAI'19): Macro-/Micro-F1 on the NYT, arXiv
//! and Yelp hierarchies under KEYWORDS and DOCS supervision, with the
//! No-global / No-vMF / No-self-train ablations.

use crate::table::ms;
use crate::{standard_word_vectors, BenchConfig, BenchError, Table};
use structmine::weshclass::{path_macro_f1, path_micro_f1, WeSHClass};
use structmine_eval::MeanStd;
use structmine_text::synth::recipes;
use structmine_text::Dataset;

const DATASETS: &[&str] = &["nyt-tree", "arxiv-tree", "yelp-tree"];
const SUPERVISIONS: &[&str] = &["KEYWORDS", "DOCS"];

fn eval(d: &Dataset, out: &structmine::weshclass::WeSHClassOutput) -> (f32, f32) {
    let pred: Vec<Vec<usize>> = d
        .test_idx
        .iter()
        .map(|&i| out.path_predictions[i].clone())
        .collect();
    let gold = d.test_gold_sets();
    (
        path_macro_f1(&pred, &gold, d.n_classes()),
        path_micro_f1(&pred, &gold),
    )
}

/// Run E6.
pub fn run(cfg: &BenchConfig) -> Result<Vec<Table>, BenchError> {
    let mut t = Table::new("E6 — WeSHClass reproduction (Macro-F1 / Micro-F1 over path labels)");
    t.note(format!(
        "seeds={}, scale={}; paper reference (NYT keywords macro/micro): WeSTClass 0.386/0.772, \
         No-global 0.618/0.843, No-vMF 0.628/0.862, No-self-train 0.550/0.787, WeSHClass 0.632/0.874",
        cfg.seeds, cfg.scale
    ));
    let mut header = vec!["method".to_string()];
    for d in DATASETS {
        for s in SUPERVISIONS {
            header.push(format!("{d}:{s}"));
        }
    }
    t.headers(&header.iter().map(|s| s.as_str()).collect::<Vec<_>>());

    let methods: &[&str] = &["No-global", "No-vMF", "No-self-train", "WeSHClass"];
    let mut rows: Vec<Vec<String>> = methods.iter().map(|m| vec![m.to_string()]).collect();
    let mut agg: std::collections::HashMap<&str, Vec<f32>> = std::collections::HashMap::new();

    for ds in DATASETS {
        for sup_kind in SUPERVISIONS {
            let mut cells: Vec<Vec<(f32, f32)>> = vec![Vec::new(); methods.len()];
            for &seed in &cfg.seed_values() {
                let d = recipes::by_name(ds, cfg.scale, seed)?;
                let wv = standard_word_vectors(&d);
                let sup = match *sup_kind {
                    "KEYWORDS" => d.supervision_keywords(),
                    _ => d.supervision_docs(5, seed),
                };
                let variants = [
                    WeSHClass {
                        use_global: false,
                        seed,
                        ..Default::default()
                    },
                    WeSHClass {
                        use_vmf: false,
                        seed,
                        ..Default::default()
                    },
                    WeSHClass {
                        self_train: false,
                        seed,
                        ..Default::default()
                    },
                    WeSHClass {
                        seed,
                        ..Default::default()
                    },
                ];
                for (m, v) in variants.iter().enumerate() {
                    let out = v.run(&d, &sup, &wv)?;
                    let scores = eval(&d, &out);
                    cells[m].push(scores);
                    agg.entry(methods[m]).or_default().push(scores.1);
                }
            }
            for m in 0..methods.len() {
                let macros: Vec<f32> = cells[m].iter().map(|&(a, _)| a).collect();
                let micros: Vec<f32> = cells[m].iter().map(|&(_, b)| b).collect();
                rows[m].push(format!(
                    "{} / {}",
                    ms(MeanStd::of(&macros)),
                    ms(MeanStd::of(&micros))
                ));
            }
        }
    }
    for row in rows {
        t.row(row);
    }

    let mean = |m: &str| {
        let v = &agg[m];
        v.iter().sum::<f32>() / v.len() as f32
    };
    t.check(
        format!(
            "global composition helps: WeSHClass ({:.3}) >= No-global ({:.3})",
            mean("WeSHClass"),
            mean("No-global")
        ),
        mean("WeSHClass") >= mean("No-global") - 0.01,
    );
    t.check(
        format!(
            "vMF pseudo docs help: WeSHClass ({:.3}) >= No-vMF ({:.3})",
            mean("WeSHClass"),
            mean("No-vMF")
        ),
        mean("WeSHClass") >= mean("No-vMF") - 0.01,
    );
    t.check(
        format!(
            "self-training helps: WeSHClass ({:.3}) >= No-self-train ({:.3})",
            mean("WeSHClass"),
            mean("No-self-train")
        ),
        mean("WeSHClass") >= mean("No-self-train") - 0.01,
    );
    Ok(vec![t])
}
