//! E4b — the "how powerful are vanilla BERT representations" figures:
//! Figure 1 (2-D PCA of average-pooled representations colored by domain)
//! and Figure 2 (confusion matrix of k=5 clustering against domains).

use crate::{adapted_plm, standard_plm, BenchConfig, BenchError, Table};
use structmine_cluster::{confusion_matrix, kmeans, map_clusters_to_classes};
use structmine_linalg::Pca;
use structmine_text::synth::recipes;

/// Run E4b: PCA scatter summary + clustering confusion matrix.
pub fn run(cfg: &BenchConfig) -> Result<Vec<Table>, BenchError> {
    let d = recipes::nyt_coarse(cfg.scale, 7)?;
    let plm = adapted_plm(&d, 7);
    let reps = structmine_plm::repr::doc_mean_reps(&plm, &d.corpus);
    let gold: Vec<usize> = d.corpus.docs.iter().map(|doc| doc.labels[0]).collect();
    let k = d.n_classes();

    // ---- Figure 1: PCA projection, summarized per class -------------------
    let pca = Pca::fit(&reps, 2);
    let proj = pca.transform(&reps);
    let mut fig1 = Table::new(
        "E4b/Fig1 — PCA of average-pooled PLM document representations (per-class centroids)",
    );
    fig1.note("paper analogue: average-pooled BERT sentence vectors separate domains in 2-D PCA");
    fig1.headers(&["class", "pc1 centroid", "pc2 centroid", "docs"]);
    let mut centroids = vec![(0.0f32, 0.0f32, 0usize); k];
    for (i, &g) in gold.iter().enumerate() {
        centroids[g].0 += proj.get(i, 0);
        centroids[g].1 += proj.get(i, 1);
        centroids[g].2 += 1;
    }
    for (c, (x, y, n)) in centroids.iter().enumerate() {
        fig1.row(vec![
            d.labels.names[c].clone(),
            format!("{:.3}", x / *n as f32),
            format!("{:.3}", y / *n as f32),
            n.to_string(),
        ]);
    }
    // Separation check: the mean inter-centroid distance must exceed the
    // mean within-class scatter in the projected plane.
    let cents: Vec<(f32, f32)> = centroids
        .iter()
        .map(|(x, y, n)| (x / *n as f32, y / *n as f32))
        .collect();
    let mut within = 0.0f32;
    for (i, &g) in gold.iter().enumerate() {
        let dx = proj.get(i, 0) - cents[g].0;
        let dy = proj.get(i, 1) - cents[g].1;
        within += (dx * dx + dy * dy).sqrt();
    }
    within /= gold.len() as f32;
    let mut between = 0.0f32;
    let mut pairs = 0usize;
    for a in 0..k {
        for b in (a + 1)..k {
            let dx = cents[a].0 - cents[b].0;
            let dy = cents[a].1 - cents[b].1;
            between += (dx * dx + dy * dy).sqrt();
            pairs += 1;
        }
    }
    between /= pairs as f32;
    fig1.check(
        format!("classes separate in PCA plane (between {between:.3} vs within {within:.3})"),
        between > within,
    );
    fig1.note(format!(
        "explained variance of the two components: {:?}",
        pca.explained_variance()
            .iter()
            .map(|v| format!("{v:.3}"))
            .collect::<Vec<_>>()
    ));

    // ---- Figure 2: k-means confusion matrix --------------------------------
    let result = kmeans(&reps, k, 5, 100, None);
    let mapping = map_clusters_to_classes(&result.assignments, &gold, k);
    let remapped: Vec<usize> = result.assignments.iter().map(|&a| mapping[a]).collect();
    let cm = confusion_matrix(&remapped, &gold, k, k);
    let mut fig2 = Table::new("E4b/Fig2 — confusion matrix of k=5 clustering vs domains");
    let mut header = vec!["cluster \\ gold".to_string()];
    header.extend(d.labels.names.iter().cloned());
    fig2.headers(&header.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    for (c, row) in cm.iter().enumerate() {
        let mut cells = vec![d.labels.names[c].clone()];
        cells.extend(row.iter().map(|v| v.to_string()));
        fig2.row(cells);
    }
    let acc = structmine_cluster::align::aligned_accuracy(&result.assignments, &gold, k);
    let purity = structmine_cluster::quality::purity(&result.assignments, &gold);
    let nmi = structmine_cluster::quality::nmi(&result.assignments, &gold);
    fig2.note(format!(
        "aligned accuracy {acc:.3}, purity {purity:.3}, NMI {nmi:.3}"
    ));
    fig2.check(
        format!(
            "clustering recovers domains far above chance (acc {acc:.3} vs {:.3})",
            1.0 / k as f32
        ),
        acc > 2.0 / k as f32,
    );
    Ok(vec![fig1, fig2])
}

/// ASCII scatter of the PCA projection (printed by the figure binary).
pub fn ascii_scatter(cfg: &BenchConfig) -> Result<String, BenchError> {
    let plm = standard_plm();
    let d = recipes::nyt_coarse((cfg.scale * 0.5).max(0.03), 7)?;
    let reps = structmine_plm::repr::doc_mean_reps(&plm, &d.corpus);
    let pca = Pca::fit(&reps, 2);
    let proj = pca.transform(&reps);
    let (w, h) = (72usize, 24usize);
    let mut grid = vec![vec![' '; w]; h];
    let (mut min_x, mut max_x, mut min_y, mut max_y) = (f32::MAX, f32::MIN, f32::MAX, f32::MIN);
    for i in 0..proj.rows() {
        min_x = min_x.min(proj.get(i, 0));
        max_x = max_x.max(proj.get(i, 0));
        min_y = min_y.min(proj.get(i, 1));
        max_y = max_y.max(proj.get(i, 1));
    }
    let glyphs = ['p', 'a', 'b', 's', 'S', '6', '7', '8', '9'];
    for i in 0..proj.rows() {
        let x = ((proj.get(i, 0) - min_x) / (max_x - min_x + 1e-6) * (w - 1) as f32) as usize;
        let y = ((proj.get(i, 1) - min_y) / (max_y - min_y + 1e-6) * (h - 1) as f32) as usize;
        let class = d.corpus.docs[i].labels[0];
        grid[h - 1 - y][x] = glyphs[class % glyphs.len()];
    }
    let mut out = String::from("PCA scatter (p=politics a=arts b=business s=science S=sports):\n");
    for row in grid {
        out.push_str(&row.into_iter().collect::<String>());
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_scatter_has_expected_dimensions() {
        // Uses the Test-tier via env? No — uses standard tier; keep tiny.
        let s = ascii_scatter(&BenchConfig {
            scale: 0.06,
            seeds: 1,
        })
        .unwrap();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 25);
        assert!(lines[1..].iter().all(|l| l.chars().count() == 72));
    }
}
