//! E9 — the MICoL table (WWW'22): P@1/3/5 and NDCG@3/5 on the MAG-CS and
//! PubMed stand-ins, zero-shot baselines, four MICoL variants, and the
//! supervised MATCH-style rows at growing supervision sizes.

use crate::table::ms;
use crate::{adapted_plm, BenchConfig, BenchError, Table};
use structmine::micol::{
    augmentation_contrastive_ranking, doc2vec_ranking, entail_ranking, plm_rep_ranking,
    supervised_match_ranking, Encoder, MetaPath, MiCoL,
};
use structmine_eval::{ndcg_at_k, precision_at_k, MeanStd};
use structmine_text::synth::recipes;
use structmine_text::Dataset;

const DATASETS: &[&str] = &["mag-cs", "pubmed"];

fn eval(d: &Dataset, rankings: &[Vec<usize>]) -> [f32; 5] {
    let pred: Vec<Vec<usize>> = d.test_idx.iter().map(|&i| rankings[i].clone()).collect();
    let gold = d.test_gold_sets();
    [
        precision_at_k(&pred, &gold, 1),
        precision_at_k(&pred, &gold, 3),
        precision_at_k(&pred, &gold, 5),
        ndcg_at_k(&pred, &gold, 3),
        ndcg_at_k(&pred, &gold, 5),
    ]
}

/// Run E9.
pub fn run(cfg: &BenchConfig) -> Result<Vec<Table>, BenchError> {
    let methods: &[&str] = &[
        "Doc2Vec",
        "PLM rep (SciBERT-like)",
        "ZeroShot-Entail",
        "EDA contrastive",
        "UDA contrastive",
        "MICoL (Bi, P→P←P)",
        "MICoL (Bi, P←(PP)→P)",
        "MICoL (Cross, P→P←P)",
        "MICoL (Cross, P←(PP)→P)",
        "MATCH-sup (10%)",
        "MATCH-sup (30%)",
        "MATCH-sup (60%)",
        "MATCH-sup (100%)",
    ];

    let mut tables = Vec::new();
    let mut agg: std::collections::HashMap<&str, Vec<f32>> = std::collections::HashMap::new();
    for ds in DATASETS {
        let mut t = Table::new(format!("E9 — MICoL reproduction on {ds} (P@k / NDCG@k)"));
        t.note(format!(
            "seeds={}, scale={}; paper reference (MAG-CS P@1): Doc2Vec 0.570, SciBERT 0.644, \
             ZeroShot-Entail 0.665, MICoL Cross P→P←P 0.718, MATCH 10K 0.442, MATCH full 0.911",
            cfg.seeds, cfg.scale
        ));
        t.headers(&["method", "P@1", "P@3", "P@5", "NDCG@3", "NDCG@5"]);
        let mut cells: Vec<Vec<[f32; 5]>> = vec![Vec::new(); methods.len()];
        for &seed in &cfg.seed_values() {
            let d = recipes::by_name(ds, cfg.scale, seed)?;
            let plm = adapted_plm(&d, seed);
            let runs: Vec<Vec<Vec<usize>>> = vec![
                doc2vec_ranking(&d, seed),
                plm_rep_ranking(&d, &plm),
                entail_ranking(&d, &plm),
                augmentation_contrastive_ranking(&d, &plm, false, seed),
                augmentation_contrastive_ranking(&d, &plm, true, seed),
                MiCoL {
                    meta_path: MetaPath::SharedReference,
                    seed,
                    ..Default::default()
                }
                .run(&d, &plm),
                MiCoL {
                    meta_path: MetaPath::CoCited,
                    seed,
                    ..Default::default()
                }
                .run(&d, &plm),
                MiCoL {
                    encoder: Encoder::Cross,
                    meta_path: MetaPath::SharedReference,
                    seed,
                    ..Default::default()
                }
                .run(&d, &plm),
                MiCoL {
                    encoder: Encoder::Cross,
                    meta_path: MetaPath::CoCited,
                    seed,
                    ..Default::default()
                }
                .run(&d, &plm),
                supervised_match_ranking(&d, &plm, 0.1, seed),
                supervised_match_ranking(&d, &plm, 0.3, seed),
                supervised_match_ranking(&d, &plm, 0.6, seed),
                supervised_match_ranking(&d, &plm, 1.0, seed),
            ];
            for (m, rankings) in runs.iter().enumerate() {
                let scores = eval(&d, rankings);
                cells[m].push(scores);
                agg.entry(methods[m]).or_default().push(scores[0]);
            }
        }
        for (m, name) in methods.iter().enumerate() {
            let mut row = vec![name.to_string()];
            for k in 0..5 {
                let vals: Vec<f32> = cells[m].iter().map(|s| s[k]).collect();
                row.push(ms(MeanStd::of(&vals)));
            }
            t.row(row);
        }
        tables.push(t);
    }

    let mean = |m: &str| {
        let v = &agg[m];
        v.iter().sum::<f32>() / v.len() as f32
    };
    let best_micol = [
        "MICoL (Bi, P→P←P)",
        "MICoL (Bi, P←(PP)→P)",
        "MICoL (Cross, P→P←P)",
        "MICoL (Cross, P←(PP)→P)",
    ]
    .iter()
    .map(|m| mean(m))
    .fold(f32::NEG_INFINITY, f32::max);
    let t = tables
        .last_mut()
        .ok_or_else(|| BenchError::Invalid("E8 produced no tables".into()))?;
    t.check(
        format!(
            "best MICoL ({best_micol:.3}) beats Doc2Vec ({:.3})",
            mean("Doc2Vec")
        ),
        best_micol > mean("Doc2Vec"),
    );
    t.check(
        format!(
            "metadata pairs beat augmentation pairs: MICoL ({best_micol:.3}) >= EDA ({:.3})",
            mean("EDA contrastive")
        ),
        best_micol >= mean("EDA contrastive") - 0.01,
    );
    t.check(
        format!(
            "MICoL ({best_micol:.3}) competitive with partial supervision ({:.3})",
            mean("MATCH-sup (30%)")
        ),
        best_micol >= mean("MATCH-sup (30%)") - 0.10,
    );
    t.check(
        format!(
            "full supervision wins overall: MATCH-100% ({:.3}) >= best MICoL ({best_micol:.3})",
            mean("MATCH-sup (100%)")
        ),
        mean("MATCH-sup (100%)") >= best_micol - 0.03,
    );
    t.check(
        format!(
            "supervision scales: MATCH 100% ({:.3}) >= MATCH 10% ({:.3})",
            mean("MATCH-sup (100%)"),
            mean("MATCH-sup (10%)")
        ),
        mean("MATCH-sup (100%)") >= mean("MATCH-sup (10%)") - 0.02,
    );
    Ok(tables)
}
