//! E5 — the PromptClass table: Micro-/Macro-F1 on AG News, 20News, Yelp and
//! IMDB with category names only; zero-shot prompting rows (MLM-style and
//! RTD-style) and three full-pipeline pairings.

use crate::table::ms;
use crate::{adapted_plm, BenchConfig, BenchError, Table};
use structmine::promptclass::{PromptClass, PromptStyle};
use structmine_eval::MeanStd;
use structmine_text::synth::recipes;

const DATASETS: &[&str] = &["agnews", "20news-coarse", "yelp", "imdb"];

/// Run E5.
pub fn run(cfg: &BenchConfig) -> Result<Vec<Table>, BenchError> {
    let mut t = Table::new("E5 — PromptClass reproduction (Micro-F1 / Macro-F1)");
    t.note(format!(
        "seeds={}, scale={}; paper reference (AG News micro): RoBERTa 0-shot 0.581, \
         ELECTRA 0-shot 0.810, PromptClass ELECTRA+ELECTRA 0.884, Fully supervised 0.940",
        cfg.seeds, cfg.scale
    ));
    let mut header = vec!["method".to_string()];
    for d in DATASETS {
        header.push(format!("{d} (mi/ma)"));
    }
    t.headers(&header.iter().map(|s| s.as_str()).collect::<Vec<_>>());

    let methods: &[&str] = &[
        "MLM (0-shot)",
        "RTD (0-shot)",
        "PromptClass MLM+head",
        "PromptClass RTD+head",
        "PromptClass RTD+RTD",
        "Fully supervised",
    ];
    let mut rows: Vec<Vec<String>> = methods.iter().map(|m| vec![m.to_string()]).collect();
    let mut agg: std::collections::HashMap<&str, Vec<f32>> = std::collections::HashMap::new();

    for ds in DATASETS {
        let mut micro: Vec<Vec<f32>> = vec![Vec::new(); methods.len()];
        let mut macro_: Vec<Vec<f32>> = vec![Vec::new(); methods.len()];
        for &seed in &cfg.seed_values() {
            let d = recipes::by_name(ds, cfg.scale, seed)?;
            let plm = adapted_plm(&d, seed);
            let mlm_full = PromptClass {
                style: PromptStyle::Mlm,
                seed,
                ..Default::default()
            }
            .run(&d, &plm)?;
            let rtd_full = PromptClass {
                style: PromptStyle::Rtd,
                seed,
                ..Default::default()
            }
            .run(&d, &plm)?;
            // The third pairing blends prompt scores more heavily (the
            // "same-backbone" variant of the paper keeps prompting in the
            // loop longer).
            let rtd_rtd = PromptClass {
                style: PromptStyle::Rtd,
                prompt_weight: 0.7,
                iterations: 4,
                seed,
                ..Default::default()
            }
            .run(&d, &plm)?;
            let results: Vec<Vec<usize>> = vec![
                mlm_full.zero_shot_predictions.clone(),
                rtd_full.zero_shot_predictions.clone(),
                mlm_full.predictions.clone(),
                rtd_full.predictions.clone(),
                rtd_rtd.predictions.clone(),
                {
                    let features = structmine::common::plm_features(&d, &plm);
                    structmine::baselines::supervised(&d, &features, seed)
                },
            ];
            for (m, preds) in results.iter().enumerate() {
                micro[m].push(crate::test_accuracy(&d, preds));
                macro_[m].push(crate::test_macro_f1(&d, preds));
                agg.entry(methods[m])
                    .or_default()
                    .push(crate::test_accuracy(&d, preds));
            }
        }
        for m in 0..methods.len() {
            rows[m].push(format!(
                "{} / {}",
                ms(MeanStd::of(&micro[m])),
                ms(MeanStd::of(&macro_[m]))
            ));
        }
    }
    for row in rows {
        t.row(row);
    }

    let mean = |m: &str| {
        let v = &agg[m];
        v.iter().sum::<f32>() / v.len() as f32
    };
    t.check(
        format!(
            "iterative training beats 0-shot: RTD+head ({:.3}) > RTD 0-shot ({:.3})",
            mean("PromptClass RTD+head"),
            mean("RTD (0-shot)")
        ),
        mean("PromptClass RTD+head") > mean("RTD (0-shot)") - 0.01,
    );
    t.check(
        format!(
            "iterative training beats 0-shot: MLM+head ({:.3}) > MLM 0-shot ({:.3})",
            mean("PromptClass MLM+head"),
            mean("MLM (0-shot)")
        ),
        mean("PromptClass MLM+head") > mean("MLM (0-shot)") - 0.01,
    );
    t.check(
        format!(
            "supervised ({:.3}) >= best PromptClass ({:.3})",
            mean("Fully supervised"),
            mean("PromptClass RTD+RTD").max(mean("PromptClass RTD+head"))
        ),
        mean("Fully supervised")
            >= mean("PromptClass RTD+RTD").max(mean("PromptClass RTD+head")) - 0.03,
    );
    Ok(vec![t])
}
