//! E7 — the TaxoClass table (NAACL'21): Example-F1 and P@1 on the Amazon
//! and DBpedia DAG-taxonomy stand-ins, against WeSHClass-as-baseline,
//! semi-supervised heads, and Hier-0Shot-TC.

use crate::table::ms;
use crate::{adapted_plm, standard_word_vectors, BenchConfig, BenchError, Table};
use structmine::taxoclass::{hier_zero_shot, semi_supervised, TaxoClass, TaxoClassOutput};
use structmine::weshclass::WeSHClass;
use structmine_eval::{example_f1, precision_at_1_sets, MeanStd};
use structmine_text::synth::recipes;
use structmine_text::Dataset;

const DATASETS: &[&str] = &["amazon-taxonomy", "dbpedia-taxonomy"];

fn eval(d: &Dataset, out: &TaxoClassOutput) -> (f32, f32) {
    let pred: Vec<Vec<usize>> = d
        .test_idx
        .iter()
        .map(|&i| out.label_sets[i].clone())
        .collect();
    let top1: Vec<usize> = d.test_idx.iter().map(|&i| out.top1[i]).collect();
    let gold = d.test_gold_sets();
    (example_f1(&pred, &gold), precision_at_1_sets(&top1, &gold))
}

/// WeSHClass pressed into multi-label service, as in the paper's baselines:
/// it predicts one root-to-leaf path, used as the label set.
fn weshclass_as_baseline(d: &Dataset, seed: u64) -> Result<TaxoClassOutput, BenchError> {
    let wv = standard_word_vectors(d);
    // Restrict to tree-like behaviour: WeSHClass needs a tree, so run it on
    // a "first parent" copy of the taxonomy.
    let tree_dataset = single_parent_view(d)?;
    let out = WeSHClass {
        seed,
        ..Default::default()
    }
    .run(&tree_dataset, &tree_dataset.supervision_keywords(), &wv)?;
    let top1: Vec<usize> = out
        .path_predictions
        .iter()
        .map(|p| p.last().copied().unwrap_or(0))
        .collect();
    Ok(TaxoClassOutput {
        label_sets: out.path_predictions,
        top1,
        core_classes: Vec::new(),
    })
}

/// Copy of the dataset whose taxonomy keeps only each node's first parent.
fn single_parent_view(d: &Dataset) -> Result<Dataset, BenchError> {
    let tax = d
        .taxonomy
        .as_ref()
        .ok_or_else(|| BenchError::Invalid("E7 dataset has no taxonomy".into()))?;
    let mut tree = structmine_text::Taxonomy::new("root");
    let mut node_map = std::collections::HashMap::new();
    node_map.insert(tax.root(), tree.root());
    // Nodes were added in increasing id order, so parents precede children.
    for node in tax.non_root_nodes() {
        let parent = *tax.parents(node).first().ok_or_else(|| {
            BenchError::Invalid(format!("taxonomy node '{}' has no parent", tax.name(node)))
        })?;
        let mapped_parent = node_map[&parent];
        let new = tree.add_node(tax.name(node), &[mapped_parent]);
        node_map.insert(node, new);
    }
    let mut out = d.clone();
    out.class_nodes = d.class_nodes.iter().map(|n| node_map[n]).collect();
    out.taxonomy = Some(tree);
    Ok(out)
}

/// Run E7.
pub fn run(cfg: &BenchConfig) -> Result<Vec<Table>, BenchError> {
    let mut t = Table::new("E7 — TaxoClass reproduction (Example-F1 / P@1)");
    t.note(format!(
        "seeds={}, scale={}; paper reference (Amazon): WeSHClass 0.246/0.577, SS-PCEM 0.292/0.537, \
         Semi-BERT 0.339/0.592, Hier-0Shot-TC 0.474/0.714, TaxoClass 0.593/0.812",
        cfg.seeds, cfg.scale
    ));
    let mut header = vec!["method".to_string()];
    for d in DATASETS {
        header.push(format!("{d} (F1/P@1)"));
    }
    t.headers(&header.iter().map(|s| s.as_str()).collect::<Vec<_>>());

    let methods: &[&str] = &[
        "WeSHClass",
        "Semi-supervised (30%)",
        "Hier-0Shot-TC",
        "TaxoClass",
    ];
    let mut rows: Vec<Vec<String>> = methods.iter().map(|m| vec![m.to_string()]).collect();
    let mut agg: std::collections::HashMap<&str, Vec<f32>> = std::collections::HashMap::new();

    for ds in DATASETS {
        let mut cells: Vec<Vec<(f32, f32)>> = vec![Vec::new(); methods.len()];
        for &seed in &cfg.seed_values() {
            let d = recipes::by_name(ds, cfg.scale, seed)?;
            let plm = adapted_plm(&d, seed);
            let outs = [
                weshclass_as_baseline(&d, seed)?,
                semi_supervised(&d, &plm, 0.3, seed),
                hier_zero_shot(&d, &plm, 2)?,
                TaxoClass {
                    seed,
                    ..Default::default()
                }
                .run(&d, &plm)?,
            ];
            for (m, out) in outs.iter().enumerate() {
                let scores = eval(&d, out);
                cells[m].push(scores);
                agg.entry(methods[m]).or_default().push(scores.0);
            }
        }
        for m in 0..methods.len() {
            let f1s: Vec<f32> = cells[m].iter().map(|&(a, _)| a).collect();
            let p1s: Vec<f32> = cells[m].iter().map(|&(_, b)| b).collect();
            rows[m].push(format!(
                "{} / {}",
                ms(MeanStd::of(&f1s)),
                ms(MeanStd::of(&p1s))
            ));
        }
    }
    for row in rows {
        t.row(row);
    }

    let mean = |m: &str| {
        let v = &agg[m];
        v.iter().sum::<f32>() / v.len() as f32
    };
    t.check(
        format!(
            "TaxoClass ({:.3}) beats WeSHClass-as-baseline ({:.3})",
            mean("TaxoClass"),
            mean("WeSHClass")
        ),
        mean("TaxoClass") > mean("WeSHClass"),
    );
    t.check(
        format!(
            "TaxoClass ({:.3}) beats Hier-0Shot-TC ({:.3})",
            mean("TaxoClass"),
            mean("Hier-0Shot-TC")
        ),
        mean("TaxoClass") >= mean("Hier-0Shot-TC") - 0.01,
    );
    t.check(
        format!(
            "TaxoClass ({:.3}) beats the 30% semi-supervised head ({:.3})",
            mean("TaxoClass"),
            mean("Semi-supervised (30%)")
        ),
        mean("TaxoClass") >= mean("Semi-supervised (30%)") - 0.02,
    );
    Ok(vec![t])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_parent_view_produces_a_tree() {
        let d = recipes::amazon_taxonomy(0.05, 1).unwrap();
        assert!(!d.taxonomy.as_ref().unwrap().is_tree());
        let tree = single_parent_view(&d).unwrap();
        assert!(tree.taxonomy.as_ref().unwrap().is_tree());
        assert_eq!(tree.class_nodes.len(), d.class_nodes.len());
    }
}
