//! E4 — the X-Class tables (NAACL'21): dataset statistics and accuracy /
//! macro-F1 on seven datasets with different class criteria and imbalance,
//! including the X-Class-Rep and X-Class-Align ablation rows.

use crate::table::{f3, ms};
use crate::{BenchConfig, BenchError, Table};
use structmine_engine::{Engine, EngineConfig, EngineSource, MethodKind, PlmSpec};
use structmine_eval::MeanStd;
use structmine_linalg::ExecPolicy;
use structmine_text::synth::recipes;

/// The E4 dataset list. Public because the sharded encode phase
/// (`crate::shard_phase`) pre-warms exactly these cells.
pub const DATASETS: &[&str] = &[
    "agnews",
    "20news-coarse",
    "nyt-small",
    "nyt-topic",
    "nyt-location",
    "yelp",
    "dbpedia",
];

/// Run E4.
pub fn run(cfg: &BenchConfig) -> Result<Vec<Table>, BenchError> {
    // Dataset statistics table (the paper's first X-Class table).
    let mut stats = Table::new("E4 — X-Class dataset statistics (synthetic stand-ins)");
    stats.headers(&["dataset", "classes", "documents", "imbalance", "criterion"]);
    let mut any_imbalanced = false;
    for ds in DATASETS {
        let d = recipes::by_name(ds, cfg.scale, 1)?;
        let criterion = match *ds {
            "nyt-location" => "locations",
            "yelp" => "sentiment",
            "dbpedia" => "ontology",
            _ => "topics",
        };
        any_imbalanced |= d.imbalance() > 5.0;
        stats.row(vec![
            ds.to_string(),
            d.n_classes().to_string(),
            d.corpus.len().to_string(),
            f3(d.imbalance()),
            criterion.to_string(),
        ]);
    }
    stats.check(
        "imbalanced stand-ins present (nyt-small/topic/location imbalance > 5)",
        any_imbalanced,
    );

    // Results table.
    let mut t = Table::new("E4 — X-Class reproduction (accuracy/macro-F1, test split)");
    t.note(format!(
        "seeds={}, scale={}; paper reference (AGNews acc): Supervised 93.99, WeSTClass 82.3, \
         LOTClass 86.89, X-Class 84.8, X-Class-Rep 77.92, X-Class-Align 83.1",
        cfg.seeds, cfg.scale
    ));
    let mut header = vec!["method".to_string()];
    header.extend(DATASETS.iter().map(|d| d.to_string()));
    t.headers(&header.iter().map(|s| s.as_str()).collect::<Vec<_>>());

    let methods: &[&str] = &[
        "Supervised",
        "WeSTClass",
        "X-Class",
        "X-Class-Rep",
        "X-Class-Align",
    ];
    let mut rows: Vec<Vec<String>> = methods.iter().map(|m| vec![m.to_string()]).collect();
    let mut agg: std::collections::HashMap<&str, Vec<f32>> = std::collections::HashMap::new();

    for ds in DATASETS {
        let mut cells: Vec<Vec<f32>> = vec![Vec::new(); methods.len()];
        for &seed in &cfg.seed_values() {
            let d = recipes::by_name(ds, cfg.scale, seed)?;
            // Everything routes through the shared Engine layer: each
            // engine loads the same adapted PLM and replays the same
            // memoized method pipeline the direct calls always ran, so
            // the measured cells keep their bytes.
            let engine = |method: MethodKind| {
                Engine::load(EngineConfig {
                    source: EngineSource::Dataset(Box::new(d.clone())),
                    method,
                    plm: PlmSpec::Adapted { seed },
                    seed: Some(seed),
                    exec: ExecPolicy::default(),
                })
            };
            let x = engine(MethodKind::XClass)?.xclass_output()?;
            let results: Vec<Vec<usize>> = vec![
                engine(MethodKind::Supervised)?
                    .fitted_predictions()?
                    .to_vec(),
                engine(MethodKind::WeSTClass)?
                    .fitted_predictions()?
                    .to_vec(),
                x.predictions.clone(),
                x.rep_predictions.clone(),
                x.align_predictions.clone(),
            ];
            for (m, preds) in results.iter().enumerate() {
                let acc = crate::test_accuracy(&d, preds);
                cells[m].push(acc);
                agg.entry(methods[m]).or_default().push(acc);
            }
        }
        for m in 0..methods.len() {
            rows[m].push(ms(MeanStd::of(&cells[m])));
        }
    }
    for row in rows {
        t.row(row);
    }

    let mean = |m: &str| {
        let v = &agg[m];
        v.iter().sum::<f32>() / v.len() as f32
    };
    t.check(
        format!(
            "X-Class ({:.3}) beats WeSTClass ({:.3}) under name-only supervision",
            mean("X-Class"),
            mean("WeSTClass")
        ),
        mean("X-Class") > mean("WeSTClass"),
    );
    t.check(
        format!(
            "alignment helps: X-Class-Align ({:.3}) >= X-Class-Rep ({:.3})",
            mean("X-Class-Align"),
            mean("X-Class-Rep")
        ),
        mean("X-Class-Align") >= mean("X-Class-Rep") - 0.01,
    );
    t.check(
        format!(
            "final classifier helps: X-Class ({:.3}) >= X-Class-Align ({:.3})",
            mean("X-Class"),
            mean("X-Class-Align")
        ),
        mean("X-Class") >= mean("X-Class-Align") - 0.02,
    );
    t.check(
        format!(
            "supervised ({:.3}) >= X-Class ({:.3})",
            mean("Supervised"),
            mean("X-Class")
        ),
        mean("Supervised") >= mean("X-Class") - 0.02,
    );
    Ok(vec![stats, t])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_stats_table_covers_all_datasets() {
        let cfg = BenchConfig {
            scale: 0.05,
            seeds: 1,
        };
        // Only build the stats table cheaply (results table is exercised by
        // the binary and run_all).
        let plm_free = {
            let mut stats = Table::new("check");
            for ds in DATASETS {
                let d = recipes::by_name(ds, cfg.scale, 1).unwrap();
                stats.row(vec![ds.to_string(), d.n_classes().to_string()]);
            }
            stats
        };
        assert_eq!(plm_free.rows.len(), 7);
    }
}
