//! E1 — the WeSTClass table (CIKM'18): Macro-/Micro-F1 on NYT, AG News and
//! Yelp under LABELS / KEYWORDS / DOCS supervision, against the IR, topic
//! model, Dataless and supervised baselines and the NoST ablation.

use crate::table::ms;
use crate::{standard_word_vectors, BenchConfig, BenchError, Table};
use structmine::baselines;
use structmine::westclass::WeSTClass;
use structmine_eval::MeanStd;
use structmine_text::synth::recipes;
use structmine_text::{Dataset, Supervision};

const DATASETS: &[&str] = &["nyt-coarse", "agnews", "yelp"];
const SUPERVISIONS: &[&str] = &["LABELS", "KEYWORDS", "DOCS"];

fn supervision(d: &Dataset, kind: &str, seed: u64) -> Supervision {
    match kind {
        "LABELS" => d.supervision_names(),
        "KEYWORDS" => d.supervision_keywords(),
        "DOCS" => d.supervision_docs(10, seed),
        other => panic!("unknown supervision {other}"),
    }
}

/// Run E1.
pub fn run(cfg: &BenchConfig) -> Result<Vec<Table>, BenchError> {
    let mut macro_t = Table::new("E1 — WeSTClass reproduction (Macro-F1, test split)");
    macro_t.note(format!(
        "synthetic stand-ins at scale {} over {} seed(s); paper reference (NYT, Macro-F1): \
         IR-tfidf 0.319/0.509, Topic Model 0.301/0.253, WeSTClass-CNN 0.830/0.837/0.835",
        cfg.scale, cfg.seeds
    ));
    let mut header = vec!["method".to_string()];
    for d in DATASETS {
        for s in SUPERVISIONS {
            header.push(format!("{d}:{s}"));
        }
    }
    macro_t.headers(&header.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    let mut micro_t = Table::new("E1 — WeSTClass reproduction (Micro-F1, test split)");
    micro_t.headers(&header.iter().map(|s| s.as_str()).collect::<Vec<_>>());

    let methods = [
        "IR-tfidf",
        "TopicModel",
        "Dataless",
        "NoST-WeSTClass",
        "WeSTClass-HAN",
        "WeSTClass-CNN",
        "Supervised",
    ];
    let mut macro_rows: Vec<Vec<String>> = methods.iter().map(|m| vec![m.to_string()]).collect();
    let mut micro_rows = macro_rows.clone();

    // Aggregate over cells for the shape checks.
    let mut agg: std::collections::HashMap<&str, Vec<f32>> = std::collections::HashMap::new();

    for ds in DATASETS {
        for sup_kind in SUPERVISIONS {
            let mut per_method_macro: Vec<Vec<f32>> = vec![Vec::new(); methods.len()];
            let mut per_method_micro: Vec<Vec<f32>> = vec![Vec::new(); methods.len()];
            for &seed in &cfg.seed_values() {
                let d = recipes::by_name(ds, cfg.scale, seed)?;
                let wv = standard_word_vectors(&d);
                let sup = supervision(&d, sup_kind, seed);

                let eval = |preds: &[usize]| {
                    (
                        crate::test_macro_f1(&d, preds),
                        crate::test_accuracy(&d, preds),
                    )
                };

                let results: Vec<(f32, f32)> = vec![
                    eval(&baselines::ir_tfidf(&d, &sup)),
                    eval(&baselines::topic_model(&d, &sup, &wv, seed)),
                    eval(&baselines::dataless(&d, &sup, &wv)),
                    {
                        let out = WeSTClass {
                            self_train: false,
                            seed,
                            ..Default::default()
                        }
                        .run(&d, &sup, &wv);
                        eval(&out.predictions)
                    },
                    {
                        let out = WeSTClass {
                            backbone: structmine::westclass::Backbone::Han,
                            seed,
                            ..Default::default()
                        }
                        .run(&d, &sup, &wv);
                        eval(&out.predictions)
                    },
                    {
                        let out = WeSTClass {
                            seed,
                            ..Default::default()
                        }
                        .run(&d, &sup, &wv);
                        eval(&out.predictions)
                    },
                    {
                        let features = structmine::common::embedding_features(&d, &wv);
                        eval(&baselines::supervised(&d, &features, seed))
                    },
                ];
                for (m, (mac, mic)) in results.into_iter().enumerate() {
                    per_method_macro[m].push(mac);
                    per_method_micro[m].push(mic);
                    agg.entry(methods[m]).or_default().push(mic);
                }
            }
            for m in 0..methods.len() {
                macro_rows[m].push(ms(MeanStd::of(&per_method_macro[m])));
                micro_rows[m].push(ms(MeanStd::of(&per_method_micro[m])));
            }
        }
    }
    for row in macro_rows {
        macro_t.row(row);
    }
    for row in micro_rows {
        micro_t.row(row);
    }

    let mean = |m: &str| {
        let v = &agg[m];
        v.iter().sum::<f32>() / v.len() as f32
    };
    macro_t.check(
        format!(
            "WeSTClass-CNN ({:.3}) beats IR-tfidf ({:.3})",
            mean("WeSTClass-CNN"),
            mean("IR-tfidf")
        ),
        mean("WeSTClass-CNN") > mean("IR-tfidf"),
    );
    macro_t.check(
        format!(
            "self-training helps: WeSTClass-CNN ({:.3}) >= NoST ({:.3})",
            mean("WeSTClass-CNN"),
            mean("NoST-WeSTClass")
        ),
        mean("WeSTClass-CNN") >= mean("NoST-WeSTClass") - 0.01,
    );
    macro_t.check(
        format!(
            "supervised bound ({:.3}) >= WeSTClass-CNN ({:.3})",
            mean("Supervised"),
            mean("WeSTClass-CNN")
        ),
        mean("Supervised") >= mean("WeSTClass-CNN") - 0.01,
    );
    macro_t.check(
        format!(
            "WeSTClass-CNN ({:.3}) beats TopicModel ({:.3})",
            mean("WeSTClass-CNN"),
            mean("TopicModel")
        ),
        mean("WeSTClass-CNN") > mean("TopicModel"),
    );
    Ok(vec![macro_t, micro_t])
}

/// Quick variant used by the criterion benches and tests: one dataset, one
/// supervision, one seed.
pub fn quick(scale: f32, seed: u64) -> Result<f32, BenchError> {
    let d = recipes::agnews(scale, seed)?;
    let wv = standard_word_vectors(&d);
    let out = WeSTClass {
        seed,
        ..Default::default()
    }
    .run(&d, &d.supervision_names(), &wv);
    Ok(crate::test_accuracy(&d, &out.predictions))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_produces_full_grid_and_passes_shape_checks() {
        // Below ~0.15 the grid is too small for the orderings to be stable.
        let cfg = BenchConfig {
            scale: 0.15,
            seeds: 1,
        };
        let tables = run(&cfg).unwrap();
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].rows.len(), 7);
        assert_eq!(
            tables[0].rows[0].len(),
            1 + DATASETS.len() * SUPERVISIONS.len()
        );
        // The core orderings must hold even at tiny scale.
        assert!(
            tables[0].all_checks_pass(),
            "shape checks failed: {:?}",
            tables[0].checks
        );
    }

    #[test]
    fn f3_formats() {
        assert_eq!(crate::table::f3(0.5), "0.500");
    }
}
