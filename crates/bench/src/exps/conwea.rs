//! E2 — the ConWea table (ACL'20): Micro-/Macro-F1 on coarse and fine
//! NYT/20News stand-ins, with the NoCon / NoExpan / WSD ablations.

use crate::table::ms;
use crate::{adapted_plm, standard_word_vectors, BenchConfig, BenchError, Table};
use structmine::baselines;
use structmine::conwea::ConWea;
use structmine::westclass::WeSTClass;
use structmine_eval::MeanStd;
use structmine_text::synth::recipes;

const DATASETS: &[&str] = &["nyt-coarse", "nyt-fine", "20news-coarse", "20news-fine"];

/// Run E2.
pub fn run(cfg: &BenchConfig) -> Result<Vec<Table>, BenchError> {
    let mut t = Table::new("E2 — ConWea reproduction (Micro-F1 / Macro-F1, test split)");
    t.note(format!(
        "seeds={}, scale={}; paper reference (NYT 5-class micro): IR-TF-IDF 0.65, \
         WeSTClass 0.91, ConWea 0.95, ConWea-NoCon 0.91, ConWea-NoExpan 0.92, ConWea-WSD 0.83",
        cfg.seeds, cfg.scale
    ));
    let mut header = vec!["method".to_string()];
    for d in DATASETS {
        header.push(format!("{d} (mi/ma)"));
    }
    t.headers(&header.iter().map(|s| s.as_str()).collect::<Vec<_>>());

    let methods: &[&str] = &[
        "IR-TF-IDF",
        "WeSTClass",
        "ConWea",
        "ConWea-NoCon",
        "ConWea-NoExpan",
        "ConWea-WSD",
        "Supervised",
    ];
    let mut rows: Vec<Vec<String>> = methods.iter().map(|m| vec![m.to_string()]).collect();
    let mut agg: std::collections::HashMap<&str, Vec<f32>> = std::collections::HashMap::new();

    for ds in DATASETS {
        let mut micro: Vec<Vec<f32>> = vec![Vec::new(); methods.len()];
        let mut macro_: Vec<Vec<f32>> = vec![Vec::new(); methods.len()];
        for &seed in &cfg.seed_values() {
            let d = recipes::by_name(ds, cfg.scale, seed)?;
            let sup = d.supervision_keywords();
            let wv = standard_word_vectors(&d);
            let plm = adapted_plm(&d, seed);
            let results: Vec<Vec<usize>> = vec![
                baselines::ir_tfidf(&d, &sup),
                WeSTClass {
                    seed,
                    ..Default::default()
                }
                .run(&d, &sup, &wv)
                .predictions,
                ConWea {
                    seed,
                    ..Default::default()
                }
                .run(&d, &sup, &plm)
                .predictions,
                ConWea {
                    contextualize: false,
                    seed,
                    ..Default::default()
                }
                .run(&d, &sup, &plm)
                .predictions,
                ConWea {
                    expand: false,
                    seed,
                    ..Default::default()
                }
                .run(&d, &sup, &plm)
                .predictions,
                ConWea {
                    wsd_fallback: true,
                    seed,
                    ..Default::default()
                }
                .run(&d, &sup, &plm)
                .predictions,
                {
                    let features = structmine::common::plm_features(&d, &plm);
                    baselines::supervised(&d, &features, seed)
                },
            ];
            for (m, preds) in results.iter().enumerate() {
                micro[m].push(crate::test_accuracy(&d, preds));
                macro_[m].push(crate::test_macro_f1(&d, preds));
                agg.entry(methods[m])
                    .or_default()
                    .push(crate::test_accuracy(&d, preds));
            }
        }
        for m in 0..methods.len() {
            rows[m].push(format!(
                "{} / {}",
                ms(MeanStd::of(&micro[m])),
                ms(MeanStd::of(&macro_[m]))
            ));
        }
    }
    for row in rows {
        t.row(row);
    }

    let mean = |m: &str| {
        let v = &agg[m];
        v.iter().sum::<f32>() / v.len() as f32
    };
    t.check(
        format!(
            "ConWea ({:.3}) beats IR-TF-IDF ({:.3})",
            mean("ConWea"),
            mean("IR-TF-IDF")
        ),
        mean("ConWea") > mean("IR-TF-IDF"),
    );
    t.check(
        format!(
            "contextualization helps: ConWea ({:.3}) >= NoCon ({:.3})",
            mean("ConWea"),
            mean("ConWea-NoCon")
        ),
        mean("ConWea") >= mean("ConWea-NoCon") - 0.01,
    );
    t.check(
        format!(
            "expansion helps: ConWea ({:.3}) >= NoExpan ({:.3})",
            mean("ConWea"),
            mean("ConWea-NoExpan")
        ),
        mean("ConWea") >= mean("ConWea-NoExpan") - 0.01,
    );
    t.check(
        format!(
            "contextual beats static WSD: ConWea ({:.3}) >= WSD ({:.3})",
            mean("ConWea"),
            mean("ConWea-WSD")
        ),
        mean("ConWea") >= mean("ConWea-WSD") - 0.01,
    );
    t.check(
        format!(
            "supervised upper bound ({:.3}) >= ConWea ({:.3})",
            mean("Supervised"),
            mean("ConWea")
        ),
        mean("Supervised") >= mean("ConWea") - 0.02,
    );
    Ok(vec![t])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2_table_has_expected_shape() {
        // Tiny smoke run (single coarse dataset grid entries still produced).
        let cfg = BenchConfig {
            scale: 0.05,
            seeds: 1,
        };
        let tables = run(&cfg).unwrap();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), 7);
        assert_eq!(tables[0].rows[0].len(), 1 + DATASETS.len());
    }
}
