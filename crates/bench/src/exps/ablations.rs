//! E11 (extension) — ablations over the design choices DESIGN.md calls out:
//!
//! * the **PLM scaling curve**: how downstream weakly-supervised accuracy
//!   grows with pretraining compute (the tutorial's "power of pre-trained
//!   language models" claim, measured directly);
//! * WeSTClass's pseudo-document budget;
//! * X-Class's GMM anchoring (EM iterations vs drift);
//! * ConWea's seed-expansion width.

use crate::table::f3;
use crate::{standard_word_vectors, BenchConfig, BenchError, Table};
use structmine::conwea::ConWea;
use structmine::westclass::WeSTClass;
use structmine::xclass::XClass;
use structmine_plm::{pretrain, MiniPlm, PlmConfig, PretrainConfig};
use structmine_text::synth::recipes;

/// Run all ablations.
pub fn run(cfg: &BenchConfig) -> Result<Vec<Table>, BenchError> {
    Ok(vec![
        plm_scaling_curve(cfg)?,
        westclass_pseudo_budget(cfg)?,
        xclass_gmm_anchoring(cfg)?,
        conwea_expansion_width(cfg)?,
    ])
}

/// Downstream X-Class accuracy as a function of PLM pretraining steps.
pub fn plm_scaling_curve(cfg: &BenchConfig) -> Result<Table, BenchError> {
    let mut t = Table::new("E11a — PLM pretraining compute vs downstream weak classification");
    t.note("X-Class on agnews with label names only; the same architecture pretrained longer");
    t.headers(&["pretraining steps", "final MLM loss", "X-Class accuracy"]);
    let corpus = recipes::pretraining_corpus(600, 11);
    let d = recipes::agnews(cfg.scale, 11)?;
    let mut accs = Vec::new();
    for &steps in &[150usize, 500, 1500, 3000] {
        let mut model = MiniPlm::new(PlmConfig {
            d_model: 32,
            n_heads: 2,
            n_layers: 2,
            d_ff: 64,
            max_len: 32,
            ..PlmConfig::tiny(corpus.vocab.len())
        });
        let report = pretrain(
            &mut model,
            &corpus,
            &PretrainConfig {
                steps,
                batch: 8,
                seed: 13,
                ..Default::default()
            },
        );
        let out = XClass::default().run(&d, &model);
        let acc = crate::test_accuracy(&d, &out.predictions);
        accs.push(acc);
        t.row(vec![steps.to_string(), f3(report.final_mlm_loss), f3(acc)]);
    }
    let first = accs.first().copied().unwrap_or(0.0);
    let last = accs.last().copied().unwrap_or(0.0);
    t.check(
        format!("more pretraining helps downstream weak supervision ({first:.3} -> {last:.3})"),
        last > first,
    );
    Ok(t)
}

/// WeSTClass accuracy vs pseudo-document budget.
pub fn westclass_pseudo_budget(cfg: &BenchConfig) -> Result<Table, BenchError> {
    let mut t = Table::new("E11b — WeSTClass pseudo-document budget");
    t.headers(&["pseudo docs / class", "accuracy"]);
    let d = recipes::agnews(cfg.scale, 12)?;
    let wv = standard_word_vectors(&d);
    let mut accs = Vec::new();
    for &n in &[5usize, 20, 80, 160] {
        let out = WeSTClass {
            pseudo_per_class: n,
            seed: 12,
            ..Default::default()
        }
        .run(&d, &d.supervision_names(), &wv);
        let acc = crate::test_accuracy(&d, &out.predictions);
        accs.push(acc);
        t.row(vec![n.to_string(), f3(acc)]);
    }
    t.check(
        format!(
            "a real budget beats a starved one ({:.3} @5 vs {:.3} @80)",
            accs[0], accs[2]
        ),
        accs[2] >= accs[0] - 0.02,
    );
    Ok(t)
}

/// X-Class: EM iterations of the alignment GMM (anchoring vs drift).
pub fn xclass_gmm_anchoring(cfg: &BenchConfig) -> Result<Table, BenchError> {
    let mut t = Table::new("E11c — X-Class GMM anchoring: EM iterations vs drift");
    t.note("long EM runs drift from the class-seeded prior toward whatever unsupervised structure dominates");
    t.headers(&["EM iterations", "align accuracy", "final accuracy"]);
    let d = recipes::agnews(cfg.scale, 13)?;
    let plm = crate::adapted_plm(&d, 13);
    let mut finals = Vec::new();
    for &iters in &[1usize, 2, 4, 16] {
        let out = XClass {
            gmm_iters: iters,
            seed: 13,
            ..Default::default()
        }
        .run(&d, &plm);
        let align = crate::test_accuracy(&d, &out.align_predictions);
        let fin = crate::test_accuracy(&d, &out.predictions);
        finals.push(fin);
        t.row(vec![iters.to_string(), f3(align), f3(fin)]);
    }
    t.check(
        format!(
            "anchored EM (1 iter, {:.3}) >= long EM (16 iters, {:.3})",
            finals[0], finals[3]
        ),
        finals[0] >= finals[3] - 0.02,
    );
    Ok(t)
}

/// ConWea: seed-expansion width.
pub fn conwea_expansion_width(cfg: &BenchConfig) -> Result<Table, BenchError> {
    let mut t = Table::new("E11d — ConWea seed-expansion width");
    t.headers(&["expansion words / class", "accuracy"]);
    let d = recipes::nyt_coarse(cfg.scale, 14)?;
    let plm = crate::adapted_plm(&d, 14);
    let mut accs = Vec::new();
    for &n in &[0usize, 4, 8, 16] {
        let out = ConWea {
            expand: n > 0,
            expand_per_class: n.max(1),
            seed: 14,
            ..Default::default()
        }
        .run(&d, &d.supervision_keywords(), &plm);
        let acc = crate::test_accuracy(&d, &out.predictions);
        accs.push(acc);
        t.row(vec![n.to_string(), f3(acc)]);
    }
    t.check(
        format!(
            "some expansion helps over none ({:.3} @0 vs {:.3} @8)",
            accs[0], accs[2]
        ),
        accs[2] >= accs[0] - 0.02,
    );
    Ok(t)
}
