//! Sharded encode phase for the table binaries (DESIGN §12).
//!
//! `--shards N` (or `STRUCTMINE_SHARDS`) runs a supervised multi-process
//! encode pass before the table body: every E4 X-Class cell's document
//! representations are computed shard-by-shard across N worker processes
//! (this binary re-entered in worker mode), then merged in shard-index
//! order into the canonical per-cell artifact the table body replays. The
//! table's stdout is byte-identical for any shard count — sharding only
//! changes *where* the representations are computed, never their bytes.
//! Worker crashes restart and resume from the shared artifact store;
//! persistent failures shed the worker to an in-process fallback.

use crate::BenchConfig;
use std::path::Path;
use structmine_engine::{Engine, EngineConfig, EngineSource, MethodKind, PlmSpec};
use structmine_linalg::ExecPolicy;
use structmine_shard::WorkerSpec;
use structmine_store::{obs, PipelineError};
use structmine_text::synth::recipes;

/// Field separator inside a worker job string (unit separator: cannot
/// occur in the numbers the harness encodes).
const JOB_SEP: char = '\u{1f}';

/// Render the encode job. Every worker gets the same string and derives
/// its own document range from its spec.
fn encode_job(cfg: &BenchConfig) -> String {
    ["encode", &cfg.scale.to_string(), &cfg.seeds.to_string()].join(&JOB_SEP.to_string())
}

fn synth_error(e: structmine_text::synth::SynthError) -> PipelineError {
    PipelineError::InvalidInput(e.to_string())
}

fn engine_error(e: structmine_engine::EngineError) -> PipelineError {
    PipelineError::InvalidInput(e.to_string())
}

/// The (dataset, seed) cells the encode phase pre-warms: exactly the E4
/// X-Class cells — the table family the CI shard smoke compares
/// byte-for-byte across shard counts.
fn cells(cfg: &BenchConfig) -> Vec<(&'static str, u64)> {
    let mut v = Vec::new();
    for ds in crate::exps::xclass::DATASETS {
        for seed in cfg.seed_values() {
            v.push((*ds, seed));
        }
    }
    v
}

/// Load the engine for one E4 cell with the same configuration the table
/// body uses, so the shard artifacts land under the keys the body replays.
fn cell_engine(ds: &str, scale: f32, seed: u64) -> Result<Engine, PipelineError> {
    let d = recipes::by_name(ds, scale, seed).map_err(synth_error)?;
    Engine::load(EngineConfig {
        source: EngineSource::Dataset(Box::new(d)),
        method: MethodKind::XClass,
        plm: PlmSpec::Adapted { seed },
        seed: Some(seed),
        exec: ExecPolicy::default(),
    })
    .map_err(engine_error)
}

/// Decode and run one worker job: encode this worker's shard of every E4
/// cell through the shared store. Also the coordinator's in-process
/// fallback when a worker is shed — identical code path, identical bytes.
pub(crate) fn worker_job(spec: &WorkerSpec) -> Result<Vec<u8>, PipelineError> {
    let parts: Vec<&str> = spec.job.split(JOB_SEP).collect();
    match parts.as_slice() {
        ["encode", scale, seeds] => {
            let scale: f32 = scale.parse().map_err(|_| {
                PipelineError::InvalidInput(format!("bad scale in worker job: {scale}"))
            })?;
            let seeds: u64 = seeds.parse().map_err(|_| {
                PipelineError::InvalidInput(format!("bad seed count in worker job: {seeds}"))
            })?;
            let cfg = BenchConfig { scale, seeds };
            let mut encoded = 0usize;
            for (ds, seed) in cells(&cfg) {
                let engine = cell_engine(ds, cfg.scale, seed)?;
                engine
                    .shard_encode(spec.shard_index, spec.shard_count)
                    .map_err(engine_error)?;
                encoded += 1;
            }
            Ok(format!(
                "encoded {encoded} cells in shard {}/{}\n",
                spec.shard_index, spec.shard_count
            )
            .into_bytes())
        }
        _ => Err(PipelineError::InvalidInput(format!(
            "unrecognized worker job: {}",
            spec.job
        ))),
    }
}

/// Worker-mode gate, called first thing in [`crate::run_table`]: when a
/// supervising coordinator points `STRUCTMINE_WORKER_SPEC` at a spec file,
/// this process is a shard worker — it runs the encode job and exits,
/// ignoring argv. Exit taxonomy: 0 success, 1 transient (worth a restart),
/// 2 persistent.
pub(crate) fn maybe_worker() {
    let spec = match WorkerSpec::from_env() {
        Ok(Some(spec)) => spec,
        Ok(None) => return,
        Err(e) => {
            obs::log_warn(&format!("error: {e}"));
            std::process::exit(2);
        }
    };
    let result = structmine_shard::worker::run_job(&spec, worker_job);
    obs::write_report_if_configured("bench-worker");
    match result {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            obs::log_warn(&format!("worker {} error: {e}", spec.shard_index));
            let code = if structmine_shard::worker::is_transient(&e) {
                1
            } else {
                2
            };
            std::process::exit(code);
        }
    }
}

/// Coordinator side: spawn `shards` workers re-entering this binary, wait
/// for every shard of every E4 cell, then merge each cell's shards in
/// shard-index order, publishing the canonical document representations
/// the table body replays warm.
pub(crate) fn encode_phase(cfg: &BenchConfig, shards: usize) -> Result<(), PipelineError> {
    let work_dir =
        std::env::temp_dir().join(format!("structmine-bench-shard-{}", std::process::id()));
    std::fs::create_dir_all(&work_dir).map_err(|e| PipelineError::Io {
        context: format!("creating shard work dir {}", work_dir.display()),
        source: e,
    })?;
    obs::log_info(&format!(
        "sharded encode: {} E4 cells across {shards} worker(s) ...",
        cells(cfg).len()
    ));
    let cfg_sup = structmine_shard::SupervisorConfig::from_env(shards);
    let sup = structmine_shard::Supervisor::new(cfg_sup, &work_dir);
    let exe = std::env::current_exe().map_err(|e| PipelineError::Io {
        context: "resolving current executable for worker spawn".into(),
        source: e,
    })?;
    let make = |_i: usize, _spec: &Path| std::process::Command::new(&exe);
    let jobs = vec![encode_job(cfg); shards];
    let (_outputs, outcomes) = sup.run(&jobs, &make, &worker_job)?;
    for (ds, seed) in cells(cfg) {
        let engine = cell_engine(ds, cfg.scale, seed)?;
        engine.shard_merge(shards).map_err(engine_error)?;
    }
    obs::log_info(&format!(
        "sharded encode complete: {} worker(s), {} restart(s), {} degraded",
        outcomes.len(),
        outcomes.iter().map(|o| u64::from(o.restarts)).sum::<u64>(),
        outcomes.iter().filter(|o| o.degraded).count(),
    ));
    let _ = std::fs::remove_dir_all(&work_dir);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_job_round_trips_through_the_worker_parser() {
        let cfg = BenchConfig {
            scale: 0.05,
            seeds: 1,
        };
        let job = encode_job(&cfg);
        let parts: Vec<&str> = job.split(JOB_SEP).collect();
        assert_eq!(parts[0], "encode");
        assert_eq!(parts[1].parse::<f32>().unwrap(), 0.05);
        assert_eq!(parts[2].parse::<u64>().unwrap(), 1);
    }

    #[test]
    fn cell_list_covers_every_dataset_seed_pair() {
        let cfg = BenchConfig {
            scale: 0.05,
            seeds: 2,
        };
        let got = cells(&cfg);
        assert_eq!(got.len(), crate::exps::xclass::DATASETS.len() * 2);
        assert!(got.contains(&("agnews", 1)));
        assert!(got.contains(&("dbpedia", 2)));
    }

    #[test]
    fn malformed_worker_jobs_are_persistent_errors() {
        let spec = WorkerSpec {
            shard_index: 0,
            shard_count: 1,
            job: "mystery".into(),
            out: "/dev/null".into(),
            heartbeat: "/dev/null".into(),
            heartbeat_ms: 50,
        };
        let err = worker_job(&spec).unwrap_err();
        assert!(!structmine_shard::worker::is_transient(&err));
    }
}
