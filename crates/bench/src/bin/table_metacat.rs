//! Prints the metacat experiment tables (see DESIGN.md §3).

fn main() {
    structmine_bench::run_table("table_metacat", |cfg| {
        for table in structmine_bench::exps::metacat::run(cfg)? {
            println!("{table}");
        }
        Ok::<(), structmine_bench::BenchError>(())
    });
}
