//! Prints the promptclass experiment tables (see DESIGN.md §3).

fn main() {
    structmine_bench::run_table("table_promptclass", |cfg| {
        for table in structmine_bench::exps::promptclass::run(cfg)? {
            println!("{table}");
        }
        Ok::<(), structmine_bench::BenchError>(())
    });
}
