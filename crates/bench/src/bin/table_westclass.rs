//! Prints the westclass experiment tables (see DESIGN.md §3).

fn main() {
    structmine_bench::run_table("table_westclass", |cfg| {
        for table in structmine_bench::exps::westclass::run(cfg)? {
            println!("{table}");
        }
        Ok::<(), structmine_bench::BenchError>(())
    });
}
