//! Prints the LOTClass Table-1 analogue: MLM replacement predictions for
//! one polysemous word under two different contexts.

fn main() {
    println!("{}", structmine_bench::exps::lotclass::table1_demo());
    structmine_bench::log_store_summaries();
}
