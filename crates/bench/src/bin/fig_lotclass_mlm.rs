//! Prints the LOTClass Table-1 analogue: MLM replacement predictions for
//! one polysemous word under two different contexts.

fn main() {
    structmine_bench::run_table("fig_lotclass_mlm", |_cfg| {
        println!("{}", structmine_bench::exps::lotclass::table1_demo()?);
        Ok::<(), structmine_bench::BenchError>(())
    });
}
