//! Validate a JSON run report written by `--report-json` /
//! `STRUCTMINE_REPORT`.
//!
//! ```text
//! report_check <report.json> [--min-coverage 0.9] [--expect-stages a,b,c]
//!              [--expect-env KEY=VALUE] [--expect-counter-positive NAME]
//!              [--expect-counter-zero NAME]
//! ```
//!
//! Checks, in order: the report parses and matches the schema
//! (`schema_version`, config fingerprint shape, counters, span tree); the
//! per-stage timings attribute at least `--min-coverage` of the process
//! wall time (default 0.9); every `--expect-stages` label appears in the
//! span tree; every `--expect-env KEY=VALUE` pair appears in
//! `config.env` (the fingerprint's input set — CI asserts the precision
//! tier landed there); every `--expect-counter-positive NAME` counter was
//! recorded with a value > 0, and every `--expect-counter-zero NAME`
//! counter is absent or zero (CI asserts a warm serve run shows prepack
//! hits and no invalidations). Exits 2 on usage errors, 1 on a failed
//! check, 0 when the report is healthy — CI runs this against a Test-tier
//! `table_xclass` report.

use structmine_store::obs;

fn fail(msg: &str, code: i32) -> ! {
    eprintln!("report_check: {msg}");
    std::process::exit(code);
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut min_coverage = 0.9f64;
    let mut expect_stages: Vec<String> = Vec::new();
    let mut expect_env: Vec<(String, String)> = Vec::new();
    let mut expect_counter_positive: Vec<String> = Vec::new();
    let mut expect_counter_zero: Vec<String> = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--min-coverage" => {
                let v = argv
                    .get(i + 1)
                    .and_then(|s| s.parse::<f64>().ok())
                    .unwrap_or_else(|| fail("--min-coverage needs a number in [0, 1]", 2));
                min_coverage = v;
                i += 2;
            }
            "--expect-stages" => {
                let v = argv
                    .get(i + 1)
                    .unwrap_or_else(|| fail("--expect-stages needs a comma-separated list", 2));
                expect_stages = v
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                i += 2;
            }
            "--expect-env" => {
                let v = argv
                    .get(i + 1)
                    .and_then(|s| s.split_once('='))
                    .unwrap_or_else(|| fail("--expect-env needs KEY=VALUE", 2));
                expect_env.push((v.0.to_string(), v.1.to_string()));
                i += 2;
            }
            "--expect-counter-positive" => {
                let v = argv
                    .get(i + 1)
                    .unwrap_or_else(|| fail("--expect-counter-positive needs a counter name", 2));
                expect_counter_positive.push(v.clone());
                i += 2;
            }
            "--expect-counter-zero" => {
                let v = argv
                    .get(i + 1)
                    .unwrap_or_else(|| fail("--expect-counter-zero needs a counter name", 2));
                expect_counter_zero.push(v.clone());
                i += 2;
            }
            other if path.is_none() && !other.starts_with("--") => {
                path = Some(other.to_string());
                i += 1;
            }
            other => fail(&format!("unexpected argument {other}"), 2),
        }
    }
    let path = path.unwrap_or_else(|| {
        fail(
            "usage: report_check <report.json> [--min-coverage 0.9] [--expect-stages a,b,c] \
             [--expect-env KEY=VALUE] [--expect-counter-positive NAME] \
             [--expect-counter-zero NAME]",
            2,
        )
    });

    let json =
        std::fs::read_to_string(&path).unwrap_or_else(|e| fail(&format!("reading {path}: {e}"), 1));
    let report =
        obs::validate_report(&json).unwrap_or_else(|e| fail(&format!("invalid report: {e}"), 1));

    let coverage = obs::report_coverage(&report)
        .unwrap_or_else(|e| fail(&format!("coverage unavailable: {e}"), 1));
    if coverage < min_coverage {
        fail(
            &format!(
                "stage timings cover {:.1}% of wall time, below the {:.1}% floor",
                coverage * 100.0,
                min_coverage * 100.0
            ),
            1,
        );
    }

    let labels = obs::report_stage_labels(&report)
        .unwrap_or_else(|e| fail(&format!("stage labels unavailable: {e}"), 1));
    let missing: Vec<&String> = expect_stages
        .iter()
        .filter(|s| !labels.contains(s.as_str()))
        .collect();
    if !missing.is_empty() {
        fail(
            &format!("expected stages missing from the report: {missing:?} (present: {labels:?})"),
            1,
        );
    }

    for (key, want) in &expect_env {
        let got = obs::report_config_env(&report, key)
            .unwrap_or_else(|e| fail(&format!("config env unavailable: {e}"), 1));
        match got {
            Some(v) if &v == want => {}
            other => fail(
                &format!("config.env expected {key}={want}, found {other:?}"),
                1,
            ),
        }
    }

    for name in &expect_counter_positive {
        let got = obs::report_counter(&report, name)
            .unwrap_or_else(|e| fail(&format!("counters unavailable: {e}"), 1));
        match got {
            Some(n) if n > 0 => {}
            other => fail(
                &format!("expected counter `{name}` > 0, found {other:?}"),
                1,
            ),
        }
    }

    for name in &expect_counter_zero {
        let got = obs::report_counter(&report, name)
            .unwrap_or_else(|e| fail(&format!("counters unavailable: {e}"), 1));
        if let Some(n) = got {
            if n > 0 {
                fail(
                    &format!("expected counter `{name}` to be zero, found {n}"),
                    1,
                );
            }
        }
    }

    println!(
        "report OK: schema valid, {} stage labels, {:.1}% of wall time attributed",
        labels.len(),
        coverage * 100.0
    );
}
