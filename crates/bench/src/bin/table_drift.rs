//! Prints the streaming topic-drift table (see DESIGN.md §3 and §11).

fn main() {
    structmine_bench::run_table("table_drift", |cfg| {
        for table in structmine_bench::exps::drift::run(cfg)? {
            println!("{table}");
        }
        Ok::<(), structmine_bench::BenchError>(())
    });
}
