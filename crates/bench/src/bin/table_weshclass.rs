//! Prints the weshclass experiment tables (see DESIGN.md §3).

fn main() {
    structmine_bench::run_table("table_weshclass", |cfg| {
        for table in structmine_bench::exps::weshclass::run(cfg)? {
            println!("{table}");
        }
        Ok::<(), structmine_bench::BenchError>(())
    });
}
