//! Prints the weshclass experiment tables (see DESIGN.md §3).

fn main() {
    let cfg = structmine_bench::BenchConfig::from_env();
    eprintln!(
        "running weshclass reproduction (scale={}, seeds={})...",
        cfg.scale, cfg.seeds
    );
    for table in structmine_bench::exps::weshclass::run(&cfg) {
        println!("{table}");
    }
    structmine_bench::log_store_summaries();
}
