//! Prints the lotclass experiment tables (see DESIGN.md §3).

fn main() {
    structmine_bench::run_table("table_lotclass", |cfg| {
        for table in structmine_bench::exps::lotclass::run(cfg)? {
            println!("{table}");
        }
        Ok::<(), structmine_bench::BenchError>(())
    });
}
