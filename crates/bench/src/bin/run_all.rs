//! Runs every experiment (E1–E9 plus figures) and writes a markdown report
//! to `bench_report.md` in the current directory.

use std::io::Write;

fn main() {
    let all_ok = structmine_bench::run_table("run_all", |cfg| {
        let started = std::time::Instant::now();
        let tables = structmine_bench::exps::run_all(cfg)?;
        let mut report = String::from("# structmine benchmark report\n\n");
        report.push_str(&format!(
            "scale={}, seeds={}, wall time {:?}\n\n",
            cfg.scale,
            cfg.seeds,
            started.elapsed()
        ));
        let mut all_ok = true;
        for t in &tables {
            println!("{t}");
            report.push_str(&t.to_markdown());
            report.push('\n');
            all_ok &= t.all_checks_pass();
        }
        let mut f = std::fs::File::create("bench_report.md")?;
        f.write_all(report.as_bytes())?;
        Ok::<bool, structmine_bench::BenchError>(all_ok)
    });
    println!(
        "\n{} — report written to bench_report.md",
        if all_ok {
            "ALL SHAPE CHECKS PASSED"
        } else {
            "SOME SHAPE CHECKS FAILED"
        }
    );
    if !all_ok {
        std::process::exit(1);
    }
}
