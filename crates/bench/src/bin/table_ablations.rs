//! E11 (extension) — design-choice ablations: PLM scaling curve, WeSTClass
//! pseudo-document budget, X-Class GMM anchoring, ConWea expansion width.

fn main() {
    structmine_bench::run_table("table_ablations", |cfg| {
        for table in structmine_bench::exps::ablations::run(cfg)? {
            println!("{table}");
        }
        Ok::<(), structmine_bench::BenchError>(())
    });
}
