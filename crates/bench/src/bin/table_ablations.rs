//! E11 (extension) — design-choice ablations: PLM scaling curve, WeSTClass
//! pseudo-document budget, X-Class GMM anchoring, ConWea expansion width.

fn main() {
    let cfg = structmine_bench::BenchConfig::from_env();
    eprintln!(
        "running ablations (scale={}, seeds={})...",
        cfg.scale, cfg.seeds
    );
    for table in structmine_bench::exps::ablations::run(&cfg) {
        println!("{table}");
    }
    structmine_bench::log_store_summaries();
}
