//! Prints the micol experiment tables (see DESIGN.md §3).

fn main() {
    structmine_bench::run_table("table_micol", |cfg| {
        for table in structmine_bench::exps::micol::run(cfg)? {
            println!("{table}");
        }
        Ok::<(), structmine_bench::BenchError>(())
    });
}
