//! Prints the conwea experiment tables (see DESIGN.md §3).

fn main() {
    structmine_bench::run_table("table_conwea", |cfg| {
        for table in structmine_bench::exps::conwea::run(cfg)? {
            println!("{table}");
        }
        Ok::<(), structmine_bench::BenchError>(())
    });
}
