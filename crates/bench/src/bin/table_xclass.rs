//! Prints the xclass experiment tables (see DESIGN.md §3).

fn main() {
    structmine_bench::run_table("table_xclass", |cfg| {
        for table in structmine_bench::exps::xclass::run(cfg)? {
            println!("{table}");
        }
        Ok::<(), structmine_bench::BenchError>(())
    });
}
