//! `tolerance_check` — run the accuracy-tolerance harness (DESIGN §13)
//! from the command line and gate on its published bounds.
//!
//! ```text
//! tolerance_check [--method xclass|lotclass|prompt|match] [--seed <u64>]
//! ```
//!
//! Loads a Fast-tier label-names engine at the Test PLM tier, runs
//! [`structmine_engine::tolerance::self_check`] (Exact twin vs Fast over
//! the full eval corpus), prints the report, and exits 0 when the Fast
//! tier stays within bounds (label agreement ≥ 99.5%, max |confidence
//! delta| ≤ 0.05), 1 when it drifts out, 2 on usage errors. CI runs this
//! as the tolerance smoke next to the Exact-tier golden `cmp`.

use structmine_engine::{tolerance, Engine, EngineConfig, EngineSource, MethodKind, PlmSpec};
use structmine_linalg::{ExecPolicy, Precision};

fn fail(msg: &str) -> ! {
    eprintln!("tolerance_check: {msg}");
    std::process::exit(2);
}

fn main() {
    structmine_store::obs::init();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut method = MethodKind::XClass;
    let mut seed = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--method" => {
                let name = argv
                    .get(i + 1)
                    .unwrap_or_else(|| fail("--method needs a value"));
                method = MethodKind::parse(name)
                    .filter(|k| k.servable())
                    .unwrap_or_else(|| {
                        fail(&format!(
                            "unknown or non-servable method {name} (expected xclass, lotclass, prompt, match)"
                        ))
                    });
                i += 2;
            }
            "--seed" => {
                seed = Some(
                    argv.get(i + 1)
                        .and_then(|s| s.parse::<u64>().ok())
                        .unwrap_or_else(|| fail("--seed needs an integer")),
                );
                i += 2;
            }
            other => fail(&format!("unexpected argument {other}")),
        }
    }

    let fast = Engine::load(EngineConfig {
        source: EngineSource::Labels(
            ["sports", "business", "technology"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        ),
        method,
        plm: PlmSpec::Pretrained(structmine_plm::cache::Tier::Test),
        seed,
        exec: ExecPolicy::default().with_precision(Precision::Fast),
    })
    .unwrap_or_else(|e| fail(&e.to_string()));

    let report = match tolerance::self_check(&fast) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tolerance_check: self-check errored: {e}");
            std::process::exit(1);
        }
    };
    println!("tolerance {}: {}", method.name(), report.summary());
    structmine_store::obs::write_report_if_configured("tolerance_check");
    if !report.within_bounds() {
        eprintln!(
            "tolerance_check: fast tier out of bounds (need agreement >= {} and max delta <= {})",
            tolerance::MIN_AGREEMENT,
            tolerance::MAX_CONFIDENCE_DELTA
        );
        std::process::exit(1);
    }
}
