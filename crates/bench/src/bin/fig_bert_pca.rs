//! Prints the "vanilla BERT representations" figures: the PCA scatter
//! (Figure 1) and the k=5 clustering confusion matrix (Figure 2).

fn main() {
    structmine_bench::run_table("fig_bert_pca", |cfg| {
        for table in structmine_bench::exps::figures::run(cfg)? {
            println!("{table}");
        }
        println!("{}", structmine_bench::exps::figures::ascii_scatter(cfg)?);
        Ok::<(), structmine_bench::BenchError>(())
    });
}
