//! Prints the "vanilla BERT representations" figures: the PCA scatter
//! (Figure 1) and the k=5 clustering confusion matrix (Figure 2).

fn main() {
    let cfg = structmine_bench::BenchConfig::from_env();
    for table in structmine_bench::exps::figures::run(&cfg) {
        println!("{table}");
    }
    println!("{}", structmine_bench::exps::figures::ascii_scatter(&cfg));
    structmine_bench::log_store_summaries();
}
