//! E10 — the tutorial's summary table: each method's setting, supervision
//! format, and backbone, as implemented in this repository.

fn main() {
    structmine_bench::run_table("table_summary", |_cfg| {
        let mut t =
            structmine_bench::Table::new("E10 — method summary (the tutorial's closing table)");
        t.headers(&[
            "method",
            "flat vs hierarchical",
            "label arity",
            "supervision",
            "backbone",
        ]);
        for row in [
            [
                "WeSTClass",
                "flat",
                "single-label",
                "names / keywords / docs",
                "static embedding",
            ],
            [
                "ConWea",
                "flat",
                "single-label",
                "category keywords",
                "pre-trained LM",
            ],
            [
                "LOTClass",
                "flat",
                "single-label",
                "category names",
                "pre-trained LM",
            ],
            [
                "X-Class",
                "flat & hierarchical",
                "single-label & path",
                "category names",
                "pre-trained LM",
            ],
            [
                "PromptClass",
                "flat",
                "single-label",
                "category names",
                "pre-trained LM (prompting)",
            ],
            [
                "WeSHClass",
                "hierarchical",
                "path",
                "keywords / docs",
                "static embedding",
            ],
            [
                "TaxoClass",
                "hierarchical (DAG)",
                "multi-label",
                "category names",
                "pre-trained LM (NLI)",
            ],
            [
                "MetaCat",
                "flat",
                "single-label",
                "a few labeled docs",
                "HIN embedding",
            ],
            [
                "MICoL",
                "flat",
                "multi-label",
                "names + metadata",
                "pre-trained LM (contrastive)",
            ],
        ] {
            t.row(row.iter().map(|s| s.to_string()).collect());
        }
        println!("{t}");
        Ok::<(), structmine_bench::BenchError>(())
    });
}
