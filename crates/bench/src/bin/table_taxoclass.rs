//! Prints the taxoclass experiment tables (see DESIGN.md §3).

fn main() {
    structmine_bench::run_table("table_taxoclass", |cfg| {
        for table in structmine_bench::exps::taxoclass::run(cfg)? {
            println!("{table}");
        }
        Ok::<(), structmine_bench::BenchError>(())
    });
}
