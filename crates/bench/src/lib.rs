//! Benchmark harness for the `structmine` reproduction.
//!
//! Each experiment in `DESIGN.md` §3 (E1–E10) has a module under [`exps`]
//! producing [`Table`]s that show the paper's reported numbers next to our
//! measured ones, plus a binary (`table_*` / `fig_*`) that prints them;
//! `run_all` executes everything and emits a markdown report.
//!
//! Knobs (environment variables):
//! * `STRUCTMINE_SCALE` — dataset scale multiplier (default 0.3).
//! * `STRUCTMINE_SEEDS` — seeds per measured cell (default 2).
//! * `STRUCTMINE_PLM_TIER=test` — swap the standard PLM for the tiny test
//!   tier. Numbers are then meaningless; it exists for smoke and
//!   fault-injection runs that exercise the full pipeline cheaply.

pub mod exps;
pub mod table;

pub use table::Table;

/// Harness configuration.
#[derive(Clone, Copy, Debug)]
pub struct BenchConfig {
    /// Dataset scale multiplier passed to every recipe.
    pub scale: f32,
    /// Seeds per measured cell.
    pub seeds: u64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            scale: 0.3,
            seeds: 2,
        }
    }
}

impl BenchConfig {
    /// Read configuration from the environment.
    pub fn from_env() -> Self {
        let d = BenchConfig::default();
        let scale = std::env::var("STRUCTMINE_SCALE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(d.scale);
        let seeds = std::env::var("STRUCTMINE_SEEDS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(d.seeds);
        BenchConfig { scale, seeds }
    }

    /// The seed values to iterate.
    pub fn seed_values(&self) -> Vec<u64> {
        (1..=self.seeds).collect()
    }
}

/// The standard pretrained PLM shared by all PLM-based experiments.
/// `STRUCTMINE_PLM_TIER=test` downgrades to the test tier for smoke and
/// fault-injection runs (any other value keeps the standard tier).
pub fn standard_plm() -> std::sync::Arc<structmine_plm::MiniPlm> {
    let tier = match std::env::var("STRUCTMINE_PLM_TIER") {
        Ok(v) if v.eq_ignore_ascii_case("test") => structmine_plm::cache::Tier::Test,
        _ => structmine_plm::cache::Tier::Standard,
    };
    structmine_plm::cache::pretrained(tier, 0)
}

/// A copy of the standard PLM *adapted to the dataset's corpus* by
/// continued MLM pretraining — the "further pretrain BERT on the task
/// corpus" step every method paper performs. The most expensive per-dataset
/// step in the harness, so its checkpoint goes through the artifact store's
/// disk layer (shared across processes and table binaries); the restored
/// model is additionally shared per (dataset, steps, seed) as an `Arc`
/// within the process.
pub fn adapted_plm(
    dataset: &structmine_text::Dataset,
    seed: u64,
) -> std::sync::Arc<structmine_plm::MiniPlm> {
    use parking_lot::Mutex;
    use std::sync::{Arc, OnceLock};
    type AdaptedCache = std::collections::HashMap<(u128, usize, u64), Arc<structmine_plm::MiniPlm>>;
    static CACHE: OnceLock<Mutex<AdaptedCache>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(std::collections::HashMap::new()));
    let steps = std::env::var("STRUCTMINE_ADAPT_STEPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(500);
    let key = (dataset.fingerprint(), steps, seed);
    if let Some(m) = cache.lock().get(&key) {
        return Arc::clone(m);
    }
    let base = standard_plm();
    let checkpoint = structmine_store::global().run(&structmine_plm::artifacts::AdaptPlm {
        base: &base,
        corpus: &dataset.corpus,
        steps,
        seed,
    });
    // The adapt stage is DiskOnly: each warm hit deserializes a fresh
    // checkpoint (refcount 1), so the weights move straight into the model.
    let adapted = Arc::new(match Arc::try_unwrap(checkpoint) {
        Ok(owned) => owned.into_model(),
        Err(shared) => shared.restore(),
    });
    cache.lock().insert(key, Arc::clone(&adapted));
    adapted
}

/// Stage: train the harness's standard SGNS word vectors on a dataset's
/// corpus (static-embedding methods).
struct TrainSgns<'a> {
    corpus: &'a structmine_text::Corpus,
    cfg: structmine_embed::SgnsConfig,
}

impl structmine_store::Stage for TrainSgns<'_> {
    type Output = structmine_embed::WordVectors;

    fn name(&self) -> &'static str {
        "embed/sgns-word-vectors"
    }

    fn fingerprint(&self, h: &mut structmine_store::StableHasher) {
        use structmine_store::StableHash;
        self.corpus.stable_hash(h);
        self.cfg.stable_hash(h);
    }

    fn compute(&self) -> structmine_embed::WordVectors {
        structmine_embed::Sgns::train(self.corpus, &self.cfg)
    }
}

/// Train standard word vectors on a dataset (static-embedding methods),
/// memoized through the global artifact store.
pub fn standard_word_vectors(dataset: &structmine_text::Dataset) -> structmine_embed::WordVectors {
    let stage = TrainSgns {
        corpus: &dataset.corpus,
        cfg: structmine_embed::SgnsConfig {
            epochs: 4,
            dim: 32,
            ..Default::default()
        },
    };
    (*structmine_store::global().run(&stage)).clone()
}

/// Log both artifact stores' hit/miss counters to stderr — every table
/// binary calls this after printing its tables, so warm runs are visible
/// as cache hits (`[artifact-store] hits=…`).
pub fn log_store_summaries() {
    structmine_store::obs::log_info(&structmine_store::global().summary());
    structmine_store::obs::log_info(&structmine_plm::cache::plm_store().summary());
}

/// Shared main-body for every table/figure binary: prints the banner
/// through the leveled logger, runs `body` (which prints its tables to
/// stdout), logs the store summaries, and writes a JSON run report when
/// configured. `--report-json PATH` on the binary's command line is
/// honored by exporting `STRUCTMINE_REPORT` before any stage runs; the
/// report only ever goes to its own file, so stdout is byte-identical
/// with and without reporting.
pub fn run_table<T>(binary: &str, body: impl FnOnce(&BenchConfig) -> T) -> T {
    structmine_store::obs::init();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        if argv[i] == "--report-json" {
            match argv.get(i + 1) {
                Some(path) => std::env::set_var(structmine_store::obs::REPORT_ENV, path),
                None => {
                    structmine_store::obs::log_warn("--report-json needs a value; ignoring");
                }
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    let cfg = BenchConfig::from_env();
    structmine_store::obs::log_info(&format!(
        "running {binary} (scale={}, seeds={})...",
        cfg.scale, cfg.seeds
    ));
    let out = body(&cfg);
    log_store_summaries();
    structmine_store::obs::write_report_if_configured(binary);
    out
}

/// Accuracy of all-doc predictions on the test split. An empty test split
/// yields NaN (undefined, not zero) — a synthetic recipe always has test
/// documents, so NaN in a table marks a harness bug, never a real score.
pub fn test_accuracy(dataset: &structmine_text::Dataset, preds: &[usize]) -> f32 {
    structmine_eval::accuracy(
        &structmine::common::test_slice(dataset, preds),
        &dataset.test_gold(),
    )
}

/// Macro-F1 of all-doc predictions on the test split. NaN on an empty test
/// split, like [`test_accuracy`].
pub fn test_macro_f1(dataset: &structmine_text::Dataset, preds: &[usize]) -> f32 {
    structmine_eval::macro_f1(
        &structmine::common::test_slice(dataset, preds),
        &dataset.test_gold(),
        dataset.n_classes(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_sane() {
        let c = BenchConfig::default();
        assert!(c.scale > 0.0);
        assert_eq!(c.seed_values().len(), c.seeds as usize);
    }
}
