//! Benchmark harness for the `structmine` reproduction.
//!
//! Each experiment in `DESIGN.md` §3 (E1–E10) has a module under [`exps`]
//! producing [`Table`]s that show the paper's reported numbers next to our
//! measured ones, plus a binary (`table_*` / `fig_*`) that prints them;
//! `run_all` executes everything and emits a markdown report.
//!
//! Knobs (environment variables):
//! * `STRUCTMINE_SCALE` — dataset scale multiplier (default 0.3).
//! * `STRUCTMINE_SEEDS` — seeds per measured cell (default 2).
//! * `STRUCTMINE_PLM_TIER=test` — swap the standard PLM for the tiny test
//!   tier. Numbers are then meaningless; it exists for smoke and
//!   fault-injection runs that exercise the full pipeline cheaply.

pub mod exps;
mod shard_phase;
pub mod table;

pub use table::Table;

/// Bench-harness failures beyond dataset synthesis: engine loads, ingest
/// rejections, report i/o, malformed fixtures. [`run_table`] maps every
/// variant onto exit code 2 — usage-level or persistent failures, never
/// worth a retry.
#[derive(Debug)]
pub enum BenchError {
    /// Dataset synthesis failed (unknown recipe, missing pool).
    Synth(structmine_text::synth::SynthError),
    /// An engine refused to load or rejected an operation.
    Engine(structmine_engine::EngineError),
    /// A method refused its input (wrong supervision kind, flat dataset
    /// fed to a hierarchical method, missing template word).
    Method(structmine::MethodError),
    /// Writing a report or fixture file failed.
    Io(std::io::Error),
    /// A fixture or dataset broke a harness invariant.
    Invalid(String),
}

impl std::fmt::Display for BenchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenchError::Synth(e) => write!(f, "{e}"),
            BenchError::Engine(e) => write!(f, "{e}"),
            BenchError::Method(e) => write!(f, "{e}"),
            BenchError::Io(e) => write!(f, "i/o error: {e}"),
            BenchError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for BenchError {}

impl From<structmine_text::synth::SynthError> for BenchError {
    fn from(e: structmine_text::synth::SynthError) -> Self {
        BenchError::Synth(e)
    }
}

impl From<structmine_engine::EngineError> for BenchError {
    fn from(e: structmine_engine::EngineError) -> Self {
        BenchError::Engine(e)
    }
}

impl From<structmine::MethodError> for BenchError {
    fn from(e: structmine::MethodError) -> Self {
        BenchError::Method(e)
    }
}

impl From<std::io::Error> for BenchError {
    fn from(e: std::io::Error) -> Self {
        BenchError::Io(e)
    }
}

/// Harness configuration.
#[derive(Clone, Copy, Debug)]
pub struct BenchConfig {
    /// Dataset scale multiplier passed to every recipe.
    pub scale: f32,
    /// Seeds per measured cell.
    pub seeds: u64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            scale: 0.3,
            seeds: 2,
        }
    }
}

impl BenchConfig {
    /// Read configuration from the environment.
    pub fn from_env() -> Self {
        let d = BenchConfig::default();
        let scale = std::env::var("STRUCTMINE_SCALE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(d.scale);
        let seeds = std::env::var("STRUCTMINE_SEEDS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(d.seeds);
        BenchConfig { scale, seeds }
    }

    /// The seed values to iterate.
    pub fn seed_values(&self) -> Vec<u64> {
        (1..=self.seeds).collect()
    }
}

// The artifact loaders (standard/adapted PLM, standard word vectors) moved
// to `structmine-engine` so the CLI and `structmine-serve` warm the same
// artifacts through one code path; re-exported here so experiment modules
// keep their imports.
pub use structmine_engine::loaders::{adapted_plm, standard_plm, standard_word_vectors};

/// Log both artifact stores' hit/miss counters to stderr — every table
/// binary calls this after printing its tables, so warm runs are visible
/// as cache hits (`[artifact-store] hits=…`).
pub fn log_store_summaries() {
    structmine_store::obs::log_info(&structmine_store::global().summary());
    structmine_store::obs::log_info(&structmine_plm::cache::plm_store().summary());
}

/// Shared main-body for every table/figure binary: prints the banner
/// through the leveled logger, runs `body` (which prints its tables to
/// stdout), logs the store summaries, and writes a JSON run report when
/// configured. `--report-json PATH` on the binary's command line is
/// honored by exporting `STRUCTMINE_REPORT` before any stage runs; the
/// report only ever goes to its own file, so stdout is byte-identical
/// with and without reporting.
///
/// `body` returns a `Result` whose error displays the failure (usually
/// [`BenchError`]): a dataset-synthesis failure, refused engine load, or
/// report i/o error is a usage-level mistake, so it is logged and the
/// process exits with code 2 — after the store summaries and the run
/// report, whose partial timings are exactly what you want when debugging
/// the failed run.
///
/// `--precision <exact|fast>` selects the inference tier for the whole
/// run by exporting `STRUCTMINE_PRECISION` before any stage runs (the
/// flag wins over a pre-set variable); an unknown tier exits 2.
///
/// `--shards N` (or `STRUCTMINE_SHARDS`) runs the sharded encode phase
/// (DESIGN §12) before the body: N supervised worker processes pre-compute
/// the E4 cell representations shard-by-shard, the coordinator merges them
/// in shard-index order, and the body replays the canonical artifacts —
/// stdout stays byte-identical for any shard count.
pub fn run_table<T, E: std::fmt::Display>(
    binary: &str,
    body: impl FnOnce(&BenchConfig) -> Result<T, E>,
) -> T {
    structmine_store::obs::init();
    // Worker mode first: a coordinator-spawned worker runs its encode job
    // and exits inside `maybe_worker`, ignoring argv entirely.
    shard_phase::maybe_worker();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut shards_flag: Option<usize> = None;
    let mut i = 0;
    while i < argv.len() {
        if argv[i] == "--report-json" {
            match argv.get(i + 1) {
                Some(path) => std::env::set_var(structmine_store::obs::REPORT_ENV, path),
                None => {
                    structmine_store::obs::log_warn("--report-json needs a value; ignoring");
                }
            }
            i += 2;
        } else if argv[i] == "--precision" {
            match argv
                .get(i + 1)
                .map(|v| structmine_linalg::Precision::parse(v))
            {
                Some(Ok(p)) => std::env::set_var("STRUCTMINE_PRECISION", p.name()),
                Some(Err(e)) => {
                    structmine_store::obs::log_warn(&format!("error: {e}"));
                    std::process::exit(2);
                }
                None => {
                    structmine_store::obs::log_warn("--precision needs a value");
                    std::process::exit(2);
                }
            }
            i += 2;
        } else if argv[i] == "--shards" {
            match argv.get(i + 1).map(|v| structmine_shard::parse_shards(v)) {
                Some(Ok(n)) => shards_flag = Some(n),
                Some(Err(e)) => {
                    structmine_store::obs::log_warn(&format!("error: {e}"));
                    std::process::exit(2);
                }
                None => {
                    structmine_store::obs::log_warn("--shards needs a value");
                    std::process::exit(2);
                }
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    let cfg = BenchConfig::from_env();
    structmine_store::obs::log_info(&format!(
        "running {binary} (scale={}, seeds={})...",
        cfg.scale, cfg.seeds
    ));
    let shards = match shards_flag {
        Some(n) => Some(n),
        None => match structmine_shard::shards_from_env() {
            Ok(v) => v,
            Err(e) => {
                structmine_store::obs::log_warn(&format!("error: {e}"));
                std::process::exit(2);
            }
        },
    };
    if let Some(n) = shards {
        if let Err(e) = shard_phase::encode_phase(&cfg, n) {
            structmine_store::obs::log_warn(&format!("error: {e}"));
            let code = if structmine_shard::worker::is_transient(&e) {
                1
            } else {
                2
            };
            std::process::exit(code);
        }
    }
    let out = body(&cfg);
    log_store_summaries();
    structmine_store::obs::write_report_if_configured(binary);
    match out {
        Ok(v) => v,
        Err(e) => {
            structmine_store::obs::log_warn(&format!("error: {e}"));
            std::process::exit(2);
        }
    }
}

/// Accuracy of all-doc predictions on the test split. An empty test split
/// yields NaN (undefined, not zero) — a synthetic recipe always has test
/// documents, so NaN in a table marks a harness bug, never a real score.
pub fn test_accuracy(dataset: &structmine_text::Dataset, preds: &[usize]) -> f32 {
    structmine_eval::accuracy(
        &structmine::common::test_slice(dataset, preds),
        &dataset.test_gold(),
    )
}

/// Macro-F1 of all-doc predictions on the test split. NaN on an empty test
/// split, like [`test_accuracy`].
pub fn test_macro_f1(dataset: &structmine_text::Dataset, preds: &[usize]) -> f32 {
    structmine_eval::macro_f1(
        &structmine::common::test_slice(dataset, preds),
        &dataset.test_gold(),
        dataset.n_classes(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_sane() {
        let c = BenchConfig::default();
        assert!(c.scale > 0.0);
        assert_eq!(c.seed_values().len(), c.seeds as usize);
    }
}
