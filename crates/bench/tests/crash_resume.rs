//! Crash-resume contract, end to end: a `table_*` binary killed at a stage
//! boundary (deterministic `kill_after_writes` fault) resumes from the last
//! persisted stage with bitwise-identical stdout. Also checks that a
//! mixed-probability fault plan leaves stdout untouched and that the
//! degradation warning appears at most once.

use std::path::PathBuf;
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_table_westclass");

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "structmine-crash-resume-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Run the table binary at smoke scale against `store_dir`, with an
/// optional fault plan. The parent test environment may itself carry
/// `STRUCTMINE_FAULTS` (the CI fault smoke job), so the variable is
/// explicitly cleared unless a plan is requested.
fn run_table(store_dir: &PathBuf, faults: Option<&str>) -> Output {
    let mut cmd = Command::new(BIN);
    cmd.env("STRUCTMINE_SCALE", "0.03")
        .env("STRUCTMINE_SEEDS", "1")
        .env("STRUCTMINE_THREADS", "2")
        .env("STRUCTMINE_STORE_DIR", store_dir)
        .env("STRUCTMINE_PLM_CACHE_DIR", store_dir)
        .env_remove("STRUCTMINE_NO_CACHE")
        .env_remove("STRUCTMINE_STORE_NO_DISK");
    match faults {
        Some(plan) => cmd.env("STRUCTMINE_FAULTS", plan),
        None => cmd.env_remove("STRUCTMINE_FAULTS"),
    };
    cmd.output().expect("failed to spawn table_westclass")
}

/// Pull `field=<n>` out of the run's `[artifact-store]` stderr summaries.
fn summary_field(stderr: &[u8], field: &str) -> u64 {
    let text = String::from_utf8_lossy(stderr);
    text.lines()
        .filter(|l| l.contains("[artifact-store]"))
        .filter_map(|l| {
            l.split_whitespace()
                .find_map(|w| w.strip_prefix(&format!("{field}=")))
                .and_then(|v| v.trim_end_matches(')').parse::<u64>().ok())
        })
        .sum()
}

#[test]
fn killed_run_resumes_with_bitwise_identical_output() {
    // Reference: a clean, fault-free run in its own store dir.
    let ref_dir = fresh_dir("ref");
    let reference = run_table(&ref_dir, None);
    assert!(
        reference.status.success(),
        "reference run failed: {}",
        String::from_utf8_lossy(&reference.stderr)
    );
    assert!(!reference.stdout.is_empty(), "reference printed no tables");
    let _ = std::fs::remove_dir_all(&ref_dir);

    // Crash run: abort() after the 3rd completed artifact write. The store
    // writes ~30 artifacts at this scale, so the kill lands mid-pipeline.
    let crash_dir = fresh_dir("crash");
    let crashed = run_table(&crash_dir, Some("kill_after_writes=3;seed=1"));
    assert!(
        !crashed.status.success(),
        "kill_after_writes=3 must terminate the run abnormally"
    );

    // Resume: same store dir, faults off. Must complete, reuse the
    // artifacts persisted before the kill, and print identical bytes.
    let resumed = run_table(&crash_dir, None);
    assert!(
        resumed.status.success(),
        "resumed run failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        resumed.stdout, reference.stdout,
        "resumed stdout must be bitwise identical to the fault-free run"
    );
    assert!(
        summary_field(&resumed.stderr, "disk_hits") > 0,
        "resume must reuse artifacts persisted before the kill:\n{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let _ = std::fs::remove_dir_all(&crash_dir);
}

#[test]
fn mixed_fault_plan_leaves_stdout_identical_and_warns_at_most_once() {
    let ref_dir = fresh_dir("mixed-ref");
    let reference = run_table(&ref_dir, None);
    assert!(reference.status.success());
    let _ = std::fs::remove_dir_all(&ref_dir);

    let fault_dir = fresh_dir("mixed-faulty");
    let faulty = run_table(
        &fault_dir,
        Some("disk_write=0.2,disk_read=0.1,truncate=0.05;seed=7"),
    );
    assert!(
        faulty.status.success(),
        "run under the documented fault plan must still complete: {}",
        String::from_utf8_lossy(&faulty.stderr)
    );
    assert_eq!(
        faulty.stdout, reference.stdout,
        "faults must never change what is computed, only what is cached"
    );
    let warnings = String::from_utf8_lossy(&faulty.stderr)
        .lines()
        .filter(|l| l.contains("demoting to memory-only"))
        .count();
    assert!(
        warnings <= 1,
        "degradation warning must be printed at most once, saw {warnings}"
    );
    let _ = std::fs::remove_dir_all(&fault_dir);
}
