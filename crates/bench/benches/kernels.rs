//! Criterion benchmarks for the compute kernels (DESIGN §9): the blocked
//! packed matmul/matmul_t against an in-bench naive reference, plus one
//! training-shaped autodiff step exercising the graph arena.
//!
//! Shapes mirror the two regimes the mini-PLM actually hits: "small" is an
//! attention score product at standard tier (48-token sequence, d_head 12),
//! "medium" is the tied MLM projection (hidden states against a vocab-sized
//! table). Run with `cargo bench --bench kernels`; CI compiles it via
//! `cargo bench --no-run`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use structmine_linalg::{rng, Matrix};

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut r = rng::seeded(seed);
    let mut m = Matrix::zeros(rows, cols);
    rng::fill_gaussian(&mut r, m.data_mut(), 0.5);
    m
}

/// The pre-kernel i-k-j loop, kept here as the comparison baseline.
fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for kk in 0..k {
            let av = a.get(i, kk);
            if av == 0.0 {
                continue;
            }
            for j in 0..n {
                out.set(i, j, out.get(i, j) + av * b.get(kk, j));
            }
        }
    }
    out
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));

    // Attention-score shape: (seq x d_head) · (d_head x seq).
    let a_small = random_matrix(48, 12, 1);
    let b_small = random_matrix(12, 48, 2);
    // Tied-projection shape: (seq x d_model) · (d_model x vocab).
    let a_med = random_matrix(48, 48, 3);
    let b_med = random_matrix(48, 2000, 4);

    group.bench_function("naive_small", |b| {
        b.iter(|| black_box(naive_matmul(&a_small, &b_small)))
    });
    group.bench_function("blocked_small", |b| {
        b.iter(|| black_box(a_small.matmul(&b_small)))
    });
    group.bench_function("naive_medium", |b| {
        b.iter(|| black_box(naive_matmul(&a_med, &b_med)))
    });
    group.bench_function("blocked_medium", |b| {
        b.iter(|| black_box(a_med.matmul(&b_med)))
    });

    // matmul_t on the same medium shape (B given row-major, as the tied
    // embedding table actually is).
    let bt_med = b_med.transpose();
    group.bench_function("blocked_t_medium", |b| {
        b.iter(|| black_box(a_med.matmul_t(&bt_med)))
    });

    // One matmul into a caller buffer: isolates the allocation saving.
    let mut out = Matrix::zeros(a_med.rows(), b_med.cols());
    group.bench_function("blocked_medium_into", |b| {
        b.iter(|| {
            a_med.matmul_into(&b_med, &mut out);
            black_box(out.get(0, 0))
        })
    });

    // The prepacked path (DESIGN §14): same product, but the right
    // operand's panel layout is built once up front instead of per call.
    // The delta against blocked_medium_into is exactly the per-call
    // packing tax the serving hot path no longer pays.
    let packed_med = structmine_linalg::PackedMatrix::pack(&b_med);
    group.bench_function("prepacked_medium_into", |b| {
        b.iter(|| {
            a_med.matmul_prepacked_into(&packed_med, &mut out);
            black_box(out.get(0, 0))
        })
    });
    // Fast-tier twin: prepacked panels fed to the runtime-dispatched
    // SSE2 tile (branch-free, no sparse-row skip).
    group.bench_function("prepacked_fast_medium_into", |b| {
        b.iter(|| {
            a_med.matmul_prepacked_fast_into(&packed_med, &mut out);
            black_box(out.get(0, 0))
        })
    });
    // The pack itself, so the break-even call count is readable straight
    // off the report.
    group.bench_function("pack_medium", |b| {
        b.iter(|| black_box(structmine_linalg::PackedMatrix::pack(&b_med)))
    });
    group.finish();
}

/// A training-shaped forward/backward step (matmul -> gelu -> fused
/// scaled softmax -> scalar) on a reused tape: measures the arena's
/// steady-state, allocation-free path.
fn bench_graph_arena(c: &mut Criterion) {
    use structmine_nn::graph::Graph;

    let mut group = c.benchmark_group("graph_arena");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));

    let x_val = random_matrix(48, 48, 5);
    let w_val = random_matrix(48, 96, 6);
    let ones_r = Matrix::filled(1, 48, 1.0);
    let ones_c = Matrix::filled(96, 1, 1.0);
    let mut g = Graph::new();
    group.bench_function("train_step_reused_tape", |b| {
        b.iter(|| {
            g.reset();
            let x = g.leaf_copied(&x_val);
            let w = g.leaf_copied(&w_val);
            let h = g.matmul(x, w);
            let h = g.gelu(h);
            let s = g.scaled_row_softmax(h, 0.25);
            let or = g.leaf_copied(&ones_r);
            let oc = g.leaf_copied(&ones_c);
            let rowsum = g.matmul(or, s);
            let loss = g.matmul(rowsum, oc);
            g.backward(loss);
            black_box(g.value(loss).get(0, 0))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_graph_arena);
criterion_main!(benches);
