//! Criterion benchmarks: end-to-end timing of every method pipeline at a
//! small fixed scale, plus the substrate hot paths (PLM encode, SGNS, GMM).
//!
//! These are *performance* benches; the quality tables live in the
//! `table_*` binaries. Run with `cargo bench`.

use criterion::{criterion_group, criterion_main, Criterion};
use structmine::prelude::*;
use structmine_bench::{standard_plm, standard_word_vectors};
use structmine_text::synth::recipes;

const SCALE: f32 = 0.05;

fn bench_substrates(c: &mut Criterion) {
    let plm = standard_plm();
    let d = recipes::agnews(SCALE, 1).unwrap();
    let doc = &d.corpus.docs[0].tokens;
    c.bench_function("plm_encode_one_doc", |b| {
        b.iter(|| std::hint::black_box(plm.mean_embed(doc)))
    });
    c.bench_function("sgns_train_small", |b| {
        b.iter(|| {
            structmine_embed::Sgns::train(
                &d.corpus,
                &structmine_embed::SgnsConfig {
                    epochs: 1,
                    dim: 16,
                    ..Default::default()
                },
            )
        })
    });
    let reps = structmine_plm::repr::doc_mean_reps(&plm, &d.corpus);
    c.bench_function("kmeans_doc_reps", |b| {
        b.iter(|| structmine_cluster::kmeans(&reps, 4, 1, 50, None))
    });
}

/// Batched corpus encoding at fixed thread counts. The output is bitwise
/// identical across the counts (deterministic chunking), so this measures
/// pure scaling of the PLM inference layer.
fn bench_parallel_encode(c: &mut Criterion) {
    let plm = standard_plm();
    let d = recipes::agnews(SCALE, 1).unwrap();
    let mut group = c.benchmark_group("parallel_encode");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for threads in [1usize, 2, 4] {
        let policy = structmine_linalg::ExecPolicy::with_threads(threads);
        group.bench_function(&format!("encode_corpus_t{threads}"), |b| {
            b.iter(|| std::hint::black_box(plm.encode_corpus(&d.corpus, &policy)))
        });
    }
    group.finish();
}

/// Exact vs Fast precision tier on the same single-thread corpus encode
/// (DESIGN §13): the Fast tier's polynomial `tanh`/`exp`, fused GELU
/// forward, and branchless matmul are the first lever past the Exact
/// tier's bit-identity ceiling. The ratio between these two rows is the
/// number `BENCH_kernels.json` records.
fn bench_precision_tiers(c: &mut Criterion) {
    let plm = standard_plm();
    let d = recipes::agnews(SCALE, 1).unwrap();
    let mut group = c.benchmark_group("precision_encode");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for (name, precision) in [
        ("exact", structmine_linalg::Precision::Exact),
        ("fast", structmine_linalg::Precision::Fast),
    ] {
        let policy = structmine_linalg::ExecPolicy::with_threads(1).with_precision(precision);
        group.bench_function(&format!("encode_corpus_{name}_t1"), |b| {
            b.iter(|| std::hint::black_box(plm.encode_corpus(&d.corpus, &policy)))
        });
    }
    group.finish();
}

fn bench_flat_methods(c: &mut Criterion) {
    let plm = standard_plm();
    let mut group = c.benchmark_group("flat_methods");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));

    group.bench_function("westclass_agnews", |b| {
        let d = recipes::agnews(SCALE, 1).unwrap();
        let wv = standard_word_vectors(&d);
        b.iter(|| {
            WeSTClass {
                pseudo_per_class: 30,
                ..Default::default()
            }
            .run(&d, &d.supervision_names(), &wv)
        })
    });
    group.bench_function("conwea_agnews", |b| {
        let d = recipes::agnews(SCALE, 1).unwrap();
        b.iter(|| {
            ConWea {
                iterations: 1,
                ..Default::default()
            }
            .run(&d, &d.supervision_keywords(), &plm)
        })
    });
    group.bench_function("lotclass_agnews", |b| {
        let d = recipes::agnews(SCALE, 1).unwrap();
        b.iter(|| LotClass::default().run(&d, &plm))
    });
    group.bench_function("xclass_agnews", |b| {
        let d = recipes::agnews(SCALE, 1).unwrap();
        b.iter(|| XClass::default().run(&d, &plm))
    });
    group.bench_function("promptclass_agnews", |b| {
        let d = recipes::agnews(SCALE, 1).unwrap();
        b.iter(|| {
            PromptClass {
                iterations: 1,
                ..Default::default()
            }
            .run(&d, &plm)
        })
    });
    group.finish();
}

fn bench_structured_methods(c: &mut Criterion) {
    let plm = standard_plm();
    let mut group = c.benchmark_group("structured_methods");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));

    group.bench_function("weshclass_nyt_tree", |b| {
        let d = recipes::nyt_tree(SCALE, 1).unwrap();
        let wv = standard_word_vectors(&d);
        b.iter(|| {
            WeSHClass {
                pseudo_per_class: 20,
                ..Default::default()
            }
            .run(&d, &d.supervision_keywords(), &wv)
        })
    });
    group.bench_function("taxoclass_amazon", |b| {
        let d = recipes::amazon_taxonomy(SCALE, 1).unwrap();
        b.iter(|| {
            TaxoClass {
                self_train_iters: 0,
                ..Default::default()
            }
            .run(&d, &plm)
        })
    });
    group.bench_function("metacat_github_bio", |b| {
        let d = recipes::github_bio(SCALE * 2.0, 1).unwrap();
        let sup = d.supervision_docs(3, 1);
        b.iter(|| {
            MetaCat {
                samples: 30_000,
                ..Default::default()
            }
            .run(&d, &sup)
        })
    });
    group.bench_function("micol_mag_cs", |b| {
        let d = recipes::mag_cs(SCALE, 1).unwrap();
        b.iter(|| {
            MiCoL {
                steps: 100,
                ..Default::default()
            }
            .run(&d, &plm)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_substrates,
    bench_parallel_encode,
    bench_precision_tiers,
    bench_flat_methods,
    bench_structured_methods
);
criterion_main!(benches);
