//! Label taxonomies: trees (WeSHClass) and DAGs (TaxoClass).
//!
//! A taxonomy is a set of nodes with parent links. Node 0 by convention is
//! the virtual root. Trees restrict every node to a single parent; DAGs
//! allow several. Leaf categories, levels, paths and descendant queries are
//! what the hierarchical methods need.

use serde::{Deserialize, Serialize};

/// A node id within a [`Taxonomy`].
pub type NodeId = usize;

/// A label hierarchy rooted at node 0.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Taxonomy {
    names: Vec<String>,
    parents: Vec<Vec<NodeId>>,
    children: Vec<Vec<NodeId>>,
}

impl Taxonomy {
    /// Create a taxonomy containing only the root node.
    pub fn new(root_name: &str) -> Self {
        Taxonomy {
            names: vec![root_name.to_string()],
            parents: vec![Vec::new()],
            children: vec![Vec::new()],
        }
    }

    /// Add a node under one or more parents; returns its id.
    ///
    /// # Panics
    /// Panics if `parents` is empty or references an unknown node (cycles are
    /// impossible because a parent must already exist).
    pub fn add_node(&mut self, name: &str, parents: &[NodeId]) -> NodeId {
        assert!(
            !parents.is_empty(),
            "a non-root node needs at least one parent"
        );
        let id = self.names.len();
        for &p in parents {
            assert!(p < id, "parent {p} does not exist");
            self.children[p].push(id);
        }
        self.names.push(name.to_string());
        self.parents.push(parents.to_vec());
        self.children.push(Vec::new());
        id
    }

    /// The root node id (always 0).
    pub fn root(&self) -> NodeId {
        0
    }

    /// Number of nodes, including the root.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when only the root exists.
    pub fn is_empty(&self) -> bool {
        self.names.len() == 1
    }

    /// Node name.
    pub fn name(&self, id: NodeId) -> &str {
        &self.names[id]
    }

    /// Find a node by name.
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.names.iter().position(|n| n == name)
    }

    /// Direct children of a node.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.children[id]
    }

    /// Direct parents of a node (empty only for the root).
    pub fn parents(&self, id: NodeId) -> &[NodeId] {
        &self.parents[id]
    }

    /// True if the node has no children.
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.children[id].is_empty()
    }

    /// All leaf node ids.
    pub fn leaves(&self) -> Vec<NodeId> {
        (0..self.len()).filter(|&i| self.is_leaf(i)).collect()
    }

    /// All non-root node ids.
    pub fn non_root_nodes(&self) -> Vec<NodeId> {
        (1..self.len()).collect()
    }

    /// Depth of a node: root is 0; for DAG nodes, the shortest distance.
    pub fn level(&self, id: NodeId) -> usize {
        let mut depth = 0;
        let mut frontier = vec![id];
        let mut visited = vec![false; self.len()];
        while !frontier.contains(&0) {
            let mut next = Vec::new();
            for &n in &frontier {
                for &p in &self.parents[n] {
                    if !visited[p] {
                        visited[p] = true;
                        next.push(p);
                    }
                }
            }
            frontier = next;
            depth += 1;
            assert!(
                depth <= self.len(),
                "taxonomy parent links are inconsistent"
            );
        }
        depth
    }

    /// Maximum leaf depth.
    pub fn max_depth(&self) -> usize {
        self.leaves()
            .iter()
            .map(|&l| self.level(l))
            .max()
            .unwrap_or(0)
    }

    /// Node ids at exactly `level` (root = level 0).
    pub fn nodes_at_level(&self, level: usize) -> Vec<NodeId> {
        (0..self.len())
            .filter(|&i| self.level(i) == level)
            .collect()
    }

    /// All descendants of `id` (excluding itself), in BFS order.
    pub fn descendants(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut seen = vec![false; self.len()];
        let mut queue = std::collections::VecDeque::from(vec![id]);
        while let Some(n) = queue.pop_front() {
            for &c in &self.children[n] {
                if !seen[c] {
                    seen[c] = true;
                    out.push(c);
                    queue.push_back(c);
                }
            }
        }
        out
    }

    /// All ancestors of `id` up to (and excluding) the root.
    pub fn ancestors(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut seen = vec![false; self.len()];
        let mut queue = std::collections::VecDeque::from(vec![id]);
        while let Some(n) = queue.pop_front() {
            for &p in &self.parents[n] {
                if p != 0 && !seen[p] {
                    seen[p] = true;
                    out.push(p);
                    queue.push_back(p);
                }
            }
        }
        out
    }

    /// The root-to-node path for a **tree** taxonomy (single parents),
    /// excluding the root, ending at `id`.
    pub fn path_from_root(&self, id: NodeId) -> Vec<NodeId> {
        let mut path = vec![id];
        let mut cur = id;
        while let Some(&p) = self.parents[cur].first() {
            if p == 0 {
                break;
            }
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// True if every non-root node has exactly one parent.
    pub fn is_tree(&self) -> bool {
        self.parents.iter().skip(1).all(|p| p.len() == 1)
    }
}

impl structmine_store::StableHash for Taxonomy {
    fn stable_hash(&self, h: &mut structmine_store::StableHasher) {
        self.names.stable_hash(h);
        self.parents.stable_hash(h);
        // `children` mirrors `parents` and is covered by it.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> Taxonomy {
        let mut t = Taxonomy::new("root");
        let cs = t.add_node("cs", &[0]);
        let math = t.add_node("math", &[0]);
        t.add_node("cs.lg", &[cs]);
        t.add_node("cs.cl", &[cs]);
        t.add_node("math.co", &[math]);
        t
    }

    #[test]
    fn leaves_and_levels() {
        let t = sample_tree();
        assert_eq!(t.leaves(), vec![3, 4, 5]);
        assert_eq!(t.level(0), 0);
        assert_eq!(t.level(1), 1);
        assert_eq!(t.level(3), 2);
        assert_eq!(t.max_depth(), 2);
        assert!(t.is_tree());
    }

    #[test]
    fn path_from_root_for_tree() {
        let t = sample_tree();
        let cl = t.find("cs.cl").unwrap();
        assert_eq!(t.path_from_root(cl), vec![1, cl]);
    }

    #[test]
    fn descendants_bfs() {
        let t = sample_tree();
        assert_eq!(t.descendants(1), vec![3, 4]);
        assert_eq!(t.descendants(0).len(), 5);
    }

    #[test]
    fn dag_nodes_can_have_multiple_parents() {
        let mut t = Taxonomy::new("root");
        let a = t.add_node("ml", &[0]);
        let b = t.add_node("bio", &[0]);
        let shared = t.add_node("bioinformatics", &[a, b]);
        assert!(!t.is_tree());
        assert_eq!(t.parents(shared), &[a, b]);
        assert_eq!(t.level(shared), 2);
        let anc = t.ancestors(shared);
        assert!(anc.contains(&a) && anc.contains(&b));
    }

    #[test]
    fn nodes_at_level_partitions_tree() {
        let t = sample_tree();
        assert_eq!(t.nodes_at_level(1), vec![1, 2]);
        assert_eq!(t.nodes_at_level(2), vec![3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "parent")]
    fn unknown_parent_panics() {
        let mut t = Taxonomy::new("root");
        t.add_node("x", &[7]);
    }
}
