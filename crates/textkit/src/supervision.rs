//! Weak-supervision descriptors.
//!
//! The tutorial distinguishes keyword-level weak supervision (category names
//! or a few related keywords per class) from document-level weak supervision
//! (a handful of labeled documents per class). Methods in `structmine`
//! accept a [`Supervision`] value so each table's LABELS / KEYWORDS / DOCS
//! columns can be reproduced by switching the variant.

use crate::vocab::TokenId;
use serde::{Deserialize, Serialize};

/// The seed information available to a weakly-supervised method.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Supervision {
    /// Only the category names (as token sequences, one per class).
    LabelNames(Vec<Vec<TokenId>>),
    /// A few user-provided keywords per class.
    Keywords(Vec<Vec<TokenId>>),
    /// A few labeled documents per class: `(doc index, class)` pairs.
    LabeledDocs(Vec<(usize, usize)>),
}

impl Supervision {
    /// Number of classes the supervision covers.
    pub fn n_classes(&self) -> usize {
        match self {
            Supervision::LabelNames(v) | Supervision::Keywords(v) => v.len(),
            Supervision::LabeledDocs(pairs) => pairs.iter().map(|&(_, c)| c + 1).max().unwrap_or(0),
        }
    }

    /// The seed token lists per class, if this is keyword-level supervision.
    pub fn seed_tokens(&self) -> Option<&[Vec<TokenId>]> {
        match self {
            Supervision::LabelNames(v) | Supervision::Keywords(v) => Some(v),
            Supervision::LabeledDocs(_) => None,
        }
    }

    /// The labeled `(doc, class)` pairs, if document-level supervision.
    pub fn labeled_docs(&self) -> Option<&[(usize, usize)]> {
        match self {
            Supervision::LabeledDocs(pairs) => Some(pairs),
            _ => None,
        }
    }
}

impl structmine_store::StableHash for Supervision {
    fn stable_hash(&self, h: &mut structmine_store::StableHasher) {
        match self {
            Supervision::LabelNames(v) => {
                h.write_u64(0);
                v.stable_hash(h);
            }
            Supervision::Keywords(v) => {
                h.write_u64(1);
                v.stable_hash(h);
            }
            Supervision::LabeledDocs(pairs) => {
                h.write_u64(2);
                pairs.stable_hash(h);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n_classes_for_each_variant() {
        assert_eq!(
            Supervision::LabelNames(vec![vec![1], vec![2]]).n_classes(),
            2
        );
        assert_eq!(Supervision::Keywords(vec![vec![1, 2]]).n_classes(), 1);
        assert_eq!(
            Supervision::LabeledDocs(vec![(0, 0), (1, 2)]).n_classes(),
            3
        );
        assert_eq!(Supervision::LabeledDocs(vec![]).n_classes(), 0);
    }

    #[test]
    fn accessors_match_variants() {
        let s = Supervision::Keywords(vec![vec![9]]);
        assert!(s.seed_tokens().is_some());
        assert!(s.labeled_docs().is_none());
        let d = Supervision::LabeledDocs(vec![(3, 1)]);
        assert!(d.seed_tokens().is_none());
        assert_eq!(d.labeled_docs().unwrap()[0], (3, 1));
    }
}
