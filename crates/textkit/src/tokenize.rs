//! Whitespace/punctuation tokenizer.
//!
//! The synthetic corpora are generated as token sequences, so this tokenizer
//! exists for the places where humans type sentences at the library — the
//! quickstart example, the LOTClass "Table 1" demo, ad-hoc classification of
//! new text. Lower-cases, strips punctuation, splits on whitespace.

use crate::vocab::{TokenId, Vocab};

/// Split `text` into lower-cased word strings.
pub fn words(text: &str) -> Vec<String> {
    text.split(|c: char| c.is_whitespace() || (c.is_ascii_punctuation() && c != '[' && c != ']'))
        .filter(|w| !w.is_empty())
        .map(|w| w.to_lowercase())
        .collect()
}

/// Tokenize into ids against an existing vocabulary, unknown words → `[UNK]`.
pub fn encode(text: &str, vocab: &Vocab) -> Vec<TokenId> {
    words(text).iter().map(|w| vocab.id_or_unk(w)).collect()
}

/// Tokenize and intern: unknown words are added to the vocabulary.
pub fn encode_interning(text: &str, vocab: &mut Vocab) -> Vec<TokenId> {
    words(text).iter().map(|w| vocab.intern(w)).collect()
}

/// Render a token-id sequence back to a human-readable string.
pub fn decode(tokens: &[TokenId], vocab: &Vocab) -> String {
    tokens
        .iter()
        .map(|&t| vocab.word(t))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_lowercase_and_strip_punctuation() {
        assert_eq!(
            words("Messi scored the penalty!"),
            vec!["messi", "scored", "the", "penalty"]
        );
    }

    #[test]
    fn brackets_survive_for_special_tokens() {
        assert_eq!(words("this is [MASK] ."), vec!["this", "is", "[mask]"]);
    }

    #[test]
    fn encode_unknown_words_map_to_unk() {
        let mut v = Vocab::new();
        v.intern("goal");
        let ids = encode("goal kick", &v);
        assert_eq!(ids[0], v.id("goal").unwrap());
        assert_eq!(ids[1], crate::vocab::UNK);
    }

    #[test]
    fn encode_interning_round_trips() {
        let mut v = Vocab::new();
        let ids = encode_interning("the quick fox", &mut v);
        assert_eq!(decode(&ids, &v), "the quick fox");
    }

    #[test]
    fn empty_text_gives_no_tokens() {
        assert!(words("  \t\n ").is_empty());
    }
}
