//! Sparse TF-IDF vectors and cosine retrieval.
//!
//! Backs the `IR with tf-idf` baseline that appears in the WeSTClass and
//! ConWea tables, ConWea's seed-expansion ranking, and WeSTClass's
//! keyword-retrieval mode for document-level supervision.

use crate::corpus::Corpus;
use crate::vocab::TokenId;

/// A sparse vector: sorted `(token, weight)` pairs.
pub type SparseVec = Vec<(TokenId, f32)>;

/// A fitted TF-IDF model over a corpus.
#[derive(Clone, Debug)]
pub struct TfIdf {
    idf: Vec<f32>,
    n_docs: usize,
}

impl TfIdf {
    /// Fit IDF weights on `corpus`. Uses smoothed `ln((1+N)/(1+df)) + 1`.
    pub fn fit(corpus: &Corpus) -> Self {
        TfIdf::from_counts(corpus.len(), &corpus.doc_frequencies())
    }

    /// Build the model directly from a document count and per-token document
    /// frequencies. `fit` delegates here, and so does the incremental
    /// [`crate::delta::DeltaCorpus::tfidf`] path — IDF is a pure function of
    /// these integers, which is what makes incrementally-maintained counts
    /// yield bit-identical weights (DESIGN §11).
    pub fn from_counts(n_docs: usize, df: &[u32]) -> Self {
        let idf = df
            .iter()
            .map(|&df| ((1.0 + n_docs as f32) / (1.0 + df as f32)).ln() + 1.0)
            .collect();
        TfIdf { idf, n_docs }
    }

    /// Number of documents the model was fitted on.
    pub fn n_docs(&self) -> usize {
        self.n_docs
    }

    /// IDF weight of a token (0 for out-of-range ids).
    pub fn idf(&self, t: TokenId) -> f32 {
        self.idf.get(t as usize).copied().unwrap_or(0.0)
    }

    /// L2-normalized TF-IDF vector of a token sequence.
    pub fn vectorize(&self, tokens: &[TokenId]) -> SparseVec {
        let mut counts: std::collections::HashMap<TokenId, f32> = std::collections::HashMap::new();
        for &t in tokens {
            if !crate::vocab::Vocab::is_special(t) {
                *counts.entry(t).or_insert(0.0) += 1.0;
            }
        }
        let mut v: SparseVec = counts
            .into_iter()
            .map(|(t, tf)| (t, tf * self.idf(t)))
            .collect();
        v.sort_by_key(|&(t, _)| t);
        let norm: f32 = v.iter().map(|&(_, w)| w * w).sum::<f32>().sqrt();
        if norm > 0.0 {
            for (_, w) in &mut v {
                *w /= norm;
            }
        }
        v
    }

    /// TF-IDF vectors for every document in `corpus`.
    pub fn vectorize_corpus(&self, corpus: &Corpus) -> Vec<SparseVec> {
        corpus
            .docs
            .iter()
            .map(|d| self.vectorize(&d.tokens))
            .collect()
    }
}

/// Cosine similarity of two sorted sparse vectors.
pub fn sparse_cosine(a: &SparseVec, b: &SparseVec) -> f32 {
    let mut i = 0;
    let mut j = 0;
    let mut dot = 0.0f32;
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                dot += a[i].1 * b[j].1;
                i += 1;
                j += 1;
            }
        }
    }
    // Inputs are L2-normalized by `vectorize`, so the dot product is cosine;
    // renormalize defensively in case callers built vectors by hand.
    let na: f32 = a.iter().map(|&(_, w)| w * w).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|&(_, w)| w * w).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::Doc;
    use crate::vocab::Vocab;

    fn corpus() -> Corpus {
        let mut vocab = Vocab::new();
        let common = vocab.intern("the");
        let rare = vocab.intern("penalty");
        let other = vocab.intern("court");
        let mut c = Corpus::new(vocab);
        for _ in 0..9 {
            c.docs.push(Doc::from_tokens(vec![common, other]));
        }
        c.docs.push(Doc::from_tokens(vec![common, rare]));
        c
    }

    #[test]
    fn rare_terms_get_higher_idf() {
        let c = corpus();
        let m = TfIdf::fit(&c);
        let common = c.vocab.id("the").unwrap();
        let rare = c.vocab.id("penalty").unwrap();
        assert!(m.idf(rare) > m.idf(common));
    }

    #[test]
    fn vectorize_is_unit_norm() {
        let c = corpus();
        let m = TfIdf::fit(&c);
        let v = m.vectorize(&c.docs[9].tokens);
        let norm: f32 = v.iter().map(|&(_, w)| w * w).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn identical_docs_have_cosine_one() {
        let c = corpus();
        let m = TfIdf::fit(&c);
        let a = m.vectorize(&c.docs[0].tokens);
        let b = m.vectorize(&c.docs[1].tokens);
        assert!((sparse_cosine(&a, &b) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn disjoint_docs_have_cosine_zero() {
        let mut vocab = Vocab::new();
        let a_tok = vocab.intern("alpha");
        let b_tok = vocab.intern("beta");
        let mut c = Corpus::new(vocab);
        c.docs.push(Doc::from_tokens(vec![a_tok]));
        c.docs.push(Doc::from_tokens(vec![b_tok]));
        let m = TfIdf::fit(&c);
        let va = m.vectorize(&c.docs[0].tokens);
        let vb = m.vectorize(&c.docs[1].tokens);
        assert_eq!(sparse_cosine(&va, &vb), 0.0);
    }

    #[test]
    fn special_tokens_are_ignored() {
        let c = corpus();
        let m = TfIdf::fit(&c);
        let v = m.vectorize(&[crate::vocab::CLS, crate::vocab::PAD]);
        assert!(v.is_empty());
    }
}
