//! Documents and corpora.

use crate::vocab::{TokenId, Vocab};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A tokenized document plus optional gold labels and metadata attachments.
///
/// Metadata fields mirror the sources the tutorial's metadata-aware methods
/// consume: a posting **user** (GitHub/Twitter/Amazon), descriptive **tags**
/// (hashtags, repo tags), a **venue** and **authors** (papers), and
/// **references** (citation edges to other documents, by doc index).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Doc {
    /// Token ids into the corpus vocabulary.
    pub tokens: Vec<TokenId>,
    /// Gold label ids (one for single-label tasks, several for multi-label).
    pub labels: Vec<usize>,
    /// Global metadata: the user/author entity that produced the document.
    pub user: Option<usize>,
    /// Local metadata: tags describing the document.
    pub tags: Vec<usize>,
    /// Publication venue id, for paper-like corpora.
    pub venue: Option<usize>,
    /// Author entity ids, for paper-like corpora.
    pub authors: Vec<usize>,
    /// Outgoing citation edges (indices of other docs in the same corpus).
    pub refs: Vec<usize>,
}

impl Doc {
    /// A plain text-only document.
    pub fn from_tokens(tokens: Vec<TokenId>) -> Self {
        Doc {
            tokens,
            ..Default::default()
        }
    }

    /// The single gold label; panics if the doc is not single-labeled.
    pub fn label(&self) -> usize {
        assert_eq!(self.labels.len(), 1, "document is not single-labeled");
        self.labels[0]
    }

    /// Term-frequency map of this document.
    pub fn term_counts(&self) -> HashMap<TokenId, u32> {
        let mut m = HashMap::new();
        for &t in &self.tokens {
            *m.entry(t).or_insert(0) += 1;
        }
        m
    }
}

/// A corpus: a shared vocabulary plus a list of documents.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Corpus {
    /// The vocabulary all documents are tokenized against.
    pub vocab: Vocab,
    /// The documents.
    pub docs: Vec<Doc>,
}

impl Corpus {
    /// An empty corpus over a fresh vocabulary.
    pub fn new(vocab: Vocab) -> Self {
        Corpus {
            vocab,
            docs: Vec::new(),
        }
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when there are no documents.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Total token count across all documents.
    pub fn n_tokens(&self) -> usize {
        self.docs.iter().map(|d| d.tokens.len()).sum()
    }

    /// Document frequency for every token id (number of docs containing it).
    pub fn doc_frequencies(&self) -> Vec<u32> {
        let mut df = vec![0u32; self.vocab.len()];
        let mut seen = vec![usize::MAX; self.vocab.len()];
        for (i, doc) in self.docs.iter().enumerate() {
            for &t in &doc.tokens {
                if seen[t as usize] != i {
                    seen[t as usize] = i;
                    df[t as usize] += 1;
                }
            }
        }
        df
    }

    /// All `(doc_idx, position)` occurrences of token `t`.
    pub fn occurrences(&self, t: TokenId) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (i, doc) in self.docs.iter().enumerate() {
            for (p, &tok) in doc.tokens.iter().enumerate() {
                if tok == t {
                    out.push((i, p));
                }
            }
        }
        out
    }

    /// Render document `i` back to words (diagnostics and examples).
    pub fn render(&self, i: usize) -> String {
        crate::tokenize::decode(&self.docs[i].tokens, &self.vocab)
    }

    /// Content fingerprint of the whole corpus (vocabulary, token
    /// sequences, labels, metadata) — the dataset-identity component of
    /// every artifact key derived from this corpus.
    pub fn fingerprint(&self) -> u128 {
        structmine_store::fingerprint_of(self)
    }
}

impl structmine_store::StableHash for Doc {
    fn stable_hash(&self, h: &mut structmine_store::StableHasher) {
        self.tokens.stable_hash(h);
        self.labels.stable_hash(h);
        self.user.stable_hash(h);
        self.tags.stable_hash(h);
        self.venue.stable_hash(h);
        self.authors.stable_hash(h);
        self.refs.stable_hash(h);
    }
}

impl structmine_store::StableHash for Corpus {
    fn stable_hash(&self, h: &mut structmine_store::StableHasher) {
        self.vocab.stable_hash(h);
        self.docs.stable_hash(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_corpus() -> Corpus {
        let mut vocab = Vocab::new();
        let a = vocab.intern("goal");
        let b = vocab.intern("match");
        let c = vocab.intern("court");
        let mut corpus = Corpus::new(vocab);
        corpus.docs.push(Doc::from_tokens(vec![a, b, a]));
        corpus.docs.push(Doc::from_tokens(vec![c, b]));
        corpus
    }

    #[test]
    fn doc_frequencies_count_docs_not_occurrences() {
        let c = tiny_corpus();
        let goal = c.vocab.id("goal").unwrap() as usize;
        let m = c.vocab.id("match").unwrap() as usize;
        let df = c.doc_frequencies();
        assert_eq!(df[goal], 1); // appears twice but in one doc
        assert_eq!(df[m], 2);
    }

    #[test]
    fn occurrences_finds_positions() {
        let c = tiny_corpus();
        let goal = c.vocab.id("goal").unwrap();
        assert_eq!(c.occurrences(goal), vec![(0, 0), (0, 2)]);
    }

    #[test]
    fn term_counts_aggregates() {
        let c = tiny_corpus();
        let tc = c.docs[0].term_counts();
        assert_eq!(tc[&c.vocab.id("goal").unwrap()], 2);
    }

    #[test]
    fn n_tokens_sums_lengths() {
        assert_eq!(tiny_corpus().n_tokens(), 5);
    }

    #[test]
    #[should_panic(expected = "not single-labeled")]
    fn label_panics_on_multilabel() {
        let mut d = Doc::from_tokens(vec![]);
        d.labels = vec![1, 2];
        let _ = d.label();
    }

    #[test]
    fn render_round_trips_words() {
        let c = tiny_corpus();
        assert_eq!(c.render(1), "court match");
    }
}
