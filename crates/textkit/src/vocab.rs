//! Interned word-level vocabulary.
//!
//! The synthetic worlds in this workspace have closed vocabularies, so a
//! word-level vocabulary (rather than subword units) is exact: every token a
//! method will ever see has an id. Five special tokens occupy the first ids,
//! matching the conventions the mini-PLM relies on.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Token id type used throughout the workspace.
pub type TokenId = u32;

/// Padding token, id 0.
pub const PAD: TokenId = 0;
/// Unknown token, id 1.
pub const UNK: TokenId = 1;
/// Mask token for MLM, id 2.
pub const MASK: TokenId = 2;
/// Classification token, id 3.
pub const CLS: TokenId = 3;
/// Separator token, id 4.
pub const SEP: TokenId = 4;
/// Number of reserved special tokens.
pub const N_SPECIAL: usize = 5;

/// An interned vocabulary with frequency counts.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Vocab {
    words: Vec<String>,
    index: HashMap<String, TokenId>,
    counts: Vec<u64>,
}

impl Default for Vocab {
    fn default() -> Self {
        Self::new()
    }
}

impl Vocab {
    /// A vocabulary containing only the special tokens.
    pub fn new() -> Self {
        let mut v = Vocab {
            words: Vec::new(),
            index: HashMap::new(),
            counts: Vec::new(),
        };
        for s in ["[PAD]", "[UNK]", "[MASK]", "[CLS]", "[SEP]"] {
            v.intern(s);
        }
        v
    }

    /// Intern `word`, returning its id (existing or fresh).
    pub fn intern(&mut self, word: &str) -> TokenId {
        if let Some(&id) = self.index.get(word) {
            return id;
        }
        let id = self.words.len() as TokenId;
        self.words.push(word.to_string());
        self.index.insert(word.to_string(), id);
        self.counts.push(0);
        id
    }

    /// Look up a word; `None` if absent.
    pub fn id(&self, word: &str) -> Option<TokenId> {
        self.index.get(word).copied()
    }

    /// Look up a word, falling back to `[UNK]`.
    pub fn id_or_unk(&self, word: &str) -> TokenId {
        self.id(word).unwrap_or(UNK)
    }

    /// The surface form of a token id.
    pub fn word(&self, id: TokenId) -> &str {
        &self.words[id as usize]
    }

    /// Total number of entries including special tokens.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when only special tokens are present.
    pub fn is_empty(&self) -> bool {
        self.words.len() <= N_SPECIAL
    }

    /// Record one occurrence of `id` (used when building corpora).
    pub fn bump(&mut self, id: TokenId) {
        self.counts[id as usize] += 1;
    }

    /// Corpus frequency of `id`.
    pub fn count(&self, id: TokenId) -> u64 {
        self.counts[id as usize]
    }

    /// Iterate over `(id, word)` pairs for non-special entries.
    pub fn iter_words(&self) -> impl Iterator<Item = (TokenId, &str)> {
        self.words
            .iter()
            .enumerate()
            .skip(N_SPECIAL)
            .map(|(i, w)| (i as TokenId, w.as_str()))
    }

    /// True if `id` is one of the reserved special tokens.
    pub fn is_special(id: TokenId) -> bool {
        (id as usize) < N_SPECIAL
    }

    /// Unigram distribution over the whole vocabulary raised to `power`
    /// (word2vec uses 0.75 for negative sampling). Special tokens get zero.
    pub fn unigram_weights(&self, power: f32) -> Vec<f32> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                if i < N_SPECIAL {
                    0.0
                } else {
                    (c as f32).powf(power)
                }
            })
            .collect()
    }
}

impl structmine_store::StableHash for Vocab {
    /// Content fingerprint over the interned words (in id order) and their
    /// frequency counts; the word→id index is derived and not hashed.
    fn stable_hash(&self, h: &mut structmine_store::StableHasher) {
        self.words.stable_hash(h);
        self.counts.stable_hash(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn special_tokens_have_reserved_ids() {
        let v = Vocab::new();
        assert_eq!(v.id("[PAD]"), Some(PAD));
        assert_eq!(v.id("[MASK]"), Some(MASK));
        assert_eq!(v.len(), N_SPECIAL);
        assert!(v.is_empty());
    }

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocab::new();
        let a = v.intern("soccer");
        let b = v.intern("soccer");
        assert_eq!(a, b);
        assert_eq!(v.word(a), "soccer");
        assert!(!v.is_empty());
    }

    #[test]
    fn id_or_unk_falls_back() {
        let v = Vocab::new();
        assert_eq!(v.id_or_unk("missing"), UNK);
    }

    #[test]
    fn unigram_weights_zero_for_specials() {
        let mut v = Vocab::new();
        let id = v.intern("goal");
        v.bump(id);
        v.bump(id);
        let w = v.unigram_weights(0.75);
        assert_eq!(w[PAD as usize], 0.0);
        assert!((w[id as usize] - 2.0f32.powf(0.75)).abs() < 1e-6);
    }

    #[test]
    fn iter_words_skips_specials() {
        let mut v = Vocab::new();
        v.intern("a");
        v.intern("b");
        let words: Vec<&str> = v.iter_words().map(|(_, w)| w).collect();
        assert_eq!(words, vec!["a", "b"]);
    }
}
