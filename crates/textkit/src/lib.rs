//! Corpus handling and synthetic dataset recipes for the `structmine`
//! workspace.
//!
//! This crate provides the text substrate the tutorial's methods run on:
//!
//! * [`vocab::Vocab`] — interned word-level vocabulary with special tokens
//!   (`[PAD]`, `[UNK]`, `[MASK]`, `[CLS]`, `[SEP]`).
//! * [`corpus::Doc`] / [`corpus::Corpus`] — tokenized documents with optional
//!   labels and metadata (users, tags, venues, authors, references).
//! * [`delta::DeltaCorpus`] — append-only corpus generations whose
//!   vocabulary/df/TF-IDF stats update incrementally yet stay byte-identical
//!   to a from-scratch build (DESIGN §11).
//! * [`tfidf::TfIdf`] — sparse TF-IDF vectors and cosine retrieval.
//! * [`taxonomy::Taxonomy`] — label hierarchies, both trees (WeSHClass) and
//!   DAGs (TaxoClass).
//! * [`synth`] — a deterministic generator of corpora with planted structure
//!   (topical classes, polysemous seed words, hierarchies, metadata graphs),
//!   plus named recipes standing in for the paper's benchmark datasets
//!   (AG News, NYT, Yelp, DBpedia, 20 Newsgroups, arXiv, Amazon, GitHub,
//!   Twitter, MAG-CS, PubMed). See `DESIGN.md` §1 for why these synthetic
//!   stand-ins preserve the behaviours the tutorial's tables demonstrate.

pub mod corpus;
pub mod delta;
pub mod supervision;
pub mod synth;
pub mod taxonomy;
pub mod tfidf;
pub mod tokenize;
pub mod vocab;

pub use corpus::{Corpus, Doc};
pub use delta::{CorpusDelta, DeltaCorpus, DeltaError, Generation};
pub use supervision::Supervision;
pub use synth::dataset::{Dataset, LabelSet};
pub use taxonomy::Taxonomy;
pub use vocab::Vocab;
