//! Append-only corpus generations (DESIGN §11).
//!
//! A [`DeltaCorpus`] is a base corpus plus an ordered sequence of applied
//! deltas, each stamped with a [`Generation`] number. Generation 0 is the
//! base; applying delta g moves the corpus from generation g-1 to g. All
//! corpus-level statistics (vocabulary counts, document frequencies, and the
//! TF-IDF model derived from them) are maintained incrementally from the
//! delta alone.
//!
//! ## Merge rule
//!
//! The incremental update is *byte-identical* to a from-scratch build of the
//! concatenated corpus because every maintained statistic is a fold over
//! documents in stream order of operations that the from-scratch build
//! performs in the same order:
//!
//! * **Vocabulary words** are interned in first-occurrence order. A word
//!   first seen in delta g gets the id the from-scratch build would assign
//!   it when it reaches that document.
//! * **Vocabulary counts** are `u64` additions per token occurrence;
//!   integer addition is associative, so folding delta-by-delta equals
//!   folding the concatenation.
//! * **Document frequencies** are `u32` additions of each document's
//!   *distinct* token set; distinctness is per-document, so each document
//!   contributes identically regardless of which delta carried it.
//! * **IDF** is a pure `f32` function of `(n_docs, df)` — see
//!   [`TfIdf::from_counts`] — so identical integers give identical bits.
//!
//! ## Invalidation semantics
//!
//! Deltas fail closed: [`DeltaCorpus::apply`] rejects a delta whose
//! generation is not exactly `current + 1` (duplicates and gaps are both
//! errors) and rejects token ids outside the current vocabulary *before*
//! mutating any state. Downstream, `structmine_store`'s delta stages chain
//! artifact keys on `(previous key, delta fingerprint, generation)`, so
//! editing delta j invalidates generations j..N while 0..j-1 stay reusable.

use crate::corpus::{Corpus, Doc};
use crate::tfidf::TfIdf;
use crate::tokenize;
use crate::vocab::TokenId;
use serde::{Deserialize, Serialize};

/// A corpus generation number. Generation 0 is the base corpus; each applied
/// delta increments it by one.
pub type Generation = u32;

/// Why a delta was rejected. All variants leave the corpus unchanged.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// The delta's generation is at or behind the current one — it was
    /// already applied (or forged). Re-applying is never safe: counts would
    /// double.
    Duplicate {
        /// Generation carried by the rejected delta.
        generation: Generation,
        /// The corpus's current generation.
        current: Generation,
    },
    /// The delta skips ahead, which would silently drop the missing
    /// generations' documents from every statistic.
    OutOfOrder {
        /// The only generation that can be applied next.
        expected: Generation,
        /// Generation carried by the rejected delta.
        got: Generation,
    },
    /// A document references a token id outside the current vocabulary.
    /// Token-level deltas are closed-vocabulary; use
    /// [`DeltaCorpus::apply_text`] to grow the vocabulary from raw text.
    UnknownToken {
        /// The out-of-range token id.
        token: TokenId,
        /// Current vocabulary size (valid ids are `0..vocab_len`).
        vocab_len: usize,
    },
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::Duplicate {
                generation,
                current,
            } => write!(
                f,
                "delta generation {generation} was already applied (corpus is at generation {current})"
            ),
            DeltaError::OutOfOrder { expected, got } => write!(
                f,
                "out-of-order delta: expected generation {expected}, got {got}"
            ),
            DeltaError::UnknownToken { token, vocab_len } => write!(
                f,
                "delta references token id {token} outside the vocabulary (len {vocab_len})"
            ),
        }
    }
}

impl std::error::Error for DeltaError {}

/// An ordered batch of new documents stamped with the generation it
/// produces when applied.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CorpusDelta {
    /// The generation the corpus reaches by applying this delta.
    pub generation: Generation,
    /// The new documents, in stream order.
    pub docs: Vec<Doc>,
}

/// A corpus that grows by append-only generational deltas, with vocabulary
/// counts, document frequencies, and TF-IDF maintained incrementally.
#[derive(Clone, Debug)]
pub struct DeltaCorpus {
    corpus: Corpus,
    base_len: usize,
    base_fingerprint: u128,
    /// `boundaries[g-1]` = total doc count after applying generation g.
    boundaries: Vec<usize>,
    /// `delta_fingerprints[g-1]` = content fingerprint of generation g's docs.
    delta_fingerprints: Vec<u128>,
    /// Maintained document frequencies, always `vocab.len()` long.
    df: Vec<u32>,
}

impl DeltaCorpus {
    /// Wrap `base` as generation 0.
    pub fn from_corpus(base: Corpus) -> Self {
        let df = base.doc_frequencies();
        let base_len = base.len();
        let base_fingerprint = base.fingerprint();
        DeltaCorpus {
            corpus: base,
            base_len,
            base_fingerprint,
            boundaries: Vec::new(),
            delta_fingerprints: Vec::new(),
            df,
        }
    }

    /// The current generation (0 = base corpus, no deltas applied).
    pub fn generation(&self) -> Generation {
        self.boundaries.len() as Generation
    }

    /// The merged corpus: base documents followed by every applied delta's
    /// documents in generation order.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// Number of documents in the base (generation-0) corpus.
    pub fn base_len(&self) -> usize {
        self.base_len
    }

    /// Total number of documents across all applied generations.
    pub fn len(&self) -> usize {
        self.corpus.len()
    }

    /// True when the merged corpus has no documents.
    pub fn is_empty(&self) -> bool {
        self.corpus.is_empty()
    }

    /// Doc-index range contributed by generation `g` (0 = the base corpus).
    ///
    /// Panics if `g` exceeds the current generation.
    pub fn gen_range(&self, g: Generation) -> std::ops::Range<usize> {
        assert!(
            g <= self.generation(),
            "generation {g} not yet applied (current: {})",
            self.generation()
        );
        if g == 0 {
            return 0..self.base_len;
        }
        let start = if g == 1 {
            self.base_len
        } else {
            self.boundaries[g as usize - 2]
        };
        start..self.boundaries[g as usize - 1]
    }

    /// Content fingerprint of the generation-0 corpus.
    pub fn base_fingerprint(&self) -> u128 {
        self.base_fingerprint
    }

    /// Content fingerprint of generation `g`'s documents (`g >= 1`).
    ///
    /// Panics if `g` is 0 or exceeds the current generation.
    pub fn delta_fingerprint(&self, g: Generation) -> u128 {
        assert!(
            g >= 1 && g <= self.generation(),
            "no delta fingerprint for generation {g} (current: {})",
            self.generation()
        );
        self.delta_fingerprints[g as usize - 1]
    }

    /// Stamp `docs` as the next applicable delta.
    pub fn next_delta(&self, docs: Vec<Doc>) -> CorpusDelta {
        CorpusDelta {
            generation: self.generation() + 1,
            docs,
        }
    }

    /// Apply a closed-vocabulary delta, advancing to its generation.
    ///
    /// Fails closed — on any error the corpus, counts, and document
    /// frequencies are untouched.
    pub fn apply(&mut self, delta: CorpusDelta) -> Result<Generation, DeltaError> {
        let expected = self.generation() + 1;
        if delta.generation < expected {
            return Err(DeltaError::Duplicate {
                generation: delta.generation,
                current: self.generation(),
            });
        }
        if delta.generation > expected {
            return Err(DeltaError::OutOfOrder {
                expected,
                got: delta.generation,
            });
        }
        let vocab_len = self.corpus.vocab.len();
        for doc in &delta.docs {
            if let Some(&t) = doc.tokens.iter().find(|&&t| t as usize >= vocab_len) {
                return Err(DeltaError::UnknownToken {
                    token: t,
                    vocab_len,
                });
            }
        }
        self.apply_validated(delta.docs, vocab_len);
        Ok(self.generation())
    }

    /// Tokenize raw `lines` (one document per line), interning unseen words
    /// into the vocabulary, and apply them as the next generation.
    ///
    /// This is the open-vocabulary ingestion path: words are interned in
    /// first-occurrence order, exactly as a from-scratch tokenization of the
    /// concatenated text would assign ids.
    pub fn apply_text(&mut self, lines: &[String]) -> Generation {
        let prev_vocab_len = self.corpus.vocab.len();
        let docs: Vec<Doc> = lines
            .iter()
            .map(|l| Doc::from_tokens(tokenize::encode_interning(l, &mut self.corpus.vocab)))
            .collect();
        // Interning grew the word table; grow `df` to match before folding
        // the new docs in (counts are bumped in `apply_validated`).
        self.df.resize(self.corpus.vocab.len(), 0);
        self.apply_validated(docs, prev_vocab_len);
        self.generation()
    }

    /// Fold validated docs into the corpus and its maintained statistics.
    /// `prev_vocab_len` is the vocabulary size before this delta interned
    /// anything — words at ids `prev_vocab_len..` are the delta's own.
    fn apply_validated(&mut self, docs: Vec<Doc>, prev_vocab_len: usize) {
        // The delta fingerprint covers the docs *and* any words this delta
        // introduced: token ids alone are ambiguous across vocabularies
        // (two different new words can receive the same id).
        let new_words: Vec<&str> = (prev_vocab_len..self.corpus.vocab.len())
            .map(|i| self.corpus.vocab.word(i as TokenId))
            .collect();
        self.delta_fingerprints
            .push(structmine_store::fingerprint_of(&(&docs, new_words)));
        for doc in docs {
            for &t in &doc.tokens {
                self.corpus.vocab.bump(t);
            }
            // Each document contributes its *distinct* token set to df.
            let mut distinct: Vec<TokenId> = doc.tokens.clone();
            distinct.sort_unstable();
            distinct.dedup();
            for t in distinct {
                self.df[t as usize] += 1;
            }
            self.corpus.docs.push(doc);
        }
        self.boundaries.push(self.corpus.len());
    }

    /// Maintained document frequencies (same contract as
    /// [`Corpus::doc_frequencies`], without the full-corpus scan).
    pub fn doc_frequencies(&self) -> &[u32] {
        &self.df
    }

    /// TF-IDF model over the merged corpus, from the maintained counts.
    pub fn tfidf(&self) -> TfIdf {
        TfIdf::from_counts(self.corpus.len(), &self.df)
    }

    /// Fingerprint of the maintained statistics (vocabulary + df + doc
    /// count) — used by equivalence tests to compare against a cold build.
    pub fn stats_fingerprint(&self) -> u128 {
        structmine_store::fingerprint_of(&(&self.corpus.vocab, &self.df, self.corpus.len() as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::Vocab;

    /// A from-scratch build: tokenize every line against a fresh vocabulary,
    /// interning + bumping counts per occurrence — the reference the merge
    /// rule must reproduce byte-for-byte.
    fn cold_build(lines: &[&str]) -> Corpus {
        let mut c = Corpus::new(Vocab::new());
        for l in lines {
            let toks = tokenize::encode_interning(l, &mut c.vocab);
            for &t in &toks {
                c.vocab.bump(t);
            }
            c.docs.push(Doc::from_tokens(toks));
        }
        c
    }

    const BASE: &[&str] = &["the match ended in a draw", "court rules on appeal"];
    const STREAM: &[&str] = &[
        "startup raises funding round",
        "midfielder scores twice in derby",
        "judge delays the ruling",
        "quarterly earnings beat forecast",
        "novel vaccine enters trial phase",
    ];

    #[test]
    fn incremental_stats_match_cold_concatenated_build() {
        // Apply the stream as 1, 2, and 5 deltas; all must equal the cold
        // build of base ++ stream, bit for bit.
        for k in [1usize, 2, 5] {
            let mut dc = DeltaCorpus::from_corpus(cold_build(BASE));
            for chunk in STREAM.chunks(STREAM.len().div_ceil(k)) {
                let lines: Vec<String> = chunk.iter().map(|s| s.to_string()).collect();
                dc.apply_text(&lines);
            }
            let all: Vec<&str> = BASE.iter().chain(STREAM.iter()).copied().collect();
            let cold = cold_build(&all);
            assert_eq!(dc.corpus().fingerprint(), cold.fingerprint(), "k={k}");
            assert_eq!(dc.doc_frequencies(), &cold.doc_frequencies()[..], "k={k}");
            let warm_idf = dc.tfidf();
            let cold_idf = TfIdf::fit(&cold);
            for t in 0..dc.corpus().vocab.len() as TokenId {
                assert_eq!(
                    warm_idf.idf(t).to_bits(),
                    cold_idf.idf(t).to_bits(),
                    "idf bits differ at token {t} (k={k})"
                );
            }
        }
    }

    #[test]
    fn gen_range_partitions_the_corpus() {
        let mut dc = DeltaCorpus::from_corpus(cold_build(BASE));
        dc.apply_text(&["one new doc".to_string()]);
        dc.apply_text(&["two".to_string(), "more docs".to_string()]);
        assert_eq!(dc.gen_range(0), 0..2);
        assert_eq!(dc.gen_range(1), 2..3);
        assert_eq!(dc.gen_range(2), 3..5);
        assert_eq!(dc.generation(), 2);
        assert_eq!(dc.len(), 5);
    }

    #[test]
    fn duplicate_and_out_of_order_deltas_fail_closed() {
        let mut dc = DeltaCorpus::from_corpus(cold_build(BASE));
        let fingerprint = dc.corpus().fingerprint();
        let doc = Doc::from_tokens(vec![5]);

        let dup = CorpusDelta {
            generation: 0,
            docs: vec![doc.clone()],
        };
        assert_eq!(
            dc.apply(dup),
            Err(DeltaError::Duplicate {
                generation: 0,
                current: 0
            })
        );
        let skip = CorpusDelta {
            generation: 2,
            docs: vec![doc],
        };
        assert_eq!(
            dc.apply(skip),
            Err(DeltaError::OutOfOrder {
                expected: 1,
                got: 2
            })
        );
        // Rejection left every statistic untouched.
        assert_eq!(dc.corpus().fingerprint(), fingerprint);
        assert_eq!(dc.generation(), 0);
    }

    #[test]
    fn unknown_token_fails_closed_before_mutation() {
        let mut dc = DeltaCorpus::from_corpus(cold_build(BASE));
        let vocab_len = dc.corpus().vocab.len();
        let bad = dc.next_delta(vec![
            Doc::from_tokens(vec![5]),
            Doc::from_tokens(vec![vocab_len as TokenId]),
        ]);
        let fingerprint = dc.corpus().fingerprint();
        assert_eq!(
            dc.apply(bad),
            Err(DeltaError::UnknownToken {
                token: vocab_len as TokenId,
                vocab_len,
            })
        );
        // The first (valid) doc was not partially applied.
        assert_eq!(dc.corpus().fingerprint(), fingerprint);
        assert_eq!(dc.len(), BASE.len());
    }

    #[test]
    fn closed_vocab_apply_matches_apply_text_for_known_words() {
        // When every word is already in the vocabulary, the closed-vocab
        // token path and the text path produce identical state.
        let mut by_tokens = DeltaCorpus::from_corpus(cold_build(BASE));
        let mut by_text = DeltaCorpus::from_corpus(cold_build(BASE));
        let line = "the court match".to_string();
        let toks = tokenize::encode(&line, &by_tokens.corpus().vocab);
        let delta = by_tokens.next_delta(vec![Doc::from_tokens(toks)]);
        by_tokens.apply(delta).unwrap();
        by_text.apply_text(std::slice::from_ref(&line));
        assert_eq!(by_tokens.stats_fingerprint(), by_text.stats_fingerprint());
        assert_eq!(
            by_tokens.corpus().fingerprint(),
            by_text.corpus().fingerprint()
        );
    }

    #[test]
    fn delta_fingerprints_identify_content() {
        let mut a = DeltaCorpus::from_corpus(cold_build(BASE));
        let mut b = DeltaCorpus::from_corpus(cold_build(BASE));
        a.apply_text(&["same delta".to_string()]);
        b.apply_text(&["same delta".to_string()]);
        assert_eq!(a.delta_fingerprint(1), b.delta_fingerprint(1));
        let mut c = DeltaCorpus::from_corpus(cold_build(BASE));
        c.apply_text(&["different delta".to_string()]);
        assert_ne!(a.delta_fingerprint(1), c.delta_fingerprint(1));
    }
}
