//! The synthetic text world: pools of words and mixture-based document
//! generation.
//!
//! A [`World`] interns a set of named word **pools** (topic lexicons, domain
//! lexicons, the general filler pool) into one shared vocabulary. Documents
//! are generated from a **mixture spec**: a list of `(pool, weight)` pairs.
//! For each token the generator picks a pool proportionally to the weights
//! and then a word within the pool from a Zipf-tilted distribution, so the
//! corpus has realistic frequency skew.
//!
//! Polysemy needs no special machinery: a word string appearing in two pools
//! interns to a single token id, so its sense is determined purely by the
//! co-occurring pool — exactly the property contextualized methods exploit.

use crate::corpus::{Corpus, Doc};
use crate::vocab::{TokenId, Vocab};
use rand::rngs::StdRng;
use rand::Rng;
use structmine_linalg::rng as lrng;

/// Identifier of a word pool inside a [`World`].
pub type PoolId = usize;

/// Configuration of the document generator.
#[derive(Clone, Debug)]
pub struct WorldConfig {
    /// Mean document length in tokens.
    pub doc_len_mean: f32,
    /// Standard deviation of document length.
    pub doc_len_std: f32,
    /// Zipf exponent for within-pool word frequencies (0 = uniform).
    pub zipf_power: f32,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            doc_len_mean: 40.0,
            doc_len_std: 12.0,
            zipf_power: 0.7,
        }
    }
}

/// A mixture component: sample from `pool` with probability proportional to
/// `weight`.
#[derive(Clone, Copy, Debug)]
pub struct MixComponent {
    /// Which pool to draw from.
    pub pool: PoolId,
    /// Relative weight of the pool in the mixture.
    pub weight: f32,
}

/// A synthetic text world: shared vocabulary plus named word pools.
#[derive(Clone, Debug)]
pub struct World {
    vocab: Vocab,
    pools: Vec<Pool>,
    pool_names: Vec<String>,
    config: WorldConfig,
}

#[derive(Clone, Debug)]
struct Pool {
    tokens: Vec<TokenId>,
    weights: Vec<f32>,
}

impl World {
    /// Create an empty world with the given generator configuration.
    pub fn new(config: WorldConfig) -> Self {
        World {
            vocab: Vocab::new(),
            pools: Vec::new(),
            pool_names: Vec::new(),
            config,
        }
    }

    /// Intern a named pool of words; returns its id. Re-adding a name is an
    /// error (recipes define each pool once).
    pub fn add_pool(&mut self, name: &str, words: &[&str]) -> PoolId {
        assert!(
            !self.pool_names.iter().any(|n| n == name),
            "pool {name} already exists"
        );
        let tokens: Vec<TokenId> = words.iter().map(|w| self.vocab.intern(w)).collect();
        let weights: Vec<f32> = (0..tokens.len())
            .map(|rank| 1.0 / ((rank + 1) as f32).powf(self.config.zipf_power))
            .collect();
        self.pools.push(Pool { tokens, weights });
        self.pool_names.push(name.to_string());
        self.pools.len() - 1
    }

    /// Add a pool from a named lexicon in [`super::lexicon`].
    pub fn add_lexicon(&mut self, name: &str) -> PoolId {
        self.add_pool(name, super::lexicon::lexicon(name))
    }

    /// Pool id by name.
    pub fn pool(&self, name: &str) -> Option<PoolId> {
        self.pool_names.iter().position(|n| n == name)
    }

    /// The tokens of a pool.
    pub fn pool_tokens(&self, id: PoolId) -> &[TokenId] {
        &self.pools[id].tokens
    }

    /// Shared vocabulary (all pools interned).
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Consume the world, returning its vocabulary.
    pub fn into_vocab(self) -> Vocab {
        self.vocab
    }

    /// Generator configuration.
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    /// Generate one document from a pool mixture.
    pub fn gen_doc(&self, rng: &mut StdRng, mix: &[MixComponent]) -> Vec<TokenId> {
        let len = self.sample_len(rng);
        self.gen_doc_with_len(rng, mix, len)
    }

    /// Generate a document of an exact length from a pool mixture.
    pub fn gen_doc_with_len(
        &self,
        rng: &mut StdRng,
        mix: &[MixComponent],
        len: usize,
    ) -> Vec<TokenId> {
        assert!(!mix.is_empty(), "mixture must have at least one component");
        let weights: Vec<f32> = mix.iter().map(|c| c.weight).collect();
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            let c = &mix[lrng::sample_categorical(rng, &weights)];
            let pool = &self.pools[c.pool];
            let w = lrng::sample_categorical(rng, &pool.weights);
            out.push(pool.tokens[w]);
        }
        out
    }

    /// Sample a document length from the configured normal, clamped to >= 8.
    pub fn sample_len(&self, rng: &mut StdRng) -> usize {
        let l = self.config.doc_len_mean + lrng::gaussian(rng) * self.config.doc_len_std;
        l.max(8.0).round() as usize
    }

    /// Generate `n` documents into a fresh corpus, tallying vocabulary counts.
    pub fn gen_corpus(
        &self,
        rng: &mut StdRng,
        specs: &[(Vec<MixComponent>, Vec<usize>)],
    ) -> Corpus {
        let mut corpus = Corpus::new(self.vocab.clone());
        for (mix, labels) in specs {
            let tokens = self.gen_doc(rng, mix);
            for &t in &tokens {
                corpus.vocab.bump(t);
            }
            let mut doc = Doc::from_tokens(tokens);
            doc.labels = labels.clone();
            corpus.docs.push(doc);
        }
        corpus
    }

    /// Draw a random token from a pool (used for tag/keyword synthesis).
    pub fn sample_from_pool(&self, rng: &mut StdRng, id: PoolId) -> TokenId {
        let pool = &self.pools[id];
        let w = lrng::sample_categorical(rng, &pool.weights);
        pool.tokens[w]
    }

    /// Jitter for document lengths used by short-text recipes (tweets).
    pub fn short_len(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(8..=16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use structmine_linalg::rng::seeded;

    fn sample_world() -> World {
        let mut w = World::new(WorldConfig::default());
        w.add_pool("general", &["the", "of", "and"]);
        w.add_lexicon("soccer");
        w.add_lexicon("law");
        w
    }

    #[test]
    fn polysemes_share_a_token_id() {
        let w = sample_world();
        let soccer = w.pool("soccer").unwrap();
        let law = w.pool("law").unwrap();
        let penalty = w.vocab().id("penalty").unwrap();
        assert!(w.pool_tokens(soccer).contains(&penalty));
        assert!(w.pool_tokens(law).contains(&penalty));
    }

    #[test]
    fn gen_doc_draws_only_from_mixture_pools() {
        let w = sample_world();
        let mut rng = seeded(1);
        let soccer = w.pool("soccer").unwrap();
        let mix = [MixComponent {
            pool: soccer,
            weight: 1.0,
        }];
        let doc = w.gen_doc_with_len(&mut rng, &mix, 200);
        let allowed: std::collections::HashSet<_> = w.pool_tokens(soccer).iter().collect();
        assert!(doc.iter().all(|t| allowed.contains(t)));
    }

    #[test]
    fn mixture_weights_are_respected() {
        let w = sample_world();
        let mut rng = seeded(2);
        let general = w.pool("general").unwrap();
        let soccer = w.pool("soccer").unwrap();
        let mix = [
            MixComponent {
                pool: soccer,
                weight: 0.8,
            },
            MixComponent {
                pool: general,
                weight: 0.2,
            },
        ];
        let doc = w.gen_doc_with_len(&mut rng, &mix, 5000);
        let general_set: std::collections::HashSet<_> = w.pool_tokens(general).iter().collect();
        let general_frac =
            doc.iter().filter(|t| general_set.contains(t)).count() as f32 / doc.len() as f32;
        assert!(
            (general_frac - 0.2).abs() < 0.03,
            "general fraction {general_frac}"
        );
    }

    #[test]
    fn zipf_tilts_within_pool_frequencies() {
        let w = sample_world();
        let mut rng = seeded(3);
        let soccer = w.pool("soccer").unwrap();
        let mix = [MixComponent {
            pool: soccer,
            weight: 1.0,
        }];
        let doc = w.gen_doc_with_len(&mut rng, &mix, 20_000);
        let first = w.pool_tokens(soccer)[0];
        let last = *w.pool_tokens(soccer).last().unwrap();
        let cf = doc.iter().filter(|&&t| t == first).count();
        let cl = doc.iter().filter(|&&t| t == last).count();
        assert!(cf > cl, "zipf head {cf} should outnumber tail {cl}");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let w = sample_world();
        let soccer = w.pool("soccer").unwrap();
        let mix = [MixComponent {
            pool: soccer,
            weight: 1.0,
        }];
        let a = w.gen_doc(&mut seeded(7), &mix);
        let b = w.gen_doc(&mut seeded(7), &mix);
        assert_eq!(a, b);
    }

    #[test]
    fn gen_corpus_records_counts_and_labels() {
        let w = sample_world();
        let soccer = w.pool("soccer").unwrap();
        let mix = vec![MixComponent {
            pool: soccer,
            weight: 1.0,
        }];
        let specs = vec![(mix.clone(), vec![0]), (mix, vec![1])];
        let corpus = w.gen_corpus(&mut seeded(4), &specs);
        assert_eq!(corpus.len(), 2);
        assert_eq!(corpus.docs[0].labels, vec![0]);
        let total: u64 = (0..corpus.vocab.len() as u32)
            .map(|t| corpus.vocab.count(t))
            .sum();
        assert_eq!(total as usize, corpus.n_tokens());
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_pool_name_panics() {
        let mut w = sample_world();
        w.add_pool("soccer", &["x"]);
    }
}
