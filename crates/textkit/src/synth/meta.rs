//! Metadata synthesis: attach users, tags, venues, authors, and citation
//! edges to a labeled corpus.
//!
//! The generative story follows MetaCat's reading of metadata: **global**
//! metadata (users, authors, venues) *causes* documents — an entity has
//! topical preferences and produces documents about them — while **local**
//! metadata (tags) *describes* documents. Citation edges preferentially link
//! documents that share a label, which is what MICoL's meta-path positive
//! pairs exploit.

use crate::corpus::Corpus;
use crate::synth::dataset::MetaStats;
use crate::synth::error::SynthError;
use rand::rngs::StdRng;
use rand::Rng;

/// Knobs for metadata synthesis. Zero-valued counts disable that entity.
#[derive(Clone, Debug)]
pub struct MetaConfig {
    /// Distinct users per class; each user prefers exactly one class.
    pub users_per_class: usize,
    /// Probability a document's user is drawn uniformly instead of from the
    /// label-preferring pool.
    pub user_noise: f32,
    /// Distinct tags owned by each class.
    pub tags_per_class: usize,
    /// Probability an individual tag is drawn from a random class.
    pub tag_noise: f32,
    /// Maximum tags attached to one document (at least 1 when enabled).
    pub max_tags_per_doc: usize,
    /// Distinct venues per class.
    pub venues_per_class: usize,
    /// Distinct authors per class.
    pub authors_per_class: usize,
    /// Maximum authors per document.
    pub max_authors_per_doc: usize,
    /// Citation edges per document (to earlier documents only).
    pub refs_per_doc: usize,
    /// Probability a citation targets a document sharing a label.
    pub ref_same_label_prob: f32,
}

impl Default for MetaConfig {
    fn default() -> Self {
        MetaConfig {
            users_per_class: 0,
            user_noise: 0.1,
            tags_per_class: 0,
            tag_noise: 0.1,
            max_tags_per_doc: 3,
            venues_per_class: 0,
            authors_per_class: 0,
            max_authors_per_doc: 3,
            refs_per_doc: 0,
            ref_same_label_prob: 0.8,
        }
    }
}

impl MetaConfig {
    /// A social-media-style configuration: users and tags only.
    pub fn social() -> Self {
        MetaConfig {
            users_per_class: 8,
            tags_per_class: 4,
            ..Default::default()
        }
    }

    /// A bibliographic configuration: venues, authors and citations.
    pub fn bibliographic() -> Self {
        MetaConfig {
            venues_per_class: 2,
            authors_per_class: 10,
            refs_per_doc: 3,
            ..Default::default()
        }
    }
}

/// Attach metadata to every document of `corpus` in place.
///
/// Documents must already carry labels; a document's "home" class is its
/// first label — an unlabeled document is a typed
/// [`SynthError::UnlabeledDoc`], never a panic. Returns the resulting
/// entity cardinalities.
pub fn attach_metadata(
    corpus: &mut Corpus,
    n_classes: usize,
    cfg: &MetaConfig,
    rng: &mut StdRng,
) -> Result<MetaStats, SynthError> {
    let n_users = cfg.users_per_class * n_classes;
    let n_tags = cfg.tags_per_class * n_classes;
    let n_venues = cfg.venues_per_class * n_classes;
    let n_authors = cfg.authors_per_class * n_classes;

    // Pre-compute, per class, the doc indices seen so far (for citations).
    let mut earlier_by_class: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
    let mut earlier_all: Vec<usize> = Vec::new();

    for i in 0..corpus.docs.len() {
        let home = *corpus.docs[i]
            .labels
            .first()
            .ok_or(SynthError::UnlabeledDoc { index: i })?;
        debug_assert!(home < n_classes);

        if cfg.users_per_class > 0 {
            let user = if rng.gen::<f32>() < cfg.user_noise {
                rng.gen_range(0..n_users)
            } else {
                home * cfg.users_per_class + rng.gen_range(0..cfg.users_per_class)
            };
            corpus.docs[i].user = Some(user);
        }

        if cfg.tags_per_class > 0 {
            let k = rng.gen_range(1..=cfg.max_tags_per_doc.max(1));
            let mut tags = Vec::with_capacity(k);
            for _ in 0..k {
                let class = if rng.gen::<f32>() < cfg.tag_noise {
                    rng.gen_range(0..n_classes)
                } else {
                    home
                };
                tags.push(class * cfg.tags_per_class + rng.gen_range(0..cfg.tags_per_class));
            }
            tags.sort_unstable();
            tags.dedup();
            corpus.docs[i].tags = tags;
        }

        if cfg.venues_per_class > 0 {
            let class = if rng.gen::<f32>() < 0.1 {
                rng.gen_range(0..n_classes)
            } else {
                home
            };
            corpus.docs[i].venue =
                Some(class * cfg.venues_per_class + rng.gen_range(0..cfg.venues_per_class));
        }

        if cfg.authors_per_class > 0 {
            let k = rng.gen_range(1..=cfg.max_authors_per_doc.max(1));
            let mut authors = Vec::with_capacity(k);
            for _ in 0..k {
                let class = if rng.gen::<f32>() < cfg.user_noise {
                    rng.gen_range(0..n_classes)
                } else {
                    home
                };
                authors
                    .push(class * cfg.authors_per_class + rng.gen_range(0..cfg.authors_per_class));
            }
            authors.sort_unstable();
            authors.dedup();
            corpus.docs[i].authors = authors;
        }

        if cfg.refs_per_doc > 0 && !earlier_all.is_empty() {
            let mut refs = Vec::new();
            for _ in 0..cfg.refs_per_doc {
                let same = rng.gen::<f32>() < cfg.ref_same_label_prob;
                let pool: &[usize] = if same && !earlier_by_class[home].is_empty() {
                    &earlier_by_class[home]
                } else {
                    &earlier_all
                };
                refs.push(pool[rng.gen_range(0..pool.len())]);
            }
            refs.sort_unstable();
            refs.dedup();
            corpus.docs[i].refs = refs;
        }

        for &l in &corpus.docs[i].labels.clone() {
            if l < n_classes {
                earlier_by_class[l].push(i);
            }
        }
        earlier_all.push(i);
    }

    Ok(MetaStats {
        n_users,
        n_tags,
        n_venues,
        n_authors,
    })
}

/// Fraction of documents whose user's preferred class matches the document's
/// home label — a diagnostic for how informative the user signal is.
pub fn user_label_agreement(corpus: &Corpus, users_per_class: usize) -> f32 {
    if users_per_class == 0 {
        return 0.0;
    }
    let mut hit = 0usize;
    let mut total = 0usize;
    for doc in &corpus.docs {
        if let (Some(u), Some(&l)) = (doc.user, doc.labels.first()) {
            total += 1;
            if u / users_per_class == l {
                hit += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        hit as f32 / total as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::Doc;
    use crate::vocab::Vocab;
    use structmine_linalg::rng as lrng;

    fn labeled_corpus(n: usize, n_classes: usize) -> Corpus {
        let mut vocab = Vocab::new();
        let w = vocab.intern("w");
        let mut c = Corpus::new(vocab);
        for i in 0..n {
            let mut d = Doc::from_tokens(vec![w]);
            d.labels = vec![i % n_classes];
            c.docs.push(d);
        }
        c
    }

    #[test]
    fn social_config_attaches_users_and_tags() {
        let mut c = labeled_corpus(200, 4);
        let stats =
            attach_metadata(&mut c, 4, &MetaConfig::social(), &mut lrng::seeded(1)).unwrap();
        assert_eq!(stats.n_users, 32);
        assert_eq!(stats.n_tags, 16);
        assert!(c
            .docs
            .iter()
            .all(|d| d.user.is_some() && !d.tags.is_empty()));
        assert!(c
            .docs
            .iter()
            .all(|d| d.venue.is_none() && d.refs.is_empty()));
    }

    #[test]
    fn users_correlate_with_labels() {
        let mut c = labeled_corpus(1000, 4);
        attach_metadata(&mut c, 4, &MetaConfig::social(), &mut lrng::seeded(2)).unwrap();
        let agreement = user_label_agreement(&c, 8);
        assert!(agreement > 0.8, "agreement {agreement}");
    }

    #[test]
    fn bibliographic_config_attaches_citations_to_earlier_docs() {
        let mut c = labeled_corpus(300, 3);
        let stats = attach_metadata(
            &mut c,
            3,
            &MetaConfig::bibliographic(),
            &mut lrng::seeded(3),
        )
        .unwrap();
        assert_eq!(stats.n_venues, 6);
        assert_eq!(stats.n_authors, 30);
        for (i, d) in c.docs.iter().enumerate() {
            for &r in &d.refs {
                assert!(r < i, "doc {i} cites later doc {r}");
            }
        }
        // First doc can't cite anyone.
        assert!(c.docs[0].refs.is_empty());
    }

    #[test]
    fn citations_prefer_same_label() {
        let mut c = labeled_corpus(900, 3);
        attach_metadata(
            &mut c,
            3,
            &MetaConfig::bibliographic(),
            &mut lrng::seeded(4),
        )
        .unwrap();
        let mut same = 0usize;
        let mut total = 0usize;
        for d in c.docs.iter().skip(30) {
            for &r in &d.refs {
                total += 1;
                if c.docs[r].labels[0] == d.labels[0] {
                    same += 1;
                }
            }
        }
        let frac = same as f32 / total as f32;
        assert!(frac > 0.7, "same-label citation fraction {frac}");
    }

    #[test]
    fn tags_stay_in_range_and_dedupe() {
        let mut c = labeled_corpus(150, 5);
        let stats =
            attach_metadata(&mut c, 5, &MetaConfig::social(), &mut lrng::seeded(5)).unwrap();
        for d in &c.docs {
            let set: std::collections::HashSet<_> = d.tags.iter().collect();
            assert_eq!(set.len(), d.tags.len());
            assert!(d.tags.iter().all(|&t| t < stats.n_tags));
        }
    }

    #[test]
    fn unlabeled_doc_is_a_typed_error_not_a_panic() {
        // Regression: an unlabeled document used to panic inside the
        // metadata loop with a backtrace.
        let mut vocab = Vocab::new();
        let w = vocab.intern("w");
        let mut c = Corpus::new(vocab);
        c.docs.push(Doc::from_tokens(vec![w])); // no labels
        match attach_metadata(&mut c, 2, &MetaConfig::social(), &mut lrng::seeded(1)) {
            Err(SynthError::UnlabeledDoc { index }) => assert_eq!(index, 0),
            other => panic!("expected UnlabeledDoc, got {other:?}"),
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = labeled_corpus(100, 2);
        let mut b = labeled_corpus(100, 2);
        attach_metadata(&mut a, 2, &MetaConfig::social(), &mut lrng::seeded(9)).unwrap();
        attach_metadata(&mut b, 2, &MetaConfig::social(), &mut lrng::seeded(9)).unwrap();
        for (x, y) in a.docs.iter().zip(&b.docs) {
            assert_eq!(x.user, y.user);
            assert_eq!(x.tags, y.tags);
        }
    }
}
