//! Synthetic world generation: lexicons, the pool-mixture document
//! generator, metadata synthesis, and named dataset recipes.
//!
//! See `DESIGN.md` §1 for the substitution argument: these generators plant
//! exactly the signal types (topical classes, ambiguous seed words,
//! hierarchies, metadata graphs) that the tutorial's methods exploit, so the
//! relative orderings its tables demonstrate are preserved at laptop scale.

pub mod dataset;
pub mod error;
pub mod lexicon;
pub mod meta;
pub mod recipes;
pub mod world;

pub use dataset::{Dataset, LabelSet, MetaStats};
pub use error::SynthError;
pub use meta::{attach_metadata, MetaConfig};
pub use recipes::{
    by_name, drift_stream, pretraining_corpus, standard_world, topic_drift, DriftBatch, ALL_RECIPES,
};
pub use world::{MixComponent, PoolId, World, WorldConfig};
