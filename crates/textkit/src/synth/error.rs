//! Typed errors for the synthetic-world recipes.
//!
//! Recipe construction used to `unwrap()` its pool lookups, so a bad recipe
//! or lexicon name surfaced as a panic with a backtrace. Builders now return
//! [`SynthError`] instead; entry points (the CLI, table binaries) convert it
//! into their own error taxonomy so bad input exits cleanly.

/// A failure while building a synthetic dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthError {
    /// The recipe name is not in [`super::recipes::ALL_RECIPES`].
    UnknownRecipe {
        /// The name that failed to resolve.
        name: String,
    },
    /// A recipe referenced a pool the standard world does not define.
    MissingPool {
        /// The pool (lexicon) name that failed to resolve.
        pool: String,
        /// The recipe (or builder) that referenced it.
        recipe: String,
    },
    /// Metadata synthesis was asked to decorate an unlabeled document.
    UnlabeledDoc {
        /// Corpus index of the offending document.
        index: usize,
    },
}

impl std::fmt::Display for SynthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthError::UnknownRecipe { name } => {
                write!(
                    f,
                    "unknown recipe {name} (expected one of: {})",
                    super::recipes::ALL_RECIPES.join(", ")
                )
            }
            SynthError::MissingPool { pool, recipe } => {
                write!(
                    f,
                    "recipe {recipe} references pool {pool}, which the standard world does not define"
                )
            }
            SynthError::UnlabeledDoc { index } => {
                write!(
                    f,
                    "metadata synthesis requires labeled documents, but document {index} has no labels"
                )
            }
        }
    }
}

impl std::error::Error for SynthError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offender() {
        let e = SynthError::UnknownRecipe {
            name: "frob".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("frob"));
        assert!(msg.contains("agnews"), "should list valid recipes: {msg}");

        let e = SynthError::MissingPool {
            pool: "no_such_lexicon".into(),
            recipe: "custom".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("no_such_lexicon") && msg.contains("custom"));
    }
}
