//! Hand-curated domain lexicons for the synthetic worlds.
//!
//! Each named lexicon is a list of words characteristic of one topic. The
//! lists deliberately share a few **polysemous** words across topics —
//! `penalty` (soccer / law), `court` (basketball / law), `pitch` (soccer /
//! music), `virus` (security / infectious disease), `windows` (software /
//! buildings), `apple` (hardware / food), `star` (astronomy / movies),
//! `bank` (banking / rivers), `trial` (law / clinical medicine) — because
//! ConWea's contextualization experiments and LOTClass's "Table 1" demo
//! depend on sense ambiguity being present in the corpus.
//!
//! The lists are the synthetic analogue of the benchmark datasets' topical
//! vocabulary; see `DESIGN.md` §1.

/// Filler words every document mixes in, regardless of topic.
pub const GENERAL: &[&str] = &[
    "the", "a", "an", "of", "in", "on", "at", "to", "for", "with", "and", "or", "but", "is",
    "was", "are", "were", "be", "been", "has", "have", "had", "it", "its", "this", "that",
    "these", "those", "he", "she", "they", "we", "you", "new", "one", "two", "first", "last",
    "also", "said", "says", "after", "before", "over", "under", "more", "most", "many", "much",
    "very", "just", "now", "today", "week", "year", "time", "people", "group", "part", "end",
    "way", "day", "made", "make", "back", "still", "while", "during", "about", "against",
];

/// `(lexicon name, words)` master table.
///
/// Names are referenced by the dataset recipes; the first word of each list
/// doubles as the default class name where a recipe does not override it.
pub const TOPICS: &[(&str, &[&str])] = &[
    // ----- news coarse domains ---------------------------------------------
    ("politics", &[
        "politics", "government", "president", "senate", "congress", "minister", "policy",
        "vote", "campaign", "democracy", "parliament", "legislation", "governor", "mayor",
        "cabinet", "diplomat", "treaty", "sanctions", "reform", "coalition",
    ]),
    ("sports", &[
        "sports", "team", "game", "season", "coach", "player", "league", "championship",
        "tournament", "fans", "stadium", "score", "win", "defeat", "victory", "playoffs",
        "athlete", "referee", "trophy", "roster",
    ]),
    ("business", &[
        "business", "company", "market", "stock", "investor", "profit", "revenue", "shares",
        "trade", "economy", "earnings", "billion", "ceo", "merger", "acquisition", "quarterly",
        "shareholders", "commerce", "firm", "startup",
    ]),
    ("technology", &[
        "technology", "computer", "software", "internet", "digital", "device", "data",
        "users", "app", "online", "platform", "gadget", "innovation", "electronics",
        "silicon", "engineers", "prototype", "upgrade", "wireless", "interface",
    ]),
    ("science", &[
        "science", "research", "scientist", "study", "laboratory", "experiment", "theory",
        "discovery", "journal", "professor", "university", "hypothesis", "evidence",
        "findings", "peer", "review", "grant", "institute", "analysis", "measurement",
    ]),
    ("health", &[
        "health", "patient", "doctor", "hospital", "treatment", "disease", "medical",
        "drug", "clinic", "symptoms", "nurse", "physician", "prescription", "wellness",
        "diagnosis", "recovery", "illness", "epidemic", "therapy", "surgeon",
    ]),
    ("arts", &[
        "arts", "artist", "museum", "gallery", "exhibition", "culture", "design",
        "creative", "portrait", "canvas", "sculpture", "curator", "masterpiece",
        "aesthetic", "installation", "collection", "heritage", "abstract", "studio", "critic",
    ]),
    ("world", &[
        "world", "international", "foreign", "global", "nations", "embassy", "summit",
        "border", "crisis", "conflict", "refugees", "diplomacy", "alliance", "united",
        "ambassador", "peacekeeping", "territory", "regime", "treaties", "humanitarian",
    ]),
    // ----- politics subtopics ----------------------------------------------
    ("elections", &[
        "elections", "election", "ballot", "candidate", "voters", "primary", "polling",
        "nominee", "caucus", "swing", "turnout", "incumbent", "electorate", "landslide",
    ]),
    ("federal_budget", &[
        "budget", "deficit", "spending", "appropriations", "fiscal", "treasury", "debt",
        "allocation", "expenditure", "surplus", "austerity", "stimulus",
    ]),
    ("immigration", &[
        "immigration", "visa", "border", "refugee", "asylum", "migrant", "citizenship",
        "deportation", "naturalization", "quota", "undocumented", "detention",
    ]),
    ("military", &[
        "military", "army", "troops", "soldier", "combat", "defense", "missile",
        "battalion", "weapons", "airstrike", "navy", "pentagon", "deployment", "brigade",
    ]),
    ("law", &[
        "law", "court", "judge", "trial", "verdict", "lawsuit", "attorney", "justice",
        "penalty", "prosecutor", "ruling", "appeal", "jury", "testimony", "statute",
        "plaintiff", "defendant", "injunction",
    ]),
    ("surveillance", &[
        "surveillance", "privacy", "intelligence", "wiretap", "spying", "leaks",
        "whistleblower", "classified", "monitoring", "interception",
    ]),
    ("gun_control", &[
        "gun", "firearms", "rifle", "shooting", "ammunition", "holster", "background",
        "checks", "magazine", "caliber",
    ]),
    ("abortion", &[
        "abortion", "reproductive", "pregnancy", "clinic", "fetal", "contraception",
        "planned", "parenthood", "roe", "prolife",
    ]),
    // ----- sports subtopics -------------------------------------------------
    ("soccer", &[
        "soccer", "goal", "penalty", "midfielder", "striker", "fifa", "worldcup",
        "keeper", "offside", "corner", "kick", "pitch", "dribble", "header", "freekick",
    ]),
    ("basketball", &[
        "basketball", "nba", "dunk", "rebound", "pointer", "hoop", "court", "guard",
        "forward", "layup", "buzzer", "backboard", "crossover", "fastbreak",
    ]),
    ("baseball", &[
        "baseball", "inning", "pitcher", "homerun", "batter", "mlb", "shortstop",
        "bullpen", "catcher", "outfield", "strikeout", "dugout", "fastball", "umpire",
    ]),
    ("tennis", &[
        "tennis", "serve", "wimbledon", "racket", "ace", "baseline", "volley",
        "grandslam", "deuce", "backhand", "forehand", "tiebreak", "rally", "smash",
    ]),
    ("hockey", &[
        "hockey", "puck", "nhl", "goalie", "rink", "slapshot", "icing", "defenseman",
        "faceoff", "powerplay", "bodycheck", "zamboni", "hattrick", "penaltybox",
    ]),
    ("golf", &[
        "golf", "birdie", "fairway", "putt", "masters", "caddie", "bogey", "tee",
        "eagle", "bunker", "clubhouse", "swing", "handicap", "green",
    ]),
    ("football", &[
        "football", "quarterback", "touchdown", "nfl", "yards", "fumble", "lineman",
        "superbowl", "interception", "punt", "huddle", "endzone", "blitz", "kickoff",
    ]),
    // ----- business subtopics ----------------------------------------------
    ("stocks", &[
        "stocks", "nasdaq", "dow", "index", "rally", "selloff", "dividend", "bonds",
        "futures", "hedge", "portfolio", "bullish", "bearish", "volatility",
    ]),
    ("economy", &[
        "economy", "inflation", "unemployment", "gdp", "recession", "growth",
        "consumer", "wages", "prices", "demand", "productivity", "exports", "slowdown",
    ]),
    ("banking", &[
        "banking", "bank", "loan", "credit", "mortgage", "deposit", "lending",
        "interest", "currency", "reserve", "branch", "teller", "overdraft", "collateral",
    ]),
    ("energy_markets", &[
        "energy", "oil", "gas", "barrel", "opec", "drilling", "pipeline", "crude",
        "refinery", "coal", "petroleum", "rig", "wellhead", "fracking",
    ]),
    ("intl_business", &[
        "tariff", "exports", "imports", "yuan", "euro", "manufacturing", "supply",
        "outsourcing", "logistics", "freight", "customs", "subsidies", "dumping",
    ]),
    // ----- technology subtopics --------------------------------------------
    ("software", &[
        "software", "programming", "code", "developer", "linux", "windows",
        "opensource", "bug", "release", "compiler", "repository", "debugging",
        "framework", "library", "version",
    ]),
    ("internet", &[
        "internet", "web", "google", "search", "browser", "website", "email",
        "social", "streaming", "cloud", "bandwidth", "server", "hosting", "domain",
    ]),
    ("hardware", &[
        "hardware", "chip", "processor", "semiconductor", "intel", "circuit",
        "memory", "gigabyte", "motherboard", "transistor", "apple", "keyboard",
        "wafer", "fabrication",
    ]),
    ("machine_intelligence", &[
        "intelligence", "algorithm", "neural", "robot", "machine", "learning",
        "model", "training", "automation", "prediction", "dataset", "benchmark",
        "autonomous", "chatbot",
    ]),
    ("cybersecurity", &[
        "security", "hacker", "malware", "breach", "encryption", "password", "virus",
        "firewall", "phishing", "ransomware", "exploit", "vulnerability", "botnet",
        "authentication",
    ]),
    // ----- science subtopics -------------------------------------------------
    ("physics", &[
        "physics", "quantum", "particle", "relativity", "photon", "collider",
        "electron", "gravity", "boson", "entanglement", "neutrino", "superconductor",
    ]),
    ("cosmos", &[
        "space", "nasa", "telescope", "orbit", "planet", "galaxy", "astronaut",
        "rocket", "mars", "satellite", "star", "comet", "nebula", "lunar",
    ]),
    ("environment", &[
        "climate", "species", "ecosystem", "carbon", "emission", "wildlife",
        "forest", "evolution", "organism", "habitat", "biodiversity", "warming",
        "conservation", "pollution",
    ]),
    ("chemistry", &[
        "chemistry", "molecule", "chemical", "compound", "reaction", "catalyst",
        "polymer", "atom", "solvent", "synthesis", "crystalline", "titration",
    ]),
    ("mathematics", &[
        "mathematics", "theorem", "proof", "algebra", "geometry", "equation",
        "conjecture", "topology", "combinatorics", "integer", "manifold", "lemma",
    ]),
    // ----- health subtopics ---------------------------------------------------
    ("oncology", &[
        "cancer", "tumor", "chemotherapy", "oncology", "malignant", "biopsy",
        "remission", "radiation", "metastasis", "carcinoma", "trial", "screening",
    ]),
    ("infectious_disease", &[
        "virus", "vaccine", "infection", "outbreak", "pandemic", "immunity",
        "pathogen", "influenza", "quarantine", "transmission", "antibodies", "strain",
    ]),
    ("nutrition", &[
        "diet", "nutrition", "obesity", "vitamins", "protein", "calories",
        "exercise", "fitness", "metabolism", "supplements", "cholesterol", "fiber",
    ]),
    // ----- arts subtopics ------------------------------------------------------
    ("music", &[
        "music", "album", "song", "band", "concert", "guitar", "singer", "melody",
        "jazz", "orchestra", "lyrics", "chorus", "pitch", "symphony", "drummer",
    ]),
    ("movies", &[
        "film", "movie", "director", "actor", "hollywood", "cinema", "screenplay",
        "oscar", "premiere", "studio", "trailer", "sequel", "blockbuster", "star",
    ]),
    ("theater", &[
        "theater", "broadway", "stage", "ballet", "dance", "choreography",
        "playwright", "rehearsal", "costume", "audition", "matinee", "ensemble",
    ]),
    ("books", &[
        "book", "novel", "author", "literature", "publisher", "poetry", "fiction",
        "memoir", "bestseller", "chapter", "manuscript", "paperback", "anthology",
    ]),
    // ----- reviews / sentiment -------------------------------------------------
    ("dining", &[
        "restaurant", "menu", "chef", "pizza", "sushi", "flavor", "dessert",
        "dinner", "waiter", "brunch", "appetizer", "sauce", "bakery", "apple",
        "noodles", "espresso",
    ]),
    ("positive", &[
        "great", "excellent", "amazing", "wonderful", "fantastic", "love", "loved",
        "perfect", "best", "awesome", "friendly", "recommend", "delightful",
        "superb", "enjoyable", "delicious", "comfortable", "satisfying",
    ]),
    ("negative", &[
        "terrible", "awful", "horrible", "worst", "bad", "disappointing", "rude",
        "bland", "dirty", "slow", "overpriced", "mediocre", "refund", "complaint",
        "avoid", "broken", "stale", "unacceptable",
    ]),
    // ----- locations (NYT-Location stand-in) -----------------------------------
    ("loc_usa", &["washington", "america", "american", "york", "california", "texas", "chicago", "boston", "senate", "dollar"]),
    ("loc_china", &["beijing", "shanghai", "chinese", "china", "yuan", "guangdong", "mandarin", "shenzhen", "tianjin", "province"]),
    ("loc_france", &["paris", "french", "france", "lyon", "marseille", "seine", "elysee", "baguette", "riviera", "bordeaux"]),
    ("loc_britain", &["london", "british", "britain", "manchester", "scotland", "pound", "westminster", "thames", "wales", "downing"]),
    ("loc_japan", &["tokyo", "japanese", "japan", "osaka", "yen", "kyoto", "shinkansen", "sakura", "okinawa", "nikkei"]),
    ("loc_germany", &["berlin", "german", "germany", "munich", "frankfurt", "bavaria", "bundestag", "autobahn", "hamburg", "rhine"]),
    ("loc_russia", &["moscow", "russian", "russia", "kremlin", "ruble", "siberia", "petersburg", "duma", "volga", "oligarch"]),
    ("loc_canada", &["toronto", "ottawa", "canadian", "canada", "quebec", "vancouver", "alberta", "maple", "ontario", "montreal"]),
    ("loc_italy", &["rome", "italian", "italy", "milan", "venice", "tuscany", "vatican", "naples", "lira", "piazza"]),
    ("loc_brazil", &["brasilia", "brazilian", "brazil", "rio", "saopaulo", "amazon", "carnival", "real", "favela", "copacabana"]),
    // ----- DBpedia-like ontology classes ---------------------------------------
    ("ont_company", &["company", "corporation", "founded", "headquarters", "subsidiary", "enterprise", "brand", "manufacturer", "conglomerate", "holdings"]),
    ("ont_school", &["school", "students", "campus", "curriculum", "enrollment", "faculty", "academy", "kindergarten", "tuition", "alumni"]),
    ("ont_artist", &["painter", "sculptor", "works", "style", "exhibited", "renaissance", "impressionist", "murals", "engraver", "portraitist"]),
    ("ont_athlete", &["competed", "olympics", "medal", "record", "sprinter", "swimmer", "gymnast", "marathon", "relay", "decathlon"]),
    ("ont_politician", &["elected", "served", "office", "party", "senator", "deputy", "chancellor", "legislature", "constituency", "statesman"]),
    ("ont_transport", &["aircraft", "locomotive", "vessel", "engine", "automobile", "ferry", "freighter", "turbine", "chassis", "fuselage"]),
    ("ont_building", &["building", "tower", "architecture", "constructed", "floors", "facade", "skyscraper", "cathedral", "windows", "atrium"]),
    ("ont_river", &["river", "tributary", "basin", "flows", "mouth", "delta", "estuary", "watershed", "bank", "rapids"]),
    ("ont_village", &["village", "district", "population", "census", "municipality", "hamlet", "parish", "commune", "township", "settlement"]),
    ("ont_animal", &["species", "habitat", "mammal", "predator", "nocturnal", "plumage", "herbivore", "burrow", "migratory", "carnivore"]),
    ("ont_plant", &["plant", "flowering", "leaves", "genus", "botanical", "perennial", "shrub", "pollination", "stem", "seedling"]),
    ("ont_album", &["album", "released", "tracks", "recorded", "billboard", "vinyl", "remix", "acoustic", "chart", "studio"]),
    ("ont_film", &["film", "directed", "starring", "premiered", "cast", "cinematography", "adaptation", "screenwriter", "feature", "reel"]),
    ("ont_book", &["novel", "published", "pages", "author", "isbn", "hardcover", "translated", "prose", "narrative", "trilogy"]),
    // ----- research areas (arXiv / MAG-CS stand-in) -----------------------------
    ("cs_nlp", &["language", "parsing", "translation", "corpus", "semantic", "syntax", "tokenization", "embedding", "discourse", "grammar"]),
    ("cs_vision", &["image", "detection", "segmentation", "pixels", "convolution", "recognition", "optical", "stereo", "texture", "keypoint"]),
    ("cs_ml", &["learning", "classifier", "regression", "gradient", "supervised", "clustering", "bayesian", "ensemble", "overfitting", "regularization"]),
    ("cs_db", &["database", "query", "index", "transaction", "sql", "schema", "join", "btree", "concurrency", "relational"]),
    ("cs_systems", &["kernel", "scheduler", "latency", "throughput", "distributed", "consensus", "replication", "filesystem", "virtualization", "cache"]),
    ("cs_networking", &["network", "protocol", "router", "bandwidth", "packet", "tcp", "wireless", "congestion", "topology", "ethernet"]),
    ("cs_theory", &["complexity", "approximation", "polynomial", "bound", "hardness", "reduction", "randomized", "combinatorial", "optimization", "lattice"]),
    ("math_algebra", &["algebra", "ring", "module", "homomorphism", "ideal", "galois", "representation", "category", "functor", "abelian"]),
    ("math_analysis", &["analysis", "convergence", "integral", "derivative", "measure", "banach", "hilbert", "operator", "spectral", "bounded"]),
    ("math_combinatorics", &["combinatorics", "graph", "coloring", "matching", "hypergraph", "permutation", "extremal", "ramsey", "enumeration", "clique"]),
    ("phys_hep", &["collider", "quark", "hadron", "boson", "detector", "luminosity", "decay", "symmetry", "coupling", "accelerator"]),
    ("phys_astro", &["galaxy", "redshift", "supernova", "cosmology", "darkmatter", "quasar", "luminosity", "spectroscopy", "exoplanet", "pulsar"]),
    ("phys_cond", &["lattice", "superconductivity", "magnetism", "phonon", "fermion", "insulator", "graphene", "topological", "crystal", "bandgap"]),
    // ----- biomedical areas (PubMed stand-in) ------------------------------------
    ("bio_genetics", &["gene", "genome", "dna", "mutation", "sequencing", "chromosome", "allele", "transcription", "genotype", "crispr"]),
    ("bio_immunology", &["immune", "antibody", "antigen", "inflammation", "lymphocyte", "cytokine", "macrophage", "autoimmune", "tcell", "vaccine"]),
    ("bio_virology", &["virus", "viral", "coronavirus", "replication", "strain", "infection", "epidemiology", "antiviral", "outbreak", "zoonotic"]),
    ("bio_neuro", &["brain", "neuron", "cortex", "cognitive", "synapse", "dopamine", "hippocampus", "neural", "plasticity", "glial"]),
    ("bio_cardio", &["heart", "cardiac", "artery", "blood", "hypertension", "cholesterol", "stroke", "vascular", "arrhythmia", "stent"]),
    ("bio_oncology", &["tumor", "cancer", "carcinoma", "metastasis", "chemotherapy", "oncogene", "biopsy", "malignant", "lymphoma", "melanoma"]),
    // ----- lifestyle (Twitter stand-in extras) -----------------------------------
    ("travel", &["hotel", "flight", "beach", "vacation", "tourist", "airport", "island", "resort", "passport", "itinerary", "luggage", "cruise"]),
    ("fashion", &["fashion", "dress", "style", "designer", "runway", "wardrobe", "trend", "outfit", "couture", "fabric", "accessories", "boutique"]),
];

/// Look up a lexicon by name.
///
/// # Panics
/// Panics when the name is unknown — recipes reference lexicons statically,
/// so a miss is a programming error.
pub fn lexicon(name: &str) -> &'static [&'static str] {
    TOPICS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, words)| *words)
        .unwrap_or_else(|| panic!("unknown lexicon: {name}"))
}

/// All lexicon names.
pub fn names() -> impl Iterator<Item = &'static str> {
    TOPICS.iter().map(|(n, _)| *n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn lexicon_lookup_works() {
        assert!(lexicon("soccer").contains(&"penalty"));
        assert!(lexicon("law").contains(&"penalty"));
    }

    #[test]
    #[should_panic(expected = "unknown lexicon")]
    fn unknown_lexicon_panics() {
        lexicon("nonexistent-topic");
    }

    #[test]
    fn no_duplicate_lexicon_names() {
        let mut seen = HashSet::new();
        for (name, _) in TOPICS {
            assert!(seen.insert(*name), "duplicate lexicon {name}");
        }
    }

    #[test]
    fn no_duplicate_words_within_a_lexicon() {
        for (name, words) in TOPICS {
            let set: HashSet<_> = words.iter().collect();
            assert_eq!(set.len(), words.len(), "duplicates in {name}");
        }
    }

    #[test]
    fn planted_polysemes_span_topics() {
        // These ambiguities are load-bearing for ConWea/LOTClass experiments.
        let expectations = [
            ("penalty", vec!["soccer", "law"]),
            ("court", vec!["basketball", "law"]),
            ("pitch", vec!["soccer", "music"]),
            ("virus", vec!["cybersecurity", "infectious_disease", "bio_virology"]),
            ("windows", vec!["software", "ont_building"]),
            ("star", vec!["cosmos", "movies"]),
            ("bank", vec!["banking", "ont_river"]),
            ("apple", vec!["hardware", "dining"]),
            ("trial", vec!["law", "oncology"]),
        ];
        let mut by_word: HashMap<&str, Vec<&str>> = HashMap::new();
        for (name, words) in TOPICS {
            for w in *words {
                by_word.entry(w).or_default().push(name);
            }
        }
        for (word, topics) in expectations {
            let homes = by_word.get(word).unwrap_or_else(|| panic!("{word} missing"));
            for t in topics {
                assert!(homes.contains(&t), "{word} should be in {t}, found {homes:?}");
            }
        }
    }

    #[test]
    fn general_words_do_not_collide_with_topic_words() {
        let general: HashSet<_> = GENERAL.iter().collect();
        for (name, words) in TOPICS {
            for w in *words {
                assert!(!general.contains(w), "{w} in {name} is also a general word");
            }
        }
    }
}
