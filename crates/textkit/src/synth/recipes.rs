//! Named dataset recipes.
//!
//! Each public function builds a synthetic stand-in for one of the benchmark
//! datasets the tutorial's tables report on (see `DESIGN.md` §1 for the
//! substitution rationale). All recipes share one **standard world** — every
//! lexicon interned into a single vocabulary — so a PLM pretrained on
//! [`pretraining_corpus`] shares token ids with every dataset, mirroring how
//! BERT's vocabulary covers all downstream corpora.
//!
//! Every recipe takes a `scale` (multiplies document counts; 1.0 = default
//! size) and a `seed`, and is fully deterministic given both.

use crate::corpus::Corpus;
use crate::synth::dataset::{split_indices, Dataset, LabelSet, MetaStats};
use crate::synth::error::SynthError;
use crate::synth::lexicon::{GENERAL, TOPICS};
use crate::synth::meta::{attach_metadata, MetaConfig};
use crate::synth::world::{MixComponent, PoolId, World, WorldConfig};
use crate::taxonomy::Taxonomy;
use rand::Rng;
use structmine_linalg::rng as lrng;

/// Build the standard world: the general pool plus every lexicon, interned
/// in a fixed order so token ids are stable across recipes.
pub fn standard_world(cfg: WorldConfig) -> World {
    standard_world_with_general(cfg).0
}

/// [`standard_world`] plus the id of the general pool — added first and
/// unconditionally, so builders need no fallible lookup for it.
fn standard_world_with_general(cfg: WorldConfig) -> (World, PoolId) {
    let mut w = World::new(cfg);
    let general = w.add_pool("general", GENERAL);
    for (name, words) in TOPICS {
        w.add_pool(name, words);
    }
    (w, general)
}

/// Resolve a pool by name, turning a miss into a typed [`SynthError`]
/// instead of the panic the builders used to raise.
fn pool(world: &World, recipe: &str, name: &str) -> Result<PoolId, SynthError> {
    world.pool(name).ok_or_else(|| SynthError::MissingPool {
        pool: name.to_string(),
        recipe: recipe.to_string(),
    })
}

/// An unlabeled general-domain corpus for pretraining the mini-PLM.
/// Documents mix one or two random topics with general filler, so the model
/// sees every topical word — including each sense of the polysemes — in
/// context.
pub fn pretraining_corpus(n_docs: usize, seed: u64) -> Corpus {
    let (world, general) = standard_world_with_general(WorldConfig::default());
    let mut rng = lrng::seeded(seed);
    let n_pools = TOPICS.len();
    let mut specs = Vec::with_capacity(n_docs);
    for _ in 0..n_docs {
        let a = 1 + rng.gen_range(0..n_pools);
        let mut mix = vec![
            MixComponent {
                pool: a,
                weight: 0.5,
            },
            MixComponent {
                pool: general,
                weight: 0.35,
            },
        ];
        if rng.gen::<f32>() < 0.5 {
            let b = 1 + rng.gen_range(0..n_pools);
            mix.push(MixComponent {
                pool: b,
                weight: 0.15,
            });
        }
        specs.push((mix, Vec::new()));
    }
    world.gen_corpus(&mut rng, &specs)
}

/// One class of a flat recipe.
#[derive(Clone, Copy, Debug)]
pub struct ClassDef {
    /// Display name.
    pub name: &'static str,
    /// Word used as the class's *label name* (must be in the vocabulary).
    pub name_word: &'static str,
    /// Core lexicon.
    pub core: &'static str,
    /// Optional domain lexicon mixed in at lower weight.
    pub domain: Option<&'static str>,
}

impl ClassDef {
    const fn new(name: &'static str, core: &'static str) -> Self {
        ClassDef {
            name,
            name_word: "",
            core,
            domain: None,
        }
    }

    const fn with_domain(name: &'static str, core: &'static str, domain: &'static str) -> Self {
        ClassDef {
            name,
            name_word: "",
            core,
            domain: Some(domain),
        }
    }
}

fn scaled(n: usize, scale: f32) -> usize {
    ((n as f32 * scale).round() as usize).max(12)
}

/// Build the [`LabelSet`] entry for a class from its lexicon.
fn label_entry(world: &World, def: &ClassDef) -> (String, Vec<String>, Vec<String>, String) {
    let words = crate::synth::lexicon::lexicon(def.core);
    let name_word = if def.name_word.is_empty() {
        words[0]
    } else {
        def.name_word
    };
    debug_assert!(world.vocab().id(name_word).is_some());
    let keywords: Vec<String> = words.iter().take(3).map(|w| w.to_string()).collect();
    let description = format!(
        "category {} about {}",
        def.name,
        words.iter().take(6).copied().collect::<Vec<_>>().join(" ")
    );
    (
        def.name.to_string(),
        vec![name_word.to_string()],
        keywords,
        description,
    )
}

/// Generic flat single-label dataset builder.
///
/// `sizes[c]` documents are generated for class `c` with the mixture
/// `core 0.30 / domain 0.12 / general 0.38 / contamination 0.20`, where the
/// contamination component draws from a *random other class's* core pool —
/// without it every method (even raw TF-IDF retrieval) would sit at the
/// ceiling and the papers' method orderings would be invisible.
pub fn flat_dataset(
    name: &str,
    classes: &[ClassDef],
    sizes: &[usize],
    world_cfg: WorldConfig,
    meta_cfg: Option<&MetaConfig>,
    seed: u64,
) -> Result<Dataset, SynthError> {
    assert_eq!(classes.len(), sizes.len());
    let (world, general) = standard_world_with_general(world_cfg);
    let mut rng = lrng::seeded(seed);

    // Resolve every class's pools up front: a bad lexicon name is a typed
    // error before any document is generated.
    let core_pools: Vec<PoolId> = classes
        .iter()
        .map(|def| pool(&world, name, def.core))
        .collect::<Result<_, _>>()?;
    let domain_pools: Vec<Option<PoolId>> = classes
        .iter()
        .map(|def| def.domain.map(|d| pool(&world, name, d)).transpose())
        .collect::<Result<_, _>>()?;

    let mut specs = Vec::new();
    for (c, (_def, &n)) in classes.iter().zip(sizes).enumerate() {
        let core = core_pools[c];
        for _ in 0..n {
            let mut mix = vec![
                MixComponent {
                    pool: core,
                    weight: 0.30,
                },
                MixComponent {
                    pool: general,
                    weight: 0.38,
                },
            ];
            match domain_pools[c] {
                Some(dp) => {
                    mix.push(MixComponent {
                        pool: dp,
                        weight: 0.12,
                    });
                }
                None => mix[0].weight += 0.12,
            }
            // Contamination: words leak in from one random other class.
            // Scaled by (1 - 1/k): with few classes the contaminator is the
            // (or nearly the) competing class every time, so a fixed weight
            // would hit binary datasets much harder than many-class ones.
            if classes.len() > 1 {
                let other = loop {
                    let o = rng.gen_range(0..classes.len());
                    if o != c {
                        break o;
                    }
                };
                let op = core_pools[other];
                let weight = 0.24 * (1.0 - 1.0 / classes.len() as f32);
                mix.push(MixComponent { pool: op, weight });
            }
            specs.push((mix, vec![c]));
        }
    }
    let mut corpus = world.gen_corpus(&mut rng, &specs);

    let meta = match meta_cfg {
        Some(cfg) => attach_metadata(&mut corpus, classes.len(), cfg, &mut rng)?,
        None => MetaStats::default(),
    };

    let mut labels = LabelSet::default();
    for def in classes {
        let (n, nw, kw, desc) = label_entry(&world, def);
        labels.names.push(n);
        labels.name_words.push(nw);
        labels.keywords.push(kw);
        labels.descriptions.push(desc);
    }

    let (train_idx, test_idx) = split_indices(corpus.len(), 0.3, lrng::derive_seed(seed, 77));
    Ok(Dataset {
        name: name.to_string(),
        corpus,
        labels,
        taxonomy: None,
        class_nodes: vec![],
        train_idx,
        test_idx,
        meta,
    })
}

/// Geometric class sizes from `max` down, with the requested max/min ratio.
fn imbalanced_sizes(n_classes: usize, max: usize, ratio: f32, scale: f32) -> Vec<usize> {
    (0..n_classes)
        .map(|i| {
            let frac = i as f32 / (n_classes - 1).max(1) as f32;
            scaled((max as f32 * ratio.powf(-frac)) as usize, scale)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Flat single-label recipes
// ---------------------------------------------------------------------------

/// AG News stand-in: 4 balanced news topics.
pub fn agnews(scale: f32, seed: u64) -> Result<Dataset, SynthError> {
    let classes = [
        ClassDef::new("world", "world"),
        ClassDef::new("sports", "sports"),
        ClassDef::new("business", "business"),
        ClassDef::new("technology", "technology"),
    ];
    let sizes = vec![scaled(400, scale); 4];
    flat_dataset(
        "agnews",
        &classes,
        &sizes,
        WorldConfig::default(),
        None,
        seed,
    )
}

/// NYT coarse stand-in: 5 balanced sections.
pub fn nyt_coarse(scale: f32, seed: u64) -> Result<Dataset, SynthError> {
    let classes = [
        ClassDef::new("politics", "politics"),
        ClassDef::new("arts", "arts"),
        ClassDef::new("business", "business"),
        ClassDef::new("science", "science"),
        ClassDef::new("sports", "sports"),
    ];
    let sizes = vec![scaled(320, scale); 5];
    flat_dataset(
        "nyt-coarse",
        &classes,
        &sizes,
        WorldConfig::default(),
        None,
        seed,
    )
}

/// NYT-Small stand-in (X-Class): the 5 coarse sections, imbalanced ~16x.
pub fn nyt_small(scale: f32, seed: u64) -> Result<Dataset, SynthError> {
    let classes = [
        ClassDef::new("politics", "politics"),
        ClassDef::new("arts", "arts"),
        ClassDef::new("business", "business"),
        ClassDef::new("science", "science"),
        ClassDef::new("sports", "sports"),
    ];
    let sizes = imbalanced_sizes(5, 700, 16.0, scale);
    flat_dataset(
        "nyt-small",
        &classes,
        &sizes,
        WorldConfig::default(),
        None,
        seed,
    )
}

const NYT_FINE_CLASSES: &[ClassDef] = &[
    ClassDef::with_domain("elections", "elections", "politics"),
    ClassDef::with_domain("federal budget", "federal_budget", "politics"),
    ClassDef::with_domain("immigration", "immigration", "politics"),
    ClassDef::with_domain("military", "military", "politics"),
    ClassDef::with_domain("law enforcement", "law", "politics"),
    ClassDef::with_domain("surveillance", "surveillance", "politics"),
    ClassDef::with_domain("gun control", "gun_control", "politics"),
    ClassDef::with_domain("abortion", "abortion", "politics"),
    ClassDef::with_domain("soccer", "soccer", "sports"),
    ClassDef::with_domain("basketball", "basketball", "sports"),
    ClassDef::with_domain("baseball", "baseball", "sports"),
    ClassDef::with_domain("tennis", "tennis", "sports"),
    ClassDef::with_domain("hockey", "hockey", "sports"),
    ClassDef::with_domain("golf", "golf", "sports"),
    ClassDef::with_domain("football", "football", "sports"),
    ClassDef::with_domain("stocks", "stocks", "business"),
    ClassDef::with_domain("economy", "economy", "business"),
    ClassDef::with_domain("banking", "banking", "business"),
    ClassDef::with_domain("energy", "energy_markets", "business"),
    ClassDef::with_domain("international business", "intl_business", "business"),
    ClassDef::with_domain("music", "music", "arts"),
    ClassDef::with_domain("movies", "movies", "arts"),
    ClassDef::with_domain("theater", "theater", "arts"),
    ClassDef::with_domain("books", "books", "arts"),
    ClassDef::with_domain("space", "cosmos", "science"),
];

/// NYT fine stand-in: 25 subtopics nested under the coarse sections.
pub fn nyt_fine(scale: f32, seed: u64) -> Result<Dataset, SynthError> {
    let sizes = vec![scaled(100, scale); NYT_FINE_CLASSES.len()];
    flat_dataset(
        "nyt-fine",
        NYT_FINE_CLASSES,
        &sizes,
        WorldConfig::default(),
        None,
        seed,
    )
}

/// NYT-Topic stand-in (X-Class): 9 topics, heavily imbalanced (~27x).
pub fn nyt_topic(scale: f32, seed: u64) -> Result<Dataset, SynthError> {
    let classes = [
        ClassDef::new("politics", "politics"),
        ClassDef::new("sports", "sports"),
        ClassDef::new("business", "business"),
        ClassDef::new("technology", "technology"),
        ClassDef::new("science", "science"),
        ClassDef::new("health", "health"),
        ClassDef::new("arts", "arts"),
        ClassDef::new("world", "world"),
        ClassDef::new("elections", "elections"),
    ];
    let sizes = imbalanced_sizes(9, 700, 27.0, scale);
    flat_dataset(
        "nyt-topic",
        &classes,
        &sizes,
        WorldConfig::default(),
        None,
        seed,
    )
}

/// NYT-Location stand-in (X-Class): 10 countries, imbalanced ~16x.
pub fn nyt_location(scale: f32, seed: u64) -> Result<Dataset, SynthError> {
    let classes = [
        ClassDef {
            name: "united states",
            name_word: "america",
            core: "loc_usa",
            domain: Some("world"),
        },
        ClassDef {
            name: "china",
            name_word: "china",
            core: "loc_china",
            domain: Some("world"),
        },
        ClassDef {
            name: "france",
            name_word: "france",
            core: "loc_france",
            domain: Some("world"),
        },
        ClassDef {
            name: "britain",
            name_word: "britain",
            core: "loc_britain",
            domain: Some("world"),
        },
        ClassDef {
            name: "japan",
            name_word: "japan",
            core: "loc_japan",
            domain: Some("world"),
        },
        ClassDef {
            name: "germany",
            name_word: "germany",
            core: "loc_germany",
            domain: Some("world"),
        },
        ClassDef {
            name: "russia",
            name_word: "russia",
            core: "loc_russia",
            domain: Some("world"),
        },
        ClassDef {
            name: "canada",
            name_word: "canada",
            core: "loc_canada",
            domain: Some("world"),
        },
        ClassDef {
            name: "italy",
            name_word: "italy",
            core: "loc_italy",
            domain: Some("world"),
        },
        ClassDef {
            name: "brazil",
            name_word: "brazil",
            core: "loc_brazil",
            domain: Some("world"),
        },
    ];
    let sizes = imbalanced_sizes(10, 600, 16.0, scale);
    flat_dataset(
        "nyt-location",
        &classes,
        &sizes,
        WorldConfig::default(),
        None,
        seed,
    )
}

/// 20 Newsgroups coarse stand-in: 6 top-level groups.
pub fn news20_coarse(scale: f32, seed: u64) -> Result<Dataset, SynthError> {
    let classes = [
        ClassDef::new("computer", "technology"),
        ClassDef::new("recreation", "sports"),
        ClassDef::new("science", "science"),
        ClassDef::new("politics", "politics"),
        ClassDef::new("health", "health"),
        ClassDef::new("forsale", "business"),
    ];
    let sizes = imbalanced_sizes(6, 420, 2.0, scale);
    flat_dataset(
        "20news-coarse",
        &classes,
        &sizes,
        WorldConfig::default(),
        None,
        seed,
    )
}

/// 20 Newsgroups fine stand-in: 20 subgroups.
pub fn news20_fine(scale: f32, seed: u64) -> Result<Dataset, SynthError> {
    let classes = [
        ClassDef::with_domain("software", "software", "technology"),
        ClassDef::with_domain("internet", "internet", "technology"),
        ClassDef::with_domain("hardware", "hardware", "technology"),
        ClassDef::with_domain("machine intelligence", "machine_intelligence", "technology"),
        ClassDef::with_domain("security", "cybersecurity", "technology"),
        ClassDef::with_domain("soccer", "soccer", "sports"),
        ClassDef::with_domain("basketball", "basketball", "sports"),
        ClassDef::with_domain("baseball", "baseball", "sports"),
        ClassDef::with_domain("hockey", "hockey", "sports"),
        ClassDef::with_domain("tennis", "tennis", "sports"),
        ClassDef::with_domain("physics", "physics", "science"),
        ClassDef::with_domain("space", "cosmos", "science"),
        ClassDef::with_domain("chemistry", "chemistry", "science"),
        ClassDef::with_domain("mathematics", "mathematics", "science"),
        ClassDef::with_domain("environment", "environment", "science"),
        ClassDef::with_domain("elections", "elections", "politics"),
        ClassDef::with_domain("military", "military", "politics"),
        ClassDef::with_domain("law", "law", "politics"),
        ClassDef::with_domain("guns", "gun_control", "politics"),
        ClassDef::with_domain("immigration", "immigration", "politics"),
    ];
    let sizes = vec![scaled(90, scale); classes.len()];
    flat_dataset(
        "20news-fine",
        &classes,
        &sizes,
        WorldConfig::default(),
        None,
        seed,
    )
}

/// Yelp polarity stand-in: positive vs negative restaurant reviews.
pub fn yelp(scale: f32, seed: u64) -> Result<Dataset, SynthError> {
    let classes = [
        ClassDef {
            name: "good",
            name_word: "great",
            core: "positive",
            domain: Some("dining"),
        },
        ClassDef {
            name: "bad",
            name_word: "terrible",
            core: "negative",
            domain: Some("dining"),
        },
    ];
    let sizes = vec![scaled(500, scale); 2];
    flat_dataset("yelp", &classes, &sizes, WorldConfig::default(), None, seed)
}

/// IMDB stand-in: positive vs negative movie reviews.
pub fn imdb(scale: f32, seed: u64) -> Result<Dataset, SynthError> {
    let classes = [
        ClassDef {
            name: "good",
            name_word: "great",
            core: "positive",
            domain: Some("movies"),
        },
        ClassDef {
            name: "bad",
            name_word: "terrible",
            core: "negative",
            domain: Some("movies"),
        },
    ];
    let sizes = vec![scaled(500, scale); 2];
    flat_dataset("imdb", &classes, &sizes, WorldConfig::default(), None, seed)
}

/// Amazon polarity stand-in: positive vs negative product reviews.
pub fn amazon_polarity(scale: f32, seed: u64) -> Result<Dataset, SynthError> {
    let classes = [
        ClassDef {
            name: "good",
            name_word: "great",
            core: "positive",
            domain: Some("hardware"),
        },
        ClassDef {
            name: "bad",
            name_word: "terrible",
            core: "negative",
            domain: Some("hardware"),
        },
    ];
    let sizes = vec![scaled(500, scale); 2];
    flat_dataset(
        "amazon",
        &classes,
        &sizes,
        WorldConfig::default(),
        None,
        seed,
    )
}

/// DBpedia ontology stand-in: 14 balanced entity classes.
pub fn dbpedia(scale: f32, seed: u64) -> Result<Dataset, SynthError> {
    let classes = [
        ClassDef::new("company", "ont_company"),
        ClassDef::new("school", "ont_school"),
        ClassDef {
            name: "artist",
            name_word: "painter",
            core: "ont_artist",
            domain: None,
        },
        ClassDef {
            name: "athlete",
            name_word: "competed",
            core: "ont_athlete",
            domain: None,
        },
        ClassDef {
            name: "politician",
            name_word: "elected",
            core: "ont_politician",
            domain: None,
        },
        ClassDef {
            name: "transportation",
            name_word: "aircraft",
            core: "ont_transport",
            domain: None,
        },
        ClassDef::new("building", "ont_building"),
        ClassDef::new("river", "ont_river"),
        ClassDef::new("village", "ont_village"),
        ClassDef {
            name: "animal",
            name_word: "species",
            core: "ont_animal",
            domain: None,
        },
        ClassDef::new("plant", "ont_plant"),
        ClassDef::new("album", "ont_album"),
        ClassDef::new("film", "ont_film"),
        ClassDef {
            name: "book",
            name_word: "novel",
            core: "ont_book",
            domain: None,
        },
    ];
    let sizes = vec![scaled(130, scale); classes.len()];
    flat_dataset(
        "dbpedia",
        &classes,
        &sizes,
        WorldConfig::default(),
        None,
        seed,
    )
}

// ---------------------------------------------------------------------------
// Metadata-rich recipes (MetaCat / Twitter / Amazon)
// ---------------------------------------------------------------------------

/// GitHub-Bio stand-in: 10 bioinformatics repo topics, small corpus, with
/// user and tag metadata.
pub fn github_bio(scale: f32, seed: u64) -> Result<Dataset, SynthError> {
    let classes = [
        ClassDef::with_domain("genetics", "bio_genetics", "software"),
        ClassDef::with_domain("immunology", "bio_immunology", "software"),
        ClassDef::with_domain("virology", "bio_virology", "software"),
        ClassDef::with_domain("neuroscience", "bio_neuro", "software"),
        ClassDef::with_domain("cardiology", "bio_cardio", "software"),
        ClassDef::with_domain("oncology", "bio_oncology", "software"),
        ClassDef::with_domain("imaging", "cs_vision", "software"),
        ClassDef::with_domain("machine learning", "cs_ml", "software"),
        ClassDef::with_domain("chemistry", "chemistry", "software"),
        ClassDef::with_domain("ecology", "environment", "software"),
    ];
    let sizes = vec![scaled(70, scale); classes.len()];
    flat_dataset(
        "github-bio",
        &classes,
        &sizes,
        WorldConfig::default(),
        Some(&MetaConfig::social()),
        seed,
    )
}

/// GitHub-AI stand-in: 14 AI repo topics with user and tag metadata.
pub fn github_ai(scale: f32, seed: u64) -> Result<Dataset, SynthError> {
    let classes = [
        ClassDef::with_domain("nlp", "cs_nlp", "software"),
        ClassDef::with_domain("vision", "cs_vision", "software"),
        ClassDef::with_domain("machine learning", "cs_ml", "software"),
        ClassDef::with_domain("agents", "machine_intelligence", "software"),
        ClassDef::with_domain("databases", "cs_db", "software"),
        ClassDef::with_domain("systems", "cs_systems", "software"),
        ClassDef::with_domain("networking", "cs_networking", "software"),
        ClassDef::with_domain("theory", "cs_theory", "software"),
        ClassDef::with_domain("security", "cybersecurity", "software"),
        ClassDef::with_domain("web", "internet", "software"),
        ClassDef::with_domain("hardware", "hardware", "software"),
        ClassDef::with_domain("mathematics", "mathematics", "software"),
        ClassDef::with_domain("physics", "physics", "software"),
        ClassDef::with_domain("tooling", "software", "technology"),
    ];
    let sizes = vec![scaled(100, scale); classes.len()];
    flat_dataset(
        "github-ai",
        &classes,
        &sizes,
        WorldConfig::default(),
        Some(&MetaConfig::social()),
        seed,
    )
}

/// GitHub-Sec stand-in: 3 security repo topics, larger corpus.
pub fn github_sec(scale: f32, seed: u64) -> Result<Dataset, SynthError> {
    let classes = [
        ClassDef::with_domain("security", "cybersecurity", "software"),
        ClassDef::with_domain("web", "internet", "software"),
        ClassDef::with_domain("tooling", "software", "technology"),
    ];
    let sizes = vec![scaled(800, scale); 3];
    flat_dataset(
        "github-sec",
        &classes,
        &sizes,
        WorldConfig::default(),
        Some(&MetaConfig::social()),
        seed,
    )
}

/// Amazon reviews stand-in with user/product metadata: 10 product categories.
pub fn amazon_meta(scale: f32, seed: u64) -> Result<Dataset, SynthError> {
    let classes = [
        ClassDef::new("hardware", "hardware"),
        ClassDef::new("software", "software"),
        ClassDef {
            name: "books",
            name_word: "book",
            core: "books",
            domain: None,
        },
        ClassDef::new("music", "music"),
        ClassDef {
            name: "movies",
            name_word: "film",
            core: "movies",
            domain: None,
        },
        ClassDef {
            name: "food",
            name_word: "restaurant",
            core: "dining",
            domain: None,
        },
        ClassDef::new("fashion", "fashion"),
        ClassDef {
            name: "travel",
            name_word: "hotel",
            core: "travel",
            domain: None,
        },
        ClassDef {
            name: "nutrition",
            name_word: "diet",
            core: "nutrition",
            domain: None,
        },
        ClassDef::new("golf", "golf"),
    ];
    let sizes = vec![scaled(260, scale); classes.len()];
    // Products act as venues: many per class, each doc reviews one product.
    let meta = MetaConfig {
        users_per_class: 10,
        venues_per_class: 6,
        ..Default::default()
    };
    flat_dataset(
        "amazon-meta",
        &classes,
        &sizes,
        WorldConfig::default(),
        Some(&meta),
        seed,
    )
}

/// Twitter stand-in: 9 hashtag topics, short documents, users + hashtags.
pub fn twitter(scale: f32, seed: u64) -> Result<Dataset, SynthError> {
    let classes = [
        ClassDef {
            name: "food",
            name_word: "restaurant",
            core: "dining",
            domain: None,
        },
        ClassDef::new("sports", "sports"),
        ClassDef::new("music", "music"),
        ClassDef {
            name: "movies",
            name_word: "film",
            core: "movies",
            domain: None,
        },
        ClassDef {
            name: "travel",
            name_word: "hotel",
            core: "travel",
            domain: None,
        },
        ClassDef::new("technology", "technology"),
        ClassDef::new("politics", "politics"),
        ClassDef::new("fashion", "fashion"),
        ClassDef::new("health", "health"),
    ];
    let sizes = vec![scaled(260, scale); classes.len()];
    let cfg = WorldConfig {
        doc_len_mean: 13.0,
        doc_len_std: 3.0,
        ..Default::default()
    };
    flat_dataset(
        "twitter",
        &classes,
        &sizes,
        cfg,
        Some(&MetaConfig::social()),
        seed,
    )
}

// ---------------------------------------------------------------------------
// Hierarchical (tree) recipes — WeSHClass
// ---------------------------------------------------------------------------

/// One internal node and its leaves for a tree recipe.
type TreeDomain = (
    &'static str,
    &'static str,
    &'static [(&'static str, &'static str)],
);

/// Generic two-level tree dataset builder. Classes are all non-root nodes in
/// insertion order (each domain followed by its leaves); each document's
/// labels are `[domain_class, leaf_class]` — its root-to-leaf path.
pub fn tree_dataset(
    name: &str,
    domains: &[TreeDomain],
    docs_per_leaf: usize,
    world_cfg: WorldConfig,
    seed: u64,
) -> Result<Dataset, SynthError> {
    let (world, general) = standard_world_with_general(world_cfg);
    let mut rng = lrng::seeded(seed);

    let mut taxonomy = Taxonomy::new("root");
    let mut labels = LabelSet::default();
    let mut class_nodes = Vec::new();
    let mut specs = Vec::new();

    for &(dom_name, dom_lex, leaves) in domains {
        let dom_node = taxonomy.add_node(dom_name, &[0]);
        let dom_class = class_nodes.len();
        class_nodes.push(dom_node);
        let (n, nw, kw, desc) = label_entry(&world, &ClassDef::new(dom_name, dom_lex));
        labels.names.push(n);
        labels.name_words.push(nw);
        labels.keywords.push(kw);
        labels.descriptions.push(desc);

        let dom_pool = pool(&world, name, dom_lex)?;
        for &(leaf_name, leaf_lex) in leaves {
            let leaf_node = taxonomy.add_node(leaf_name, &[dom_node]);
            let leaf_class = class_nodes.len();
            class_nodes.push(leaf_node);
            let (n, nw, kw, desc) = label_entry(&world, &ClassDef::new(leaf_name, leaf_lex));
            labels.names.push(n);
            labels.name_words.push(nw);
            labels.keywords.push(kw);
            labels.descriptions.push(desc);

            let leaf_pool = pool(&world, name, leaf_lex)?;
            for _ in 0..docs_per_leaf {
                let mut mix = vec![
                    MixComponent {
                        pool: leaf_pool,
                        weight: 0.32,
                    },
                    MixComponent {
                        pool: dom_pool,
                        weight: 0.18,
                    },
                    MixComponent {
                        pool: general,
                        weight: 0.35,
                    },
                ];
                // Leak words from a random sibling leaf.
                if leaves.len() > 1 {
                    let (other_name, other_lex) = leaves[rng.gen_range(0..leaves.len())];
                    if other_name != leaf_name {
                        let op = pool(&world, name, other_lex)?;
                        mix.push(MixComponent {
                            pool: op,
                            weight: 0.15,
                        });
                    }
                }
                specs.push((mix, vec![dom_class, leaf_class]));
            }
        }
    }

    let corpus = world.gen_corpus(&mut rng, &specs);
    let (train_idx, test_idx) = split_indices(corpus.len(), 0.3, lrng::derive_seed(seed, 77));
    Ok(Dataset {
        name: name.to_string(),
        corpus,
        labels,
        taxonomy: Some(taxonomy),
        class_nodes,
        train_idx,
        test_idx,
        meta: MetaStats::default(),
    })
}

/// NYT hierarchy stand-in for WeSHClass: 3 sections x 3 subtopics.
pub fn nyt_tree(scale: f32, seed: u64) -> Result<Dataset, SynthError> {
    let domains: &[TreeDomain] = &[
        (
            "politics",
            "politics",
            &[
                ("elections", "elections"),
                ("military", "military"),
                ("law", "law"),
            ],
        ),
        (
            "business",
            "business",
            &[
                ("stocks", "stocks"),
                ("economy", "economy"),
                ("banking", "banking"),
            ],
        ),
        (
            "sports",
            "sports",
            &[
                ("soccer", "soccer"),
                ("basketball", "basketball"),
                ("tennis", "tennis"),
            ],
        ),
    ];
    tree_dataset(
        "nyt-tree",
        domains,
        scaled(90, scale),
        WorldConfig::default(),
        seed,
    )
}

/// arXiv hierarchy stand-in for WeSHClass: cs / math / physics.
pub fn arxiv_tree(scale: f32, seed: u64) -> Result<Dataset, SynthError> {
    let domains: &[TreeDomain] = &[
        (
            "computer science",
            "technology",
            &[
                ("language", "cs_nlp"),
                ("image", "cs_vision"),
                ("learning", "cs_ml"),
                ("database", "cs_db"),
            ],
        ),
        (
            "mathematics",
            "mathematics",
            &[
                ("algebra", "math_algebra"),
                ("analysis", "math_analysis"),
                ("combinatorics", "math_combinatorics"),
            ],
        ),
        (
            "physics",
            "physics",
            &[
                ("collider", "phys_hep"),
                ("galaxy", "phys_astro"),
                ("lattice", "phys_cond"),
            ],
        ),
    ];
    tree_dataset(
        "arxiv-tree",
        domains,
        scaled(80, scale),
        WorldConfig::default(),
        seed,
    )
}

/// Yelp hierarchy stand-in for WeSHClass: sentiment -> venue type.
pub fn yelp_tree(scale: f32, seed: u64) -> Result<Dataset, SynthError> {
    let domains: &[TreeDomain] = &[
        (
            "good",
            "positive",
            &[("restaurant", "dining"), ("hotel", "travel")],
        ),
        (
            "bad",
            "negative",
            &[("diner", "dining"), ("motel", "travel")],
        ),
    ];
    // Leaf lexicons repeat across branches ("dining" under both sentiments),
    // so the *parent* pool is what separates the top level — mirroring how
    // Yelp review hierarchies share vocabulary across sentiment branches.
    let (world, general) = standard_world_with_general(WorldConfig::default());
    let mut rng = lrng::seeded(seed);

    let mut taxonomy = Taxonomy::new("root");
    let mut labels = LabelSet::default();
    let mut class_nodes = Vec::new();
    let mut specs = Vec::new();
    for &(dom_name, dom_lex, leaves) in domains {
        let dom_node = taxonomy.add_node(dom_name, &[0]);
        let dom_class = class_nodes.len();
        class_nodes.push(dom_node);
        let (_, nw, kw, desc) = label_entry(&world, &ClassDef::new(dom_name, dom_lex));
        labels.names.push(dom_name.to_string());
        labels.name_words.push(nw);
        labels.keywords.push(kw);
        labels.descriptions.push(desc);
        let dom_pool = pool(&world, "yelp-tree", dom_lex)?;
        for &(leaf_name, leaf_lex) in leaves {
            let leaf_node = taxonomy.add_node(leaf_name, &[dom_node]);
            let leaf_class = class_nodes.len();
            class_nodes.push(leaf_node);
            let leaf_pool = pool(&world, "yelp-tree", leaf_lex)?;
            let words = crate::synth::lexicon::lexicon(leaf_lex);
            labels.names.push(leaf_name.to_string());
            labels.name_words.push(vec![words[0].to_string()]);
            labels
                .keywords
                .push(words.iter().take(3).map(|w| w.to_string()).collect());
            labels
                .descriptions
                .push(format!("category {leaf_name} under {dom_name}"));
            for _ in 0..scaled(110, scale) {
                let mix = vec![
                    MixComponent {
                        pool: dom_pool,
                        weight: 0.40,
                    },
                    MixComponent {
                        pool: leaf_pool,
                        weight: 0.28,
                    },
                    MixComponent {
                        pool: general,
                        weight: 0.32,
                    },
                ];
                specs.push((mix, vec![dom_class, leaf_class]));
            }
        }
    }
    let corpus = world.gen_corpus(&mut rng, &specs);
    let (train_idx, test_idx) = split_indices(corpus.len(), 0.3, lrng::derive_seed(seed, 77));
    Ok(Dataset {
        name: "yelp-tree".into(),
        corpus,
        labels,
        taxonomy: Some(taxonomy),
        class_nodes,
        train_idx,
        test_idx,
        meta: MetaStats::default(),
    })
}

// ---------------------------------------------------------------------------
// DAG multi-label recipes — TaxoClass / MICoL
// ---------------------------------------------------------------------------

/// Leaf spec for a DAG recipe: `(name, lexicon, parent indices)`.
type DagLeaf = (&'static str, &'static str, &'static [usize]);

/// Generic DAG multi-label dataset builder.
///
/// Documents carry 1–3 leaf labels (extra leaves biased toward siblings)
/// plus all ancestor labels, matching TaxoClass's "multiple categories on
/// different paths" setting.
pub fn dag_dataset(
    name: &str,
    parents: &[(&'static str, &'static str)],
    leaves: &[DagLeaf],
    n_docs: usize,
    meta_cfg: Option<&MetaConfig>,
    seed: u64,
) -> Result<Dataset, SynthError> {
    let (world, general) = standard_world_with_general(WorldConfig::default());
    let mut rng = lrng::seeded(seed);

    // Resolve parent and leaf pools up front; bad lexicon names become
    // typed errors before any document is generated.
    let parent_pools: Vec<PoolId> = parents
        .iter()
        .map(|&(_, plex)| pool(&world, name, plex))
        .collect::<Result<_, _>>()?;
    let leaf_pools: Vec<PoolId> = leaves
        .iter()
        .map(|&(_, llex, _)| pool(&world, name, llex))
        .collect::<Result<_, _>>()?;

    let mut taxonomy = Taxonomy::new("root");
    let mut labels = LabelSet::default();
    let mut class_nodes = Vec::new();

    let mut parent_nodes = Vec::new();
    for &(pname, plex) in parents {
        let node = taxonomy.add_node(pname, &[0]);
        parent_nodes.push(node);
        class_nodes.push(node);
        let (_, nw, kw, desc) = label_entry(&world, &ClassDef::new(pname, plex));
        labels.names.push(pname.to_string());
        labels.name_words.push(nw);
        labels.keywords.push(kw);
        labels.descriptions.push(desc);
    }
    let n_parents = parents.len();

    let mut leaf_classes = Vec::new();
    for &(lname, llex, lparents) in leaves {
        let pnodes: Vec<usize> = lparents.iter().map(|&p| parent_nodes[p]).collect();
        let node = taxonomy.add_node(lname, &pnodes);
        leaf_classes.push(class_nodes.len());
        class_nodes.push(node);
        let (_, nw, kw, desc) = label_entry(&world, &ClassDef::new(lname, llex));
        labels.names.push(lname.to_string());
        labels.name_words.push(nw);
        labels.keywords.push(kw);
        labels.descriptions.push(desc);
    }

    let mut specs = Vec::with_capacity(n_docs);
    for _ in 0..n_docs {
        // Pick 1-3 leaves; extras prefer siblings (shared parent).
        let first = rng.gen_range(0..leaves.len());
        let mut chosen = vec![first];
        let mut extra_p = 0.45f32;
        while chosen.len() < 3 && rng.gen::<f32>() < extra_p {
            let candidate = if rng.gen::<f32>() < 0.7 {
                // Sibling of the first leaf.
                let first_parents = leaves[first].2;
                let sibs: Vec<usize> = (0..leaves.len())
                    .filter(|&l| {
                        l != first && leaves[l].2.iter().any(|p| first_parents.contains(p))
                    })
                    .collect();
                if sibs.is_empty() {
                    rng.gen_range(0..leaves.len())
                } else {
                    sibs[rng.gen_range(0..sibs.len())]
                }
            } else {
                rng.gen_range(0..leaves.len())
            };
            if !chosen.contains(&candidate) {
                chosen.push(candidate);
            }
            extra_p *= 0.5;
        }

        let k = chosen.len() as f32;
        let mut mix = vec![MixComponent {
            pool: general,
            weight: 0.33,
        }];
        // Background contamination from one random unrelated leaf.
        let noise_leaf = rng.gen_range(0..leaves.len());
        if !chosen.contains(&noise_leaf) {
            mix.push(MixComponent {
                pool: leaf_pools[noise_leaf],
                weight: 0.12,
            });
        }
        let mut label_set = Vec::new();
        for &l in &chosen {
            mix.push(MixComponent {
                pool: leaf_pools[l],
                weight: 0.5 / k,
            });
            label_set.push(leaf_classes[l]);
            for &p in leaves[l].2 {
                mix.push(MixComponent {
                    pool: parent_pools[p],
                    weight: 0.17 / (k * leaves[l].2.len() as f32),
                });
                if !label_set.contains(&p) {
                    label_set.push(p);
                }
            }
        }
        debug_assert!(label_set.iter().all(|&c| c < n_parents + leaves.len()));
        label_set.sort_unstable();
        specs.push((mix, label_set));
    }

    let mut corpus = world.gen_corpus(&mut rng, &specs);
    let meta = match meta_cfg {
        Some(cfg) => attach_metadata(&mut corpus, labels.len(), cfg, &mut rng)?,
        None => MetaStats::default(),
    };
    let (train_idx, test_idx) = split_indices(corpus.len(), 0.3, lrng::derive_seed(seed, 77));
    Ok(Dataset {
        name: name.to_string(),
        corpus,
        labels,
        taxonomy: Some(taxonomy),
        class_nodes,
        train_idx,
        test_idx,
        meta,
    })
}

/// Amazon product-taxonomy stand-in for TaxoClass: a DAG with a shared leaf.
pub fn amazon_taxonomy(scale: f32, seed: u64) -> Result<Dataset, SynthError> {
    let parents: &[(&str, &str)] = &[
        ("electronics", "technology"),
        ("media", "arts"),
        ("home", "dining"),
    ];
    let leaves: &[DagLeaf] = &[
        ("hardware", "hardware", &[0]),
        ("software", "software", &[0]),
        ("security", "cybersecurity", &[0]),
        ("streaming", "internet", &[0, 1]), // shared: electronics AND media
        ("movies", "movies", &[1]),
        ("music", "music", &[1]),
        ("books", "books", &[1]),
        ("kitchen", "dining", &[2]),
        ("fashion", "fashion", &[2]),
        ("travel gear", "travel", &[2]),
        ("nutrition", "nutrition", &[2]),
    ];
    dag_dataset(
        "amazon-taxonomy",
        parents,
        leaves,
        scaled(1400, scale),
        None,
        seed,
    )
}

/// DBpedia-taxonomy stand-in for TaxoClass.
pub fn dbpedia_taxonomy(scale: f32, seed: u64) -> Result<Dataset, SynthError> {
    let parents: &[(&str, &str)] = &[
        ("organisation", "ont_company"),
        ("person", "ont_politician"),
        ("place", "ont_village"),
        ("work", "ont_film"),
        ("nature", "ont_animal"),
    ];
    let leaves: &[DagLeaf] = &[
        ("company", "ont_company", &[0]),
        ("school", "ont_school", &[0, 2]), // a school is an org and a place
        ("artist", "ont_artist", &[1]),
        ("athlete", "ont_athlete", &[1]),
        ("politician", "ont_politician", &[1]),
        ("building", "ont_building", &[2]),
        ("river", "ont_river", &[2, 4]),
        ("village", "ont_village", &[2]),
        ("album", "ont_album", &[3]),
        ("film", "ont_film", &[3]),
        ("book", "ont_book", &[3]),
        ("animal", "ont_animal", &[4]),
        ("plant", "ont_plant", &[4]),
    ];
    dag_dataset(
        "dbpedia-taxonomy",
        parents,
        leaves,
        scaled(1400, scale),
        None,
        seed,
    )
}

/// MAG-CS stand-in for MICoL: multi-label CS papers with venues, authors and
/// citations, and label descriptions.
pub fn mag_cs(scale: f32, seed: u64) -> Result<Dataset, SynthError> {
    let parents: &[(&str, &str)] = &[
        ("artificial intelligence", "machine_intelligence"),
        ("computer systems", "cs_systems"),
        ("theory", "cs_theory"),
    ];
    let leaves: &[DagLeaf] = &[
        ("natural language processing", "cs_nlp", &[0]),
        ("computer vision", "cs_vision", &[0]),
        ("machine learning", "cs_ml", &[0, 2]),
        ("databases", "cs_db", &[1]),
        ("networking", "cs_networking", &[1]),
        ("security", "cybersecurity", &[1]),
        ("software engineering", "software", &[1]),
        ("combinatorics", "math_combinatorics", &[2]),
        ("algebra", "math_algebra", &[2]),
    ];
    dag_dataset(
        "mag-cs",
        parents,
        leaves,
        scaled(1600, scale),
        Some(&MetaConfig::bibliographic()),
        seed,
    )
}

/// PubMed stand-in for MICoL: multi-label biomedical papers with metadata.
pub fn pubmed(scale: f32, seed: u64) -> Result<Dataset, SynthError> {
    let parents: &[(&str, &str)] = &[
        ("molecular biology", "bio_genetics"),
        ("clinical medicine", "health"),
    ];
    let leaves: &[DagLeaf] = &[
        ("genetics", "bio_genetics", &[0]),
        ("immunology", "bio_immunology", &[0, 1]),
        ("virology", "bio_virology", &[0, 1]),
        ("neuroscience", "bio_neuro", &[0]),
        ("cardiology", "bio_cardio", &[1]),
        ("oncology", "bio_oncology", &[1]),
        ("nutrition", "nutrition", &[1]),
    ];
    dag_dataset(
        "pubmed",
        parents,
        leaves,
        scaled(1600, scale),
        Some(&MetaConfig::bibliographic()),
        seed,
    )
}

// ---------------------------------------------------------------------------
// Streaming topic-drift recipe
// ---------------------------------------------------------------------------

/// The drifting classes: each has a *core* lexicon that dominates early
/// generations and a *domain* lexicon the vocabulary shifts toward as the
/// stream drifts (sports coverage narrows to soccer, business to stocks,
/// technology to software).
const DRIFT_CLASSES: &[ClassDef] = &[
    ClassDef::with_domain("sports", "sports", "soccer"),
    ClassDef::with_domain("business", "business", "stocks"),
    ClassDef::with_domain("technology", "technology", "software"),
];

/// Topic-drift stand-in, generation 0: the balanced fit corpus a streaming
/// engine trains its serving rule on. The drifted continuation of this
/// world comes from [`drift_stream`].
pub fn topic_drift(scale: f32, seed: u64) -> Result<Dataset, SynthError> {
    let sizes = vec![scaled(220, scale); DRIFT_CLASSES.len()];
    flat_dataset(
        "topic-drift",
        DRIFT_CLASSES,
        &sizes,
        WorldConfig::default(),
        None,
        seed,
    )
}

/// One generation of a drifting stream: rendered documents (every word in
/// the standard-world vocabulary, so a closed-vocabulary tokenizer loses
/// nothing) plus their gold class labels.
#[derive(Clone, Debug)]
pub struct DriftBatch {
    /// One document per line, rendered with the standard-world vocabulary.
    pub lines: Vec<String>,
    /// Gold class index per line (into [`topic_drift`]'s label set).
    pub labels: Vec<usize>,
}

/// The drifting continuation of [`topic_drift`]: `generations` batches in
/// which both the class priors and the vocabulary shift monotonically with
/// generation number.
///
/// * **Prior drift** — generation 1 starts near [`topic_drift`]'s balanced
///   priors; by the final generation the last class receives ~4x the mass
///   of the first (a geometric tilt ramped linearly in `g`).
/// * **Vocabulary drift** — each class's mixture moves weight from its
///   broad *core* lexicon to its narrower *domain* lexicon (0.42/0.06 at
///   the start to 0.12/0.36 at the end), so late-stream documents of the
///   same class are written in words the fit corpus barely used.
///
/// Deterministic in (`scale`, `seed`, `generations`); batch `g` does not
/// depend on whether earlier batches were generated.
pub fn drift_stream(
    scale: f32,
    seed: u64,
    generations: usize,
) -> Result<Vec<DriftBatch>, SynthError> {
    let (world, general) = standard_world_with_general(WorldConfig::default());
    let core_pools: Vec<PoolId> = DRIFT_CLASSES
        .iter()
        .map(|def| pool(&world, "topic-drift", def.core))
        .collect::<Result<_, _>>()?;
    let domain_pools: Vec<PoolId> = DRIFT_CLASSES
        .iter()
        .map(|def| pool(&world, "topic-drift", def.domain.unwrap_or(def.core)))
        .collect::<Result<_, _>>()?;

    let per_gen = scaled(60, scale);
    let k = DRIFT_CLASSES.len();
    let mut batches = Vec::with_capacity(generations);
    for g in 1..=generations {
        // Each generation gets its own derived seed so the batch is
        // reproducible in isolation (a resumed stream regenerates
        // identical deltas without replaying its prefix).
        let mut rng = lrng::seeded(lrng::derive_seed(seed, 1000 + g as u64));
        let t = g as f32 / generations.max(1) as f32;

        // Class priors tilt geometrically toward the last class.
        let tilt = 1.0 + 3.0 * t;
        let weights: Vec<f32> = (0..k)
            .map(|c| tilt.powf(c as f32 / (k - 1).max(1) as f32))
            .collect();
        let total: f32 = weights.iter().sum();

        let mut specs = Vec::with_capacity(per_gen);
        let mut labels = Vec::with_capacity(per_gen);
        for _ in 0..per_gen {
            let mut u = rng.gen::<f32>() * total;
            let mut c = k - 1;
            for (i, &w) in weights.iter().enumerate() {
                if u < w {
                    c = i;
                    break;
                }
                u -= w;
            }
            let mix = vec![
                MixComponent {
                    pool: core_pools[c],
                    weight: 0.42 - 0.30 * t,
                },
                MixComponent {
                    pool: domain_pools[c],
                    weight: 0.06 + 0.30 * t,
                },
                MixComponent {
                    pool: general,
                    weight: 0.52,
                },
            ];
            specs.push((mix, vec![c]));
            labels.push(c);
        }
        let corpus = world.gen_corpus(&mut rng, &specs);
        let lines = corpus
            .docs
            .iter()
            .map(|d| crate::tokenize::decode(&d.tokens, &corpus.vocab))
            .collect();
        batches.push(DriftBatch { lines, labels });
    }
    Ok(batches)
}

/// Look a recipe up by name (`agnews`, `nyt-fine`, `yelp`, ...). An
/// unrecognized name is a typed [`SynthError::UnknownRecipe`], never a
/// panic — entry points map it to their own error taxonomy.
pub fn by_name(name: &str, scale: f32, seed: u64) -> Result<Dataset, SynthError> {
    match name {
        "agnews" => agnews(scale, seed),
        "nyt-coarse" => nyt_coarse(scale, seed),
        "nyt-small" => nyt_small(scale, seed),
        "nyt-fine" => nyt_fine(scale, seed),
        "nyt-topic" => nyt_topic(scale, seed),
        "nyt-location" => nyt_location(scale, seed),
        "20news-coarse" => news20_coarse(scale, seed),
        "20news-fine" => news20_fine(scale, seed),
        "yelp" => yelp(scale, seed),
        "imdb" => imdb(scale, seed),
        "amazon" => amazon_polarity(scale, seed),
        "dbpedia" => dbpedia(scale, seed),
        "github-bio" => github_bio(scale, seed),
        "github-ai" => github_ai(scale, seed),
        "github-sec" => github_sec(scale, seed),
        "amazon-meta" => amazon_meta(scale, seed),
        "twitter" => twitter(scale, seed),
        "nyt-tree" => nyt_tree(scale, seed),
        "arxiv-tree" => arxiv_tree(scale, seed),
        "yelp-tree" => yelp_tree(scale, seed),
        "amazon-taxonomy" => amazon_taxonomy(scale, seed),
        "dbpedia-taxonomy" => dbpedia_taxonomy(scale, seed),
        "mag-cs" => mag_cs(scale, seed),
        "pubmed" => pubmed(scale, seed),
        "topic-drift" => topic_drift(scale, seed),
        _ => Err(SynthError::UnknownRecipe {
            name: name.to_string(),
        }),
    }
}

/// All recipe names accepted by [`by_name`].
pub const ALL_RECIPES: &[&str] = &[
    "agnews",
    "nyt-coarse",
    "nyt-small",
    "nyt-fine",
    "nyt-topic",
    "nyt-location",
    "20news-coarse",
    "20news-fine",
    "yelp",
    "imdb",
    "amazon",
    "dbpedia",
    "github-bio",
    "github-ai",
    "github-sec",
    "amazon-meta",
    "twitter",
    "nyt-tree",
    "arxiv-tree",
    "yelp-tree",
    "amazon-taxonomy",
    "dbpedia-taxonomy",
    "mag-cs",
    "pubmed",
    "topic-drift",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_recipes_build_at_tiny_scale() {
        for name in ALL_RECIPES {
            let d = by_name(name, 0.05, 1).unwrap();
            assert!(!d.corpus.is_empty(), "{name} produced no docs");
            assert!(d.n_classes() >= 2, "{name} has too few classes");
            assert!(!d.test_idx.is_empty(), "{name} has no test split");
            // Every doc's labels are in range.
            for doc in &d.corpus.docs {
                assert!(!doc.labels.is_empty(), "{name} has unlabeled docs");
                assert!(doc.labels.iter().all(|&l| l < d.n_classes()));
            }
        }
    }

    #[test]
    fn unknown_recipe_is_a_typed_error() {
        match by_name("not-a-dataset", 1.0, 1) {
            Err(SynthError::UnknownRecipe { name }) => assert_eq!(name, "not-a-dataset"),
            other => panic!("expected UnknownRecipe, got {other:?}"),
        }
    }

    #[test]
    fn missing_pool_is_a_typed_error_not_a_panic() {
        // Regression: a ClassDef naming a nonexistent lexicon used to
        // panic inside the builder with a backtrace.
        let classes = [
            ClassDef::new("a", "sports"),
            ClassDef::new("b", "no_such_lexicon"),
        ];
        match flat_dataset("custom", &classes, &[5, 5], WorldConfig::default(), None, 1) {
            Err(SynthError::MissingPool { pool, recipe }) => {
                assert_eq!(pool, "no_such_lexicon");
                assert_eq!(recipe, "custom");
            }
            other => panic!("expected MissingPool, got {other:?}"),
        }
        let leaves: &[DagLeaf] = &[("x", "missing_leaf_lexicon", &[0])];
        assert!(matches!(
            dag_dataset("dag", &[("p", "sports")], leaves, 4, None, 1),
            Err(SynthError::MissingPool { .. })
        ));
    }

    #[test]
    fn recipes_are_deterministic() {
        let a = agnews(0.05, 42).unwrap();
        let b = agnews(0.05, 42).unwrap();
        assert_eq!(a.corpus.docs.len(), b.corpus.docs.len());
        for (x, y) in a.corpus.docs.iter().zip(&b.corpus.docs) {
            assert_eq!(x.tokens, y.tokens);
        }
        let c = agnews(0.05, 43).unwrap();
        assert_ne!(
            a.corpus.docs[0].tokens, c.corpus.docs[0].tokens,
            "different seeds should differ"
        );
    }

    #[test]
    fn label_names_resolve_to_vocab_tokens() {
        for name in ["agnews", "nyt-fine", "dbpedia", "yelp"] {
            let d = by_name(name, 0.05, 1).unwrap();
            for (c, toks) in d.label_name_tokens().iter().enumerate() {
                assert!(
                    !toks.is_empty(),
                    "{name} class {c} name has no in-vocab tokens"
                );
            }
        }
    }

    #[test]
    fn shared_vocabulary_across_recipes_and_pretraining() {
        let a = agnews(0.05, 1).unwrap();
        let b = yelp(0.05, 2).unwrap();
        let pre = pretraining_corpus(10, 3);
        assert_eq!(a.corpus.vocab.len(), b.corpus.vocab.len());
        assert_eq!(a.corpus.vocab.id("soccer"), pre.vocab.id("soccer"));
        assert_eq!(b.corpus.vocab.id("terrible"), pre.vocab.id("terrible"));
    }

    #[test]
    fn class_docs_are_topically_distinct() {
        // Documents of class c should contain more of class c's keywords
        // than documents of other classes — the core planted signal.
        let d = agnews(0.2, 7).unwrap();
        let kw = d.keyword_tokens();
        let mut per_class_hits = vec![vec![0f32; d.n_classes()]; d.n_classes()];
        let mut per_class_docs = vec![0usize; d.n_classes()];
        for doc in &d.corpus.docs {
            let c = doc.labels[0];
            per_class_docs[c] += 1;
            for (k, kws) in kw.iter().enumerate() {
                let hits = doc.tokens.iter().filter(|t| kws.contains(t)).count();
                per_class_hits[c][k] += hits as f32;
            }
        }
        for c in 0..d.n_classes() {
            let n_docs = per_class_docs[c] as f32;
            for h in &mut per_class_hits[c] {
                *h /= n_docs;
            }
            let own = per_class_hits[c][c];
            for (k, &hit) in per_class_hits[c].iter().enumerate() {
                if k != c {
                    assert!(
                        own > hit * 2.0,
                        "class {c} not distinct from {k}: {own} vs {hit}"
                    );
                }
            }
        }
    }

    #[test]
    fn imbalanced_recipes_report_expected_ratio() {
        let d = nyt_topic(0.3, 5).unwrap();
        assert!(d.imbalance() > 5.0, "imbalance {}", d.imbalance());
        let balanced = agnews(0.1, 5).unwrap();
        assert!((balanced.imbalance() - 1.0).abs() < 0.01);
    }

    #[test]
    fn tree_recipes_have_path_labels() {
        let d = nyt_tree(0.1, 3).unwrap();
        let tax = d.taxonomy.as_ref().unwrap();
        assert!(tax.is_tree());
        for doc in &d.corpus.docs {
            assert_eq!(doc.labels.len(), 2);
            let parent_node = d.class_nodes[doc.labels[0]];
            let leaf_node = d.class_nodes[doc.labels[1]];
            assert_eq!(tax.parents(leaf_node), &[parent_node]);
        }
    }

    #[test]
    fn dag_recipes_are_multilabel_with_ancestor_closure() {
        let d = amazon_taxonomy(0.1, 3).unwrap();
        let tax = d.taxonomy.as_ref().unwrap();
        assert!(!tax.is_tree());
        let mut any_multileaf = false;
        for doc in &d.corpus.docs {
            // Every leaf label's parents must also be labels.
            for &l in &doc.labels {
                let node = d.class_nodes[l];
                for &p in tax.parents(node) {
                    if p != 0 {
                        let pc = d.class_nodes.iter().position(|&n| n == p).unwrap();
                        assert!(doc.labels.contains(&pc), "missing ancestor label");
                    }
                }
            }
            let n_leaves = doc
                .labels
                .iter()
                .filter(|&&l| tax.is_leaf(d.class_nodes[l]))
                .count();
            if n_leaves > 1 {
                any_multileaf = true;
            }
        }
        assert!(
            any_multileaf,
            "expected some docs with multiple leaf labels"
        );
    }

    #[test]
    fn bibliographic_recipes_have_metadata() {
        let d = mag_cs(0.05, 2).unwrap();
        assert!(d.meta.n_venues > 0 && d.meta.n_authors > 0);
        let with_refs = d
            .corpus
            .docs
            .iter()
            .filter(|doc| !doc.refs.is_empty())
            .count();
        assert!(with_refs > d.corpus.len() / 2);
        assert!(!d.labels.descriptions[0].is_empty());
    }

    #[test]
    fn drift_stream_is_deterministic_and_in_vocabulary() {
        let a = drift_stream(0.2, 9, 4).unwrap();
        let b = drift_stream(0.2, 9, 4).unwrap();
        assert_eq!(a.len(), 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.lines, y.lines);
            assert_eq!(x.labels, y.labels);
        }
        // Batch g is independent of how many generations were requested
        // after it (a resumed stream regenerates identical deltas).
        let prefix = drift_stream(0.2, 9, 4).unwrap();
        assert_eq!(prefix[0].lines, a[0].lines);
        // Every rendered word round-trips through the standard-world
        // vocabulary — a closed-vocabulary tokenizer loses nothing.
        let d = topic_drift(0.05, 9).unwrap();
        for batch in &a {
            for line in &batch.lines {
                let toks = crate::tokenize::encode(line, &d.corpus.vocab);
                assert!(
                    toks.iter().all(|&t| t != crate::vocab::UNK),
                    "drift line left the fit vocabulary: {line}"
                );
            }
        }
    }

    #[test]
    fn drift_stream_shifts_priors_and_vocabulary() {
        let batches = drift_stream(1.0, 3, 6).unwrap();
        let k = DRIFT_CLASSES.len();
        let share = |b: &DriftBatch, c: usize| {
            b.labels.iter().filter(|&&l| l == c).count() as f32 / b.labels.len() as f32
        };
        // Prior drift: the last class gains mass from first to last batch.
        let first = batches.first().unwrap();
        let last = batches.last().unwrap();
        assert!(
            share(last, k - 1) > share(first, k - 1) + 0.05,
            "class priors did not tilt: {} -> {}",
            share(first, k - 1),
            share(last, k - 1)
        );
        // Vocabulary drift: domain words overtake core words per class.
        let domain_words = crate::synth::lexicon::lexicon("soccer");
        let core_words = crate::synth::lexicon::lexicon("sports");
        let rate = |b: &DriftBatch, words: &[&str]| {
            let mut hits = 0usize;
            let mut total = 0usize;
            for (line, &l) in b.lines.iter().zip(&b.labels) {
                if l != 0 {
                    continue;
                }
                for w in line.split(' ') {
                    total += 1;
                    if words.contains(&w) {
                        hits += 1;
                    }
                }
            }
            hits as f32 / total.max(1) as f32
        };
        assert!(
            rate(last, domain_words) > rate(first, domain_words),
            "domain vocabulary should rise across the stream"
        );
        assert!(
            rate(last, core_words) < rate(first, core_words),
            "core vocabulary should fade across the stream"
        );
    }

    #[test]
    fn twitter_docs_are_short() {
        let d = twitter(0.05, 2).unwrap();
        let avg: f32 = d
            .corpus
            .docs
            .iter()
            .map(|x| x.tokens.len() as f32)
            .sum::<f32>()
            / d.corpus.len() as f32;
        assert!(avg < 20.0, "avg len {avg}");
    }
}
