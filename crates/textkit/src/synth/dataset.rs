//! Datasets: a corpus plus label definitions, optional taxonomy, metadata
//! statistics, and train/test splits, with helpers that extract each kind of
//! weak supervision the tutorial's methods consume.

use crate::corpus::Corpus;
use crate::supervision::Supervision;
use crate::taxonomy::{NodeId, Taxonomy};
use crate::vocab::TokenId;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};
use structmine_linalg::rng as lrng;

/// Names, seed keywords and descriptions for every class.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LabelSet {
    /// Display name per class (may be a phrase).
    pub names: Vec<String>,
    /// The name split into words (lower-case, in-vocabulary wherever the
    /// class's lexicon contains them).
    pub name_words: Vec<Vec<String>>,
    /// A few seed keywords per class (keyword-level weak supervision).
    pub keywords: Vec<Vec<String>>,
    /// A one-line textual description per class (used by MICoL/TaxoClass).
    pub descriptions: Vec<String>,
}

impl LabelSet {
    /// Number of classes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no classes are defined.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// Cardinalities of the metadata attached to a corpus.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct MetaStats {
    /// Number of distinct users.
    pub n_users: usize,
    /// Number of distinct tags.
    pub n_tags: usize,
    /// Number of distinct venues.
    pub n_venues: usize,
    /// Number of distinct authors.
    pub n_authors: usize,
}

/// A complete benchmark dataset.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Recipe name, e.g. `"agnews"`.
    pub name: String,
    /// The corpus (all splits share it; see `train_idx` / `test_idx`).
    pub corpus: Corpus,
    /// Class names, keywords, descriptions.
    pub labels: LabelSet,
    /// Label hierarchy, when the dataset is hierarchical. Classes map to
    /// taxonomy nodes via `class_nodes`.
    pub taxonomy: Option<Taxonomy>,
    /// Taxonomy node backing each class (parallel to `labels`); empty for
    /// flat datasets.
    pub class_nodes: Vec<NodeId>,
    /// Document indices usable for (semi-)supervised training.
    pub train_idx: Vec<usize>,
    /// Document indices used for evaluation.
    pub test_idx: Vec<usize>,
    /// Metadata cardinalities.
    pub meta: MetaStats,
}

impl Dataset {
    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.labels.len()
    }

    /// Token-id sequences for each class name. Words missing from the
    /// vocabulary are skipped (TaxoClass-style phrase names may only
    /// partially occur in the corpus).
    pub fn label_name_tokens(&self) -> Vec<Vec<TokenId>> {
        self.labels
            .name_words
            .iter()
            .map(|words| {
                words
                    .iter()
                    .filter_map(|w| self.corpus.vocab.id(w))
                    .collect()
            })
            .collect()
    }

    /// Token-id sequences for each class's seed keywords.
    pub fn keyword_tokens(&self) -> Vec<Vec<TokenId>> {
        self.labels
            .keywords
            .iter()
            .map(|words| {
                words
                    .iter()
                    .filter_map(|w| self.corpus.vocab.id(w))
                    .collect()
            })
            .collect()
    }

    /// Label-names-only weak supervision.
    pub fn supervision_names(&self) -> Supervision {
        Supervision::LabelNames(self.label_name_tokens())
    }

    /// Keyword weak supervision.
    pub fn supervision_keywords(&self) -> Supervision {
        Supervision::Keywords(self.keyword_tokens())
    }

    /// Document-level weak supervision: `per_class` labeled docs per class,
    /// sampled deterministically from the training split.
    pub fn supervision_docs(&self, per_class: usize, seed: u64) -> Supervision {
        let mut rng = lrng::seeded(seed);
        let mut pairs = Vec::new();
        for c in 0..self.n_classes() {
            let mut members: Vec<usize> = self
                .train_idx
                .iter()
                .copied()
                .filter(|&i| self.corpus.docs[i].labels.contains(&c))
                .collect();
            members.shuffle(&mut rng);
            pairs.extend(members.into_iter().take(per_class).map(|i| (i, c)));
        }
        Supervision::LabeledDocs(pairs)
    }

    /// Gold single labels of the test split. Panics on multi-label docs.
    pub fn test_gold(&self) -> Vec<usize> {
        self.test_idx
            .iter()
            .map(|&i| self.corpus.docs[i].label())
            .collect()
    }

    /// Gold label sets of the test split (multi-label).
    pub fn test_gold_sets(&self) -> Vec<Vec<usize>> {
        self.test_idx
            .iter()
            .map(|&i| self.corpus.docs[i].labels.clone())
            .collect()
    }

    /// Class sizes over the whole corpus (a doc counts once per label).
    pub fn class_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.n_classes()];
        for doc in &self.corpus.docs {
            for &l in &doc.labels {
                sizes[l] += 1;
            }
        }
        sizes
    }

    /// Ratio of the largest to the smallest class (X-Class's "Imbalance").
    pub fn imbalance(&self) -> f32 {
        let sizes = self.class_sizes();
        let max = sizes.iter().copied().max().unwrap_or(0);
        let min = sizes.iter().copied().min().unwrap_or(0);
        if min == 0 {
            f32::INFINITY
        } else {
            max as f32 / min as f32
        }
    }

    /// Content fingerprint of the dataset: corpus, labels, taxonomy, and
    /// splits. Two recipe invocations with the same (name, scale, seed)
    /// produce the same fingerprint; any content change produces a new one,
    /// so artifact keys built on it can never serve stale results.
    pub fn fingerprint(&self) -> u128 {
        structmine_store::fingerprint_of(self)
    }
}

impl structmine_store::StableHash for LabelSet {
    fn stable_hash(&self, h: &mut structmine_store::StableHasher) {
        self.names.stable_hash(h);
        self.name_words.stable_hash(h);
        self.keywords.stable_hash(h);
        self.descriptions.stable_hash(h);
    }
}

impl structmine_store::StableHash for MetaStats {
    fn stable_hash(&self, h: &mut structmine_store::StableHasher) {
        self.n_users.stable_hash(h);
        self.n_tags.stable_hash(h);
        self.n_venues.stable_hash(h);
        self.n_authors.stable_hash(h);
    }
}

impl structmine_store::StableHash for Dataset {
    fn stable_hash(&self, h: &mut structmine_store::StableHasher) {
        self.name.stable_hash(h);
        self.corpus.stable_hash(h);
        self.labels.stable_hash(h);
        self.taxonomy.stable_hash(h);
        self.class_nodes.stable_hash(h);
        self.train_idx.stable_hash(h);
        self.test_idx.stable_hash(h);
        self.meta.stable_hash(h);
    }
}

/// Deterministically split `n` documents into train/test index lists.
pub fn split_indices(n: usize, test_frac: f32, seed: u64) -> (Vec<usize>, Vec<usize>) {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = lrng::seeded(seed);
    idx.shuffle(&mut rng);
    let n_test = ((n as f32) * test_frac).round() as usize;
    let test = idx[..n_test].to_vec();
    let train = idx[n_test..].to_vec();
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::Doc;
    use crate::vocab::Vocab;

    fn tiny_dataset() -> Dataset {
        let mut vocab = Vocab::new();
        let soccer = vocab.intern("soccer");
        let law = vocab.intern("law");
        let judge = vocab.intern("judge");
        let mut corpus = Corpus::new(vocab);
        for i in 0..10 {
            let mut d = Doc::from_tokens(vec![if i % 2 == 0 { soccer } else { law }, judge]);
            d.labels = vec![i % 2];
            corpus.docs.push(d);
        }
        let (train, test) = split_indices(10, 0.3, 1);
        Dataset {
            name: "tiny".into(),
            corpus,
            labels: LabelSet {
                names: vec!["soccer".into(), "law".into()],
                name_words: vec![vec!["soccer".into()], vec!["law".into()]],
                keywords: vec![vec!["soccer".into()], vec!["law".into(), "judge".into()]],
                descriptions: vec!["about soccer".into(), "about law".into()],
            },
            taxonomy: None,
            class_nodes: vec![],
            train_idx: train,
            test_idx: test,
            meta: MetaStats::default(),
        }
    }

    #[test]
    fn split_is_disjoint_and_covers() {
        let (train, test) = split_indices(100, 0.25, 7);
        assert_eq!(test.len(), 25);
        assert_eq!(train.len(), 75);
        let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_is_deterministic() {
        assert_eq!(split_indices(50, 0.2, 3), split_indices(50, 0.2, 3));
        assert_ne!(split_indices(50, 0.2, 3).1, split_indices(50, 0.2, 4).1);
    }

    #[test]
    fn label_name_tokens_resolve_in_vocab() {
        let d = tiny_dataset();
        let toks = d.label_name_tokens();
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0], vec![d.corpus.vocab.id("soccer").unwrap()]);
    }

    #[test]
    fn supervision_docs_selects_per_class_from_train() {
        let d = tiny_dataset();
        let sup = d.supervision_docs(2, 9);
        let pairs = sup.labeled_docs().unwrap();
        for &(i, c) in pairs {
            assert!(d.train_idx.contains(&i));
            assert_eq!(d.corpus.docs[i].labels, vec![c]);
        }
        let per_class0 = pairs.iter().filter(|&&(_, c)| c == 0).count();
        assert!(per_class0 <= 2);
    }

    #[test]
    fn imbalance_of_balanced_data_is_one() {
        let d = tiny_dataset();
        assert!((d.imbalance() - 1.0).abs() < 1e-6);
        assert_eq!(d.class_sizes(), vec![5, 5]);
    }

    #[test]
    fn test_gold_matches_docs() {
        let d = tiny_dataset();
        let gold = d.test_gold();
        for (k, &i) in d.test_idx.iter().enumerate() {
            assert_eq!(gold[k], d.corpus.docs[i].labels[0]);
        }
    }
}
