//! `structmine` — command-line weakly-supervised text classification.
//!
//! ```text
//! structmine classify --labels sports,business,technology [--method xclass]
//!                     [--input docs.txt] [--tier test|standard]
//!                     [--precision exact|fast]
//! structmine ingest   --labels sports,business,technology [--method xclass]
//!                     [--input docs.txt] [--tier test|standard]
//! structmine demo     --recipe agnews [--method westclass] [--scale 0.15]
//! structmine datasets
//! ```
//!
//! `classify` reads one document per line (stdin or `--input`) and routes it
//! through [`structmine_engine::Engine`] — the same load-once/run-many entry
//! point used by `structmine-serve` — printing one
//! `label<TAB>confidence<TAB>doc` line per input. `ingest` streams documents
//! into a generational corpus: each blank-line-delimited batch becomes the
//! next generation and is classified immediately (receipt line plus the
//! same prediction lines `classify` prints), flushed per batch so piping
//! `tail -f` works. `demo` runs a method on a synthetic recipe and reports
//! test accuracy. `datasets` lists the available recipes.
//!
//! Failures surface as [`PipelineError`]s: usage-level mistakes (unknown
//! method/recipe, malformed `--faults` plan, bad input) exit with code 2,
//! environment failures (unreadable input file) with code 1.

use std::io::BufRead;
use std::process::ExitCode;
use structmine_store::PipelineError;

mod args;

use args::{Args, ParseError};

fn main() -> ExitCode {
    structmine_store::obs::init();
    // Worker mode (DESIGN §12): when a supervising coordinator points
    // STRUCTMINE_WORKER_SPEC at a spec file, this process is a shard worker
    // — it runs exactly the job the spec names and exits, ignoring argv.
    match structmine_shard::WorkerSpec::from_env() {
        Ok(Some(spec)) => return worker_main(&spec),
        Ok(None) => {}
        Err(e) => {
            structmine_store::obs::log_warn(&format!("error: {e}"));
            return ExitCode::from(2);
        }
    }
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result = match args::parse(&argv) {
        Ok(Args::Classify {
            labels,
            method,
            input,
            tier,
            threads,
            precision,
            cache,
        }) => apply_cache_flags(&cache)
            .and_then(|()| classify(labels, method, input, tier, policy(threads, precision))),
        Ok(Args::Shard {
            labels,
            method,
            input,
            tier,
            threads,
            shards,
            precision,
            cache,
        }) => apply_cache_flags(&cache).and_then(|()| {
            shard(
                labels,
                method,
                input,
                tier,
                shards,
                policy(threads, precision),
            )
        }),
        Ok(Args::Ingest {
            labels,
            method,
            input,
            tier,
            threads,
            precision,
            cache,
        }) => apply_cache_flags(&cache)
            .and_then(|()| ingest(labels, method, input, tier, policy(threads, precision))),
        Ok(Args::Demo {
            recipe,
            method,
            scale,
            seed,
            threads,
            cache,
        }) => apply_cache_flags(&cache)
            .and_then(|()| demo(recipe, method, scale, seed, policy(threads, None))),
        Ok(Args::Datasets) => datasets(),
        Ok(Args::Help) => {
            println!("{}", args::USAGE);
            Ok(())
        }
        Err(ParseError(msg)) => {
            structmine_store::obs::log_warn(&format!("error: {msg}\n\n{}", args::USAGE));
            return ExitCode::from(2);
        }
    };
    // Write the JSON run report (when configured) on success *and* failure —
    // a failed run's partial timings and counters are exactly what you want
    // when debugging it.
    structmine_store::obs::write_report_if_configured("structmine");
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            structmine_store::obs::log_warn(&format!("error: {e}"));
            match e {
                // Usage-level mistakes and persistent shard failures (a
                // retry cannot fix them): exit 2, like argument parse
                // errors.
                PipelineError::Unknown { .. }
                | PipelineError::InvalidFaultPlan(_)
                | PipelineError::InvalidInput(_)
                | PipelineError::Shard {
                    transient: false, ..
                } => ExitCode::from(2),
                _ => ExitCode::FAILURE,
            }
        }
    }
}

/// Resolve `--threads` / `--precision` into the execution policy used for
/// PLM inference.
///
/// The environment variables are also set so code that consults the
/// process-global policy (e.g. the matmul routing in `structmine_linalg`)
/// agrees with the flags — this runs before the global policy is first
/// read. The precision tier is always exported at its resolved value, so
/// the run report's config fingerprint names the tier even on defaults.
fn policy(
    threads: Option<usize>,
    precision: Option<structmine_linalg::Precision>,
) -> structmine_linalg::ExecPolicy {
    let precision = precision.unwrap_or_else(structmine_linalg::Precision::from_env);
    std::env::set_var("STRUCTMINE_PRECISION", precision.name());
    match threads {
        Some(n) => {
            std::env::set_var("STRUCTMINE_THREADS", n.to_string());
            structmine_linalg::ExecPolicy::with_threads(n)
        }
        None => structmine_linalg::ExecPolicy::default(),
    }
    .with_precision(precision)
}

/// Apply `--no-cache` / `--cache-dir` / `--faults` by setting the
/// artifact-store environment variables — this runs before the global store
/// (or the PLM pretraining store) is first read, so the flags take full
/// effect. A malformed fault plan is rejected here, before any work runs.
fn apply_cache_flags(cache: &args::CacheArgs) -> Result<(), PipelineError> {
    if cache.no_cache {
        std::env::set_var("STRUCTMINE_NO_CACHE", "1");
    }
    if let Some(dir) = &cache.dir {
        std::env::set_var("STRUCTMINE_STORE_DIR", dir);
        std::env::set_var("STRUCTMINE_PLM_CACHE_DIR", dir);
    }
    if let Some(plan) = &cache.faults {
        structmine_store::FaultPlan::parse(plan)?;
        std::env::set_var("STRUCTMINE_FAULTS", plan);
    }
    if let Some(path) = &cache.report_json {
        std::env::set_var(structmine_store::obs::REPORT_ENV, path);
    }
    Ok(())
}

/// Map a dataset-construction failure into the CLI's error taxonomy: an
/// unknown recipe name is a usage mistake (exit 2, like any unknown-name
/// error), and any other synthesis failure is invalid input — never a panic.
fn synth_error(e: structmine_text::synth::SynthError) -> PipelineError {
    match e {
        structmine_text::synth::SynthError::UnknownRecipe { name } => PipelineError::Unknown {
            what: "recipe",
            name,
            expected: structmine_text::synth::ALL_RECIPES.join(", "),
        },
        other => PipelineError::InvalidInput(other.to_string()),
    }
}

/// Map an [`EngineError`] into the CLI's error taxonomy. Dataset-synthesis
/// failures reuse [`synth_error`]; everything else (bad labels, a method
/// that cannot serve) is a usage-level mistake.
fn engine_error(e: structmine_engine::EngineError) -> PipelineError {
    match e {
        structmine_engine::EngineError::Synth(s) => synth_error(s),
        other => PipelineError::InvalidInput(other.to_string()),
    }
}

fn plm_tier(tier: &str) -> structmine_plm::cache::Tier {
    if tier == "standard" {
        structmine_plm::cache::Tier::Standard
    } else {
        structmine_plm::cache::Tier::Test
    }
}

/// Read non-empty document lines from `--input` (or stdin), erroring on an
/// empty document set. Shared by `classify` and the shard coordinator, so
/// both commands see the identical line list.
fn read_documents(input: &Option<String>) -> Result<Vec<String>, PipelineError> {
    let lines: Vec<String> = match input {
        Some(path) => std::fs::read_to_string(path)
            .map_err(|e| PipelineError::Io {
                context: format!("reading --input {path}"),
                source: e,
            })?
            .lines()
            .map(|l| l.to_string())
            .collect(),
        None => std::io::stdin()
            .lock()
            .lines()
            .map_while(Result::ok)
            .collect(),
    };
    let lines: Vec<String> = lines.into_iter().filter(|l| !l.trim().is_empty()).collect();
    if lines.is_empty() {
        return Err(PipelineError::InvalidInput("no input documents".into()));
    }
    Ok(lines)
}

fn classify(
    labels: Vec<String>,
    method: String,
    input: Option<String>,
    tier: String,
    exec: structmine_linalg::ExecPolicy,
) -> Result<(), PipelineError> {
    let lines = read_documents(&input)?;
    structmine_store::obs::log_info(&format!(
        "classifying {} documents into {:?} with {method} ...",
        lines.len(),
        labels
    ));
    let engine = serving_engine(labels, &method, &tier, exec)?;
    let preds = engine.classify(&lines).map_err(engine_error)?;
    for (pred, line) in preds.iter().zip(&lines) {
        println!("{}", structmine_engine::format_prediction_line(pred, line));
    }
    Ok(())
}

/// Load a label-names serving engine for `classify` / `ingest`, rejecting
/// non-servable methods as a usage error.
fn serving_engine(
    labels: Vec<String>,
    method: &str,
    tier: &str,
    exec: structmine_linalg::ExecPolicy,
) -> Result<structmine_engine::Engine, PipelineError> {
    let kind = structmine_engine::MethodKind::parse(method)
        .filter(|k| k.servable())
        .ok_or_else(|| PipelineError::Unknown {
            what: "method",
            name: method.to_string(),
            expected: "xclass, lotclass, prompt, match".into(),
        })?;
    structmine_engine::Engine::load(structmine_engine::EngineConfig {
        source: structmine_engine::EngineSource::Labels(labels),
        method: kind,
        plm: structmine_engine::PlmSpec::Pretrained(plm_tier(tier)),
        seed: None,
        exec,
    })
    .map_err(engine_error)
}

/// Field separator inside a worker job string (unit separator: cannot
/// occur in labels, method names, tiers, or paths the CLI builds).
const JOB_SEP: char = '\u{1f}';

/// Render a classify job for worker `i` of the shard run. The worker
/// derives its own document range from its spec, so every worker gets the
/// same job string. The precision tier rides in the job itself (not just
/// the inherited environment): a worker must classify at exactly the tier
/// the coordinator merged for, whatever its own environment says.
fn encode_classify_job(
    labels: &[String],
    method: &str,
    tier: &str,
    precision: structmine_linalg::Precision,
    input: &std::path::Path,
) -> String {
    [
        "classify",
        &labels.join(","),
        method,
        tier,
        precision.name(),
        &input.display().to_string(),
    ]
    .join(&JOB_SEP.to_string())
}

/// Worker-mode entry: run the spec's job under the shard runtime
/// (heartbeat, atomic publish), mapping errors onto the exit-status
/// taxonomy the coordinator supervises by — exit 2 persistent, exit 1
/// transient.
fn worker_main(spec: &structmine_shard::WorkerSpec) -> ExitCode {
    let result = structmine_shard::worker::run_job(spec, worker_job);
    structmine_store::obs::write_report_if_configured("structmine-worker");
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            structmine_store::obs::log_warn(&format!("worker {} error: {e}", spec.shard_index));
            if structmine_shard::worker::is_transient(&e) {
                ExitCode::FAILURE
            } else {
                ExitCode::from(2)
            }
        }
    }
}

/// Decode and run one worker job. Also the coordinator's in-process
/// fallback when a worker is shed — identical code path, identical bytes.
fn worker_job(spec: &structmine_shard::WorkerSpec) -> Result<Vec<u8>, PipelineError> {
    let parts: Vec<&str> = spec.job.split(JOB_SEP).collect();
    match parts.as_slice() {
        ["classify", labels, method, tier, precision, input] => {
            let precision = structmine_linalg::Precision::parse(precision)
                .map_err(PipelineError::InvalidInput)?;
            let labels: Vec<String> = labels.split(',').map(str::to_string).collect();
            let lines = read_documents(&Some(input.to_string()))?;
            let range =
                structmine_shard::shard_range(lines.len(), spec.shard_index, spec.shard_count);
            let engine = serving_engine(labels, method, tier, policy(None, Some(precision)))?;
            // Encode this worker's shard of the fit corpus through the
            // shared store: the lease-claimed, content-addressed shard
            // artifact is what a restarted incarnation resumes from.
            engine
                .shard_encode(spec.shard_index, spec.shard_count)
                .map_err(engine_error)?;
            let slice = &lines[range];
            let preds = engine.classify(slice).map_err(engine_error)?;
            let mut out = String::new();
            for (pred, line) in preds.iter().zip(slice) {
                out.push_str(&structmine_engine::format_prediction_line(pred, line));
                out.push('\n');
            }
            Ok(out.into_bytes())
        }
        _ => Err(PipelineError::InvalidInput(format!(
            "unrecognized worker job: {}",
            spec.job
        ))),
    }
}

/// `structmine shard`: classify through a supervising coordinator and N
/// worker processes (DESIGN §12). Stdout is byte-identical to `classify`
/// for any shard count; worker crashes restart and resume from the shared
/// artifact store; persistent failures degrade to in-process execution.
fn shard(
    labels: Vec<String>,
    method: String,
    input: Option<String>,
    tier: String,
    shards: Option<usize>,
    exec: structmine_linalg::ExecPolicy,
) -> Result<(), PipelineError> {
    use std::io::Write as _;
    let shards = match shards {
        Some(n) => n,
        None => structmine_shard::shards_from_env()?.unwrap_or(1),
    };
    // Reject usage mistakes before any process is spawned.
    structmine_engine::MethodKind::parse(&method)
        .filter(|k| k.servable())
        .ok_or_else(|| PipelineError::Unknown {
            what: "method",
            name: method.clone(),
            expected: "xclass, lotclass, prompt, match".into(),
        })?;
    let lines = read_documents(&input)?;

    let work_dir = std::env::temp_dir().join(format!("structmine-shard-{}", std::process::id()));
    std::fs::create_dir_all(&work_dir).map_err(|e| PipelineError::Io {
        context: format!("creating shard work dir {}", work_dir.display()),
        source: e,
    })?;
    let input_path = work_dir.join("input.txt");
    std::fs::write(&input_path, lines.join("\n") + "\n").map_err(|e| PipelineError::Io {
        context: format!("writing shard input {}", input_path.display()),
        source: e,
    })?;

    structmine_store::obs::log_info(&format!(
        "sharding {} documents across {shards} worker(s) with {method} ...",
        lines.len()
    ));
    let cfg = structmine_shard::SupervisorConfig::from_env(shards);
    let sup = structmine_shard::Supervisor::new(cfg, &work_dir);
    let exe = std::env::current_exe().map_err(|e| PipelineError::Io {
        context: "resolving current executable for worker spawn".into(),
        source: e,
    })?;
    let make = |_i: usize, _spec: &std::path::Path| std::process::Command::new(&exe);
    let jobs =
        vec![encode_classify_job(&labels, &method, &tier, exec.precision(), &input_path); shards];
    let (outputs, outcomes) = sup.run(&jobs, &make, &worker_job)?;

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for path in &outputs {
        let bytes = std::fs::read(path).map_err(|e| PipelineError::Io {
            context: format!("reading shard output {}", path.display()),
            source: e,
        })?;
        out.write_all(&bytes).map_err(|e| PipelineError::Io {
            context: "writing merged output".into(),
            source: e,
        })?;
    }
    let _ = out.flush();
    structmine_store::obs::log_info(&format!(
        "shard run complete: {} worker(s), {} restart(s), {} degraded",
        outcomes.len(),
        outcomes.iter().map(|o| u64::from(o.restarts)).sum::<u64>(),
        outcomes.iter().filter(|o| o.degraded).count(),
    ));
    let _ = std::fs::remove_dir_all(&work_dir);
    Ok(())
}

/// `structmine ingest`: stream blank-line-delimited batches of documents
/// into a generational corpus. Each batch is appended as the next
/// generation and classified immediately — a `generation<TAB>g` receipt
/// line, then one prediction line per document, flushed per batch so
/// `tail -f log | structmine ingest ...` emits results as batches arrive.
fn ingest(
    labels: Vec<String>,
    method: String,
    input: Option<String>,
    tier: String,
    exec: structmine_linalg::ExecPolicy,
) -> Result<(), PipelineError> {
    use std::io::Write as _;
    let engine = serving_engine(labels, &method, &tier, exec)?;
    engine.warm().map_err(engine_error)?;

    let mut total = 0usize;
    let mut flush_batch = |batch: &mut Vec<String>| -> Result<(), PipelineError> {
        if batch.is_empty() {
            return Ok(());
        }
        let ingested = engine.ingest(batch).map_err(engine_error)?;
        let out = std::io::stdout();
        let mut out = out.lock();
        let _ = writeln!(out, "generation\t{}", ingested.generation);
        for (pred, line) in ingested.predictions.iter().zip(batch.iter()) {
            let _ = writeln!(
                out,
                "{}",
                structmine_engine::format_prediction_line(pred, line)
            );
        }
        let _ = out.flush();
        total += batch.len();
        batch.clear();
        Ok(())
    };

    let mut batch: Vec<String> = Vec::new();
    match &input {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| PipelineError::Io {
                context: format!("reading --input {path}"),
                source: e,
            })?;
            for line in text.lines() {
                if line.trim().is_empty() {
                    flush_batch(&mut batch)?;
                } else {
                    batch.push(line.to_string());
                }
            }
        }
        None => {
            // Streaming: each line arrives as it is written to the pipe; a
            // blank line closes the current batch.
            for line in std::io::stdin().lock().lines().map_while(Result::ok) {
                if line.trim().is_empty() {
                    flush_batch(&mut batch)?;
                } else {
                    batch.push(line);
                }
            }
        }
    }
    flush_batch(&mut batch)?;
    if total == 0 {
        return Err(PipelineError::InvalidInput("no input documents".into()));
    }
    Ok(())
}

fn demo(
    recipe: String,
    method: String,
    scale: f32,
    seed: u64,
    exec: structmine_linalg::ExecPolicy,
) -> Result<(), PipelineError> {
    let kind =
        structmine_engine::MethodKind::parse(&method).ok_or_else(|| PipelineError::Unknown {
            what: "method",
            name: method.clone(),
            expected: "westclass, xclass, lotclass, conwea, prompt, match, supervised".into(),
        })?;
    let engine = structmine_engine::Engine::load(structmine_engine::EngineConfig {
        source: structmine_engine::EngineSource::Recipe {
            name: recipe.clone(),
            scale,
            seed,
        },
        method: kind,
        plm: structmine_engine::PlmSpec::Pretrained(structmine_plm::cache::Tier::Test),
        seed: None,
        exec,
    })
    .map_err(engine_error)?;
    let dataset = engine.dataset();
    structmine_store::obs::log_info(&format!(
        "recipe {recipe}: {} docs, {} classes (scale {scale}, seed {seed})",
        dataset.corpus.len(),
        dataset.n_classes()
    ));
    let preds = engine.fitted_predictions().map_err(engine_error)?;
    let test: Vec<usize> = dataset.test_idx.iter().map(|&i| preds[i]).collect();
    let acc = structmine_eval::accuracy(&test, &dataset.test_gold());
    let macro_f1 = structmine_eval::macro_f1(&test, &dataset.test_gold(), dataset.n_classes());
    // The metrics return NaN on an empty test split (undefined, not zero);
    // name the condition instead of printing "NaN" as if it were a score.
    let fmt = |v: f32| {
        if v.is_nan() {
            "n/a (empty test split)".to_string()
        } else {
            format!("{v:.3}")
        }
    };
    println!(
        "{method} on {recipe}: accuracy {}, macro-F1 {}",
        fmt(acc),
        fmt(macro_f1)
    );
    Ok(())
}

fn datasets() -> Result<(), PipelineError> {
    println!("available recipes (synthetic stand-ins; see DESIGN.md):");
    for name in structmine_text::synth::ALL_RECIPES {
        let d = structmine_text::synth::by_name(name, 0.05, 1).map_err(synth_error)?;
        let kind = match (&d.taxonomy, d.meta.n_users + d.meta.n_authors > 0) {
            (Some(t), _) if !t.is_tree() => "DAG multi-label",
            (Some(_), _) => "tree hierarchy",
            (None, true) => "flat + metadata",
            (None, false) => "flat",
        };
        println!("  {name:<18} {:>3} classes  {kind}", d.n_classes());
    }
    Ok(())
}
