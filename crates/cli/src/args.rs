//! Hand-rolled argument parsing (no external dependency).

/// Usage text shown by `--help` and on parse errors.
pub const USAGE: &str = "\
structmine — weakly-supervised text classification

USAGE:
  structmine classify --labels <a,b,c> [--method xclass|lotclass|prompt|match]
                      [--input <file>] [--tier test|standard] [--threads <n>]
                      [--precision exact|fast]
                      [--no-cache | --cache-dir <dir>] [--faults <plan>]
                      [--report-json <path>]
      Classify one document per line (stdin or --input) using only label
      names; prints one 'label<TAB>confidence<TAB>doc' line per input. Runs
      through the same Engine as structmine-serve, so output is byte-identical
      to the server's /classify responses.

  structmine ingest --labels <a,b,c> [--method xclass|lotclass|prompt|match]
                    [--input <file>] [--tier test|standard] [--threads <n>]
                    [--precision exact|fast]
                    [--no-cache | --cache-dir <dir>] [--faults <plan>]
                    [--report-json <path>]
      Stream documents into a generational corpus. Reads stdin (or --input);
      each blank-line-delimited batch is appended as the corpus's next
      generation and classified immediately — 'generation<TAB>g' then one
      prediction line per document, flushed per batch, so
      'tail -f log | structmine ingest ...' works. The serving rule stays
      frozen, so prediction lines are byte-identical to classify.

  structmine shard --labels <a,b,c> [--shards <n>] [--method xclass|lotclass|prompt|match]
                   [--input <file>] [--tier test|standard] [--threads <n>]
                   [--precision exact|fast]
                   [--cache-dir <dir>] [--faults <plan>] [--report-json <path>]
      Classify like `classify`, but split the documents into <n> index-ordered
      shards and run one supervised worker process per shard (DESIGN §12).
      Workers share the artifact store; crashed workers restart and resume
      from it; persistent failures degrade to in-process execution. Merged
      stdout is byte-identical to `classify` for any shard count. <n>
      defaults to STRUCTMINE_SHARDS, else 1.

  structmine demo --recipe <name>
                  [--method westclass|xclass|lotclass|conwea|prompt|match|supervised]
                  [--scale <f32>] [--seed <u64>] [--threads <n>]
                  [--no-cache | --cache-dir <dir>] [--faults <plan>]
                  [--report-json <path>]
      Run a method on a synthetic benchmark recipe and report accuracy.

  --threads <n> caps the worker threads used for PLM inference (default: the
  STRUCTMINE_THREADS environment variable, else all cores). Results are
  bitwise identical for any thread count.

  --precision exact|fast selects the inference arithmetic tier (default: the
  STRUCTMINE_PRECISION environment variable, else exact). 'exact' keeps
  bitwise-reproducible output; 'fast' swaps in approximate SIMD-friendly
  kernels for higher throughput, gated by the accuracy-tolerance harness
  (label agreement >= 99.5% against exact). The two tiers never share
  artifact-store entries.

  --cache-dir <dir> puts the content-addressed artifact store there (default:
  the STRUCTMINE_STORE_DIR environment variable, else a per-user temp
  directory). Warm reruns skip recomputing pretraining, corpus encodings,
  and method outputs. --no-cache disables the store entirely; outputs are
  bitwise identical either way.

  --faults <plan> injects deterministic disk faults into the artifact store
  (same syntax as the STRUCTMINE_FAULTS environment variable, e.g.
  'disk_write=0.2,disk_read=0.1,truncate=0.05;seed=7'). Outputs remain
  bitwise identical to a fault-free run; only caching behavior changes.

  --report-json <path> writes a JSON run report (per-stage timings, counters,
  config fingerprint) to <path> at process exit — same as setting the
  STRUCTMINE_REPORT environment variable. Classification output on stdout is
  byte-identical with or without reporting.

  structmine datasets
      List the available synthetic dataset recipes.

  structmine help
      Show this message.";

/// Parsed command line.
#[derive(Debug, PartialEq)]
pub enum Args {
    /// Classify documents from stdin / a file.
    Classify {
        /// Label names (comma separated on the command line).
        labels: Vec<String>,
        /// Method name.
        method: String,
        /// Input path; `None` = stdin.
        input: Option<String>,
        /// PLM tier.
        tier: String,
        /// Worker threads for PLM inference; `None` = environment default.
        threads: Option<usize>,
        /// Inference precision tier; `None` = environment default (Exact).
        precision: Option<structmine_linalg::Precision>,
        /// Artifact-store configuration.
        cache: CacheArgs,
    },
    /// Classify documents through sharded worker processes.
    Shard {
        /// Label names (comma separated on the command line).
        labels: Vec<String>,
        /// Method name.
        method: String,
        /// Input path; `None` = stdin.
        input: Option<String>,
        /// PLM tier.
        tier: String,
        /// Worker threads for PLM inference; `None` = environment default.
        threads: Option<usize>,
        /// Worker processes; `None` = `STRUCTMINE_SHARDS`, else 1.
        shards: Option<usize>,
        /// Inference precision tier; `None` = environment default (Exact).
        precision: Option<structmine_linalg::Precision>,
        /// Artifact-store configuration.
        cache: CacheArgs,
    },
    /// Stream documents as generational corpus deltas.
    Ingest {
        /// Label names (comma separated on the command line).
        labels: Vec<String>,
        /// Method name.
        method: String,
        /// Input path; `None` = stdin (streaming, batch per blank line).
        input: Option<String>,
        /// PLM tier.
        tier: String,
        /// Worker threads for PLM inference; `None` = environment default.
        threads: Option<usize>,
        /// Inference precision tier; `None` = environment default (Exact).
        precision: Option<structmine_linalg::Precision>,
        /// Artifact-store configuration.
        cache: CacheArgs,
    },
    /// Run a method on a synthetic recipe.
    Demo {
        /// Recipe name.
        recipe: String,
        /// Method name.
        method: String,
        /// Dataset scale.
        scale: f32,
        /// RNG seed.
        seed: u64,
        /// Worker threads for PLM inference; `None` = environment default.
        threads: Option<usize>,
        /// Artifact-store configuration.
        cache: CacheArgs,
    },
    /// List recipes.
    Datasets,
    /// Show usage.
    Help,
}

/// Artifact-store flags shared by `classify` and `demo`.
#[derive(Debug, Default, PartialEq)]
pub struct CacheArgs {
    /// `--no-cache`: disable the artifact store (recompute everything).
    pub no_cache: bool,
    /// `--cache-dir <dir>`: artifact-store directory.
    pub dir: Option<String>,
    /// `--faults <plan>`: deterministic disk-fault plan (STRUCTMINE_FAULTS
    /// syntax); validated before the store first runs.
    pub faults: Option<String>,
    /// `--report-json <path>`: write a JSON run report (timings, counters,
    /// config fingerprint) at process exit. Same as `STRUCTMINE_REPORT`.
    pub report_json: Option<String>,
}

/// A parse failure with its message.
#[derive(Debug, PartialEq)]
pub struct ParseError(pub String);

/// Parse `argv` (without the program name).
/// Every flag any subcommand accepts; anything else is a usage error
/// instead of being silently ignored.
const KNOWN_FLAGS: &[&str] = &[
    "labels",
    "recipe",
    "method",
    "input",
    "tier",
    "threads",
    "precision",
    "no-cache",
    "cache-dir",
    "faults",
    "scale",
    "seed",
    "shards",
    "report-json",
];

pub fn parse(argv: &[String]) -> Result<Args, ParseError> {
    let mut it = argv.iter();
    let cmd = it.next().map(|s| s.as_str()).unwrap_or("help");
    let mut flags = std::collections::HashMap::new();
    let rest: Vec<&String> = it.collect();
    let mut i = 0;
    while i < rest.len() {
        let key = rest[i]
            .strip_prefix("--")
            .ok_or_else(|| ParseError(format!("expected a --flag, got {}", rest[i])))?;
        if !KNOWN_FLAGS.contains(&key) {
            return Err(ParseError(format!("unknown flag --{key}")));
        }
        // Boolean flags take no value.
        if key == "no-cache" {
            flags.insert(key.to_string(), String::new());
            i += 1;
            continue;
        }
        let value = rest
            .get(i + 1)
            .ok_or_else(|| ParseError(format!("--{key} needs a value")))?;
        flags.insert(key.to_string(), value.to_string());
        i += 2;
    }

    let threads = flags
        .get("threads")
        .map(|s| match s.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(ParseError(format!(
                "bad --threads {s} (need an integer >= 1)"
            ))),
        })
        .transpose()?;

    let precision = flags
        .get("precision")
        .map(|s| structmine_linalg::Precision::parse(s).map_err(ParseError))
        .transpose()?;

    let cache = CacheArgs {
        no_cache: flags.contains_key("no-cache"),
        dir: flags.get("cache-dir").cloned(),
        faults: flags.get("faults").cloned(),
        report_json: flags.get("report-json").cloned(),
    };
    if cache.no_cache && cache.dir.is_some() {
        return Err(ParseError(
            "--no-cache and --cache-dir are mutually exclusive".into(),
        ));
    }

    let shards = flags
        .get("shards")
        .map(|s| structmine_shard::parse_shards(s).map_err(|e| ParseError(e.to_string())))
        .transpose()?;

    match cmd {
        "classify" | "ingest" | "shard" => {
            let labels: Vec<String> = flags
                .get("labels")
                .ok_or_else(|| ParseError(format!("{cmd} requires --labels a,b,c")))?
                .split(',')
                .map(|s| s.trim().to_lowercase())
                .filter(|s| !s.is_empty())
                .collect();
            if labels.len() < 2 {
                return Err(ParseError("need at least two labels".into()));
            }
            let method = flags
                .get("method")
                .cloned()
                .unwrap_or_else(|| "xclass".into());
            let input = flags.get("input").cloned();
            let tier = flags.get("tier").cloned().unwrap_or_else(|| "test".into());
            Ok(match cmd {
                "classify" => Args::Classify {
                    labels,
                    method,
                    input,
                    tier,
                    threads,
                    precision,
                    cache,
                },
                "shard" => Args::Shard {
                    labels,
                    method,
                    input,
                    tier,
                    threads,
                    shards,
                    precision,
                    cache,
                },
                _ => Args::Ingest {
                    labels,
                    method,
                    input,
                    tier,
                    threads,
                    precision,
                    cache,
                },
            })
        }
        "demo" => Ok(Args::Demo {
            recipe: flags
                .get("recipe")
                .cloned()
                .ok_or_else(|| ParseError("demo requires --recipe <name>".into()))?,
            method: flags
                .get("method")
                .cloned()
                .unwrap_or_else(|| "westclass".into()),
            scale: flags
                .get("scale")
                .map(|s| {
                    s.parse()
                        .map_err(|_| ParseError(format!("bad --scale {s}")))
                })
                .transpose()?
                .unwrap_or(0.15),
            seed: flags
                .get("seed")
                .map(|s| s.parse().map_err(|_| ParseError(format!("bad --seed {s}"))))
                .transpose()?
                .unwrap_or(7),
            threads,
            cache,
        }),
        "datasets" => Ok(Args::Datasets),
        "help" | "--help" | "-h" => Ok(Args::Help),
        other => Err(ParseError(format!("unknown command {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_classify_with_defaults() {
        let a = parse(&sv(&["classify", "--labels", "sports,business"])).unwrap();
        assert_eq!(
            a,
            Args::Classify {
                labels: vec!["sports".into(), "business".into()],
                method: "xclass".into(),
                input: None,
                tier: "test".into(),
                threads: None,
                precision: None,
                cache: CacheArgs::default(),
            }
        );
    }

    #[test]
    fn parses_ingest_with_defaults() {
        let a = parse(&sv(&["ingest", "--labels", "sports,business"])).unwrap();
        assert_eq!(
            a,
            Args::Ingest {
                labels: vec!["sports".into(), "business".into()],
                method: "xclass".into(),
                input: None,
                tier: "test".into(),
                threads: None,
                precision: None,
                cache: CacheArgs::default(),
            }
        );
    }

    #[test]
    fn ingest_requires_labels() {
        let e = parse(&sv(&["ingest"]));
        assert!(matches!(e, Err(ParseError(ref m)) if m.contains("ingest requires --labels")));
    }

    #[test]
    fn parses_demo_with_options() {
        let a = parse(&sv(&[
            "demo", "--recipe", "agnews", "--method", "xclass", "--scale", "0.2", "--seed", "3",
        ]))
        .unwrap();
        assert_eq!(
            a,
            Args::Demo {
                recipe: "agnews".into(),
                method: "xclass".into(),
                scale: 0.2,
                seed: 3,
                threads: None,
                cache: CacheArgs::default(),
            }
        );
    }

    #[test]
    fn parses_cache_flags() {
        let a = parse(&sv(&["demo", "--recipe", "agnews", "--no-cache"])).unwrap();
        if let Args::Demo { cache, .. } = a {
            assert!(cache.no_cache);
            assert_eq!(cache.dir, None);
        } else {
            panic!("wrong variant");
        }
        // --no-cache is a boolean flag: flags after it still parse.
        let a = parse(&sv(&[
            "demo",
            "--recipe",
            "agnews",
            "--no-cache",
            "--seed",
            "3",
        ]))
        .unwrap();
        if let Args::Demo { cache, seed, .. } = a {
            assert!(cache.no_cache);
            assert_eq!(seed, 3);
        } else {
            panic!("wrong variant");
        }
        let a = parse(&sv(&[
            "classify",
            "--labels",
            "a,b",
            "--cache-dir",
            "/tmp/artifacts",
        ]))
        .unwrap();
        if let Args::Classify { cache, .. } = a {
            assert!(!cache.no_cache);
            assert_eq!(cache.dir.as_deref(), Some("/tmp/artifacts"));
        } else {
            panic!("wrong variant");
        }
    }

    #[test]
    fn parses_faults_flag() {
        let a = parse(&sv(&[
            "demo",
            "--recipe",
            "agnews",
            "--faults",
            "disk_write=0.2,truncate=0.05;seed=7",
        ]))
        .unwrap();
        if let Args::Demo { cache, .. } = a {
            assert_eq!(
                cache.faults.as_deref(),
                Some("disk_write=0.2,truncate=0.05;seed=7")
            );
        } else {
            panic!("wrong variant");
        }
    }

    #[test]
    fn rejects_no_cache_with_cache_dir() {
        assert!(parse(&sv(&[
            "demo",
            "--recipe",
            "agnews",
            "--no-cache",
            "--cache-dir",
            "/tmp/x",
        ]))
        .is_err());
    }

    #[test]
    fn parses_threads_flag() {
        let a = parse(&sv(&["demo", "--recipe", "agnews", "--threads", "4"])).unwrap();
        if let Args::Demo { threads, .. } = a {
            assert_eq!(threads, Some(4));
        } else {
            panic!("wrong variant");
        }
        let a = parse(&sv(&["classify", "--labels", "a,b", "--threads", "2"])).unwrap();
        if let Args::Classify { threads, .. } = a {
            assert_eq!(threads, Some(2));
        } else {
            panic!("wrong variant");
        }
    }

    #[test]
    fn rejects_bad_threads() {
        assert!(parse(&sv(&["demo", "--recipe", "agnews", "--threads", "0"])).is_err());
        assert!(parse(&sv(&["demo", "--recipe", "agnews", "--threads", "many"])).is_err());
    }

    #[test]
    fn parses_precision_flag() {
        let a = parse(&sv(&["classify", "--labels", "a,b", "--precision", "fast"])).unwrap();
        if let Args::Classify { precision, .. } = a {
            assert_eq!(precision, Some(structmine_linalg::Precision::Fast));
        } else {
            panic!("wrong variant");
        }
        let a = parse(&sv(&["shard", "--labels", "a,b", "--precision", "exact"])).unwrap();
        if let Args::Shard { precision, .. } = a {
            assert_eq!(precision, Some(structmine_linalg::Precision::Exact));
        } else {
            panic!("wrong variant");
        }
    }

    #[test]
    fn rejects_bad_precision() {
        let e = parse(&sv(&["classify", "--labels", "a,b", "--precision", "warp"]));
        assert!(matches!(e, Err(ParseError(ref m)) if m.contains("warp")));
    }

    #[test]
    fn rejects_single_label() {
        assert!(parse(&sv(&["classify", "--labels", "sports"])).is_err());
    }

    #[test]
    fn rejects_missing_value() {
        assert!(parse(&sv(&["demo", "--recipe"])).is_err());
        assert!(parse(&sv(&["demo"])).is_err());
    }

    #[test]
    fn rejects_unknown_command_and_flags_without_dashes() {
        assert!(parse(&sv(&["frobnicate"])).is_err());
        assert!(parse(&sv(&["demo", "recipe", "agnews"])).is_err());
    }

    #[test]
    fn rejects_unknown_flags() {
        // Unknown flags used to be silently swallowed; now they are a
        // usage error like any other parse failure.
        let e = parse(&sv(&["demo", "--recipe", "agnews", "--frobnicate", "1"]));
        assert!(matches!(e, Err(ParseError(ref m)) if m.contains("frobnicate")));
    }

    #[test]
    fn parses_report_json_flag() {
        let a = parse(&sv(&[
            "demo",
            "--recipe",
            "agnews",
            "--report-json",
            "/tmp/report.json",
        ]))
        .unwrap();
        if let Args::Demo { cache, .. } = a {
            assert_eq!(cache.report_json.as_deref(), Some("/tmp/report.json"));
        } else {
            panic!("wrong variant");
        }
    }

    #[test]
    fn parses_shard_command() {
        let a = parse(&sv(&["shard", "--labels", "a,b", "--shards", "4"])).unwrap();
        assert_eq!(
            a,
            Args::Shard {
                labels: vec!["a".into(), "b".into()],
                method: "xclass".into(),
                input: None,
                tier: "test".into(),
                threads: None,
                shards: Some(4),
                precision: None,
                cache: CacheArgs::default(),
            }
        );
        let a = parse(&sv(&["shard", "--labels", "a,b"])).unwrap();
        assert!(matches!(a, Args::Shard { shards: None, .. }));
        assert!(parse(&sv(&["shard", "--labels", "a,b", "--shards", "0"])).is_err());
        assert!(parse(&sv(&["shard", "--labels", "a,b", "--shards", "65"])).is_err());
        assert!(parse(&sv(&["shard", "--labels", "a,b", "--shards", "many"])).is_err());
    }

    #[test]
    fn empty_argv_is_help() {
        assert_eq!(parse(&[]).unwrap(), Args::Help);
    }

    #[test]
    fn labels_are_normalized() {
        let a = parse(&sv(&["classify", "--labels", " Sports , BUSINESS ,"])).unwrap();
        if let Args::Classify { labels, .. } = a {
            assert_eq!(labels, vec!["sports".to_string(), "business".to_string()]);
        } else {
            panic!("wrong variant");
        }
    }
}
