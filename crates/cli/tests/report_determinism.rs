//! Cross-process determinism of the JSON run report and of stdout.
//!
//! Spawns the real `structmine` binary (via `CARGO_BIN_EXE_structmine`) so
//! the whole report path — env flag, stage guards, counters, exit-time
//! write — is exercised exactly as a user would hit it. Three invariants:
//!
//! 1. Two identical runs produce byte-identical reports after masking the
//!    volatile fields (`*_ms`, thread ids).
//! 2. A 1-thread and a 4-thread run differ *only* in those masked fields.
//! 3. Classification output on stdout is byte-identical with and without
//!    reporting — the report never leaks into the pipeline's output.

use std::path::PathBuf;
use std::process::{Command, Output};

fn report_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "structmine-report-{}-{tag}.json",
        std::process::id()
    ))
}

/// Run `structmine demo` on a tiny recipe with a fully pinned environment.
fn run_demo(threads: usize, report: Option<&PathBuf>) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_structmine"));
    cmd.args([
        "demo",
        "--recipe",
        "agnews",
        "--method",
        "westclass",
        "--scale",
        "0.05",
        "--seed",
        "1",
        "--no-cache",
        "--threads",
        &threads.to_string(),
    ]);
    // Pin everything the report's config block records, so the only
    // differences between runs are the ones each test introduces.
    cmd.env_remove("STRUCTMINE_REPORT")
        .env_remove("STRUCTMINE_THREADS")
        .env_remove("STRUCTMINE_LOG")
        .env_remove("STRUCTMINE_FAULTS");
    if let Some(path) = report {
        cmd.arg("--report-json").arg(path);
    }
    let out = cmd.output().expect("spawn structmine");
    assert!(
        out.status.success(),
        "demo failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn masked(path: &PathBuf) -> String {
    let json = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("reading report {}: {e}", path.display()));
    structmine_store::obs::validate_report(&json)
        .unwrap_or_else(|e| panic!("schema-invalid report: {e}"));
    structmine_store::obs::masked_report(&json).expect("mask report")
}

#[test]
fn identical_runs_produce_identical_masked_reports_and_stdout() {
    let (p1, p2) = (report_path("run1"), report_path("run2"));
    let a = run_demo(1, Some(&p1));
    let b = run_demo(1, Some(&p2));
    assert_eq!(
        masked(&p1),
        masked(&p2),
        "two identical runs must agree byte-for-byte once timings are masked"
    );
    assert_eq!(a.stdout, b.stdout, "stdout must be deterministic");
    let _ = std::fs::remove_file(&p1);
    let _ = std::fs::remove_file(&p2);
}

#[test]
fn thread_count_only_changes_masked_fields_and_never_stdout() {
    let (p1, p4) = (report_path("t1"), report_path("t4"));
    let a = run_demo(1, Some(&p1));
    let b = run_demo(4, Some(&p4));
    assert_eq!(
        masked(&p1),
        masked(&p4),
        "1-thread and 4-thread reports may differ only in masked fields"
    );
    assert_eq!(
        a.stdout, b.stdout,
        "thread count must not change classification output"
    );
    let _ = std::fs::remove_file(&p1);
    let _ = std::fs::remove_file(&p4);
}

#[test]
fn reporting_does_not_change_stdout() {
    let p = report_path("onoff");
    let with = run_demo(1, Some(&p));
    let without = run_demo(1, None);
    assert_eq!(
        with.stdout, without.stdout,
        "stdout must be byte-identical with and without --report-json"
    );
    let _ = std::fs::remove_file(&p);
}
