//! Chaos coverage for sharded execution (DESIGN §12), driven through the
//! real `structmine` binary:
//!
//! 1. `shard --shards N` is byte-identical to `classify` for any N.
//! 2. Killing a worker at any sampled write-point (`STRUCTMINE_FAULTS=
//!    kill_worker=i@after_writes=N`) restarts it and resumes to bitwise-
//!    identical merged output.
//! 3. Killing the *coordinator* mid-flight and rerunning over the same
//!    store produces the same bytes — stale cross-process leases from the
//!    dead run are detected (dead pid) and reclaimed.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const DOCS: &[&str] = &[
    "the striker scored a goal and the keeper was offside",
    "the stock market fell as the company reported earnings",
    "the processor chip in the new device runs fast software",
    "the midfielder passed and the referee called a penalty",
    "the bank raised rates and investors sold their shares",
    "the laptop shipped with a faster chip and new software",
    "the coach praised the team after the championship match",
    "the startup raised funding from several venture firms",
];

/// A per-test scratch area: an artifact store dir and the input file.
struct Scratch {
    root: PathBuf,
    input: PathBuf,
}

fn scratch(tag: &str) -> Scratch {
    let root = std::env::temp_dir().join(format!("structmine-chaos-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("create scratch dir");
    let input = root.join("input.txt");
    std::fs::write(&input, DOCS.join("\n") + "\n").expect("write input");
    Scratch { root, input }
}

/// The test-tier PLM pretraining cache, shared across runs in this test
/// binary: pretraining is deterministic, so sharing it only saves time.
fn shared_plm_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("structmine-chaos-plm-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// Build a pinned `structmine` command: fresh store under `store`, shared
/// PLM cache, no inherited knobs.
fn structmine(store: &Path, plm: &Path) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_structmine"));
    cmd.env_remove("STRUCTMINE_FAULTS")
        .env_remove("STRUCTMINE_SHARDS")
        .env_remove("STRUCTMINE_THREADS")
        .env_remove("STRUCTMINE_LOG")
        .env_remove("STRUCTMINE_REPORT")
        .env("STRUCTMINE_STORE_DIR", store)
        .env("STRUCTMINE_PLM_CACHE_DIR", plm);
    cmd
}

fn classify_args(input: &Path) -> Vec<String> {
    [
        "--labels",
        "sports,business,technology",
        "--method",
        "xclass",
        "--tier",
        "test",
        "--input",
    ]
    .iter()
    .map(|s| s.to_string())
    .chain([input.display().to_string()])
    .collect()
}

fn run_shard(s: &Scratch, store_tag: &str, shards: usize, faults: Option<&str>) -> Output {
    let store = s.root.join(store_tag);
    let mut cmd = structmine(&store, &shared_plm_dir());
    cmd.arg("shard")
        .args(classify_args(&s.input))
        .args(["--shards".to_string(), shards.to_string()]);
    if let Some(plan) = faults {
        cmd.env("STRUCTMINE_FAULTS", plan);
    }
    cmd.output().expect("spawn structmine shard")
}

fn assert_ok(out: &Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed ({:?}): {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn shard_counts_are_byte_identical_to_classify() {
    let s = scratch("counts");
    let mut classify = structmine(&s.root.join("classify"), &shared_plm_dir());
    classify.arg("classify").args(classify_args(&s.input));
    let reference = classify.output().expect("spawn structmine classify");
    assert_ok(&reference, "classify");
    assert!(!reference.stdout.is_empty(), "classify printed nothing");

    for shards in [1usize, 4] {
        let out = run_shard(&s, &format!("s{shards}"), shards, None);
        assert_ok(&out, &format!("shard --shards {shards}"));
        assert_eq!(
            out.stdout, reference.stdout,
            "{shards}-way shard output must byte-match classify"
        );
    }
    let _ = std::fs::remove_dir_all(&s.root);
}

#[test]
fn any_worker_kill_point_resumes_to_identical_bytes() {
    let s = scratch("killpoints");
    let reference = run_shard(&s, "clean", 4, None);
    assert_ok(&reference, "clean 4-way shard");

    // Sampled kill-points: worker x write-count. Under leases a worker may
    // perform very few disk writes (shared stages are computed once by the
    // lease winner), so `after_writes=1` is the guaranteed-to-fire point;
    // larger counts and other workers may pass vacuously — the output
    // equality must hold regardless.
    for (worker, after) in [(0u64, 1u64), (0, 2), (2, 1), (3, 4)] {
        let plan = format!("kill_worker={worker}@after_writes={after}");
        let out = run_shard(&s, &format!("kill-{worker}-{after}"), 4, Some(&plan));
        assert_ok(&out, &plan);
        assert_eq!(
            out.stdout, reference.stdout,
            "output after {plan} must be bitwise-identical to the clean run"
        );
        if (worker, after) == (0, 1) {
            // The cheapest kill-point must actually fire: the coordinator
            // logs the transient restart it supervised.
            let stderr = String::from_utf8_lossy(&out.stderr);
            assert!(
                stderr.contains("restarting worker 0"),
                "kill_worker=0@after_writes=1 never fired: {stderr}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&s.root);
}

#[test]
fn coordinator_crash_and_rerun_reaches_identical_bytes() {
    let s = scratch("coordcrash");
    let reference = run_shard(&s, "clean", 4, None);
    assert_ok(&reference, "clean 4-way shard");

    // Crash run: fully cold (its own store *and* PLM cache) so the kill
    // lands mid-work, with cross-process leases active on the store.
    let cold = s.root.join("crash");
    let mut cmd = structmine(&cold, &cold);
    cmd.arg("shard")
        .args(classify_args(&s.input))
        .args(["--shards", "4"])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null());
    let mut child = cmd.spawn().expect("spawn coordinator");
    std::thread::sleep(std::time::Duration::from_millis(300));
    // SIGKILL: no cleanup, lease files from the dead coordinator's workers
    // may survive; the rerun must detect the dead holders and reclaim.
    child.kill().expect("kill coordinator");
    let _ = child.wait();

    let mut rerun = structmine(&cold, &cold);
    rerun
        .arg("shard")
        .args(classify_args(&s.input))
        .args(["--shards", "4"]);
    let out = rerun.output().expect("spawn rerun coordinator");
    assert_ok(&out, "rerun after coordinator crash");
    assert_eq!(
        out.stdout, reference.stdout,
        "rerun over the crashed run's store must produce identical bytes"
    );
    let _ = std::fs::remove_dir_all(&s.root);
}
