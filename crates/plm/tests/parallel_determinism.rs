//! Property tests for the determinism contract of the batched encoding
//! layer: for any corpus and any thread count, `encode_corpus` must be
//! bitwise identical to the serial pass — on the real pretrained Tier::Test
//! model, not a toy config, so the whole encoder forward path is covered.

use proptest::prelude::*;
use structmine_linalg::exec::ExecPolicy;
use structmine_plm::cache::{pretrained, Tier};
use structmine_text::synth::recipes;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// encode_corpus(threads ∈ {1,2,3,8}) ≡ encode_corpus(serial), bitwise.
    #[test]
    fn encode_corpus_is_thread_count_invariant(n_docs in 1usize..24, corpus_seed in 0u64..1000) {
        let plm = pretrained(Tier::Test, 0);
        let corpus = recipes::pretraining_corpus(n_docs, corpus_seed);
        let serial = plm.encode_corpus(&corpus, &ExecPolicy::serial());
        for threads in [1usize, 2, 3, 8] {
            let par = plm.encode_corpus(&corpus, &ExecPolicy::with_threads(threads));
            prop_assert_eq!(par.len(), serial.len());
            for (p, s) in par.iter().zip(&serial) {
                prop_assert_eq!(p.doc, s.doc, "threads={}", threads);
                prop_assert_eq!(p.tokens.data(), s.tokens.data(), "threads={}", threads);
                prop_assert_eq!(&p.mean, &s.mean, "threads={}", threads);
            }
        }
    }

    /// The mean-pooled matrix helper obeys the same contract.
    #[test]
    fn doc_mean_reps_is_thread_count_invariant(n_docs in 1usize..24, corpus_seed in 0u64..1000) {
        let plm = pretrained(Tier::Test, 0);
        let corpus = recipes::pretraining_corpus(n_docs, corpus_seed);
        let serial = structmine_plm::repr::doc_mean_reps_with(&plm, &corpus, &ExecPolicy::serial());
        for threads in [2usize, 3, 8] {
            let par = structmine_plm::repr::doc_mean_reps_with(
                &plm,
                &corpus,
                &ExecPolicy::with_threads(threads),
            );
            prop_assert_eq!(par.data(), serial.data(), "threads={}", threads);
        }
    }
}
