//! Model hyper-parameters.

use serde::{Deserialize, Serialize};

/// Architecture of a [`MiniPlm`](crate::model::MiniPlm).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PlmConfig {
    /// Vocabulary size (token-id space, including specials).
    pub vocab_size: usize,
    /// Hidden dimensionality; must be divisible by `n_heads`.
    pub d_model: usize,
    /// Attention heads per layer.
    pub n_heads: usize,
    /// Transformer blocks.
    pub n_layers: usize,
    /// Feed-forward inner dimensionality.
    pub d_ff: usize,
    /// Maximum sequence length (learned positional table size).
    pub max_len: usize,
    /// Parameter-init seed.
    pub seed: u64,
}

impl PlmConfig {
    /// The configuration used by the benchmark harness: big enough for the
    /// planted structure, small enough to pretrain in seconds.
    pub fn standard(vocab_size: usize) -> Self {
        PlmConfig {
            vocab_size,
            d_model: 48,
            n_heads: 4,
            n_layers: 2,
            d_ff: 96,
            max_len: 48,
            seed: 41,
        }
    }

    /// A tiny configuration for unit tests.
    pub fn tiny(vocab_size: usize) -> Self {
        PlmConfig {
            vocab_size,
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            d_ff: 32,
            max_len: 24,
            seed: 41,
        }
    }

    /// Per-head dimensionality.
    pub fn d_head(&self) -> usize {
        self.d_model / self.n_heads
    }
}

impl structmine_store::StableHash for PlmConfig {
    fn stable_hash(&self, h: &mut structmine_store::StableHasher) {
        self.vocab_size.stable_hash(h);
        self.d_model.stable_hash(h);
        self.n_heads.stable_hash(h);
        self.n_layers.stable_hash(h);
        self.d_ff.stable_hash(h);
        self.max_len.stable_hash(h);
        self.seed.stable_hash(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_config_is_consistent() {
        let c = PlmConfig::standard(1000);
        assert_eq!(c.d_model % c.n_heads, 0);
        assert_eq!(c.d_head() * c.n_heads, c.d_model);
    }
}
