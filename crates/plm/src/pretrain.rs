//! Self-supervised pretraining: MLM + replaced-token detection + NLI.
//!
//! Three objectives share the encoder, mirroring the pretrained artifacts
//! the tutorial's methods assume exist:
//!
//! * **MLM** (BERT): 15% of positions are masked (80% `[MASK]`, 10% random,
//!   10% kept) and predicted through the tied embedding matrix.
//! * **RTD** (ELECTRA): tokens are corrupted by unigram samples and a
//!   per-position binary head predicts which were replaced.
//! * **NLI-style pair relevance**: `[CLS] a [SEP] b [SEP]` pairs where `b`
//!   is the second half of the same document (entail) or of a random other
//!   document (not entail), classified from `[CLS]`. This is the
//!   self-supervised stand-in for the MNLI fine-tuning TaxoClass's
//!   relevance model relies on.

use crate::model::MiniPlm;
use rand::rngs::StdRng;
use rand::Rng;
use structmine_linalg::{rng as lrng, Matrix};
use structmine_nn::graph::{Graph, NodeId};
use structmine_nn::params::Binding;
use structmine_text::vocab::{TokenId, Vocab, MASK, N_SPECIAL};
use structmine_text::Corpus;

/// Pretraining hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct PretrainConfig {
    /// Optimizer steps.
    pub steps: usize,
    /// Sequences per step.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Masking probability for MLM.
    pub mask_prob: f32,
    /// Weight of the RTD loss.
    pub rtd_weight: f32,
    /// Weight of the NLI loss.
    pub nli_weight: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PretrainConfig {
    fn default() -> Self {
        PretrainConfig {
            steps: 900,
            batch: 8,
            lr: 1e-2,
            mask_prob: 0.15,
            rtd_weight: 0.5,
            nli_weight: 0.5,
            seed: 97,
        }
    }
}

impl structmine_store::StableHash for PretrainConfig {
    fn stable_hash(&self, h: &mut structmine_store::StableHasher) {
        self.steps.stable_hash(h);
        self.batch.stable_hash(h);
        self.lr.stable_hash(h);
        self.mask_prob.stable_hash(h);
        self.rtd_weight.stable_hash(h);
        self.nli_weight.stable_hash(h);
        self.seed.stable_hash(h);
    }
}

/// Loss trajectory of a pretraining run.
#[derive(Clone, Debug)]
pub struct PretrainReport {
    /// Mean MLM loss over the first 10% of steps.
    pub initial_mlm_loss: f32,
    /// Mean MLM loss over the final 10% of steps.
    pub final_mlm_loss: f32,
    /// Per-step MLM losses.
    pub mlm_losses: Vec<f32>,
}

/// Pretrain `model` on `corpus`.
pub fn pretrain(model: &mut MiniPlm, corpus: &Corpus, cfg: &PretrainConfig) -> PretrainReport {
    assert!(!corpus.is_empty(), "pretraining corpus is empty");
    let mut rng = lrng::seeded(cfg.seed);
    let mut adam = model.optimizer(cfg.lr);
    let vocab_size = model.config.vocab_size;
    let mut mlm_losses = Vec::with_capacity(cfg.steps);
    // One tape reused across all steps: reset() recycles every node's
    // storage through the graph arena, so steady-state steps stop
    // allocating matrix buffers entirely.
    let mut g = Graph::new();

    for step in 0..cfg.steps {
        // Linear warmup for 5% then linear decay to 10%.
        let frac = step as f32 / cfg.steps.max(1) as f32;
        let lr = if frac < 0.05 {
            cfg.lr * (frac / 0.05)
        } else {
            cfg.lr * (1.0 - 0.9 * (frac - 0.05) / 0.95)
        };
        adam.set_lr(lr.max(cfg.lr * 0.05));

        g.reset();
        let mut binding = Binding::new();
        let bound = model.bound();
        let mut total_loss = None;
        let mut step_mlm = 0.0f32;

        for b in 0..cfg.batch {
            let doc = &corpus.docs[rng.gen_range(0..corpus.len())];
            if doc.tokens.is_empty() {
                continue;
            }
            let window = sample_window(&doc.tokens, model.config.max_len - 2, &mut rng);
            let seq = model.wrap(&window);

            // --- MLM ---
            let (masked, positions, gold) =
                mask_sequence(&seq, cfg.mask_prob, vocab_size, &mut rng);
            let hidden = bound.encode_with_binding(&mut g, &mut binding, &masked);
            let logits = bound.mlm_logits_with_binding(&mut g, &mut binding, hidden, &positions);
            let mut targets = Matrix::zeros(positions.len(), vocab_size);
            for (r, &t) in gold.iter().enumerate() {
                targets.set(r, t as usize, 1.0);
            }
            let mlm_loss = g.softmax_cross_entropy(logits, &targets);
            step_mlm += g.value(mlm_loss).get(0, 0);
            let scaled = g.scale(mlm_loss, 1.0 / cfg.batch as f32);
            add_loss_term(&mut g, &mut total_loss, scaled);

            // --- RTD on a corrupted copy (half the batch) ---
            if cfg.rtd_weight > 0.0 && b % 2 == 0 {
                let (corrupted, labels) = corrupt_sequence(&seq, 0.15, vocab_size, &mut rng);
                let h = bound.encode_with_binding(&mut g, &mut binding, &corrupted);
                let rtd_logits = bound.rtd_logits_with_binding(&mut g, &mut binding, h);
                let target = Matrix::from_vec(labels.len(), 1, labels);
                let rtd_loss = g.sigmoid_bce(rtd_logits, &target);
                let scaled = g.scale(rtd_loss, 2.0 * cfg.rtd_weight / cfg.batch as f32);
                add_loss_term(&mut g, &mut total_loss, scaled);
            }

            // --- NLI pair (quarter of the batch) ---
            if cfg.nli_weight > 0.0 && b % 4 == 0 && window.len() >= 6 {
                let mid = window.len() / 2;
                let premise = &window[..mid];
                let entail: bool = rng.gen();
                let hyp_owned;
                let hypothesis: &[TokenId] = if entail {
                    &window[mid..]
                } else {
                    let other = &corpus.docs[rng.gen_range(0..corpus.len())].tokens;
                    if other.len() < 2 {
                        continue;
                    }
                    hyp_owned = other[other.len() / 2..].to_vec();
                    &hyp_owned
                };
                let seq = model.wrap_pair(premise, hypothesis);
                let h = bound.encode_with_binding(&mut g, &mut binding, &seq);
                let logits = bound.nli_logits_with_binding(&mut g, &mut binding, h);
                let mut target = Matrix::zeros(1, 2);
                target.set(0, usize::from(entail), 1.0);
                let nli_loss = g.softmax_cross_entropy(logits, &target);
                let scaled = g.scale(nli_loss, 4.0 * cfg.nli_weight / cfg.batch as f32);
                add_loss_term(&mut g, &mut total_loss, scaled);
            }
        }

        if let Some(loss) = total_loss {
            g.backward(loss);
            adam.step(model.store_mut(), &g, &binding);
        }
        mlm_losses.push(step_mlm / cfg.batch as f32);
    }

    let tenth = (cfg.steps / 10).max(1);
    let initial = mlm_losses.iter().take(tenth).sum::<f32>() / tenth as f32;
    let final_ = mlm_losses.iter().rev().take(tenth).sum::<f32>() / tenth as f32;
    PretrainReport {
        initial_mlm_loss: initial,
        final_mlm_loss: final_,
        mlm_losses,
    }
}

/// Domain-adaptive pretraining: continue masked-language-model training on
/// a *target* corpus, returning an adapted copy (the original is untouched).
///
/// Every method paper the tutorial covers further pretrains its BERT on the
/// task corpus before classification; this is that step at mini scale.
pub fn adapt(model: &MiniPlm, corpus: &Corpus, steps: usize, seed: u64) -> MiniPlm {
    let mut adapted = model.clone_model();
    pretrain(
        &mut adapted,
        corpus,
        &PretrainConfig {
            steps,
            batch: 8,
            lr: 3e-3,
            rtd_weight: 0.3,
            nli_weight: 0.3,
            seed,
            ..Default::default()
        },
    );
    adapted
}

/// Take a random window of at most `max` tokens.
/// Fold one scaled objective term into the step's running loss node —
/// seeds the accumulator on the first term, adds on the tape afterwards.
fn add_loss_term(g: &mut Graph, total: &mut Option<NodeId>, term: NodeId) {
    *total = Some(match total.take() {
        None => term,
        Some(acc) => g.add(acc, term),
    });
}

fn sample_window(tokens: &[TokenId], max: usize, rng: &mut StdRng) -> Vec<TokenId> {
    if tokens.len() <= max {
        return tokens.to_vec();
    }
    let start = rng.gen_range(0..=tokens.len() - max);
    tokens[start..start + max].to_vec()
}

/// BERT-style masking of a wrapped sequence. Returns (masked sequence,
/// masked positions, gold tokens). Guarantees at least one masked position.
fn mask_sequence(
    seq: &[TokenId],
    mask_prob: f32,
    vocab_size: usize,
    rng: &mut StdRng,
) -> (Vec<TokenId>, Vec<usize>, Vec<TokenId>) {
    let mut masked = seq.to_vec();
    let mut positions = Vec::new();
    let mut gold = Vec::new();
    for (i, &t) in seq.iter().enumerate() {
        if Vocab::is_special(t) {
            continue;
        }
        if rng.gen::<f32>() < mask_prob {
            positions.push(i);
            gold.push(t);
            let roll: f32 = rng.gen();
            masked[i] = if roll < 0.8 {
                MASK
            } else if roll < 0.9 {
                random_token(vocab_size, rng)
            } else {
                t
            };
        }
    }
    if positions.is_empty() {
        // Force-mask a random real token.
        let real: Vec<usize> = (0..seq.len())
            .filter(|&i| !Vocab::is_special(seq[i]))
            .collect();
        if let Some(&i) = real.get(
            rng.gen_range(0..real.len().max(1))
                .min(real.len().saturating_sub(1)),
        ) {
            positions.push(i);
            gold.push(seq[i]);
            masked[i] = MASK;
        }
    }
    (masked, positions, gold)
}

/// ELECTRA-style corruption: replace tokens with unigram-random ones.
/// Returns (corrupted sequence, per-position replaced labels).
fn corrupt_sequence(
    seq: &[TokenId],
    prob: f32,
    vocab_size: usize,
    rng: &mut StdRng,
) -> (Vec<TokenId>, Vec<f32>) {
    let mut corrupted = seq.to_vec();
    let mut labels = vec![0.0f32; seq.len()];
    for (i, &t) in seq.iter().enumerate() {
        if Vocab::is_special(t) {
            continue;
        }
        if rng.gen::<f32>() < prob {
            let replacement = random_token(vocab_size, rng);
            if replacement != t {
                corrupted[i] = replacement;
                labels[i] = 1.0;
            }
        }
    }
    (corrupted, labels)
}

fn random_token(vocab_size: usize, rng: &mut StdRng) -> TokenId {
    rng.gen_range(N_SPECIAL as u32..vocab_size as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlmConfig;
    use structmine_text::synth::recipes;

    #[test]
    fn mask_sequence_masks_only_real_tokens() {
        let mut rng = lrng::seeded(1);
        let seq = vec![
            structmine_text::vocab::CLS,
            7,
            8,
            9,
            structmine_text::vocab::SEP,
        ];
        for _ in 0..50 {
            let (masked, positions, gold) = mask_sequence(&seq, 0.5, 20, &mut rng);
            assert!(!positions.is_empty());
            for (&p, &g) in positions.iter().zip(&gold) {
                assert!((1..=3).contains(&p), "masked special position {p}");
                assert_eq!(seq[p], g);
            }
            assert_eq!(masked.len(), seq.len());
            assert_eq!(masked[0], structmine_text::vocab::CLS);
        }
    }

    #[test]
    fn corrupt_sequence_labels_match_changes() {
        let mut rng = lrng::seeded(2);
        let seq = vec![
            structmine_text::vocab::CLS,
            7,
            8,
            9,
            10,
            structmine_text::vocab::SEP,
        ];
        let (corrupted, labels) = corrupt_sequence(&seq, 0.8, 30, &mut rng);
        for i in 0..seq.len() {
            if labels[i] > 0.5 {
                assert_ne!(corrupted[i], seq[i]);
            } else {
                assert_eq!(corrupted[i], seq[i]);
            }
        }
    }

    #[test]
    fn pretraining_reduces_mlm_loss() {
        let corpus = recipes::pretraining_corpus(120, 5);
        let mut model = MiniPlm::new(PlmConfig::tiny(corpus.vocab.len()));
        let report = pretrain(
            &mut model,
            &corpus,
            &PretrainConfig {
                steps: 300,
                batch: 6,
                ..Default::default()
            },
        );
        assert!(
            report.final_mlm_loss < report.initial_mlm_loss * 0.92,
            "MLM loss did not drop: {} -> {}",
            report.initial_mlm_loss,
            report.final_mlm_loss
        );
    }

    #[test]
    fn sample_window_respects_bound() {
        let mut rng = lrng::seeded(3);
        let tokens: Vec<TokenId> = (5..105).collect();
        for _ in 0..20 {
            let w = sample_window(&tokens, 10, &mut rng);
            assert_eq!(w.len(), 10);
        }
        let short = sample_window(&tokens[..5], 10, &mut rng);
        assert_eq!(short.len(), 5);
    }
}
