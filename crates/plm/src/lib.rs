//! A miniature pre-trained language model.
//!
//! The tutorial's PLM-based methods use exactly three capabilities of
//! BERT-family models, and this crate provides all of them from scratch at
//! laptop scale (see `DESIGN.md` §1 for the substitution argument):
//!
//! 1. **Contextualized token representations** — a pre-LN transformer
//!    encoder ([`model::MiniPlm`]) whose hidden states separate the planted
//!    word senses (ConWea, X-Class).
//! 2. **A masked-language-model head** — tied-embedding MLM whose top
//!    replacements reflect in-context meaning (LOTClass's category
//!    vocabulary and masked category prediction, cloze prompting).
//! 3. **Transferable heads** — an ELECTRA-style replaced-token-detection
//!    head (PromptClass) and an NLI-style sentence-pair relevance head
//!    pretrained self-supervisedly (TaxoClass's relevance model).
//!
//! Pretraining ([`pretrain`]) runs in seconds on the synthetic general
//! corpus; [`cache`] shares one pretrained model across a process so every
//! benchmark table does not pay for its own pretraining.

pub mod artifacts;
pub mod cache;
pub mod config;
pub mod model;
pub mod pretrain;
pub mod prompt;
pub mod repr;

pub use config::PlmConfig;
pub use model::MiniPlm;
pub use pretrain::{pretrain, PretrainConfig};
