//! Prompting: cloze (MLM) and replaced-token-detection (ELECTRA) scoring.
//!
//! Zero-shot classification by prompting, as in the tutorial's PromptClass
//! section: the document is followed by a verbalizer template and the label
//! words are scored either by the MLM's probability at a `[MASK]` slot
//! (RoBERTa-style) or by how *un-replaced* the label word looks to the RTD
//! head (ELECTRA-style).

use crate::model::MiniPlm;
use structmine_text::vocab::{TokenId, MASK, SEP};
use structmine_text::Vocab;

/// Build the cloze prompt `[CLS] doc.. [SEP] about [MASK] [SEP]`, returning
/// the sequence and the `[MASK]` position.
///
/// The template word "about" is in the general lexicon, so the MLM saw it
/// adjacent to topical words throughout pretraining.
pub fn cloze_prompt(model: &MiniPlm, doc: &[TokenId], vocab: &Vocab) -> (Vec<TokenId>, usize) {
    let about = vocab.id("about").expect("'about' must be in vocabulary");
    let budget = model.config.max_len.saturating_sub(5);
    let body = &doc[..doc.len().min(budget)];
    let mut seq = Vec::with_capacity(body.len() + 5);
    seq.push(structmine_text::vocab::CLS);
    seq.extend_from_slice(body);
    seq.push(SEP);
    seq.push(about);
    let mask_pos = seq.len();
    seq.push(MASK);
    seq.push(SEP);
    (seq, mask_pos)
}

/// MLM cloze scores for each class: mean probability of the class's name
/// tokens at the `[MASK]` slot. Returns unnormalized scores (higher =
/// better fit).
pub fn cloze_label_scores(
    model: &MiniPlm,
    doc: &[TokenId],
    label_names: &[Vec<TokenId>],
    vocab: &Vocab,
) -> Vec<f32> {
    let (seq, mask_pos) = cloze_prompt(model, doc, vocab);
    let probs = model.mlm_probs(&seq, mask_pos);
    label_names
        .iter()
        .map(|names| {
            if names.is_empty() {
                return 0.0;
            }
            names.iter().map(|&t| probs[t as usize]).sum::<f32>() / names.len() as f32
        })
        .collect()
}

/// ELECTRA-style RTD scores for each class: build
/// `[CLS] doc.. [SEP] about <name> [SEP]` and score
/// `1 - P(replaced)` averaged over the name tokens. Higher = better fit.
pub fn rtd_label_scores(
    model: &MiniPlm,
    doc: &[TokenId],
    label_names: &[Vec<TokenId>],
    vocab: &Vocab,
) -> Vec<f32> {
    let about = vocab.id("about").expect("'about' must be in vocabulary");
    label_names
        .iter()
        .map(|names| {
            if names.is_empty() {
                return 0.0;
            }
            let budget = model.config.max_len.saturating_sub(4 + names.len());
            let body = &doc[..doc.len().min(budget)];
            let mut seq = Vec::with_capacity(body.len() + names.len() + 4);
            seq.push(structmine_text::vocab::CLS);
            seq.extend_from_slice(body);
            seq.push(SEP);
            seq.push(about);
            let name_start = seq.len();
            seq.extend_from_slice(names);
            seq.push(SEP);
            let probs = model.rtd_probs(&seq);
            let replaced: f32 =
                (0..names.len()).map(|i| probs[name_start + i]).sum::<f32>() / names.len() as f32;
            1.0 - replaced
        })
        .collect()
}

/// Zero-shot prediction over a corpus slice using a scoring function.
pub fn zero_shot_predict(
    model: &MiniPlm,
    docs: &[&[TokenId]],
    label_names: &[Vec<TokenId>],
    vocab: &Vocab,
    electra_style: bool,
) -> Vec<usize> {
    docs.iter()
        .map(|doc| {
            let scores = if electra_style {
                rtd_label_scores(model, doc, label_names, vocab)
            } else {
                cloze_label_scores(model, doc, label_names, vocab)
            };
            structmine_linalg::vector::argmax(&scores).unwrap_or(0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlmConfig;
    use structmine_text::synth::recipes;

    #[test]
    fn cloze_prompt_places_mask_before_final_sep() {
        let corpus = recipes::pretraining_corpus(2, 1);
        let model = MiniPlm::new(PlmConfig::tiny(corpus.vocab.len()));
        let (seq, pos) = cloze_prompt(&model, &corpus.docs[0].tokens, &corpus.vocab);
        assert_eq!(seq[pos], MASK);
        assert_eq!(seq[pos + 1], SEP);
        assert!(seq.len() <= model.config.max_len);
    }

    #[test]
    fn label_scores_have_one_entry_per_class() {
        let corpus = recipes::pretraining_corpus(2, 2);
        let model = MiniPlm::new(PlmConfig::tiny(corpus.vocab.len()));
        let names = vec![vec![10 as TokenId], vec![11], vec![]];
        let doc = &corpus.docs[0].tokens;
        let cloze = cloze_label_scores(&model, doc, &names, &corpus.vocab);
        let rtd = rtd_label_scores(&model, doc, &names, &corpus.vocab);
        assert_eq!(cloze.len(), 3);
        assert_eq!(rtd.len(), 3);
        assert_eq!(cloze[2], 0.0);
        assert_eq!(rtd[2], 0.0);
        assert!(cloze.iter().all(|s| s.is_finite()));
        assert!(rtd.iter().all(|&s| (0.0..=1.0).contains(&s)));
    }

    #[test]
    fn zero_shot_predict_returns_valid_classes() {
        let corpus = recipes::pretraining_corpus(4, 3);
        let model = MiniPlm::new(PlmConfig::tiny(corpus.vocab.len()));
        let names = vec![vec![10 as TokenId], vec![11]];
        let docs: Vec<&[TokenId]> = corpus.docs.iter().map(|d| d.tokens.as_slice()).collect();
        for style in [false, true] {
            let preds = zero_shot_predict(&model, &docs, &names, &corpus.vocab, style);
            assert_eq!(preds.len(), 4);
            assert!(preds.iter().all(|&p| p < 2));
        }
    }
}
