//! Prompting: cloze (MLM) and replaced-token-detection (ELECTRA) scoring.
//!
//! Zero-shot classification by prompting, as in the tutorial's PromptClass
//! section: the document is followed by a verbalizer template and the label
//! words are scored either by the MLM's probability at a `[MASK]` slot
//! (RoBERTa-style) or by how *un-replaced* the label word looks to the RTD
//! head (ELECTRA-style).

use crate::model::MiniPlm;
use structmine_linalg::Precision;
use structmine_text::vocab::{TokenId, MASK, SEP};
use structmine_text::Vocab;

/// Typed failure for prompt construction: a template word the verbalizer
/// needs is not in the vocabulary. Replaces the previous panic so table
/// bins and the engine can map it to their error taxonomy (exit 2 /
/// `EngineError`) instead of aborting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PromptError {
    /// The missing template word.
    pub word: &'static str,
}

impl std::fmt::Display for PromptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "prompt template word '{}' is not in the vocabulary",
            self.word
        )
    }
}

impl std::error::Error for PromptError {}

fn template_word(vocab: &Vocab, word: &'static str) -> Result<TokenId, PromptError> {
    vocab.id(word).ok_or(PromptError { word })
}

/// Check up front that every template word the prompt builders need is
/// present, so callers can fail once per vocabulary instead of once per
/// document inside a parallel scoring loop.
pub fn validate_templates(vocab: &Vocab) -> Result<(), PromptError> {
    template_word(vocab, "about").map(|_| ())
}

/// Build the cloze prompt `[CLS] doc.. [SEP] about [MASK] [SEP]`, returning
/// the sequence and the `[MASK]` position.
///
/// The template word "about" is in the general lexicon, so the MLM saw it
/// adjacent to topical words throughout pretraining.
pub fn cloze_prompt(
    model: &MiniPlm,
    doc: &[TokenId],
    vocab: &Vocab,
) -> Result<(Vec<TokenId>, usize), PromptError> {
    let about = template_word(vocab, "about")?;
    let budget = model.config.max_len.saturating_sub(5);
    let body = &doc[..doc.len().min(budget)];
    let mut seq = Vec::with_capacity(body.len() + 5);
    seq.push(structmine_text::vocab::CLS);
    seq.extend_from_slice(body);
    seq.push(SEP);
    seq.push(about);
    let mask_pos = seq.len();
    seq.push(MASK);
    seq.push(SEP);
    Ok((seq, mask_pos))
}

/// MLM cloze scores for each class: mean probability of the class's name
/// tokens at the `[MASK]` slot. Returns unnormalized scores (higher =
/// better fit).
pub fn cloze_label_scores(
    model: &MiniPlm,
    doc: &[TokenId],
    label_names: &[Vec<TokenId>],
    vocab: &Vocab,
) -> Result<Vec<f32>, PromptError> {
    let (seq, mask_pos) = cloze_prompt(model, doc, vocab)?;
    let probs = model.mlm_probs(&seq, mask_pos);
    Ok(label_names
        .iter()
        .map(|names| {
            if names.is_empty() {
                return 0.0;
            }
            names.iter().map(|&t| probs[t as usize]).sum::<f32>() / names.len() as f32
        })
        .collect())
}

/// ELECTRA-style RTD scores for each class: build
/// `[CLS] doc.. [SEP] about <name> [SEP]` and score
/// `1 - P(replaced)` averaged over the name tokens. Higher = better fit.
pub fn rtd_label_scores(
    model: &MiniPlm,
    doc: &[TokenId],
    label_names: &[Vec<TokenId>],
    vocab: &Vocab,
) -> Result<Vec<f32>, PromptError> {
    rtd_label_scores_prec(model, doc, label_names, vocab, Precision::Exact)
}

/// [`rtd_label_scores`] at an explicit precision tier (the serving-path
/// variant: the RTD forward passes run on a tape of that tier).
pub fn rtd_label_scores_prec(
    model: &MiniPlm,
    doc: &[TokenId],
    label_names: &[Vec<TokenId>],
    vocab: &Vocab,
    precision: Precision,
) -> Result<Vec<f32>, PromptError> {
    let about = template_word(vocab, "about")?;
    Ok(label_names
        .iter()
        .map(|names| {
            if names.is_empty() {
                return 0.0;
            }
            let budget = model.config.max_len.saturating_sub(4 + names.len());
            let body = &doc[..doc.len().min(budget)];
            let mut seq = Vec::with_capacity(body.len() + names.len() + 4);
            seq.push(structmine_text::vocab::CLS);
            seq.extend_from_slice(body);
            seq.push(SEP);
            seq.push(about);
            let name_start = seq.len();
            seq.extend_from_slice(names);
            seq.push(SEP);
            let probs = model.rtd_probs_prec(&seq, precision);
            let replaced: f32 =
                (0..names.len()).map(|i| probs[name_start + i]).sum::<f32>() / names.len() as f32;
            1.0 - replaced
        })
        .collect())
}

/// Zero-shot prediction over a corpus slice using a scoring function.
pub fn zero_shot_predict(
    model: &MiniPlm,
    docs: &[&[TokenId]],
    label_names: &[Vec<TokenId>],
    vocab: &Vocab,
    electra_style: bool,
) -> Result<Vec<usize>, PromptError> {
    docs.iter()
        .map(|doc| {
            let scores = if electra_style {
                rtd_label_scores(model, doc, label_names, vocab)?
            } else {
                cloze_label_scores(model, doc, label_names, vocab)?
            };
            Ok(structmine_linalg::vector::argmax(&scores).unwrap_or(0))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlmConfig;
    use structmine_text::synth::recipes;

    #[test]
    fn cloze_prompt_places_mask_before_final_sep() {
        let corpus = recipes::pretraining_corpus(2, 1);
        let model = MiniPlm::new(PlmConfig::tiny(corpus.vocab.len()));
        let (seq, pos) = cloze_prompt(&model, &corpus.docs[0].tokens, &corpus.vocab).unwrap();
        assert_eq!(seq[pos], MASK);
        assert_eq!(seq[pos + 1], SEP);
        assert!(seq.len() <= model.config.max_len);
    }

    #[test]
    fn label_scores_have_one_entry_per_class() {
        let corpus = recipes::pretraining_corpus(2, 2);
        let model = MiniPlm::new(PlmConfig::tiny(corpus.vocab.len()));
        let names = vec![vec![10 as TokenId], vec![11], vec![]];
        let doc = &corpus.docs[0].tokens;
        let cloze = cloze_label_scores(&model, doc, &names, &corpus.vocab).unwrap();
        let rtd = rtd_label_scores(&model, doc, &names, &corpus.vocab).unwrap();
        assert_eq!(cloze.len(), 3);
        assert_eq!(rtd.len(), 3);
        assert_eq!(cloze[2], 0.0);
        assert_eq!(rtd[2], 0.0);
        assert!(cloze.iter().all(|s| s.is_finite()));
        assert!(rtd.iter().all(|&s| (0.0..=1.0).contains(&s)));
    }

    #[test]
    fn zero_shot_predict_returns_valid_classes() {
        let corpus = recipes::pretraining_corpus(4, 3);
        let model = MiniPlm::new(PlmConfig::tiny(corpus.vocab.len()));
        let names = vec![vec![10 as TokenId], vec![11]];
        let docs: Vec<&[TokenId]> = corpus.docs.iter().map(|d| d.tokens.as_slice()).collect();
        for style in [false, true] {
            let preds = zero_shot_predict(&model, &docs, &names, &corpus.vocab, style).unwrap();
            assert_eq!(preds.len(), 4);
            assert!(preds.iter().all(|&p| p < 2));
        }
    }
}
