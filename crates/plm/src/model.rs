//! The transformer encoder and its task heads.
//!
//! A pre-LN encoder: each block computes
//! `x += MultiHeadAttention(LN(x))` then `x += FFN(LN(x))`, with a final
//! layer norm. Heads:
//! * MLM — tied input/output embeddings plus a per-token bias;
//! * RTD — a linear replaced-token-detection probe per position (ELECTRA);
//! * NLI — a 2-way entail/not-entail classifier on the `[CLS]` state.
//!
//! One sequence per forward call; training batches bind the parameters once
//! per tape and accumulate several sequence losses before the Adam step.

use crate::config::PlmConfig;
use structmine_linalg::{vector, Matrix, Precision};
use structmine_nn::graph::{Graph, NodeId};
use structmine_nn::layers::{Embedding, LayerNorm, Linear};
use structmine_nn::params::{Adam, Binding, ParamStore};
use structmine_text::vocab::{TokenId, CLS, SEP};

struct Block {
    ln1: LayerNorm,
    // Per-head projection triples (q, k, v), each `d_model x d_head`.
    heads: Vec<(Linear, Linear, Linear)>,
    wo: Linear,
    ln2: LayerNorm,
    ff1: Linear,
    ff2: Linear,
}

impl Block {
    /// Concatenate the per-head q/k/v projection weights and biases
    /// column-wise into one `d_model x 3*d_model` weight (head-major
    /// `[q_h | k_h | v_h]` triples) plus its `1 x 3*d_model` bias, so the
    /// inference path can run one wide matmul instead of `3 * n_heads`
    /// narrow ones. Rebuilt on every call — never cached — so a training
    /// step can't leave it stale; the copy is trivial next to the matmul
    /// it fuses. Each fused output element is the same ascending-`k` dot
    /// product the per-head matmuls compute, so results are bitwise
    /// identical.
    fn fused_qkv(&self, store: &ParamStore) -> (Matrix, Matrix) {
        let first = store.value(self.heads[0].0.weight());
        let (d_in, dh) = first.shape();
        let total = self.heads.len() * 3 * dh;
        let mut w = Matrix::zeros(d_in, total);
        let mut b = Matrix::zeros(1, total);
        for (h, (wq, wk, wv)) in self.heads.iter().enumerate() {
            for (slot, lin) in [wq, wk, wv].into_iter().enumerate() {
                let off = (h * 3 + slot) * dh;
                let src = store.value(lin.weight());
                for r in 0..d_in {
                    w.row_mut(r)[off..off + dh].copy_from_slice(src.row(r));
                }
                b.row_mut(0)[off..off + dh].copy_from_slice(store.value(lin.bias()).row(0));
            }
        }
        (w, b)
    }
}

/// The mini pre-trained language model.
pub struct MiniPlm {
    /// Architecture.
    pub config: PlmConfig,
    store: ParamStore,
    tok: Embedding,
    pos: Embedding,
    blocks: Vec<Block>,
    ln_final: LayerNorm,
    mlm_bias: structmine_nn::params::ParamId,
    rtd: Linear,
    nli: Linear,
}

impl MiniPlm {
    /// Initialize a model with random parameters.
    pub fn new(config: PlmConfig) -> Self {
        assert_eq!(
            config.d_model % config.n_heads,
            0,
            "d_model must divide by heads"
        );
        let mut store = ParamStore::new();
        let mut rng = structmine_linalg::rng::seeded(config.seed);
        let tok = Embedding::new(
            &mut store,
            "tok",
            config.vocab_size,
            config.d_model,
            &mut rng,
        );
        let pos = Embedding::new(&mut store, "pos", config.max_len, config.d_model, &mut rng);
        let blocks = (0..config.n_layers)
            .map(|l| {
                let heads = (0..config.n_heads)
                    .map(|h| {
                        (
                            Linear::new(
                                &mut store,
                                &format!("b{l}.h{h}.q"),
                                config.d_model,
                                config.d_head(),
                                &mut rng,
                            ),
                            Linear::new(
                                &mut store,
                                &format!("b{l}.h{h}.k"),
                                config.d_model,
                                config.d_head(),
                                &mut rng,
                            ),
                            Linear::new(
                                &mut store,
                                &format!("b{l}.h{h}.v"),
                                config.d_model,
                                config.d_head(),
                                &mut rng,
                            ),
                        )
                    })
                    .collect();
                Block {
                    ln1: LayerNorm::new(&mut store, &format!("b{l}.ln1"), config.d_model),
                    heads,
                    wo: Linear::new(
                        &mut store,
                        &format!("b{l}.wo"),
                        config.d_model,
                        config.d_model,
                        &mut rng,
                    ),
                    ln2: LayerNorm::new(&mut store, &format!("b{l}.ln2"), config.d_model),
                    ff1: Linear::new(
                        &mut store,
                        &format!("b{l}.ff1"),
                        config.d_model,
                        config.d_ff,
                        &mut rng,
                    ),
                    ff2: Linear::new(
                        &mut store,
                        &format!("b{l}.ff2"),
                        config.d_ff,
                        config.d_model,
                        &mut rng,
                    ),
                }
            })
            .collect();
        let ln_final = LayerNorm::new(&mut store, "ln_final", config.d_model);
        let mlm_bias = store.zeros("mlm_bias", 1, config.vocab_size);
        let rtd = Linear::new(&mut store, "rtd", config.d_model, 1, &mut rng);
        let nli = Linear::new(&mut store, "nli", config.d_model, 2, &mut rng);
        MiniPlm {
            config,
            store,
            tok,
            pos,
            blocks,
            ln_final,
            mlm_bias,
            rtd,
            nli,
        }
    }

    /// Borrow the parameter store (for optimizer construction).
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Mutably borrow the parameter store (for the Adam step).
    pub fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    /// Deep-copy the model (used for per-corpus adaptation).
    pub fn clone_model(&self) -> MiniPlm {
        let mut copy = MiniPlm::new(self.config);
        copy.import_weights(self.export_weights());
        copy
    }

    /// Snapshot all weights (for the disk cache).
    pub fn export_weights(&self) -> Vec<Matrix> {
        self.store.export_values()
    }

    /// Content fingerprint of the model: architecture plus every weight
    /// value. Two models with the same fingerprint produce bitwise-identical
    /// encodings, so artifact keys built on it can never serve stale
    /// representations. Recomputed on every call (weights are mutable
    /// through [`MiniPlm::store_mut`]); hashing is a few milliseconds,
    /// negligible next to any encoding pass.
    pub fn fingerprint(&self) -> u128 {
        use structmine_store::StableHash;
        let mut h = structmine_store::StableHasher::new();
        self.config.stable_hash(&mut h);
        self.export_weights().stable_hash(&mut h);
        h.finish()
    }

    /// Restore weights exported from an identically configured model.
    pub fn import_weights(&mut self, weights: Vec<Matrix>) {
        self.store.import_values(weights);
    }

    /// Build an [`Adam`] optimizer for this model.
    pub fn optimizer(&self, lr: f32) -> Adam {
        Adam::new(&self.store, lr, 1.0)
    }

    /// Truncate a token sequence to fit the positional table, reserving two
    /// slots, and wrap it as `[CLS] .. tokens .. [SEP]`.
    pub fn wrap(&self, tokens: &[TokenId]) -> Vec<TokenId> {
        let body = &tokens[..tokens.len().min(self.config.max_len - 2)];
        let mut seq = Vec::with_capacity(body.len() + 2);
        seq.push(CLS);
        seq.extend_from_slice(body);
        seq.push(SEP);
        seq
    }

    /// Wrap a premise/hypothesis pair: `[CLS] p [SEP] h [SEP]`.
    pub fn wrap_pair(&self, premise: &[TokenId], hypothesis: &[TokenId]) -> Vec<TokenId> {
        let budget = self.config.max_len - 3;
        let h_len = hypothesis.len().min(budget / 2);
        let p_len = premise.len().min(budget - h_len);
        let mut seq = Vec::with_capacity(p_len + h_len + 3);
        seq.push(CLS);
        seq.extend_from_slice(&premise[..p_len]);
        seq.push(SEP);
        seq.extend_from_slice(&hypothesis[..h_len]);
        seq.push(SEP);
        seq
    }

    /// A forward-pass handle over this model's parameters.
    pub fn bound(&self) -> BoundPlm<'_> {
        BoundPlm { model: self }
    }

    /// Run a no-gradient forward pass, returning the final hidden states
    /// (`len x d_model`).
    pub fn encode(&self, tokens: &[TokenId]) -> Matrix {
        self.encode_prec(tokens, Precision::Exact)
    }

    /// [`MiniPlm::encode`] at an explicit precision tier: the tier selects
    /// the tape the forward pass records on (Exact tapes are bitwise
    /// reproducible; Fast tapes use the approximate inference kernels).
    pub fn encode_prec(&self, tokens: &[TokenId], precision: Precision) -> Matrix {
        let mut g = Graph::with_precision(precision);
        let bound = self.bound();
        let h = bound.encode(&mut g, tokens);
        g.take_value(h)
    }

    /// MLM distribution at `position` of the (already wrapped) sequence.
    pub fn mlm_probs(&self, tokens: &[TokenId], position: usize) -> Vec<f32> {
        let mut g = Graph::new();
        let bound = self.bound();
        let h = bound.encode(&mut g, tokens);
        let logits = bound.mlm_logits(&mut g, h, &[position]);
        let mut probs = g.value(logits).row(0).to_vec();
        structmine_linalg::stats::softmax_inplace(&mut probs);
        probs
    }

    /// Top-`k` MLM predictions `(token, prob)` at `position`, excluding
    /// special tokens.
    pub fn mlm_topk(&self, tokens: &[TokenId], position: usize, k: usize) -> Vec<(TokenId, f32)> {
        let probs = self.mlm_probs(tokens, position);
        let mut scored: Vec<(TokenId, f32)> = probs
            .iter()
            .enumerate()
            .skip(structmine_text::vocab::N_SPECIAL)
            .map(|(t, &p)| (t as TokenId, p))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(k);
        scored
    }

    /// Top-`k` MLM predictions at several positions with a single encode.
    pub fn mlm_topk_multi(
        &self,
        tokens: &[TokenId],
        positions: &[usize],
        k: usize,
    ) -> Vec<Vec<(TokenId, f32)>> {
        if positions.is_empty() {
            return Vec::new();
        }
        let mut g = Graph::new();
        let bound = self.bound();
        let h = bound.encode(&mut g, tokens);
        let logits = bound.mlm_logits(&mut g, h, positions);
        (0..positions.len())
            .map(|r| {
                let mut probs = g.value(logits).row(r).to_vec();
                structmine_linalg::stats::softmax_inplace(&mut probs);
                let mut scored: Vec<(TokenId, f32)> = probs
                    .iter()
                    .enumerate()
                    .skip(structmine_text::vocab::N_SPECIAL)
                    .map(|(t, &p)| (t as TokenId, p))
                    .collect();
                scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
                scored.truncate(k);
                scored
            })
            .collect()
    }

    /// Per-position replaced-token probabilities for a wrapped sequence
    /// (sigmoid of the RTD head).
    pub fn rtd_probs(&self, tokens: &[TokenId]) -> Vec<f32> {
        self.rtd_probs_prec(tokens, Precision::Exact)
    }

    /// [`MiniPlm::rtd_probs`] at an explicit precision tier.
    pub fn rtd_probs_prec(&self, tokens: &[TokenId], precision: Precision) -> Vec<f32> {
        let mut g = Graph::with_precision(precision);
        let bound = self.bound();
        let h = bound.encode(&mut g, tokens);
        let logits = bound.rtd_logits(&mut g, h);
        let sig = |z: f32| match precision {
            Precision::Exact => 1.0 / (1.0 + (-z).exp()),
            Precision::Fast => 1.0 / (1.0 + structmine_linalg::fastmath::fast_exp(-z)),
        };
        g.value(logits).data().iter().map(|&z| sig(z)).collect()
    }

    /// Probability that `premise` entails `hypothesis` under the NLI head.
    pub fn nli_entail_prob(&self, premise: &[TokenId], hypothesis: &[TokenId]) -> f32 {
        self.nli_entail_prob_prec(premise, hypothesis, Precision::Exact)
    }

    /// [`MiniPlm::nli_entail_prob`] at an explicit precision tier.
    pub fn nli_entail_prob_prec(
        &self,
        premise: &[TokenId],
        hypothesis: &[TokenId],
        precision: Precision,
    ) -> f32 {
        let seq = self.wrap_pair(premise, hypothesis);
        let mut g = Graph::with_precision(precision);
        let bound = self.bound();
        let h = bound.encode(&mut g, &seq);
        let logits = bound.nli_logits(&mut g, h);
        let mut probs = g.value(logits).row(0).to_vec();
        match precision {
            Precision::Exact => structmine_linalg::stats::softmax_inplace(&mut probs),
            Precision::Fast => structmine_linalg::stats::softmax_inplace_fast(&mut probs),
        }
        probs[1]
    }

    /// Average of the final hidden states over real (non-CLS/SEP) positions —
    /// the "average-pooled BERT representation" of the tutorial's figures.
    pub fn mean_embed(&self, tokens: &[TokenId]) -> Vec<f32> {
        self.mean_embed_prec(tokens, Precision::Exact)
    }

    /// [`MiniPlm::mean_embed`] at an explicit precision tier.
    pub fn mean_embed_prec(&self, tokens: &[TokenId], precision: Precision) -> Vec<f32> {
        let seq = self.wrap(tokens);
        let h = self.encode_prec(&seq, precision);
        let rows: Vec<&[f32]> = (1..seq.len() - 1).map(|i| h.row(i)).collect();
        if rows.is_empty() {
            return h.row(0).to_vec();
        }
        vector::mean_of(&rows, self.config.d_model)
    }

    /// The *static* (layer-0 table) embedding of a token — the
    /// non-contextual vector methods fall back to for expansion and for the
    /// ConWea WSD ablation.
    pub fn token_embedding(&self, t: TokenId) -> &[f32] {
        self.store.value(self.tok.table()).row(t as usize)
    }

    /// The `[CLS]` hidden state of a wrapped sequence.
    pub fn cls_embed(&self, tokens: &[TokenId]) -> Vec<f32> {
        let seq = self.wrap(tokens);
        self.encode(&seq).row(0).to_vec()
    }
}

// Inference shares one model immutably (`&self` + `Arc`) across the exec
// layer's worker threads; that is sound only while every forward pass keeps
// its mutable state inside the per-call `Graph`. This assertion turns any
// future interior mutability in the model/store into a compile error.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<MiniPlm>();
};

/// Forward-pass handle over a [`MiniPlm`]'s parameters. Parameters are
/// bound lazily inside each forward call; the training path records the
/// `(param, leaf)` pairs in the caller's [`Binding`].
pub struct BoundPlm<'m> {
    model: &'m MiniPlm,
}

impl BoundPlm<'_> {
    /// Encode a wrapped sequence to final hidden states (`len x d`). Uses a
    /// non-recording binding, so the embedding lookup gathers only the
    /// addressed rows instead of copying the full table into the tape.
    pub fn encode(&self, g: &mut Graph, tokens: &[TokenId]) -> NodeId {
        self.encode_with_binding(g, &mut Binding::inference(), tokens)
    }

    /// Encode while recording parameter bindings (training path).
    pub fn encode_with_binding(
        &self,
        g: &mut Graph,
        binding: &mut Binding,
        tokens: &[TokenId],
    ) -> NodeId {
        let m = self.model;
        let n = tokens.len();
        assert!(n <= m.config.max_len, "sequence too long: {n}");
        let ids: Vec<usize> = tokens.iter().map(|&t| t as usize).collect();
        let te = m.tok.forward(&m.store, g, binding, &ids);
        let positions: Vec<usize> = (0..n).collect();
        let pe = m.pos.forward(&m.store, g, binding, &positions);
        let mut x = g.add(te, pe);
        let scale = 1.0 / (m.config.d_head() as f32).sqrt();
        for block in &m.blocks {
            let normed = block.ln1.forward(&m.store, g, binding, x);
            let mut ctxs = Vec::with_capacity(m.config.n_heads);
            if binding.is_recording() {
                for (wq, wk, wv) in &block.heads {
                    let q = wq.forward(&m.store, g, binding, normed);
                    let k = wk.forward(&m.store, g, binding, normed);
                    let v = wv.forward(&m.store, g, binding, normed);
                    // q·kᵀ without materializing the transpose, then the
                    // 1/sqrt(d_head) scale fused into the softmax node.
                    let scores = g.matmul_t(q, k);
                    let attn = g.scaled_row_softmax(scores, scale);
                    ctxs.push(g.matmul(attn, v));
                }
            } else {
                // Inference: one wide fused QKV matmul replaces the
                // 3*n_heads narrow per-head projections (same bits, far
                // better kernel efficiency); heads become column slices.
                let (fw, fb) = block.fused_qkv(&m.store);
                let wnode = g.leaf(fw);
                let bnode = g.leaf(fb);
                let proj = g.matmul(normed, wnode);
                let qkv = g.add_row_broadcast(proj, bnode);
                let dh = m.config.d_head();
                for h in 0..m.config.n_heads {
                    let q = g.select_cols(qkv, (h * 3) * dh, dh);
                    let k = g.select_cols(qkv, (h * 3 + 1) * dh, dh);
                    let v = g.select_cols(qkv, (h * 3 + 2) * dh, dh);
                    let scores = g.matmul_t(q, k);
                    let attn = g.scaled_row_softmax(scores, scale);
                    ctxs.push(g.matmul(attn, v));
                }
            }
            let ctx = g.concat_cols(&ctxs);
            let attn_out = block.wo.forward(&m.store, g, binding, ctx);
            x = g.add(x, attn_out);
            let normed2 = block.ln2.forward(&m.store, g, binding, x);
            let f1 = block.ff1.forward(&m.store, g, binding, normed2);
            let act = g.gelu(f1);
            let f2 = block.ff2.forward(&m.store, g, binding, act);
            x = g.add(x, f2);
        }
        m.ln_final.forward(&m.store, g, binding, x)
    }

    /// MLM logits at the given positions: `positions.len() x vocab`, using
    /// the tied token-embedding matrix plus the output bias.
    pub fn mlm_logits(&self, g: &mut Graph, hidden: NodeId, positions: &[usize]) -> NodeId {
        self.mlm_logits_with_binding(g, &mut Binding::inference(), hidden, positions)
    }

    /// MLM logits recording bindings (training path).
    pub fn mlm_logits_with_binding(
        &self,
        g: &mut Graph,
        binding: &mut Binding,
        hidden: NodeId,
        positions: &[usize],
    ) -> NodeId {
        let m = self.model;
        let sel = g.select_rows(hidden, positions);
        let table = m.tok.bind_table(&m.store, g, binding);
        let logits = g.matmul_t(sel, table);
        let bias = m.store.bind(g, m.mlm_bias, binding);
        g.add_row_broadcast(logits, bias)
    }

    /// RTD logits: one scalar per position (`len x 1`).
    pub fn rtd_logits(&self, g: &mut Graph, hidden: NodeId) -> NodeId {
        self.rtd_logits_with_binding(g, &mut Binding::inference(), hidden)
    }

    /// RTD logits recording bindings.
    pub fn rtd_logits_with_binding(
        &self,
        g: &mut Graph,
        binding: &mut Binding,
        hidden: NodeId,
    ) -> NodeId {
        let m = self.model;
        m.rtd.forward(&m.store, g, binding, hidden)
    }

    /// NLI logits from the `[CLS]` row (`1 x 2`; class 1 = entail).
    pub fn nli_logits(&self, g: &mut Graph, hidden: NodeId) -> NodeId {
        self.nli_logits_with_binding(g, &mut Binding::inference(), hidden)
    }

    /// NLI logits recording bindings.
    pub fn nli_logits_with_binding(
        &self,
        g: &mut Graph,
        binding: &mut Binding,
        hidden: NodeId,
    ) -> NodeId {
        let m = self.model;
        let cls = g.select_rows(hidden, &[0]);
        m.nli.forward(&m.store, g, binding, cls)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> MiniPlm {
        MiniPlm::new(PlmConfig::tiny(50))
    }

    #[test]
    fn encode_shapes_are_correct() {
        let m = model();
        let seq = m.wrap(&[7, 8, 9]);
        assert_eq!(seq.first(), Some(&CLS));
        assert_eq!(seq.last(), Some(&SEP));
        let h = m.encode(&seq);
        assert_eq!(h.shape(), (5, m.config.d_model));
    }

    #[test]
    fn wrap_truncates_to_max_len() {
        let m = model();
        let long: Vec<TokenId> = (5..200).map(|t| t % 40 + 5).collect();
        let seq = m.wrap(&long);
        assert_eq!(seq.len(), m.config.max_len);
    }

    #[test]
    fn wrap_pair_fits_and_separates() {
        let m = model();
        let p: Vec<TokenId> = (5..40).collect();
        let h: Vec<TokenId> = (10..30).collect();
        let seq = m.wrap_pair(&p, &h);
        assert!(seq.len() <= m.config.max_len);
        assert_eq!(seq.iter().filter(|&&t| t == SEP).count(), 2);
    }

    #[test]
    fn mlm_probs_are_a_distribution() {
        let m = model();
        let seq = m.wrap(&[7, structmine_text::vocab::MASK, 9]);
        let probs = m.mlm_probs(&seq, 2);
        assert_eq!(probs.len(), 50);
        let sum: f32 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
    }

    #[test]
    fn mlm_topk_excludes_special_tokens() {
        let m = model();
        let seq = m.wrap(&[7, structmine_text::vocab::MASK]);
        let top = m.mlm_topk(&seq, 2, 10);
        assert_eq!(top.len(), 10);
        assert!(top
            .iter()
            .all(|&(t, _)| t >= structmine_text::vocab::N_SPECIAL as u32));
    }

    #[test]
    fn fused_inference_encode_matches_recording_path_bitwise() {
        // The inference path runs one fused QKV matmul per block instead of
        // 3 * n_heads per-head projections; both must produce the exact
        // same bits (the fused product computes each element with the same
        // ascending-k summation order).
        let m = model();
        let seq = m.wrap(&[7, 8, 9, 12, 30, 31, 9, 7]);
        let bound = m.bound();
        let mut g = Graph::new();
        let inference = bound.encode(&mut g, &seq);
        let inference = g.take_value(inference);
        let mut g2 = Graph::new();
        let mut binding = Binding::new();
        let recording = bound.encode_with_binding(&mut g2, &mut binding, &seq);
        let recording = g2.take_value(recording);
        assert_eq!(
            inference.data(),
            recording.data(),
            "fused inference encode diverged from the training path"
        );
    }

    #[test]
    fn contextual_representations_depend_on_context() {
        let m = model();
        // Token 9 in two different contexts must embed differently.
        let a = m.encode(&m.wrap(&[9, 7, 7]));
        let b = m.encode(&m.wrap(&[9, 30, 31]));
        let dist = vector::sq_dist(a.row(1), b.row(1));
        assert!(dist > 1e-4, "contextual reps identical: {dist}");
    }

    #[test]
    fn rtd_and_nli_heads_produce_valid_outputs() {
        let m = model();
        let seq = m.wrap(&[5, 6, 7]);
        let rtd = m.rtd_probs(&seq);
        assert_eq!(rtd.len(), seq.len());
        assert!(rtd.iter().all(|&p| (0.0..=1.0).contains(&p)));
        let e = m.nli_entail_prob(&[5, 6, 7], &[8, 9]);
        assert!((0.0..=1.0).contains(&e));
    }

    #[test]
    fn forward_is_deterministic() {
        let m = model();
        let seq = m.wrap(&[5, 9, 13]);
        assert_eq!(m.encode(&seq).data(), m.encode(&seq).data());
    }

    #[test]
    #[should_panic(expected = "sequence too long")]
    fn overlong_unwrapped_sequence_panics() {
        let m = model();
        let long: Vec<TokenId> = vec![5; 100];
        m.encode(&long);
    }
}
