//! The transformer encoder and its task heads.
//!
//! A pre-LN encoder: each block computes
//! `x += MultiHeadAttention(LN(x))` then `x += FFN(LN(x))`, with a final
//! layer norm. Heads:
//! * MLM — tied input/output embeddings plus a per-token bias;
//! * RTD — a linear replaced-token-detection probe per position (ELECTRA);
//! * NLI — a 2-way entail/not-entail classifier on the `[CLS]` state.
//!
//! One sequence per forward call; training batches bind the parameters once
//! per tape and accumulate several sequence losses before the Adam step.

use crate::config::PlmConfig;
use std::sync::{Arc, Mutex};
use structmine_linalg::{vector, Matrix, PackedMatrix, Precision};
use structmine_nn::graph::{Graph, NodeId};
use structmine_nn::layers::{Embedding, LayerNorm, Linear};
use structmine_nn::params::{Adam, Binding, ParamStore};
use structmine_text::vocab::{TokenId, CLS, SEP};

/// The fused QKV projection of one block, pre-packed for the inference
/// matmul: the concatenated `d_model x 3*d_model` weight in panel layout
/// plus its `1 x 3*d_model` bias.
struct FusedQkv {
    packed: PackedMatrix,
    bias: Matrix,
}

struct Block {
    ln1: LayerNorm,
    // Per-head projection triples (q, k, v), each `d_model x d_head`.
    heads: Vec<(Linear, Linear, Linear)>,
    wo: Linear,
    ln2: LayerNorm,
    ff1: Linear,
    ff2: Linear,
    /// Fused QKV weight, keyed by the store's weight-write generation so a
    /// training step can't leave it stale (the derived matrix lives outside
    /// the store, so the store's own pack cache can't cover it). `Arc` lets
    /// concurrent encodes share one build; `Mutex` (not `RefCell`) keeps
    /// the model `Sync` for the exec layer's worker threads.
    qkv_cache: Mutex<Option<(u64, Arc<FusedQkv>)>>,
}

impl Block {
    /// Concatenate the per-head q/k/v projection weights and biases
    /// column-wise into one `d_model x 3*d_model` weight (head-major
    /// `[q_h | k_h | v_h]` triples) plus its `1 x 3*d_model` bias, so the
    /// inference path can run one wide matmul instead of `3 * n_heads`
    /// narrow ones. Each fused output element is the same ascending-`k` dot
    /// product the per-head matmuls compute, so results are bitwise
    /// identical.
    fn fused_qkv(&self, store: &ParamStore) -> (Matrix, Matrix) {
        let first = store.value(self.heads[0].0.weight());
        let (d_in, dh) = first.shape();
        let total = self.heads.len() * 3 * dh;
        let mut w = Matrix::zeros(d_in, total);
        let mut b = Matrix::zeros(1, total);
        for (h, (wq, wk, wv)) in self.heads.iter().enumerate() {
            for (slot, lin) in [wq, wk, wv].into_iter().enumerate() {
                let off = (h * 3 + slot) * dh;
                let src = store.value(lin.weight());
                for r in 0..d_in {
                    w.row_mut(r)[off..off + dh].copy_from_slice(src.row(r));
                }
                b.row_mut(0)[off..off + dh].copy_from_slice(store.value(lin.bias()).row(0));
            }
        }
        (w, b)
    }

    /// The fused QKV projection, concatenated and pre-packed once per
    /// weight-write generation. A stale entry (generation mismatch after a
    /// training step) is dropped and rebuilt from current per-head values,
    /// so the cache can never serve panels from overwritten weights.
    fn fused_qkv_prepacked(&self, store: &ParamStore) -> Arc<FusedQkv> {
        let mut cache = self.qkv_cache.lock().unwrap_or_else(|e| e.into_inner());
        let generation = store.generation();
        if let Some((cached_gen, fused)) = cache.as_ref() {
            if *cached_gen == generation {
                return Arc::clone(fused);
            }
            structmine_store::obs::counter_add("linalg.prepack.invalidations", 1);
        }
        let (w, b) = self.fused_qkv(store);
        let fused = Arc::new(FusedQkv {
            packed: PackedMatrix::pack(&w),
            bias: b,
        });
        *cache = Some((generation, Arc::clone(&fused)));
        fused
    }
}

thread_local! {
    /// Per-thread scratch tape shared by the no-gradient inference entry
    /// points. A serving thread (e.g. the serve batcher) runs many forward
    /// passes over its lifetime; holding one tape and [`Graph::reset_to`]-ing
    /// it between passes keeps the node vector's capacity (and, via the
    /// arena, every buffer) alive across batches instead of re-allocating
    /// per document. Reuse is bitwise transparent — property-tested in
    /// `structmine-nn` — and surfaced as `plm.graph_scratch_reuse`.
    static SCRATCH: std::cell::RefCell<Graph> = std::cell::RefCell::new(Graph::new());
}

/// Run `f` on this thread's persistent scratch tape, reset to `precision`.
/// The tape is reset again afterwards so every node buffer returns to the
/// arena immediately. `f` must not re-enter any scratch-using inference
/// entry point (single tape per thread).
fn with_scratch_graph<R>(precision: Precision, f: impl FnOnce(&mut Graph) -> R) -> R {
    SCRATCH.with(|s| {
        let mut g = s.borrow_mut();
        if g.node_capacity() > 0 {
            structmine_store::obs::counter_add("plm.graph_scratch_reuse", 1);
        }
        g.reset_to(precision);
        let out = f(&mut g);
        g.reset();
        out
    })
}

/// The mini pre-trained language model.
pub struct MiniPlm {
    /// Architecture.
    pub config: PlmConfig,
    store: ParamStore,
    tok: Embedding,
    pos: Embedding,
    blocks: Vec<Block>,
    ln_final: LayerNorm,
    mlm_bias: structmine_nn::params::ParamId,
    rtd: Linear,
    nli: Linear,
}

impl MiniPlm {
    /// Initialize a model with random parameters.
    pub fn new(config: PlmConfig) -> Self {
        assert_eq!(
            config.d_model % config.n_heads,
            0,
            "d_model must divide by heads"
        );
        let mut store = ParamStore::new();
        let mut rng = structmine_linalg::rng::seeded(config.seed);
        let tok = Embedding::new(
            &mut store,
            "tok",
            config.vocab_size,
            config.d_model,
            &mut rng,
        );
        let pos = Embedding::new(&mut store, "pos", config.max_len, config.d_model, &mut rng);
        let blocks = (0..config.n_layers)
            .map(|l| {
                let heads = (0..config.n_heads)
                    .map(|h| {
                        (
                            Linear::new(
                                &mut store,
                                &format!("b{l}.h{h}.q"),
                                config.d_model,
                                config.d_head(),
                                &mut rng,
                            ),
                            Linear::new(
                                &mut store,
                                &format!("b{l}.h{h}.k"),
                                config.d_model,
                                config.d_head(),
                                &mut rng,
                            ),
                            Linear::new(
                                &mut store,
                                &format!("b{l}.h{h}.v"),
                                config.d_model,
                                config.d_head(),
                                &mut rng,
                            ),
                        )
                    })
                    .collect();
                Block {
                    ln1: LayerNorm::new(&mut store, &format!("b{l}.ln1"), config.d_model),
                    heads,
                    wo: Linear::new(
                        &mut store,
                        &format!("b{l}.wo"),
                        config.d_model,
                        config.d_model,
                        &mut rng,
                    ),
                    ln2: LayerNorm::new(&mut store, &format!("b{l}.ln2"), config.d_model),
                    ff1: Linear::new(
                        &mut store,
                        &format!("b{l}.ff1"),
                        config.d_model,
                        config.d_ff,
                        &mut rng,
                    ),
                    ff2: Linear::new(
                        &mut store,
                        &format!("b{l}.ff2"),
                        config.d_ff,
                        config.d_model,
                        &mut rng,
                    ),
                    qkv_cache: Mutex::new(None),
                }
            })
            .collect();
        let ln_final = LayerNorm::new(&mut store, "ln_final", config.d_model);
        let mlm_bias = store.zeros("mlm_bias", 1, config.vocab_size);
        let rtd = Linear::new(&mut store, "rtd", config.d_model, 1, &mut rng);
        let nli = Linear::new(&mut store, "nli", config.d_model, 2, &mut rng);
        MiniPlm {
            config,
            store,
            tok,
            pos,
            blocks,
            ln_final,
            mlm_bias,
            rtd,
            nli,
        }
    }

    /// Borrow the parameter store (for optimizer construction).
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Mutably borrow the parameter store (for the Adam step).
    pub fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    /// Deep-copy the model (used for per-corpus adaptation).
    pub fn clone_model(&self) -> MiniPlm {
        let mut copy = MiniPlm::new(self.config);
        copy.import_weights(self.export_weights());
        copy
    }

    /// Snapshot all weights (for the disk cache).
    pub fn export_weights(&self) -> Vec<Matrix> {
        self.store.export_values()
    }

    /// Content fingerprint of the model: architecture plus every weight
    /// value. Two models with the same fingerprint produce bitwise-identical
    /// encodings, so artifact keys built on it can never serve stale
    /// representations. Recomputed on every call (weights are mutable
    /// through [`MiniPlm::store_mut`]); hashing is a few milliseconds,
    /// negligible next to any encoding pass.
    pub fn fingerprint(&self) -> u128 {
        use structmine_store::StableHash;
        let mut h = structmine_store::StableHasher::new();
        self.config.stable_hash(&mut h);
        self.export_weights().stable_hash(&mut h);
        h.finish()
    }

    /// Restore weights exported from an identically configured model.
    pub fn import_weights(&mut self, weights: Vec<Matrix>) {
        self.store.import_values(weights);
    }

    /// Eagerly build every pre-packed weight the inference paths consume
    /// (fused QKV per block, output/FFN projections, the transposed token
    /// table for tied MLM logits, and the RTD/NLI heads), so the first
    /// serving request pays no packing cost. Idempotent and cheap when
    /// already packed: warm calls are cache hits. Weight writes after this
    /// call invalidate the caches; the panels are lazily rebuilt at next
    /// use, so calling this again afterwards is optional.
    pub fn prepack_weights(&self) {
        for block in &self.blocks {
            block.fused_qkv_prepacked(&self.store);
            self.store.prepacked(block.wo.weight());
            self.store.prepacked(block.ff1.weight());
            self.store.prepacked(block.ff2.weight());
        }
        self.store.prepacked_t(self.tok.table());
        self.store.prepacked(self.rtd.weight());
        self.store.prepacked(self.nli.weight());
    }

    /// Build an [`Adam`] optimizer for this model.
    pub fn optimizer(&self, lr: f32) -> Adam {
        Adam::new(&self.store, lr, 1.0)
    }

    /// Truncate a token sequence to fit the positional table, reserving two
    /// slots, and wrap it as `[CLS] .. tokens .. [SEP]`.
    pub fn wrap(&self, tokens: &[TokenId]) -> Vec<TokenId> {
        let body = &tokens[..tokens.len().min(self.config.max_len - 2)];
        let mut seq = Vec::with_capacity(body.len() + 2);
        seq.push(CLS);
        seq.extend_from_slice(body);
        seq.push(SEP);
        seq
    }

    /// Wrap a premise/hypothesis pair: `[CLS] p [SEP] h [SEP]`.
    pub fn wrap_pair(&self, premise: &[TokenId], hypothesis: &[TokenId]) -> Vec<TokenId> {
        let budget = self.config.max_len - 3;
        let h_len = hypothesis.len().min(budget / 2);
        let p_len = premise.len().min(budget - h_len);
        let mut seq = Vec::with_capacity(p_len + h_len + 3);
        seq.push(CLS);
        seq.extend_from_slice(&premise[..p_len]);
        seq.push(SEP);
        seq.extend_from_slice(&hypothesis[..h_len]);
        seq.push(SEP);
        seq
    }

    /// A forward-pass handle over this model's parameters.
    pub fn bound(&self) -> BoundPlm<'_> {
        BoundPlm { model: self }
    }

    /// Run a no-gradient forward pass, returning the final hidden states
    /// (`len x d_model`).
    pub fn encode(&self, tokens: &[TokenId]) -> Matrix {
        self.encode_prec(tokens, Precision::Exact)
    }

    /// [`MiniPlm::encode`] at an explicit precision tier: the tier selects
    /// the tape the forward pass records on (Exact tapes are bitwise
    /// reproducible; Fast tapes use the approximate inference kernels).
    pub fn encode_prec(&self, tokens: &[TokenId], precision: Precision) -> Matrix {
        with_scratch_graph(precision, |g| {
            let bound = self.bound();
            let h = bound.encode(g, tokens);
            g.take_value(h)
        })
    }

    /// MLM distribution at `position` of the (already wrapped) sequence.
    pub fn mlm_probs(&self, tokens: &[TokenId], position: usize) -> Vec<f32> {
        with_scratch_graph(Precision::Exact, |g| {
            let bound = self.bound();
            let h = bound.encode(g, tokens);
            let logits = bound.mlm_logits(g, h, &[position]);
            let mut probs = g.value(logits).row(0).to_vec();
            structmine_linalg::stats::softmax_inplace(&mut probs);
            probs
        })
    }

    /// Top-`k` MLM predictions `(token, prob)` at `position`, excluding
    /// special tokens.
    pub fn mlm_topk(&self, tokens: &[TokenId], position: usize, k: usize) -> Vec<(TokenId, f32)> {
        let probs = self.mlm_probs(tokens, position);
        let mut scored: Vec<(TokenId, f32)> = probs
            .iter()
            .enumerate()
            .skip(structmine_text::vocab::N_SPECIAL)
            .map(|(t, &p)| (t as TokenId, p))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(k);
        scored
    }

    /// Top-`k` MLM predictions at several positions with a single encode.
    pub fn mlm_topk_multi(
        &self,
        tokens: &[TokenId],
        positions: &[usize],
        k: usize,
    ) -> Vec<Vec<(TokenId, f32)>> {
        if positions.is_empty() {
            return Vec::new();
        }
        with_scratch_graph(Precision::Exact, |g| {
            let bound = self.bound();
            let h = bound.encode(g, tokens);
            let logits = bound.mlm_logits(g, h, positions);
            (0..positions.len())
                .map(|r| {
                    let mut probs = g.value(logits).row(r).to_vec();
                    structmine_linalg::stats::softmax_inplace(&mut probs);
                    let mut scored: Vec<(TokenId, f32)> = probs
                        .iter()
                        .enumerate()
                        .skip(structmine_text::vocab::N_SPECIAL)
                        .map(|(t, &p)| (t as TokenId, p))
                        .collect();
                    scored
                        .sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
                    scored.truncate(k);
                    scored
                })
                .collect()
        })
    }

    /// Per-position replaced-token probabilities for a wrapped sequence
    /// (sigmoid of the RTD head).
    pub fn rtd_probs(&self, tokens: &[TokenId]) -> Vec<f32> {
        self.rtd_probs_prec(tokens, Precision::Exact)
    }

    /// [`MiniPlm::rtd_probs`] at an explicit precision tier.
    pub fn rtd_probs_prec(&self, tokens: &[TokenId], precision: Precision) -> Vec<f32> {
        with_scratch_graph(precision, |g| {
            let bound = self.bound();
            let h = bound.encode(g, tokens);
            let logits = bound.rtd_logits(g, h);
            let sig = |z: f32| match precision {
                Precision::Exact => 1.0 / (1.0 + (-z).exp()),
                Precision::Fast => 1.0 / (1.0 + structmine_linalg::fastmath::fast_exp(-z)),
            };
            g.value(logits).data().iter().map(|&z| sig(z)).collect()
        })
    }

    /// Probability that `premise` entails `hypothesis` under the NLI head.
    pub fn nli_entail_prob(&self, premise: &[TokenId], hypothesis: &[TokenId]) -> f32 {
        self.nli_entail_prob_prec(premise, hypothesis, Precision::Exact)
    }

    /// [`MiniPlm::nli_entail_prob`] at an explicit precision tier.
    pub fn nli_entail_prob_prec(
        &self,
        premise: &[TokenId],
        hypothesis: &[TokenId],
        precision: Precision,
    ) -> f32 {
        let seq = self.wrap_pair(premise, hypothesis);
        with_scratch_graph(precision, |g| {
            let bound = self.bound();
            let h = bound.encode(g, &seq);
            let logits = bound.nli_logits(g, h);
            let mut probs = g.value(logits).row(0).to_vec();
            match precision {
                Precision::Exact => structmine_linalg::stats::softmax_inplace(&mut probs),
                Precision::Fast => structmine_linalg::stats::softmax_inplace_fast(&mut probs),
            }
            probs[1]
        })
    }

    /// Average of the final hidden states over real (non-CLS/SEP) positions —
    /// the "average-pooled BERT representation" of the tutorial's figures.
    pub fn mean_embed(&self, tokens: &[TokenId]) -> Vec<f32> {
        self.mean_embed_prec(tokens, Precision::Exact)
    }

    /// [`MiniPlm::mean_embed`] at an explicit precision tier.
    pub fn mean_embed_prec(&self, tokens: &[TokenId], precision: Precision) -> Vec<f32> {
        let seq = self.wrap(tokens);
        let h = self.encode_prec(&seq, precision);
        let rows: Vec<&[f32]> = (1..seq.len() - 1).map(|i| h.row(i)).collect();
        if rows.is_empty() {
            return h.row(0).to_vec();
        }
        vector::mean_of(&rows, self.config.d_model)
    }

    /// The *static* (layer-0 table) embedding of a token — the
    /// non-contextual vector methods fall back to for expansion and for the
    /// ConWea WSD ablation.
    pub fn token_embedding(&self, t: TokenId) -> &[f32] {
        self.store.value(self.tok.table()).row(t as usize)
    }

    /// The `[CLS]` hidden state of a wrapped sequence.
    pub fn cls_embed(&self, tokens: &[TokenId]) -> Vec<f32> {
        let seq = self.wrap(tokens);
        self.encode(&seq).row(0).to_vec()
    }
}

// Inference shares one model immutably (`&self` + `Arc`) across the exec
// layer's worker threads; that is sound only while every forward pass keeps
// its mutable state inside the per-call `Graph`. This assertion turns any
// future interior mutability in the model/store into a compile error.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<MiniPlm>();
};

/// Forward-pass handle over a [`MiniPlm`]'s parameters. Parameters are
/// bound lazily inside each forward call; the training path records the
/// `(param, leaf)` pairs in the caller's [`Binding`].
pub struct BoundPlm<'m> {
    model: &'m MiniPlm,
}

impl BoundPlm<'_> {
    /// Encode a wrapped sequence to final hidden states (`len x d`). Uses a
    /// non-recording binding, so the embedding lookup gathers only the
    /// addressed rows instead of copying the full table into the tape.
    pub fn encode(&self, g: &mut Graph, tokens: &[TokenId]) -> NodeId {
        self.encode_with_binding(g, &mut Binding::inference(), tokens)
    }

    /// Encode while recording parameter bindings (training path).
    pub fn encode_with_binding(
        &self,
        g: &mut Graph,
        binding: &mut Binding,
        tokens: &[TokenId],
    ) -> NodeId {
        let m = self.model;
        let n = tokens.len();
        assert!(n <= m.config.max_len, "sequence too long: {n}");
        let ids: Vec<usize> = tokens.iter().map(|&t| t as usize).collect();
        let te = m.tok.forward(&m.store, g, binding, &ids);
        let positions: Vec<usize> = (0..n).collect();
        let pe = m.pos.forward(&m.store, g, binding, &positions);
        let mut x = g.add(te, pe);
        let scale = 1.0 / (m.config.d_head() as f32).sqrt();
        for block in &m.blocks {
            let normed = block.ln1.forward(&m.store, g, binding, x);
            let mut ctxs = Vec::with_capacity(m.config.n_heads);
            if binding.is_recording() {
                for (wq, wk, wv) in &block.heads {
                    let q = wq.forward(&m.store, g, binding, normed);
                    let k = wk.forward(&m.store, g, binding, normed);
                    let v = wv.forward(&m.store, g, binding, normed);
                    // q·kᵀ without materializing the transpose, then the
                    // 1/sqrt(d_head) scale fused into the softmax node.
                    let scores = g.matmul_t(q, k);
                    let attn = g.scaled_row_softmax(scores, scale);
                    ctxs.push(g.matmul(attn, v));
                }
            } else {
                // Inference: one wide fused QKV matmul replaces the
                // 3*n_heads narrow per-head projections (same bits, far
                // better kernel efficiency); heads become column slices.
                // The fused weight arrives pre-packed from the block's
                // generation-keyed cache, so the per-call concatenate and
                // pack both disappear from the hot path.
                let fused = block.fused_qkv_prepacked(&m.store);
                let bnode = g.leaf_copied(&fused.bias);
                let proj = g.matmul_prepacked(normed, &fused.packed);
                let qkv = g.add_row_broadcast(proj, bnode);
                let dh = m.config.d_head();
                for h in 0..m.config.n_heads {
                    let q = g.select_cols(qkv, (h * 3) * dh, dh);
                    let k = g.select_cols(qkv, (h * 3 + 1) * dh, dh);
                    let v = g.select_cols(qkv, (h * 3 + 2) * dh, dh);
                    let scores = g.matmul_t(q, k);
                    let attn = g.scaled_row_softmax(scores, scale);
                    ctxs.push(g.matmul(attn, v));
                }
            }
            let ctx = g.concat_cols(&ctxs);
            let attn_out = self.linear(g, binding, &block.wo, ctx);
            x = g.add(x, attn_out);
            let normed2 = block.ln2.forward(&m.store, g, binding, x);
            let f1 = self.linear(g, binding, &block.ff1, normed2);
            let act = g.gelu(f1);
            let f2 = self.linear(g, binding, &block.ff2, act);
            x = g.add(x, f2);
        }
        m.ln_final.forward(&m.store, g, binding, x)
    }

    /// Apply a [`Linear`], routing non-recording (inference) passes through
    /// the store's cached pre-packed weight panels. Per-element arithmetic
    /// is identical either way, so Exact-tier outputs stay bitwise equal to
    /// the recording path.
    fn linear(&self, g: &mut Graph, binding: &mut Binding, lin: &Linear, x: NodeId) -> NodeId {
        if binding.is_recording() {
            lin.forward(&self.model.store, g, binding, x)
        } else {
            lin.forward_prepacked(&self.model.store, g, x)
        }
    }

    /// MLM logits at the given positions: `positions.len() x vocab`, using
    /// the tied token-embedding matrix plus the output bias.
    pub fn mlm_logits(&self, g: &mut Graph, hidden: NodeId, positions: &[usize]) -> NodeId {
        self.mlm_logits_with_binding(g, &mut Binding::inference(), hidden, positions)
    }

    /// MLM logits recording bindings (training path).
    pub fn mlm_logits_with_binding(
        &self,
        g: &mut Graph,
        binding: &mut Binding,
        hidden: NodeId,
        positions: &[usize],
    ) -> NodeId {
        let m = self.model;
        let sel = g.select_rows(hidden, positions);
        if !binding.is_recording() {
            // Tied output projection against the pre-packed (transposed)
            // token table: skips copying the full `vocab x d` table into
            // the tape on every call, with identical per-element bits.
            let packed = m.store.prepacked_t(m.tok.table());
            let logits = g.matmul_prepacked(sel, &packed);
            let bias = g.leaf_copied(m.store.value(m.mlm_bias));
            return g.add_row_broadcast(logits, bias);
        }
        let table = m.tok.bind_table(&m.store, g, binding);
        let logits = g.matmul_t(sel, table);
        let bias = m.store.bind(g, m.mlm_bias, binding);
        g.add_row_broadcast(logits, bias)
    }

    /// RTD logits: one scalar per position (`len x 1`).
    pub fn rtd_logits(&self, g: &mut Graph, hidden: NodeId) -> NodeId {
        self.rtd_logits_with_binding(g, &mut Binding::inference(), hidden)
    }

    /// RTD logits recording bindings.
    pub fn rtd_logits_with_binding(
        &self,
        g: &mut Graph,
        binding: &mut Binding,
        hidden: NodeId,
    ) -> NodeId {
        let rtd = self.model.rtd;
        self.linear(g, binding, &rtd, hidden)
    }

    /// NLI logits from the `[CLS]` row (`1 x 2`; class 1 = entail).
    pub fn nli_logits(&self, g: &mut Graph, hidden: NodeId) -> NodeId {
        self.nli_logits_with_binding(g, &mut Binding::inference(), hidden)
    }

    /// NLI logits recording bindings.
    pub fn nli_logits_with_binding(
        &self,
        g: &mut Graph,
        binding: &mut Binding,
        hidden: NodeId,
    ) -> NodeId {
        let cls = g.select_rows(hidden, &[0]);
        let nli = self.model.nli;
        self.linear(g, binding, &nli, cls)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> MiniPlm {
        MiniPlm::new(PlmConfig::tiny(50))
    }

    #[test]
    fn encode_shapes_are_correct() {
        let m = model();
        let seq = m.wrap(&[7, 8, 9]);
        assert_eq!(seq.first(), Some(&CLS));
        assert_eq!(seq.last(), Some(&SEP));
        let h = m.encode(&seq);
        assert_eq!(h.shape(), (5, m.config.d_model));
    }

    #[test]
    fn wrap_truncates_to_max_len() {
        let m = model();
        let long: Vec<TokenId> = (5..200).map(|t| t % 40 + 5).collect();
        let seq = m.wrap(&long);
        assert_eq!(seq.len(), m.config.max_len);
    }

    #[test]
    fn wrap_pair_fits_and_separates() {
        let m = model();
        let p: Vec<TokenId> = (5..40).collect();
        let h: Vec<TokenId> = (10..30).collect();
        let seq = m.wrap_pair(&p, &h);
        assert!(seq.len() <= m.config.max_len);
        assert_eq!(seq.iter().filter(|&&t| t == SEP).count(), 2);
    }

    #[test]
    fn mlm_probs_are_a_distribution() {
        let m = model();
        let seq = m.wrap(&[7, structmine_text::vocab::MASK, 9]);
        let probs = m.mlm_probs(&seq, 2);
        assert_eq!(probs.len(), 50);
        let sum: f32 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
    }

    #[test]
    fn mlm_topk_excludes_special_tokens() {
        let m = model();
        let seq = m.wrap(&[7, structmine_text::vocab::MASK]);
        let top = m.mlm_topk(&seq, 2, 10);
        assert_eq!(top.len(), 10);
        assert!(top
            .iter()
            .all(|&(t, _)| t >= structmine_text::vocab::N_SPECIAL as u32));
    }

    #[test]
    fn fused_inference_encode_matches_recording_path_bitwise() {
        // The inference path runs one fused QKV matmul per block instead of
        // 3 * n_heads per-head projections; both must produce the exact
        // same bits (the fused product computes each element with the same
        // ascending-k summation order).
        let m = model();
        let seq = m.wrap(&[7, 8, 9, 12, 30, 31, 9, 7]);
        let bound = m.bound();
        let mut g = Graph::new();
        let inference = bound.encode(&mut g, &seq);
        let inference = g.take_value(inference);
        let mut g2 = Graph::new();
        let mut binding = Binding::new();
        let recording = bound.encode_with_binding(&mut g2, &mut binding, &seq);
        let recording = g2.take_value(recording);
        assert_eq!(
            inference.data(),
            recording.data(),
            "fused inference encode diverged from the training path"
        );
    }

    #[test]
    fn weight_write_after_prepack_never_serves_stale_panels() {
        // Warm every pack cache (fused QKV, projections, tied table), then
        // mutate weights through the store. Encodes after the write must
        // match a fresh never-prepacked model bitwise — the caches may not
        // serve panels from the overwritten values.
        let mut m = model();
        let seq = m.wrap(&[7, 8, 9, 12]);
        m.prepack_weights();
        let warm = m.encode(&seq);
        for pid in [m.blocks[0].ff1.weight(), m.blocks[0].heads[0].0.weight()] {
            let w = m.store.value_mut(pid);
            let v = w.get(0, 0);
            w.set(0, 0, v + 0.5);
        }
        let after = m.encode(&seq);
        assert_ne!(warm.data(), after.data(), "write had no effect on encode");
        let mut fresh = MiniPlm::new(m.config);
        fresh.import_weights(m.export_weights());
        assert_eq!(
            after.data(),
            fresh.encode(&seq).data(),
            "prepacked encode after a weight write diverged from fresh model"
        );
    }

    #[test]
    fn contextual_representations_depend_on_context() {
        let m = model();
        // Token 9 in two different contexts must embed differently.
        let a = m.encode(&m.wrap(&[9, 7, 7]));
        let b = m.encode(&m.wrap(&[9, 30, 31]));
        let dist = vector::sq_dist(a.row(1), b.row(1));
        assert!(dist > 1e-4, "contextual reps identical: {dist}");
    }

    #[test]
    fn rtd_and_nli_heads_produce_valid_outputs() {
        let m = model();
        let seq = m.wrap(&[5, 6, 7]);
        let rtd = m.rtd_probs(&seq);
        assert_eq!(rtd.len(), seq.len());
        assert!(rtd.iter().all(|&p| (0.0..=1.0).contains(&p)));
        let e = m.nli_entail_prob(&[5, 6, 7], &[8, 9]);
        assert!((0.0..=1.0).contains(&e));
    }

    #[test]
    fn forward_is_deterministic() {
        let m = model();
        let seq = m.wrap(&[5, 9, 13]);
        assert_eq!(m.encode(&seq).data(), m.encode(&seq).data());
    }

    #[test]
    fn scratch_tape_is_reused_across_forward_passes() {
        // Two encodes on one thread must share the scratch tape (counted
        // by plm.graph_scratch_reuse) and still agree bit for bit, and the
        // tape must switch tiers cleanly between passes.
        let m = model();
        let seq = m.wrap(&[5, 9, 13, 21]);
        let first = m.encode(&seq);
        let before = structmine_store::obs::counter_value("plm.graph_scratch_reuse");
        let second = m.encode(&seq);
        assert!(
            structmine_store::obs::counter_value("plm.graph_scratch_reuse") > before,
            "second encode on this thread must reuse the scratch tape"
        );
        assert_eq!(first.data(), second.data());
        let fast = m.encode_prec(&seq, Precision::Fast);
        let exact_again = m.encode(&seq);
        assert_eq!(first.data(), exact_again.data());
        for (e, f) in first.data().iter().zip(fast.data()) {
            assert!((e - f).abs() < 1e-2, "fast diverged: exact={e} fast={f}");
        }
    }

    #[test]
    #[should_panic(expected = "sequence too long")]
    fn overlong_unwrapped_sequence_panics() {
        let m = model();
        let long: Vec<TokenId> = vec![5; 100];
        m.encode(&long);
    }
}
