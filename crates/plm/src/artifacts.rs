//! Content-addressed pipeline stages over the PLM.
//!
//! Each expensive PLM computation — corpus-level adaptation, whole-corpus
//! encoding, document mean representations, NLI entailment matrices — is
//! wrapped as a [`Stage`] whose key fingerprints *all* of its inputs: the
//! model (architecture + weights), the corpus content, and every
//! hyper-parameter. Running a stage through an
//! [`ArtifactStore`](structmine_store::ArtifactStore) memoizes its output
//! in process memory and (for the persistent stages) on disk, so repeated
//! runs — the same table binary re-executed, or several methods sharing one
//! adapted model — skip straight past the computation.
//!
//! The execution policy is deliberately **excluded** from every
//! fingerprint: parallel execution is bitwise deterministic for any thread
//! count (see `structmine_linalg::exec`), so a cache entry written under
//! one thread count is valid under every other.
//!
//! Failure behavior is inherited from the store (DESIGN §7): a corrupt or
//! unreadable checkpoint is detected by its checksum footer and recomputed,
//! and when the store degrades to memory-only after persistent disk
//! failures, [`Persistence::DiskOnly`] stages like [`AdaptPlm`] are held in
//! the memory layer instead — still computed once per process, just no
//! longer shared across processes.

use crate::config::PlmConfig;
use crate::model::MiniPlm;
use crate::repr::{self, DocRep};
use structmine_linalg::exec::ExecPolicy;
use structmine_linalg::Matrix;
use structmine_store::{Persistence, StableHash, StableHasher, Stage};
use structmine_text::vocab::TokenId;
use structmine_text::Corpus;

/// A serializable snapshot of a [`MiniPlm`]: the architecture plus every
/// weight matrix. This is the on-disk form of model-producing stages.
#[derive(Clone, serde::Serialize, serde::Deserialize)]
pub struct PlmCheckpoint {
    /// Model architecture.
    pub config: PlmConfig,
    /// All weights, in [`MiniPlm::export_weights`] order.
    pub weights: Vec<Matrix>,
}

impl PlmCheckpoint {
    /// Snapshot a model.
    pub fn of(model: &MiniPlm) -> Self {
        PlmCheckpoint {
            config: model.config,
            weights: model.export_weights(),
        }
    }

    /// Rebuild the model this checkpoint was taken from.
    pub fn restore(&self) -> MiniPlm {
        let mut model = MiniPlm::new(self.config);
        model.import_weights(self.weights.clone());
        model
    }

    /// Rebuild the model, consuming the checkpoint — moves the weights in
    /// instead of deep-cloning them. Preferred on warm cache hits, where
    /// the deserialized checkpoint has no other owner.
    pub fn into_model(self) -> MiniPlm {
        let mut model = MiniPlm::new(self.config);
        model.import_weights(self.weights);
        model
    }
}

/// Stage: continue pretraining a base model on a target corpus
/// ([`crate::pretrain::adapt`]). The most expensive per-dataset step in the
/// benchmark harness, so its checkpoint is persisted to disk and shared
/// across processes; the restored model is cheap enough to rebuild that the
/// in-memory layer is skipped ([`Persistence::DiskOnly`]).
pub struct AdaptPlm<'a> {
    /// The pretrained base model.
    pub base: &'a MiniPlm,
    /// The corpus to adapt to.
    pub corpus: &'a Corpus,
    /// Adaptation optimizer steps.
    pub steps: usize,
    /// Adaptation RNG seed.
    pub seed: u64,
}

impl Stage for AdaptPlm<'_> {
    type Output = PlmCheckpoint;

    fn name(&self) -> &'static str {
        "plm/adapt"
    }

    fn persistence(&self) -> Persistence {
        Persistence::DiskOnly
    }

    fn fingerprint(&self, h: &mut StableHasher) {
        h.write_u128(self.base.fingerprint());
        self.corpus.stable_hash(h);
        self.steps.stable_hash(h);
        self.seed.stable_hash(h);
    }

    fn compute(&self) -> PlmCheckpoint {
        PlmCheckpoint::of(&crate::pretrain::adapt(
            self.base,
            self.corpus,
            self.steps,
            self.seed,
        ))
    }
}

/// Stage: encode every document of a corpus ([`repr::encode_corpus`]).
/// Token-level matrices for a whole corpus are far too large to serialize
/// profitably, so this stage is memoized in process memory only
/// ([`Persistence::MemoryOnly`]) — which is exactly what lets several
/// methods in one table binary share a single encoding pass.
pub struct EncodeCorpus<'a> {
    /// The encoder.
    pub model: &'a MiniPlm,
    /// The corpus to encode.
    pub corpus: &'a Corpus,
    /// How to share the per-document encodes across threads.
    pub exec: ExecPolicy,
}

impl Stage for EncodeCorpus<'_> {
    type Output = Vec<DocRep>;

    fn name(&self) -> &'static str {
        "plm/encode-corpus"
    }

    fn persistence(&self) -> Persistence {
        Persistence::MemoryOnly
    }

    fn fingerprint(&self, h: &mut StableHasher) {
        h.write_u128(self.model.fingerprint());
        self.corpus.stable_hash(h);
    }

    fn compute(&self) -> Vec<DocRep> {
        repr::encode_corpus(self.model, self.corpus, &self.exec)
    }
}

/// Stage: average-pooled representation of every document
/// ([`repr::doc_mean_reps_with`]) — the "vanilla BERT representations"
/// matrix consumed by most methods. Small enough to persist.
pub struct DocMeanReps<'a> {
    /// The encoder.
    pub model: &'a MiniPlm,
    /// The corpus to represent.
    pub corpus: &'a Corpus,
    /// How to share the per-document encodes across threads.
    pub exec: ExecPolicy,
}

impl Stage for DocMeanReps<'_> {
    type Output = Matrix;

    fn name(&self) -> &'static str {
        "plm/doc-mean-reps"
    }

    fn fingerprint(&self, h: &mut StableHasher) {
        h.write_u128(self.model.fingerprint());
        self.corpus.stable_hash(h);
    }

    fn compute(&self) -> Matrix {
        repr::doc_mean_reps_with(self.model, self.corpus, &self.exec)
    }
}

/// Stage: entailment probability of every (document, hypothesis) pair
/// ([`repr::nli_entail_matrix`]) — TaxoClass's relevance matrix and the
/// zero-shot entailment baseline.
pub struct NliEntail<'a> {
    /// The model whose NLI head scores the pairs.
    pub model: &'a MiniPlm,
    /// The premise documents.
    pub corpus: &'a Corpus,
    /// The hypothesis token sequences, one per column.
    pub hypotheses: &'a [Vec<TokenId>],
    /// How to share the per-document scoring across threads.
    pub exec: ExecPolicy,
}

impl Stage for NliEntail<'_> {
    type Output = Matrix;

    fn name(&self) -> &'static str {
        "plm/nli-entail"
    }

    fn fingerprint(&self, h: &mut StableHasher) {
        h.write_u128(self.model.fingerprint());
        self.corpus.stable_hash(h);
        self.hypotheses.stable_hash(h);
    }

    fn compute(&self) -> Matrix {
        repr::nli_entail_matrix(self.model, self.corpus, self.hypotheses, &self.exec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use structmine_store::{fingerprint_of, ArtifactStore};
    use structmine_text::synth::recipes;

    fn tiny_model_and_corpus() -> (MiniPlm, Corpus) {
        let corpus = recipes::pretraining_corpus(6, 11);
        let model = MiniPlm::new(PlmConfig::tiny(corpus.vocab.len()));
        (model, corpus)
    }

    #[test]
    fn checkpoint_restores_identical_model() {
        let (model, corpus) = tiny_model_and_corpus();
        let restored = PlmCheckpoint::of(&model).restore();
        assert_eq!(restored.fingerprint(), model.fingerprint());
        let doc = &corpus.docs[0].tokens;
        assert_eq!(restored.mean_embed(doc), model.mean_embed(doc));
    }

    #[test]
    fn model_fingerprint_tracks_weights() {
        let (model, _) = tiny_model_and_corpus();
        let a = model.fingerprint();
        assert_eq!(a, model.fingerprint(), "fingerprint must be deterministic");
        let mut other = PlmCheckpoint::of(&model);
        other.weights[0].data_mut()[0] += 1.0;
        assert_ne!(a, other.restore().fingerprint());
    }

    #[test]
    fn doc_mean_reps_stage_warm_read_is_bitwise_identical() {
        let (model, corpus) = tiny_model_and_corpus();
        let dir = std::env::temp_dir().join(format!(
            "structmine-plm-artifacts-{}-{}",
            std::process::id(),
            fingerprint_of("doc-mean-reps-test")
        ));
        let stage = DocMeanReps {
            model: &model,
            corpus: &corpus,
            exec: ExecPolicy::serial(),
        };
        let cold = ArtifactStore::with_dir(&dir).run(&stage);
        // A fresh store sees only the disk artifact.
        let warm_store = ArtifactStore::with_dir(&dir);
        let warm = warm_store.run(&stage);
        let _ = std::fs::remove_dir_all(&dir);
        // Under an env fault plan (CI fault smoke) the read may legitimately
        // fall back to a recompute; bitwise equality must hold regardless.
        if !structmine_store::faults::env_active() {
            assert_eq!(warm_store.stats().disk_hits, 1);
        }
        assert_eq!(warm.data(), cold.data());
    }

    #[test]
    fn encode_corpus_stage_shares_one_pass_in_memory() {
        let (model, corpus) = tiny_model_and_corpus();
        let store = ArtifactStore::memory_only();
        let stage = EncodeCorpus {
            model: &model,
            corpus: &corpus,
            exec: ExecPolicy::serial(),
        };
        let a = store.run(&stage);
        let b = store.run(&stage);
        assert!(std::sync::Arc::ptr_eq(&a, &b));
        assert_eq!(store.stats().mem_hits, 1);
    }

    #[test]
    fn stage_keys_separate_models_and_corpora() {
        let (model, corpus) = tiny_model_and_corpus();
        let other_corpus = recipes::pretraining_corpus(7, 12);
        let k1 = DocMeanReps {
            model: &model,
            corpus: &corpus,
            exec: ExecPolicy::serial(),
        }
        .key();
        let k2 = DocMeanReps {
            model: &model,
            corpus: &other_corpus,
            exec: ExecPolicy::with_threads(4),
        }
        .key();
        let k3 = DocMeanReps {
            model: &model,
            corpus: &corpus,
            exec: ExecPolicy::with_threads(4),
        }
        .key();
        assert_ne!(k1.digest, k2.digest, "different corpus, different key");
        assert_eq!(
            k1.digest, k3.digest,
            "exec policy must not affect the key: parallel output is bitwise identical"
        );
    }
}
