//! Content-addressed pipeline stages over the PLM.
//!
//! Each expensive PLM computation — corpus-level adaptation, whole-corpus
//! encoding, document mean representations, NLI entailment matrices — is
//! wrapped as a [`Stage`] whose key fingerprints *all* of its inputs: the
//! model (architecture + weights), the corpus content, and every
//! hyper-parameter. Running a stage through an
//! [`ArtifactStore`](structmine_store::ArtifactStore) memoizes its output
//! in process memory and (for the persistent stages) on disk, so repeated
//! runs — the same table binary re-executed, or several methods sharing one
//! adapted model — skip straight past the computation.
//!
//! The execution policy's *thread count* is deliberately **excluded** from
//! every fingerprint: parallel execution is bitwise deterministic for any
//! thread count (see `structmine_linalg::exec`), so a cache entry written
//! under one thread count is valid under every other. The policy's
//! [`Precision`](structmine_linalg::Precision) tier is the one exception —
//! Fast-tier encodes are not bit-compatible with Exact ones, so every
//! stage whose compute runs PLM inference hashes the tier into its key and
//! the two tiers can never cross-contaminate the cache. Training stages
//! ([`AdaptPlm`], pretraining) always run Exact and stay tier-independent,
//! so one adapted checkpoint serves both tiers.
//!
//! Failure behavior is inherited from the store (DESIGN §7): a corrupt or
//! unreadable checkpoint is detected by its checksum footer and recomputed,
//! and when the store degrades to memory-only after persistent disk
//! failures, [`Persistence::DiskOnly`] stages like [`AdaptPlm`] are held in
//! the memory layer instead — still computed once per process, just no
//! longer shared across processes.

use crate::config::PlmConfig;
use crate::model::MiniPlm;
use crate::repr::{self, DocRep};
use structmine_linalg::exec::ExecPolicy;
use structmine_linalg::Matrix;
use structmine_store::{DeltaStage, Persistence, StableHash, StableHasher, Stage};
use structmine_text::delta::DeltaCorpus;
use structmine_text::vocab::TokenId;
use structmine_text::Corpus;

/// A serializable snapshot of a [`MiniPlm`]: the architecture plus every
/// weight matrix. This is the on-disk form of model-producing stages.
#[derive(Clone, serde::Serialize, serde::Deserialize)]
pub struct PlmCheckpoint {
    /// Model architecture.
    pub config: PlmConfig,
    /// All weights, in [`MiniPlm::export_weights`] order.
    pub weights: Vec<Matrix>,
}

impl PlmCheckpoint {
    /// Snapshot a model.
    pub fn of(model: &MiniPlm) -> Self {
        PlmCheckpoint {
            config: model.config,
            weights: model.export_weights(),
        }
    }

    /// Rebuild the model this checkpoint was taken from.
    pub fn restore(&self) -> MiniPlm {
        let mut model = MiniPlm::new(self.config);
        model.import_weights(self.weights.clone());
        model
    }

    /// Rebuild the model, consuming the checkpoint — moves the weights in
    /// instead of deep-cloning them. Preferred on warm cache hits, where
    /// the deserialized checkpoint has no other owner.
    pub fn into_model(self) -> MiniPlm {
        let mut model = MiniPlm::new(self.config);
        model.import_weights(self.weights);
        model
    }
}

/// Stage: continue pretraining a base model on a target corpus
/// ([`crate::pretrain::adapt`]). The most expensive per-dataset step in the
/// benchmark harness, so its checkpoint is persisted to disk and shared
/// across processes; the restored model is cheap enough to rebuild that the
/// in-memory layer is skipped ([`Persistence::DiskOnly`]).
pub struct AdaptPlm<'a> {
    /// The pretrained base model.
    pub base: &'a MiniPlm,
    /// The corpus to adapt to.
    pub corpus: &'a Corpus,
    /// Adaptation optimizer steps.
    pub steps: usize,
    /// Adaptation RNG seed.
    pub seed: u64,
}

impl Stage for AdaptPlm<'_> {
    type Output = PlmCheckpoint;

    fn name(&self) -> &'static str {
        "plm/adapt"
    }

    fn persistence(&self) -> Persistence {
        Persistence::DiskOnly
    }

    fn fingerprint(&self, h: &mut StableHasher) {
        h.write_u128(self.base.fingerprint());
        self.corpus.stable_hash(h);
        self.steps.stable_hash(h);
        self.seed.stable_hash(h);
    }

    fn compute(&self) -> PlmCheckpoint {
        PlmCheckpoint::of(&crate::pretrain::adapt(
            self.base,
            self.corpus,
            self.steps,
            self.seed,
        ))
    }
}

/// Stage: encode every document of a corpus ([`repr::encode_corpus`]).
/// Token-level matrices for a whole corpus are far too large to serialize
/// profitably, so this stage is memoized in process memory only
/// ([`Persistence::MemoryOnly`]) — which is exactly what lets several
/// methods in one table binary share a single encoding pass.
pub struct EncodeCorpus<'a> {
    /// The encoder.
    pub model: &'a MiniPlm,
    /// The corpus to encode.
    pub corpus: &'a Corpus,
    /// How to share the per-document encodes across threads.
    pub exec: ExecPolicy,
}

impl Stage for EncodeCorpus<'_> {
    type Output = Vec<DocRep>;

    fn name(&self) -> &'static str {
        "plm/encode-corpus"
    }

    fn persistence(&self) -> Persistence {
        Persistence::MemoryOnly
    }

    fn fingerprint(&self, h: &mut StableHasher) {
        h.write_u128(self.model.fingerprint());
        self.corpus.stable_hash(h);
        self.exec.precision().stable_hash(h);
    }

    fn compute(&self) -> Vec<DocRep> {
        repr::encode_corpus(self.model, self.corpus, &self.exec)
    }
}

/// Stage: average-pooled representation of every document
/// ([`repr::doc_mean_reps_with`]) — the "vanilla BERT representations"
/// matrix consumed by most methods. Small enough to persist.
pub struct DocMeanReps<'a> {
    /// The encoder.
    pub model: &'a MiniPlm,
    /// The corpus to represent.
    pub corpus: &'a Corpus,
    /// How to share the per-document encodes across threads.
    pub exec: ExecPolicy,
}

impl Stage for DocMeanReps<'_> {
    type Output = Matrix;

    fn name(&self) -> &'static str {
        "plm/doc-mean-reps"
    }

    fn fingerprint(&self, h: &mut StableHasher) {
        h.write_u128(self.model.fingerprint());
        self.corpus.stable_hash(h);
        self.exec.precision().stable_hash(h);
    }

    fn compute(&self) -> Matrix {
        repr::doc_mean_reps_with(self.model, self.corpus, &self.exec)
    }
}

/// Stage: the mean-rep rows for one contiguous document range of a corpus
/// — a shard of [`DocMeanReps`]. Workers in a sharded run
/// (`structmine-shard`, DESIGN §12) each compute their index-ordered
/// range; because every row is a per-document computation with its
/// absolute index, concatenating shard matrices in range order is bitwise
/// identical to the whole-corpus stage. Persisted like [`DocMeanReps`], so
/// a crashed worker's restart resumes from the shard artifact on disk.
pub struct DocMeanRepsShard<'a> {
    /// The encoder.
    pub model: &'a MiniPlm,
    /// The corpus the range indexes into.
    pub corpus: &'a Corpus,
    /// The half-open document range this shard owns.
    pub range: std::ops::Range<usize>,
    /// How to share the per-document encodes across threads.
    pub exec: ExecPolicy,
}

impl Stage for DocMeanRepsShard<'_> {
    type Output = Matrix;

    fn name(&self) -> &'static str {
        "plm/doc-mean-reps-shard"
    }

    fn fingerprint(&self, h: &mut StableHasher) {
        h.write_u128(self.model.fingerprint());
        self.corpus.stable_hash(h);
        self.range.start.stable_hash(h);
        self.range.end.stable_hash(h);
        self.exec.precision().stable_hash(h);
    }

    fn compute(&self) -> Matrix {
        let rows =
            repr::doc_mean_rows_range(self.model, self.corpus, self.range.clone(), &self.exec);
        repr::rows_to_matrix(rows, self.model.config.d_model)
    }
}

/// Delta stage: encode a [`DeltaCorpus`] generation by generation
/// ([`repr::encode_corpus_range`]). Generation 0 encodes the base corpus;
/// each refresh encodes **only** that generation's documents and appends
/// their reps in doc-index order — bitwise identical to a cold
/// [`EncodeCorpus`] of the merged corpus, because every document runs
/// through the same per-document code path with its absolute index.
/// Memory-only, like [`EncodeCorpus`], and keyed on the delta chain rather
/// than the merged corpus fingerprint (DESIGN §11).
pub struct EncodeDeltaCorpus<'a> {
    /// The encoder.
    pub model: &'a MiniPlm,
    /// The generational corpus to encode.
    pub delta: &'a DeltaCorpus,
    /// How to share the per-document encodes across threads.
    pub exec: ExecPolicy,
}

impl DeltaStage for EncodeDeltaCorpus<'_> {
    type Output = Vec<DocRep>;

    fn name(&self) -> &'static str {
        "plm/encode-delta"
    }

    fn persistence(&self) -> Persistence {
        Persistence::MemoryOnly
    }

    fn generation(&self) -> u64 {
        u64::from(self.delta.generation())
    }

    fn base_fingerprint(&self, h: &mut StableHasher) {
        h.write_u128(self.model.fingerprint());
        h.write_u128(self.delta.base_fingerprint());
        self.exec.precision().stable_hash(h);
    }

    fn delta_fingerprint(&self, h: &mut StableHasher, g: u64) {
        h.write_u128(self.delta.delta_fingerprint(g as u32));
    }

    fn compute_base(&self) -> Vec<DocRep> {
        repr::encode_corpus_range(
            self.model,
            self.delta.corpus(),
            self.delta.gen_range(0),
            &self.exec,
        )
    }

    fn refresh(&self, previous: &Vec<DocRep>, g: u64) -> Vec<DocRep> {
        let mut reps = previous.clone();
        reps.extend(repr::encode_corpus_range(
            self.model,
            self.delta.corpus(),
            self.delta.gen_range(g as u32),
            &self.exec,
        ));
        reps
    }
}

/// Delta stage: the mean-rep matrix of a [`DeltaCorpus`], refreshed by
/// appending only the new generation's rows ([`repr::doc_mean_rows_range`]).
/// Persisted like [`DocMeanReps`], so a restarted server resumes the chain
/// from disk.
pub struct DocMeanRepsDelta<'a> {
    /// The encoder.
    pub model: &'a MiniPlm,
    /// The generational corpus to represent.
    pub delta: &'a DeltaCorpus,
    /// How to share the per-document encodes across threads.
    pub exec: ExecPolicy,
}

impl DeltaStage for DocMeanRepsDelta<'_> {
    type Output = Matrix;

    fn name(&self) -> &'static str {
        "plm/doc-mean-reps-delta"
    }

    fn generation(&self) -> u64 {
        u64::from(self.delta.generation())
    }

    fn base_fingerprint(&self, h: &mut StableHasher) {
        h.write_u128(self.model.fingerprint());
        h.write_u128(self.delta.base_fingerprint());
        self.exec.precision().stable_hash(h);
    }

    fn delta_fingerprint(&self, h: &mut StableHasher, g: u64) {
        h.write_u128(self.delta.delta_fingerprint(g as u32));
    }

    fn compute_base(&self) -> Matrix {
        let rows = repr::doc_mean_rows_range(
            self.model,
            self.delta.corpus(),
            self.delta.gen_range(0),
            &self.exec,
        );
        repr::rows_to_matrix(rows, self.model.config.d_model)
    }

    fn refresh(&self, previous: &Matrix, g: u64) -> Matrix {
        let new_rows = repr::doc_mean_rows_range(
            self.model,
            self.delta.corpus(),
            self.delta.gen_range(g as u32),
            &self.exec,
        );
        let mut rows: Vec<&[f32]> = (0..previous.rows()).map(|r| previous.row(r)).collect();
        rows.extend(new_rows.iter().map(Vec::as_slice));
        if rows.is_empty() {
            Matrix::zeros(0, self.model.config.d_model)
        } else {
            Matrix::from_rows(&rows)
        }
    }
}

/// Stage: entailment probability of every (document, hypothesis) pair
/// ([`repr::nli_entail_matrix`]) — TaxoClass's relevance matrix and the
/// zero-shot entailment baseline.
pub struct NliEntail<'a> {
    /// The model whose NLI head scores the pairs.
    pub model: &'a MiniPlm,
    /// The premise documents.
    pub corpus: &'a Corpus,
    /// The hypothesis token sequences, one per column.
    pub hypotheses: &'a [Vec<TokenId>],
    /// How to share the per-document scoring across threads.
    pub exec: ExecPolicy,
}

impl Stage for NliEntail<'_> {
    type Output = Matrix;

    fn name(&self) -> &'static str {
        "plm/nli-entail"
    }

    fn fingerprint(&self, h: &mut StableHasher) {
        h.write_u128(self.model.fingerprint());
        self.corpus.stable_hash(h);
        self.hypotheses.stable_hash(h);
        self.exec.precision().stable_hash(h);
    }

    fn compute(&self) -> Matrix {
        repr::nli_entail_matrix(self.model, self.corpus, self.hypotheses, &self.exec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use structmine_store::{fingerprint_of, ArtifactStore};
    use structmine_text::synth::recipes;

    fn tiny_model_and_corpus() -> (MiniPlm, Corpus) {
        let corpus = recipes::pretraining_corpus(6, 11);
        let model = MiniPlm::new(PlmConfig::tiny(corpus.vocab.len()));
        (model, corpus)
    }

    #[test]
    fn checkpoint_restores_identical_model() {
        let (model, corpus) = tiny_model_and_corpus();
        let restored = PlmCheckpoint::of(&model).restore();
        assert_eq!(restored.fingerprint(), model.fingerprint());
        let doc = &corpus.docs[0].tokens;
        assert_eq!(restored.mean_embed(doc), model.mean_embed(doc));
    }

    #[test]
    fn model_fingerprint_tracks_weights() {
        let (model, _) = tiny_model_and_corpus();
        let a = model.fingerprint();
        assert_eq!(a, model.fingerprint(), "fingerprint must be deterministic");
        let mut other = PlmCheckpoint::of(&model);
        other.weights[0].data_mut()[0] += 1.0;
        assert_ne!(a, other.restore().fingerprint());
    }

    #[test]
    fn doc_mean_reps_stage_warm_read_is_bitwise_identical() {
        let (model, corpus) = tiny_model_and_corpus();
        let dir = std::env::temp_dir().join(format!(
            "structmine-plm-artifacts-{}-{}",
            std::process::id(),
            fingerprint_of("doc-mean-reps-test")
        ));
        let stage = DocMeanReps {
            model: &model,
            corpus: &corpus,
            exec: ExecPolicy::serial(),
        };
        let cold = ArtifactStore::with_dir(&dir).run(&stage);
        // A fresh store sees only the disk artifact.
        let warm_store = ArtifactStore::with_dir(&dir);
        let warm = warm_store.run(&stage);
        let _ = std::fs::remove_dir_all(&dir);
        // Under an env fault plan (CI fault smoke) the read may legitimately
        // fall back to a recompute; bitwise equality must hold regardless.
        if !structmine_store::faults::env_active() {
            assert_eq!(warm_store.stats().disk_hits, 1);
        }
        assert_eq!(warm.data(), cold.data());
    }

    #[test]
    fn encode_corpus_stage_shares_one_pass_in_memory() {
        let (model, corpus) = tiny_model_and_corpus();
        let store = ArtifactStore::memory_only();
        let stage = EncodeCorpus {
            model: &model,
            corpus: &corpus,
            exec: ExecPolicy::serial(),
        };
        let a = store.run(&stage);
        let b = store.run(&stage);
        assert!(std::sync::Arc::ptr_eq(&a, &b));
        assert_eq!(store.stats().mem_hits, 1);
    }

    #[test]
    fn delta_encode_matches_cold_whole_corpus_encode_bitwise() {
        let (model, corpus) = tiny_model_and_corpus();
        let store = ArtifactStore::memory_only();
        let mut dc = DeltaCorpus::from_corpus(corpus);
        // Two generations of new docs over the base vocabulary.
        let vocab_len = dc.corpus().vocab.len() as TokenId;
        for tokens in [vec![6, 7, 8], vec![vocab_len - 1, 9]] {
            let delta = dc.next_delta(vec![structmine_text::Doc::from_tokens(tokens)]);
            dc.apply(delta).unwrap();
            let stage = EncodeDeltaCorpus {
                model: &model,
                delta: &dc,
                exec: ExecPolicy::serial(),
            };
            let warm = store.run_delta(&stage);
            let cold = repr::encode_corpus(&model, dc.corpus(), &ExecPolicy::serial());
            assert_eq!(warm.len(), cold.len());
            for (a, b) in warm.iter().zip(&cold) {
                assert_eq!(a.doc, b.doc);
                assert_eq!(a.tokens.data(), b.tokens.data());
                assert_eq!(a.mean, b.mean);
            }
        }
    }

    #[test]
    fn delta_mean_reps_match_cold_matrix_bitwise() {
        let (model, corpus) = tiny_model_and_corpus();
        let store = ArtifactStore::memory_only();
        let mut dc = DeltaCorpus::from_corpus(corpus);
        for tokens in [vec![5, 6], vec![10, 11, 12]] {
            let delta = dc.next_delta(vec![structmine_text::Doc::from_tokens(tokens)]);
            dc.apply(delta).unwrap();
        }
        let stage = DocMeanRepsDelta {
            model: &model,
            delta: &dc,
            exec: ExecPolicy::serial(),
        };
        let warm = store.run_delta(&stage);
        let cold = repr::doc_mean_reps_with(&model, dc.corpus(), &ExecPolicy::serial());
        assert_eq!(warm.shape(), cold.shape());
        assert_eq!(warm.data(), cold.data());
    }

    #[test]
    fn delta_encode_reuses_previous_generations() {
        let (model, corpus) = tiny_model_and_corpus();
        let store = ArtifactStore::memory_only();
        let mut dc = DeltaCorpus::from_corpus(corpus);
        let delta = dc.next_delta(vec![structmine_text::Doc::from_tokens(vec![6, 7])]);
        dc.apply(delta).unwrap();
        let first = store.run_delta(&EncodeDeltaCorpus {
            model: &model,
            delta: &dc,
            exec: ExecPolicy::serial(),
        });
        // Asking for the same generation again is a pure memory hit.
        let hits_before = store.stats().mem_hits;
        let again = store.run_delta(&EncodeDeltaCorpus {
            model: &model,
            delta: &dc,
            exec: ExecPolicy::serial(),
        });
        assert!(std::sync::Arc::ptr_eq(&first, &again));
        assert_eq!(store.stats().mem_hits, hits_before + 1);
        assert_eq!(store.stats().misses, 2, "base + one refresh, computed once");
    }

    #[test]
    fn shard_stages_concatenate_to_the_whole_matrix_bitwise() {
        let (model, corpus) = tiny_model_and_corpus();
        let whole = DocMeanReps {
            model: &model,
            corpus: &corpus,
            exec: ExecPolicy::serial(),
        }
        .compute();
        let total = corpus.len();
        for count in [1usize, 3, 4] {
            let mut rows: Vec<Vec<f32>> = Vec::new();
            let (base, extra) = (total / count, total % count);
            let mut start = 0;
            for i in 0..count {
                let len = base + usize::from(i < extra);
                let shard = DocMeanRepsShard {
                    model: &model,
                    corpus: &corpus,
                    range: start..start + len,
                    exec: ExecPolicy::with_threads(1 + i % 2),
                }
                .compute();
                rows.extend((0..shard.rows()).map(|r| shard.row(r).to_vec()));
                start += len;
            }
            let merged = repr::rows_to_matrix(rows, model.config.d_model);
            assert_eq!(merged.shape(), whole.shape());
            assert_eq!(
                merged.data(),
                whole.data(),
                "{count}-way shard merge must be bitwise identical"
            );
        }
    }

    #[test]
    fn stage_keys_separate_models_and_corpora() {
        let (model, corpus) = tiny_model_and_corpus();
        let other_corpus = recipes::pretraining_corpus(7, 12);
        let k1 = DocMeanReps {
            model: &model,
            corpus: &corpus,
            exec: ExecPolicy::serial(),
        }
        .key();
        let k2 = DocMeanReps {
            model: &model,
            corpus: &other_corpus,
            exec: ExecPolicy::with_threads(4),
        }
        .key();
        let k3 = DocMeanReps {
            model: &model,
            corpus: &corpus,
            exec: ExecPolicy::with_threads(4),
        }
        .key();
        assert_ne!(k1.digest, k2.digest, "different corpus, different key");
        assert_eq!(
            k1.digest, k3.digest,
            "exec policy must not affect the key: parallel output is bitwise identical"
        );
    }

    #[test]
    fn stage_keys_separate_precision_tiers() {
        use structmine_linalg::Precision;
        let (model, corpus) = tiny_model_and_corpus();
        let exact = ExecPolicy::serial();
        let fast = ExecPolicy::serial().with_precision(Precision::Fast);
        let ke = DocMeanReps {
            model: &model,
            corpus: &corpus,
            exec: exact,
        }
        .key();
        let kf = DocMeanReps {
            model: &model,
            corpus: &corpus,
            exec: fast,
        }
        .key();
        assert_ne!(
            ke.digest, kf.digest,
            "Fast-tier artifacts must never be served from Exact keys"
        );
    }

    /// Satellite regression: a warm Fast-tier run after a cold Exact run
    /// must report **zero** cross-tier hits — every stage recomputes under
    /// its own key instead of silently serving the other tier's artifacts.
    #[test]
    fn warm_fast_run_after_cold_exact_run_has_no_cross_tier_hits() {
        use structmine_linalg::Precision;
        let (model, corpus) = tiny_model_and_corpus();
        let store = ArtifactStore::memory_only();
        let exact = ExecPolicy::serial();
        let fast = ExecPolicy::serial().with_precision(Precision::Fast);

        let run_all = |exec: ExecPolicy| {
            let _ = store.run(&EncodeCorpus {
                model: &model,
                corpus: &corpus,
                exec,
            });
            let _ = store.run(&DocMeanReps {
                model: &model,
                corpus: &corpus,
                exec,
            });
            let _ = store.run(&DocMeanRepsShard {
                model: &model,
                corpus: &corpus,
                range: 0..corpus.len(),
                exec,
            });
            let _ = store.run(&NliEntail {
                model: &model,
                corpus: &corpus,
                hypotheses: &[vec![6u32, 7]],
                exec,
            });
        };

        run_all(exact); // cold Exact pass populates the store
        let hits_before = store.stats().mem_hits;
        let misses_before = store.stats().misses;
        run_all(fast); // warm Fast pass must see none of it
        assert_eq!(
            store.stats().mem_hits,
            hits_before,
            "0 cross-tier hits: a Fast run must not read Exact artifacts"
        );
        assert_eq!(
            store.stats().misses,
            misses_before + 4,
            "every Fast stage recomputes under its own key"
        );

        // And the tiers really computed different bytes somewhere.
        let e = store.run(&DocMeanReps {
            model: &model,
            corpus: &corpus,
            exec: exact,
        });
        let f = store.run(&DocMeanReps {
            model: &model,
            corpus: &corpus,
            exec: fast,
        });
        assert_ne!(e.data(), f.data(), "tiers share a key only if identical");
    }
}
