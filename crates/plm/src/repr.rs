//! Corpus-level representation extraction.
//!
//! These helpers run the encoder over whole corpora and hand back the
//! matrices the methods consume: average-pooled document representations
//! (the tutorial's "vanilla BERT representations" figures, X-Class),
//! per-occurrence contextualized token vectors (ConWea's sense clustering),
//! and full token-representation matrices per document (X-Class's
//! class-oriented attention).
//!
//! Everything here is **batched**: the corpus is the unit of work, and each
//! function takes an [`ExecPolicy`] that decides how many worker threads
//! share the per-document encodes *and* at which [`Precision`] tier each
//! forward pass runs. Parallelism is deterministic — documents are split
//! into fixed, index-ordered chunks and every per-document result is
//! produced by the exact scalar code the serial path uses, so output is
//! bitwise identical for any thread count (see `structmine_linalg::exec`).
//! The precision tier, unlike the thread count, *does* change output bits
//! (Fast swaps in approximate kernels), which is why the policy's tier is
//! part of every encode stage's fingerprint.

use crate::model::MiniPlm;
use structmine_linalg::exec::{par_map_chunks, ExecPolicy};
use structmine_linalg::{vector, Matrix, Precision};
use structmine_text::vocab::TokenId;
use structmine_text::Corpus;

/// The encoder's full output for one document: token-level hidden states
/// plus the average-pooled document vector, both from a single forward pass.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct DocRep {
    /// Document index within the corpus.
    pub doc: usize,
    /// Token-level hidden states (`len x d_model`): row `i` corresponds to
    /// `tokens[i]`, CLS/SEP rows stripped, truncated to the model's
    /// maximum length.
    pub tokens: Matrix,
    /// Mean of the token rows — identical to
    /// [`MiniPlm::mean_embed`] on the same document.
    pub mean: Vec<f32>,
}

impl MiniPlm {
    /// Encode every document of a corpus, sharing the work across the
    /// policy's threads. One forward pass per document yields both the
    /// token-level matrix and the mean-pooled vector; results come back in
    /// document order and are bitwise identical for any thread count.
    pub fn encode_corpus(&self, corpus: &Corpus, policy: &ExecPolicy) -> Vec<DocRep> {
        encode_corpus(self, corpus, policy)
    }

    /// Encode a batch of ad-hoc token sequences (no [`Corpus`] required),
    /// sharing the work across the policy's threads. Each sequence is
    /// encoded by exactly the per-document code [`MiniPlm::encode_corpus`]
    /// uses, so a document's [`DocRep`] is bitwise identical whether it is
    /// encoded alone, inside any batch, or as part of a corpus — the
    /// invariant the serving layer's micro-batching relies on.
    pub fn encode_docs(&self, docs: &[Vec<TokenId>], policy: &ExecPolicy) -> Vec<DocRep> {
        count_encoded(docs.len());
        let prec = policy.precision();
        par_map_chunks(policy, docs, |i, tokens| encode_one(self, i, tokens, prec))
    }
}

/// Mirror every corpus-level document encode into the run report
/// (`plm.docs_encoded`). The streaming equivalence tests and the `/stats`
/// route use this to assert that a warm delta refresh encodes only the
/// delta's documents.
fn count_encoded(n: usize) {
    structmine_store::obs::counter_add("plm.docs_encoded", n as u64);
}

/// Encode one token sequence into a [`DocRep`] — the single per-document
/// code path shared by corpus-level and ad-hoc batched encoding.
fn encode_one(model: &MiniPlm, i: usize, tokens: &[TokenId], precision: Precision) -> DocRep {
    let seq = model.wrap(tokens);
    let h = model.encode_prec(&seq, precision);
    let body: Vec<usize> = (1..seq.len() - 1).collect();
    let rows: Vec<&[f32]> = body.iter().map(|&r| h.row(r)).collect();
    let mean = if rows.is_empty() {
        h.row(0).to_vec()
    } else {
        vector::mean_of(&rows, model.config.d_model)
    };
    DocRep {
        doc: i,
        tokens: h.select_rows(&body),
        mean,
    }
}

/// Free-function form of [`MiniPlm::encode_corpus`].
pub fn encode_corpus(model: &MiniPlm, corpus: &Corpus, policy: &ExecPolicy) -> Vec<DocRep> {
    count_encoded(corpus.len());
    let prec = policy.precision();
    par_map_chunks(policy, &corpus.docs, |i, doc| {
        encode_one(model, i, &doc.tokens, prec)
    })
}

/// Encode a contiguous doc-index range of a corpus. Each [`DocRep::doc`]
/// carries the document's **absolute** corpus index, and every document
/// goes through the same per-document code path as [`encode_corpus`], so
/// concatenating range encodes in order is bitwise identical to one whole-
/// corpus encode — the invariant the generation-delta stages rely on.
pub fn encode_corpus_range(
    model: &MiniPlm,
    corpus: &Corpus,
    range: std::ops::Range<usize>,
    policy: &ExecPolicy,
) -> Vec<DocRep> {
    let start = range.start;
    count_encoded(range.len());
    let prec = policy.precision();
    par_map_chunks(policy, &corpus.docs[range], |i, doc| {
        encode_one(model, start + i, &doc.tokens, prec)
    })
}

/// Average-pooled representation of every document (`n x d`), using the
/// given execution policy.
pub fn doc_mean_reps_with(model: &MiniPlm, corpus: &Corpus, policy: &ExecPolicy) -> Matrix {
    let rows = doc_mean_rows_range(model, corpus, 0..corpus.len(), policy);
    rows_to_matrix(rows, model.config.d_model)
}

/// Mean-pooled rows for a contiguous doc-index range, in document order.
/// Row values are computed by [`MiniPlm::mean_embed`] exactly as
/// [`doc_mean_reps_with`] computes them, so appending range results
/// reproduces the whole-corpus matrix bitwise.
pub fn doc_mean_rows_range(
    model: &MiniPlm,
    corpus: &Corpus,
    range: std::ops::Range<usize>,
    policy: &ExecPolicy,
) -> Vec<Vec<f32>> {
    count_encoded(range.len());
    let prec = policy.precision();
    par_map_chunks(policy, &corpus.docs[range], |_, doc| {
        model.mean_embed_prec(&doc.tokens, prec)
    })
}

/// Stack owned rows into a matrix (empty input keeps the column count).
/// Public so the shard coordinator can merge per-shard row blocks back
/// into the canonical whole-corpus matrix.
pub fn rows_to_matrix(rows: Vec<Vec<f32>>, d_model: usize) -> Matrix {
    let refs: Vec<&[f32]> = rows.iter().map(Vec::as_slice).collect();
    if refs.is_empty() {
        Matrix::zeros(0, d_model)
    } else {
        Matrix::from_rows(&refs)
    }
}

/// Average-pooled representation of every document (`n x d`) under the
/// process-wide default policy.
pub fn doc_mean_reps(model: &MiniPlm, corpus: &Corpus) -> Matrix {
    doc_mean_reps_with(model, corpus, ExecPolicy::global())
}

/// Token-level hidden states of one document: row `i` corresponds to
/// `tokens[i]` (CLS/SEP rows are stripped). Truncated to the model's
/// maximum length.
pub fn token_reps(model: &MiniPlm, tokens: &[TokenId]) -> Matrix {
    token_reps_prec(model, tokens, Precision::Exact)
}

/// [`token_reps`] at an explicit precision tier.
pub fn token_reps_prec(model: &MiniPlm, tokens: &[TokenId], precision: Precision) -> Matrix {
    let seq = model.wrap(tokens);
    let h = model.encode_prec(&seq, precision);
    h.select_rows(&(1..seq.len() - 1).collect::<Vec<_>>())
}

/// One contextualized occurrence of a token.
#[derive(Clone, Debug)]
pub struct Occurrence {
    /// Document index.
    pub doc: usize,
    /// Token position within the document.
    pub pos: usize,
    /// Hidden-state vector at that position.
    pub vector: Vec<f32>,
}

/// Contextualized vectors for up to `cap` occurrences of `token` across the
/// corpus (in document order), under the process-wide default policy.
pub fn occurrence_reps(
    model: &MiniPlm,
    corpus: &Corpus,
    token: TokenId,
    cap: usize,
) -> Vec<Occurrence> {
    occurrence_reps_with(model, corpus, token, cap, ExecPolicy::global())
}

/// Contextualized vectors for up to `cap` occurrences of `token` across the
/// corpus (in document order).
///
/// A cheap token scan first decides which documents must be encoded — only
/// documents contributing to the first `cap` occurrences — then those
/// encodes are shared across the policy's threads. Output (occurrences,
/// their order, and their vectors) is identical to the serial scan.
pub fn occurrence_reps_with(
    model: &MiniPlm,
    corpus: &Corpus,
    token: TokenId,
    cap: usize,
    policy: &ExecPolicy,
) -> Vec<Occurrence> {
    let budget = model.config.max_len - 2;
    // Plan: (doc index, in-budget positions of `token`), stopping at `cap`.
    let mut plan: Vec<(usize, Vec<usize>)> = Vec::new();
    let mut planned = 0usize;
    'scan: for (d, doc) in corpus.docs.iter().enumerate() {
        if !doc.tokens.contains(&token) {
            continue;
        }
        let mut positions = Vec::new();
        for (p, &t) in doc.tokens.iter().take(budget).enumerate() {
            if t == token {
                positions.push(p);
                planned += 1;
                if planned >= cap {
                    plan.push((d, positions));
                    break 'scan;
                }
            }
        }
        if !positions.is_empty() {
            plan.push((d, positions));
        }
    }
    let prec = policy.precision();
    let per_doc = par_map_chunks(policy, &plan, |_, (d, positions)| {
        let reps = token_reps_prec(model, &corpus.docs[*d].tokens, prec);
        positions
            .iter()
            .map(|&p| Occurrence {
                doc: *d,
                pos: p,
                vector: reps.row(p).to_vec(),
            })
            .collect::<Vec<_>>()
    });
    let mut out: Vec<Occurrence> = per_doc.into_iter().flatten().collect();
    out.truncate(cap);
    out
}

/// Contextualized vectors for **every** in-budget occurrence of each token
/// in `tokens`, grouped per token (occurrences in document order). Each
/// containing document is encoded exactly once, with the encodes shared
/// across the policy's threads — the batched variant backing ConWea's
/// sense clustering.
pub fn occurrence_reps_multi(
    model: &MiniPlm,
    corpus: &Corpus,
    tokens: &[TokenId],
    policy: &ExecPolicy,
) -> std::collections::HashMap<TokenId, Vec<Occurrence>> {
    let set: std::collections::HashSet<TokenId> = tokens.iter().copied().collect();
    let budget = model.config.max_len - 2;
    let hits: Vec<usize> = corpus
        .docs
        .iter()
        .enumerate()
        .filter(|(_, doc)| doc.tokens.iter().any(|t| set.contains(t)))
        .map(|(d, _)| d)
        .collect();
    let prec = policy.precision();
    let per_doc = par_map_chunks(policy, &hits, |_, &d| {
        let doc = &corpus.docs[d];
        let reps = token_reps_prec(model, &doc.tokens, prec);
        doc.tokens
            .iter()
            .take(budget)
            .enumerate()
            .filter(|(_, t)| set.contains(t))
            .map(|(p, &t)| {
                (
                    t,
                    Occurrence {
                        doc: d,
                        pos: p,
                        vector: reps.row(p).to_vec(),
                    },
                )
            })
            .collect::<Vec<_>>()
    });
    let mut out: std::collections::HashMap<TokenId, Vec<Occurrence>> =
        std::collections::HashMap::new();
    for (t, occ) in per_doc.into_iter().flatten() {
        out.entry(t).or_default().push(occ);
    }
    out
}

/// Entailment probability of every (document, hypothesis) pair
/// (`n_docs x n_hypotheses`), sharing documents across the policy's
/// threads. Row `i` column `c` equals
/// `model.nli_entail_prob(&corpus.docs[i].tokens, &hypotheses[c])`.
pub fn nli_entail_matrix(
    model: &MiniPlm,
    corpus: &Corpus,
    hypotheses: &[Vec<TokenId>],
    policy: &ExecPolicy,
) -> Matrix {
    let prec = policy.precision();
    let rows = par_map_chunks(policy, &corpus.docs, |_, doc| {
        hypotheses
            .iter()
            .map(|h| model.nli_entail_prob_prec(&doc.tokens, h, prec))
            .collect::<Vec<f32>>()
    });
    let refs: Vec<&[f32]> = rows.iter().map(Vec::as_slice).collect();
    if refs.is_empty() {
        Matrix::zeros(0, hypotheses.len())
    } else {
        Matrix::from_rows(&refs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlmConfig;
    use structmine_text::synth::recipes;

    #[test]
    fn doc_mean_reps_shape() {
        let corpus = recipes::pretraining_corpus(6, 1);
        let model = MiniPlm::new(PlmConfig::tiny(corpus.vocab.len()));
        let reps = doc_mean_reps(&model, &corpus);
        assert_eq!(reps.shape(), (6, model.config.d_model));
    }

    #[test]
    fn token_reps_align_with_positions() {
        let corpus = recipes::pretraining_corpus(2, 2);
        let model = MiniPlm::new(PlmConfig::tiny(corpus.vocab.len()));
        let tokens = &corpus.docs[0].tokens;
        let reps = token_reps(&model, tokens);
        let expected = tokens.len().min(model.config.max_len - 2);
        assert_eq!(reps.rows(), expected);
    }

    #[test]
    fn occurrence_reps_find_token_positions() {
        let corpus = recipes::pretraining_corpus(30, 3);
        let model = MiniPlm::new(PlmConfig::tiny(corpus.vocab.len()));
        // Pick a token guaranteed to appear: the most frequent non-special.
        let t = (5..corpus.vocab.len() as u32)
            .max_by_key(|&t| corpus.vocab.count(t))
            .unwrap();
        let occ = occurrence_reps(&model, &corpus, t, 7);
        assert!(!occ.is_empty());
        assert!(occ.len() <= 7);
        for o in &occ {
            assert_eq!(corpus.docs[o.doc].tokens[o.pos], t);
            assert_eq!(o.vector.len(), model.config.d_model);
        }
    }

    #[test]
    fn encode_corpus_matches_per_doc_helpers() {
        let corpus = recipes::pretraining_corpus(5, 4);
        let model = MiniPlm::new(PlmConfig::tiny(corpus.vocab.len()));
        let reps = model.encode_corpus(&corpus, &ExecPolicy::serial());
        assert_eq!(reps.len(), corpus.len());
        for (i, rep) in reps.iter().enumerate() {
            assert_eq!(rep.doc, i);
            let tokens = &corpus.docs[i].tokens;
            assert_eq!(rep.tokens.data(), token_reps(&model, tokens).data());
            assert_eq!(rep.mean, model.mean_embed(tokens));
        }
    }

    #[test]
    fn encode_docs_matches_encode_corpus_for_any_batching() {
        let corpus = recipes::pretraining_corpus(7, 11);
        let model = MiniPlm::new(PlmConfig::tiny(corpus.vocab.len()));
        let whole = model.encode_corpus(&corpus, &ExecPolicy::serial());
        let docs: Vec<Vec<TokenId>> = corpus.docs.iter().map(|d| d.tokens.clone()).collect();
        // Whole batch, singleton batches, and an uneven split must all
        // reproduce the corpus encode bitwise.
        let batched = model.encode_docs(&docs, &ExecPolicy::with_threads(3));
        for (a, b) in batched.iter().zip(&whole) {
            assert_eq!(a.doc, b.doc);
            assert_eq!(a.tokens.data(), b.tokens.data());
            assert_eq!(a.mean, b.mean);
        }
        for (i, doc) in docs.iter().enumerate() {
            let solo = model.encode_docs(std::slice::from_ref(doc), &ExecPolicy::serial());
            assert_eq!(solo.len(), 1);
            assert_eq!(solo[0].tokens.data(), whole[i].tokens.data());
            assert_eq!(solo[0].mean, whole[i].mean);
        }
    }

    #[test]
    fn encode_corpus_is_thread_count_invariant() {
        let corpus = recipes::pretraining_corpus(9, 5);
        let model = MiniPlm::new(PlmConfig::tiny(corpus.vocab.len()));
        let serial = model.encode_corpus(&corpus, &ExecPolicy::serial());
        for threads in [2, 3, 8] {
            let par = model.encode_corpus(&corpus, &ExecPolicy::with_threads(threads));
            assert_eq!(par.len(), serial.len());
            for (a, b) in par.iter().zip(&serial) {
                assert_eq!(a.doc, b.doc, "threads={threads}");
                assert_eq!(a.tokens.data(), b.tokens.data(), "threads={threads}");
                assert_eq!(a.mean, b.mean, "threads={threads}");
            }
        }
    }

    #[test]
    fn occurrence_reps_with_matches_serial_plan() {
        let corpus = recipes::pretraining_corpus(20, 6);
        let model = MiniPlm::new(PlmConfig::tiny(corpus.vocab.len()));
        let t = (5..corpus.vocab.len() as u32)
            .max_by_key(|&t| corpus.vocab.count(t))
            .unwrap();
        let serial = occurrence_reps_with(&model, &corpus, t, 5, &ExecPolicy::serial());
        let par = occurrence_reps_with(&model, &corpus, t, 5, &ExecPolicy::with_threads(4));
        assert_eq!(serial.len(), par.len());
        for (a, b) in serial.iter().zip(&par) {
            assert_eq!((a.doc, a.pos), (b.doc, b.pos));
            assert_eq!(a.vector, b.vector);
        }
    }

    #[test]
    fn occurrence_reps_multi_covers_all_in_budget_occurrences() {
        let corpus = recipes::pretraining_corpus(12, 7);
        let model = MiniPlm::new(PlmConfig::tiny(corpus.vocab.len()));
        let budget = model.config.max_len - 2;
        let targets: Vec<TokenId> = (5..corpus.vocab.len() as u32)
            .filter(|&t| corpus.vocab.count(t) > 0)
            .take(3)
            .collect();
        let by_token =
            occurrence_reps_multi(&model, &corpus, &targets, &ExecPolicy::with_threads(2));
        for &t in &targets {
            let expected: usize = corpus
                .docs
                .iter()
                .map(|d| d.tokens.iter().take(budget).filter(|&&x| x == t).count())
                .sum();
            let got = by_token.get(&t).map_or(0, Vec::len);
            assert_eq!(got, expected, "token {t}");
        }
    }

    #[test]
    fn nli_entail_matrix_matches_pointwise_calls() {
        let corpus = recipes::pretraining_corpus(4, 8);
        let model = MiniPlm::new(PlmConfig::tiny(corpus.vocab.len()));
        let hyps = vec![vec![6u32, 7], vec![9u32]];
        let m = nli_entail_matrix(&model, &corpus, &hyps, &ExecPolicy::with_threads(3));
        assert_eq!(m.shape(), (4, 2));
        for (i, doc) in corpus.docs.iter().enumerate() {
            for (c, h) in hyps.iter().enumerate() {
                assert_eq!(m.row(i)[c], model.nli_entail_prob(&doc.tokens, h));
            }
        }
    }
}
