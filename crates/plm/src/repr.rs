//! Corpus-level representation extraction.
//!
//! These helpers run the encoder over whole corpora and hand back the
//! matrices the methods consume: average-pooled document representations
//! (the tutorial's "vanilla BERT representations" figures, X-Class),
//! per-occurrence contextualized token vectors (ConWea's sense clustering),
//! and full token-representation matrices per document (X-Class's
//! class-oriented attention).

use crate::model::MiniPlm;
use structmine_linalg::Matrix;
use structmine_text::vocab::TokenId;
use structmine_text::Corpus;

/// Average-pooled representation of every document (`n x d`).
pub fn doc_mean_reps(model: &MiniPlm, corpus: &Corpus) -> Matrix {
    let mut out = Matrix::zeros(corpus.len(), model.config.d_model);
    for (i, doc) in corpus.docs.iter().enumerate() {
        let v = model.mean_embed(&doc.tokens);
        out.row_mut(i).copy_from_slice(&v);
    }
    out
}

/// Token-level hidden states of one document: row `i` corresponds to
/// `tokens[i]` (CLS/SEP rows are stripped). Truncated to the model's
/// maximum length.
pub fn token_reps(model: &MiniPlm, tokens: &[TokenId]) -> Matrix {
    let seq = model.wrap(tokens);
    let h = model.encode(&seq);
    h.select_rows(&(1..seq.len() - 1).collect::<Vec<_>>())
}

/// One contextualized occurrence of a token.
#[derive(Clone, Debug)]
pub struct Occurrence {
    /// Document index.
    pub doc: usize,
    /// Token position within the document.
    pub pos: usize,
    /// Hidden-state vector at that position.
    pub vector: Vec<f32>,
}

/// Contextualized vectors for up to `cap` occurrences of `token` across the
/// corpus (in document order).
pub fn occurrence_reps(
    model: &MiniPlm,
    corpus: &Corpus,
    token: TokenId,
    cap: usize,
) -> Vec<Occurrence> {
    let mut out = Vec::new();
    let budget = model.config.max_len - 2;
    'outer: for (d, doc) in corpus.docs.iter().enumerate() {
        if !doc.tokens.contains(&token) {
            continue;
        }
        let reps = token_reps(model, &doc.tokens);
        for (p, &t) in doc.tokens.iter().take(budget).enumerate() {
            if t == token {
                out.push(Occurrence { doc: d, pos: p, vector: reps.row(p).to_vec() });
                if out.len() >= cap {
                    break 'outer;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlmConfig;
    use structmine_text::synth::recipes;

    #[test]
    fn doc_mean_reps_shape() {
        let corpus = recipes::pretraining_corpus(6, 1);
        let model = MiniPlm::new(PlmConfig::tiny(corpus.vocab.len()));
        let reps = doc_mean_reps(&model, &corpus);
        assert_eq!(reps.shape(), (6, model.config.d_model));
    }

    #[test]
    fn token_reps_align_with_positions() {
        let corpus = recipes::pretraining_corpus(2, 2);
        let model = MiniPlm::new(PlmConfig::tiny(corpus.vocab.len()));
        let tokens = &corpus.docs[0].tokens;
        let reps = token_reps(&model, tokens);
        let expected = tokens.len().min(model.config.max_len - 2);
        assert_eq!(reps.rows(), expected);
    }

    #[test]
    fn occurrence_reps_find_token_positions() {
        let corpus = recipes::pretraining_corpus(30, 3);
        let model = MiniPlm::new(PlmConfig::tiny(corpus.vocab.len()));
        // Pick a token guaranteed to appear: the most frequent non-special.
        let t = (5..corpus.vocab.len() as u32)
            .max_by_key(|&t| corpus.vocab.count(t))
            .unwrap();
        let occ = occurrence_reps(&model, &corpus, t, 7);
        assert!(!occ.is_empty());
        assert!(occ.len() <= 7);
        for o in &occ {
            assert_eq!(corpus.docs[o.doc].tokens[o.pos], t);
            assert_eq!(o.vector.len(), model.config.d_model);
        }
    }
}
