//! Process-wide and on-disk caches of pretrained models.
//!
//! The benchmark harness reproduces many tables across several binaries;
//! each needs "the pretrained language model" the same way every paper
//! assumes a BERT checkpoint exists. Within a process, models are shared as
//! `Arc`s; across processes, pretraining runs through a content-addressed
//! [`ArtifactStore`] whose keys fingerprint the pretraining corpus, the
//! architecture, and the schedule — so a checkpoint can never be served
//! after any of them changes. The store writes to the system temp directory
//! (override with `STRUCTMINE_PLM_CACHE_DIR`, disable with
//! `STRUCTMINE_PLM_NO_DISK_CACHE=1`; `STRUCTMINE_NO_CACHE=1` disables all
//! caching).
//!
//! Like every [`ArtifactStore`], this one inherits the process-wide
//! `STRUCTMINE_FAULTS` plan and the DESIGN §7 failure policy: a corrupt
//! checkpoint fails closed on its checksum footer and is re-pretrained, and
//! persistent disk failure demotes the store to memory-only rather than
//! aborting a run.

use crate::artifacts::PlmCheckpoint;
use crate::config::PlmConfig;
use crate::model::MiniPlm;
use crate::pretrain::{pretrain, PretrainConfig};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use structmine_store::{ArtifactStore, Persistence, StableHash, StableHasher, Stage};
use structmine_text::synth::recipes;
use structmine_text::Corpus;

/// Cache-format version; bump when the architecture or the pretraining
/// recipe changes in a way the content fingerprint cannot see (e.g. the
/// meaning of an existing hyper-parameter).
const CACHE_VERSION: u32 = 8;

/// Pretraining quality tier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Tiny model, short schedule — unit tests.
    Test,
    /// Standard model and schedule — examples and benchmark tables.
    Standard,
}

impl Tier {
    fn corpus_docs(self) -> usize {
        match self {
            Tier::Test => 800,
            Tier::Standard => 1500,
        }
    }

    fn pretrain_config(self, seed: u64) -> PretrainConfig {
        match self {
            Tier::Test => PretrainConfig {
                steps: 3000,
                batch: 8,
                seed,
                ..Default::default()
            },
            Tier::Standard => PretrainConfig {
                steps: 4200,
                batch: 8,
                seed,
                ..Default::default()
            },
        }
    }

    fn model_config(self, vocab: usize) -> PlmConfig {
        match self {
            Tier::Test => PlmConfig {
                d_model: 32,
                n_heads: 2,
                n_layers: 2,
                d_ff: 64,
                max_len: 32,
                ..PlmConfig::tiny(vocab)
            },
            Tier::Standard => PlmConfig::standard(vocab),
        }
    }
}

/// Stage: pretrain a fresh model on the general corpus. Persisted to disk
/// only — within a process the finished [`MiniPlm`] itself is shared via
/// [`pretrained`]'s `Arc` map, so memoizing the checkpoint too would just
/// duplicate every weight.
struct PretrainPlm<'a> {
    corpus: &'a Corpus,
    model_config: PlmConfig,
    pretrain_config: PretrainConfig,
}

impl Stage for PretrainPlm<'_> {
    type Output = PlmCheckpoint;

    fn name(&self) -> &'static str {
        "plm/pretrain"
    }

    fn version(&self) -> u32 {
        CACHE_VERSION
    }

    fn persistence(&self) -> Persistence {
        Persistence::DiskOnly
    }

    fn fingerprint(&self, h: &mut StableHasher) {
        self.corpus.stable_hash(h);
        self.model_config.stable_hash(h);
        self.pretrain_config.stable_hash(h);
    }

    fn compute(&self) -> PlmCheckpoint {
        let mut model = MiniPlm::new(self.model_config);
        pretrain(&mut model, self.corpus, &self.pretrain_config);
        PlmCheckpoint::of(&model)
    }
}

type ProcessCache = HashMap<(Tier, u64), Arc<MiniPlm>>;
static CACHE: OnceLock<Mutex<ProcessCache>> = OnceLock::new();

/// The artifact store backing pretrained checkpoints. Kept separate from
/// [`structmine_store::global`] so the long-standing PLM cache environment
/// variables keep working unchanged.
pub fn plm_store() -> &'static ArtifactStore {
    static STORE: OnceLock<ArtifactStore> = OnceLock::new();
    STORE.get_or_init(|| {
        let store = if std::env::var_os("STRUCTMINE_NO_CACHE").is_some() {
            ArtifactStore::disabled()
        } else if std::env::var_os("STRUCTMINE_PLM_NO_DISK_CACHE").is_some() {
            ArtifactStore::memory_only()
        } else {
            ArtifactStore::with_dir(
                std::env::var_os("STRUCTMINE_PLM_CACHE_DIR")
                    .map(std::path::PathBuf::from)
                    .unwrap_or_else(std::env::temp_dir),
            )
        };
        // Mirror this store's counters into the run report under `plm.*`,
        // alongside the process store's `store.*`.
        store.with_scope("plm")
    })
}

/// A model pretrained on the standard-world general corpus, shared
/// process-wide and cached on disk. Deterministic per (tier, seed).
pub fn pretrained(tier: Tier, seed: u64) -> Arc<MiniPlm> {
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(model) = cache.lock().get(&(tier, seed)) {
        return Arc::clone(model);
    }
    // Build outside the lock (slow); a duplicate race only wastes one run.
    // The corpus must exist even on a disk hit: its content is part of the
    // artifact key, which is what makes a stale checkpoint unservable.
    let corpus = recipes::pretraining_corpus(tier.corpus_docs(), seed ^ 0x5eed);
    let ckpt = plm_store().run(&PretrainPlm {
        corpus: &corpus,
        model_config: tier.model_config(corpus.vocab.len()),
        pretrain_config: tier.pretrain_config(seed),
    });
    // DiskOnly stages hand back a freshly deserialized checkpoint with no
    // other owner, so the weights can be moved into the model instead of
    // deep-cloned; fall back to restore() if the Arc is ever shared.
    let arc = Arc::new(match Arc::try_unwrap(ckpt) {
        Ok(owned) => owned.into_model(),
        Err(shared) => shared.restore(),
    });
    cache
        .lock()
        .entry((tier, seed))
        .or_insert_with(|| Arc::clone(&arc));
    arc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_returns_shared_instance() {
        let a = pretrained(Tier::Test, 1);
        let b = pretrained(Tier::Test, 1);
        assert!(Arc::ptr_eq(&a, &b), "expected the cached instance");
    }

    #[test]
    fn cached_model_serves_concurrent_callers() {
        use structmine_linalg::exec::{par_map_chunks, ExecPolicy};
        let model = pretrained(Tier::Test, 1);
        let corpus = recipes::pretraining_corpus(8, 9);
        let serial: Vec<Vec<f32>> = corpus
            .docs
            .iter()
            .map(|d| model.mean_embed(&d.tokens))
            .collect();
        let par = par_map_chunks(&ExecPolicy::with_threads(4), &corpus.docs, |_, d| {
            model.mean_embed(&d.tokens)
        });
        assert_eq!(par, serial);
    }

    #[test]
    fn pretrain_stage_round_trips_through_disk() {
        // A short schedule keeps this fast; the point is the store plumbing.
        let corpus = recipes::pretraining_corpus(5, 2);
        let stage = PretrainPlm {
            corpus: &corpus,
            model_config: Tier::Test.model_config(corpus.vocab.len()),
            pretrain_config: PretrainConfig {
                steps: 3,
                ..Tier::Test.pretrain_config(42)
            },
        };
        let dir = std::env::temp_dir().join(format!("structmine-plm-cache-{}", std::process::id()));
        let cold = ArtifactStore::with_dir(&dir).run(&stage).restore();
        let warm_store = ArtifactStore::with_dir(&dir);
        let warm = warm_store.run(&stage).restore();
        let _ = std::fs::remove_dir_all(&dir);
        if !structmine_store::faults::env_active() {
            assert_eq!(warm_store.stats().disk_hits, 1);
        }
        let doc = &corpus.docs[0].tokens;
        assert_eq!(warm.mean_embed(doc), cold.mean_embed(doc));
        assert_eq!(warm.fingerprint(), cold.fingerprint());
    }

    #[test]
    fn checkpoint_round_trips_weights() {
        let corpus = recipes::pretraining_corpus(5, 1);
        let model = MiniPlm::new(PlmConfig::tiny(corpus.vocab.len()));
        let bytes = serde_json::to_vec(&PlmCheckpoint::of(&model)).unwrap();
        let back: PlmCheckpoint = serde_json::from_slice(&bytes).unwrap();
        let restored = back.restore();
        let doc = &corpus.docs[0].tokens;
        assert_eq!(model.mean_embed(doc), restored.mean_embed(doc));
    }
}
