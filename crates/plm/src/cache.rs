//! Process-wide and on-disk caches of pretrained models.
//!
//! The benchmark harness reproduces many tables across several binaries;
//! each needs "the pretrained language model" the same way every paper
//! assumes a BERT checkpoint exists. Within a process, models are shared as
//! `Arc`s; across processes, trained weights are serialized to a cache file
//! in the system temp directory (override with `STRUCTMINE_PLM_CACHE_DIR`,
//! disable with `STRUCTMINE_PLM_NO_DISK_CACHE=1`).

use crate::config::PlmConfig;
use crate::model::MiniPlm;
use crate::pretrain::{pretrain, PretrainConfig};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use structmine_linalg::Matrix;
use structmine_text::synth::recipes;

/// Cache-format version; bump when the architecture or the pretraining
/// recipe changes so stale checkpoints are ignored.
const CACHE_VERSION: u32 = 7;

/// Pretraining quality tier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Tiny model, short schedule — unit tests.
    Test,
    /// Standard model and schedule — examples and benchmark tables.
    Standard,
}

impl Tier {
    fn name(self) -> &'static str {
        match self {
            Tier::Test => "test",
            Tier::Standard => "standard",
        }
    }

    fn corpus_docs(self) -> usize {
        match self {
            Tier::Test => 800,
            Tier::Standard => 1500,
        }
    }

    fn pretrain_config(self, seed: u64) -> PretrainConfig {
        match self {
            Tier::Test => PretrainConfig {
                steps: 3000,
                batch: 8,
                seed,
                ..Default::default()
            },
            Tier::Standard => PretrainConfig {
                steps: 4200,
                batch: 8,
                seed,
                ..Default::default()
            },
        }
    }

    fn model_config(self, vocab: usize) -> PlmConfig {
        match self {
            Tier::Test => PlmConfig {
                d_model: 32,
                n_heads: 2,
                n_layers: 2,
                d_ff: 64,
                max_len: 32,
                ..PlmConfig::tiny(vocab)
            },
            Tier::Standard => PlmConfig::standard(vocab),
        }
    }
}

type ProcessCache = HashMap<(Tier, u64), Arc<MiniPlm>>;
static CACHE: OnceLock<Mutex<ProcessCache>> = OnceLock::new();

/// A model pretrained on the standard-world general corpus, shared
/// process-wide and cached on disk. Deterministic per (tier, seed).
pub fn pretrained(tier: Tier, seed: u64) -> Arc<MiniPlm> {
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(model) = cache.lock().get(&(tier, seed)) {
        return Arc::clone(model);
    }
    // Build outside the lock (slow); a duplicate race only wastes one run.
    let model = load_from_disk(tier, seed).unwrap_or_else(|| {
        let model = train(tier, seed);
        save_to_disk(tier, seed, &model);
        model
    });
    let arc = Arc::new(model);
    cache
        .lock()
        .entry((tier, seed))
        .or_insert_with(|| Arc::clone(&arc));
    arc
}

fn train(tier: Tier, seed: u64) -> MiniPlm {
    let corpus = recipes::pretraining_corpus(tier.corpus_docs(), seed ^ 0x5eed);
    let mut model = MiniPlm::new(tier.model_config(corpus.vocab.len()));
    pretrain(&mut model, &corpus, &tier.pretrain_config(seed));
    model
}

fn cache_dir() -> PathBuf {
    std::env::var_os("STRUCTMINE_PLM_CACHE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir)
}

fn cache_path_in(dir: &std::path::Path, tier: Tier, seed: u64) -> PathBuf {
    dir.join(format!(
        "structmine-plm-v{CACHE_VERSION}-{}-{seed}.json",
        tier.name()
    ))
}

fn disk_cache_disabled() -> bool {
    std::env::var_os("STRUCTMINE_PLM_NO_DISK_CACHE").is_some()
}

#[derive(serde::Serialize, serde::Deserialize)]
struct Checkpoint {
    version: u32,
    config: PlmConfig,
    weights: Vec<Matrix>,
}

fn load_from_disk(tier: Tier, seed: u64) -> Option<MiniPlm> {
    if disk_cache_disabled() {
        return None;
    }
    load_from_dir(&cache_dir(), tier, seed)
}

fn load_from_dir(dir: &std::path::Path, tier: Tier, seed: u64) -> Option<MiniPlm> {
    let bytes = std::fs::read(cache_path_in(dir, tier, seed)).ok()?;
    let ckpt: Checkpoint = serde_json::from_slice(&bytes).ok()?;
    if ckpt.version != CACHE_VERSION {
        return None;
    }
    // The vocabulary (and thus the shapes) must match what we would train.
    let expected = tier.model_config(
        recipes::pretraining_corpus(1, 0).vocab.len(), // vocab is world-determined
    );
    if ckpt.config.vocab_size != expected.vocab_size || ckpt.config.d_model != expected.d_model {
        return None;
    }
    let mut model = MiniPlm::new(ckpt.config);
    if model.export_weights().len() != ckpt.weights.len() {
        return None;
    }
    model.import_weights(ckpt.weights);
    Some(model)
}

fn save_to_disk(tier: Tier, seed: u64, model: &MiniPlm) {
    if disk_cache_disabled() {
        return;
    }
    save_to_dir(&cache_dir(), tier, seed, model);
}

fn save_to_dir(dir: &std::path::Path, tier: Tier, seed: u64, model: &MiniPlm) {
    let ckpt = Checkpoint {
        version: CACHE_VERSION,
        config: model.config,
        weights: model.export_weights(),
    };
    if let Ok(bytes) = serde_json::to_vec(&ckpt) {
        // Write to a private temp file, then atomically rename into place:
        // a reader never observes a torn checkpoint, and the slot always
        // holds some complete checkpoint no matter how many writers race.
        // The temp name carries pid *and* a process-local sequence number so
        // concurrent threads of one process can't interleave writes either.
        static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let path = cache_path_in(dir, tier, seed);
        let tmp = path.with_extension(format!("tmp-{}-{seq}", std::process::id()));
        if std::fs::write(&tmp, bytes).is_ok() {
            let _ = std::fs::rename(&tmp, &path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_returns_shared_instance() {
        let a = pretrained(Tier::Test, 1);
        let b = pretrained(Tier::Test, 1);
        assert!(Arc::ptr_eq(&a, &b), "expected the cached instance");
    }

    #[test]
    fn cached_model_serves_concurrent_callers() {
        use structmine_linalg::exec::{par_map_chunks, ExecPolicy};
        let model = pretrained(Tier::Test, 1);
        let corpus = recipes::pretraining_corpus(8, 9);
        let serial: Vec<Vec<f32>> = corpus
            .docs
            .iter()
            .map(|d| model.mean_embed(&d.tokens))
            .collect();
        let par = par_map_chunks(&ExecPolicy::with_threads(4), &corpus.docs, |_, d| {
            model.mean_embed(&d.tokens)
        });
        assert_eq!(par, serial);
    }

    #[test]
    fn concurrent_saves_never_tear_the_checkpoint() {
        let corpus = recipes::pretraining_corpus(5, 2);
        let model = MiniPlm::new(Tier::Test.model_config(corpus.vocab.len()));
        let dir =
            std::env::temp_dir().join(format!("structmine-cache-race-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..5 {
                        save_to_dir(&dir, Tier::Test, 42, &model);
                    }
                });
            }
        });
        // Whatever writer won, the slot must hold a complete checkpoint.
        let restored = load_from_dir(&dir, Tier::Test, 42);
        let _ = std::fs::remove_dir_all(&dir);
        let restored = restored.expect("checkpoint must parse after racing writers");
        let doc = &corpus.docs[0].tokens;
        assert_eq!(model.mean_embed(doc), restored.mean_embed(doc));
    }

    #[test]
    fn checkpoint_round_trips_weights() {
        let corpus = recipes::pretraining_corpus(5, 1);
        let model = MiniPlm::new(PlmConfig::tiny(corpus.vocab.len()));
        let ckpt = Checkpoint {
            version: CACHE_VERSION,
            config: model.config,
            weights: model.export_weights(),
        };
        let bytes = serde_json::to_vec(&ckpt).unwrap();
        let back: Checkpoint = serde_json::from_slice(&bytes).unwrap();
        let mut restored = MiniPlm::new(back.config);
        restored.import_weights(back.weights);
        let doc = &corpus.docs[0].tokens;
        assert_eq!(model.mean_embed(doc), restored.mean_embed(doc));
    }
}
