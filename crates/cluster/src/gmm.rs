//! Diagonal-covariance Gaussian mixture model fitted by EM.
//!
//! X-Class uses a GMM seeded on prior class means so that "cluster c" stays
//! aligned with "class c" throughout EM; the posterior responsibilities then
//! give a confidence for selecting documents to train the final classifier.

use structmine_linalg::{stats, vector, Matrix};

/// GMM hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct GmmConfig {
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Convergence threshold on mean log-likelihood improvement.
    pub tol: f32,
    /// Variance floor (numerical stability).
    pub var_floor: f32,
}

impl Default for GmmConfig {
    fn default() -> Self {
        GmmConfig {
            max_iters: 100,
            tol: 1e-4,
            var_floor: 1e-4,
        }
    }
}

/// A fitted diagonal-covariance Gaussian mixture.
#[derive(Clone, Debug)]
pub struct Gmm {
    /// `k x d` component means.
    pub means: Matrix,
    /// `k x d` per-dimension variances.
    pub variances: Matrix,
    /// Mixing weights (length k).
    pub weights: Vec<f32>,
    /// Mean log-likelihood of the training data at convergence.
    pub log_likelihood: f32,
    /// EM iterations executed.
    pub iterations: usize,
}

impl Gmm {
    /// Fit a `k`-component mixture to the rows of `data`, starting from the
    /// provided means (`k x d`) — e.g. class-oriented prior representations.
    pub fn fit(data: &Matrix, init_means: &Matrix, cfg: &GmmConfig) -> Gmm {
        let n = data.rows();
        let d = data.cols();
        let k = init_means.rows();
        assert_eq!(init_means.cols(), d, "init mean dim mismatch");
        assert!(n >= k, "need at least k rows");

        let mut means = init_means.clone();
        // Initial variance: global per-dimension variance.
        let gmean = data.col_mean();
        let mut gvar = vec![0.0f32; d];
        for row in data.iter_rows() {
            for (v, (&x, &m)) in gvar.iter_mut().zip(row.iter().zip(&gmean)) {
                *v += (x - m) * (x - m);
            }
        }
        for v in &mut gvar {
            *v = (*v / n as f32).max(cfg.var_floor);
        }
        let mut variances = Matrix::zeros(k, d);
        for c in 0..k {
            variances.row_mut(c).copy_from_slice(&gvar);
        }
        let mut weights = vec![1.0 / k as f32; k];

        let mut prev_ll = f32::NEG_INFINITY;
        let mut resp = Matrix::zeros(n, k);
        let mut iterations = 0;
        let mut log_likelihood = f32::NEG_INFINITY;
        for it in 0..cfg.max_iters {
            iterations = it + 1;
            // E-step.
            let mut ll = 0.0f32;
            for i in 0..n {
                let mut logp = vec![0.0f32; k];
                for c in 0..k {
                    logp[c] = weights[c].max(1e-12).ln()
                        + diag_log_pdf(data.row(i), means.row(c), variances.row(c));
                }
                let lse = stats::log_sum_exp(&logp);
                ll += lse;
                for (c, &lp) in logp.iter().enumerate() {
                    resp.set(i, c, (lp - lse).exp());
                }
            }
            log_likelihood = ll / n as f32;

            // M-step.
            for (c, w) in weights.iter_mut().enumerate() {
                let nk: f32 = (0..n).map(|i| resp.get(i, c)).sum();
                let nk_safe = nk.max(1e-8);
                *w = nk / n as f32;
                let mut mean = vec![0.0f32; d];
                for i in 0..n {
                    vector::axpy(&mut mean, resp.get(i, c), data.row(i));
                }
                vector::scale(&mut mean, 1.0 / nk_safe);
                let mut var = vec![0.0f32; d];
                for i in 0..n {
                    let r = resp.get(i, c);
                    for (v, (&x, &m)) in var.iter_mut().zip(data.row(i).iter().zip(&mean)) {
                        *v += r * (x - m) * (x - m);
                    }
                }
                for v in &mut var {
                    *v = (*v / nk_safe).max(cfg.var_floor);
                }
                means.row_mut(c).copy_from_slice(&mean);
                variances.row_mut(c).copy_from_slice(&var);
            }

            if (log_likelihood - prev_ll).abs() < cfg.tol {
                break;
            }
            prev_ll = log_likelihood;
        }
        Gmm {
            means,
            variances,
            weights,
            log_likelihood,
            iterations,
        }
    }

    /// Posterior responsibilities (`n x k`) for new data.
    pub fn responsibilities(&self, data: &Matrix) -> Matrix {
        let n = data.rows();
        let k = self.means.rows();
        let mut resp = Matrix::zeros(n, k);
        for i in 0..n {
            let mut logp = vec![0.0f32; k];
            for (c, lp) in logp.iter_mut().enumerate() {
                *lp = self.weights[c].max(1e-12).ln()
                    + diag_log_pdf(data.row(i), self.means.row(c), self.variances.row(c));
            }
            let lse = stats::log_sum_exp(&logp);
            for (c, &lp) in logp.iter().enumerate() {
                resp.set(i, c, (lp - lse).exp());
            }
        }
        resp
    }

    /// Hard assignments by maximum responsibility.
    pub fn predict(&self, data: &Matrix) -> Vec<usize> {
        let r = self.responsibilities(data);
        (0..r.rows())
            .map(|i| vector::argmax(r.row(i)).unwrap_or(0))
            .collect()
    }
}

fn diag_log_pdf(x: &[f32], mean: &[f32], var: &[f32]) -> f32 {
    let mut lp = 0.0f32;
    for ((xv, mv), vv) in x.iter().zip(mean).zip(var) {
        let diff = xv - mv;
        lp += -0.5 * (diff * diff / vv + vv.ln() + (2.0 * std::f32::consts::PI).ln());
    }
    lp
}

#[cfg(test)]
mod tests {
    use super::*;
    use structmine_linalg::rng as lrng;

    fn blobs(per: usize, centers: &[[f32; 2]], spread: f32, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = lrng::seeded(seed);
        let n = per * centers.len();
        let mut m = Matrix::zeros(n, 2);
        let mut gold = Vec::with_capacity(n);
        for (c, center) in centers.iter().enumerate() {
            for i in 0..per {
                let r = c * per + i;
                m.set(r, 0, center[0] + lrng::gaussian(&mut rng) * spread);
                m.set(r, 1, center[1] + lrng::gaussian(&mut rng) * spread);
                gold.push(c);
            }
        }
        (m, gold)
    }

    #[test]
    fn em_recovers_blob_means_and_assignments() {
        let (data, gold) = blobs(100, &[[0.0, 0.0], [6.0, 6.0]], 0.6, 1);
        let init = Matrix::from_rows(&[&[1.0, 1.0], &[5.0, 5.0]]);
        let gmm = Gmm::fit(&data, &init, &GmmConfig::default());
        let pred = gmm.predict(&data);
        let acc = pred.iter().zip(&gold).filter(|(a, b)| a == b).count() as f32 / 200.0;
        assert!(acc > 0.99, "acc {acc}");
        assert!(vector::sq_dist(gmm.means.row(0), &[0.0, 0.0]) < 0.1);
        assert!(vector::sq_dist(gmm.means.row(1), &[6.0, 6.0]) < 0.1);
    }

    #[test]
    fn seeding_on_prior_means_preserves_component_identity() {
        // X-Class invariant: component c, seeded at class c's mean, stays on
        // class c even after EM.
        let (data, gold) = blobs(80, &[[0.0, 0.0], [4.0, 0.0], [0.0, 4.0]], 0.5, 2);
        let init = Matrix::from_rows(&[&[0.2, 0.1], &[3.8, 0.2], &[0.1, 3.9]]);
        let gmm = Gmm::fit(&data, &init, &GmmConfig::default());
        let pred = gmm.predict(&data);
        let acc = pred.iter().zip(&gold).filter(|(a, b)| a == b).count() as f32 / gold.len() as f32;
        assert!(acc > 0.98, "identity-preserving acc {acc}");
    }

    #[test]
    fn responsibilities_are_distributions() {
        let (data, _) = blobs(50, &[[0.0, 0.0], [3.0, 3.0]], 0.5, 3);
        let init = Matrix::from_rows(&[&[0.0, 0.0], &[3.0, 3.0]]);
        let gmm = Gmm::fit(&data, &init, &GmmConfig::default());
        let r = gmm.responsibilities(&data);
        for i in 0..r.rows() {
            let sum: f32 = r.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn log_likelihood_is_monotone_enough_to_converge() {
        let (data, _) = blobs(60, &[[0.0, 0.0], [5.0, 5.0]], 0.7, 4);
        let init = Matrix::from_rows(&[&[1.0, 0.0], &[4.0, 4.0]]);
        let gmm = Gmm::fit(
            &data,
            &init,
            &GmmConfig {
                max_iters: 200,
                ..Default::default()
            },
        );
        assert!(gmm.iterations < 200, "did not converge");
        assert!(gmm.log_likelihood.is_finite());
    }

    #[test]
    fn weights_sum_to_one() {
        let (data, _) = blobs(40, &[[0.0, 0.0], [2.0, 2.0]], 0.4, 5);
        let init = Matrix::from_rows(&[&[0.0, 0.0], &[2.0, 2.0]]);
        let gmm = Gmm::fit(&data, &init, &GmmConfig::default());
        let sum: f32 = gmm.weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
    }
}
