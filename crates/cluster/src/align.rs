//! Cluster/class alignment: confusion matrices and the Hungarian algorithm.

/// Count matrix `m[cluster][class]` from two parallel label sequences.
pub fn confusion_matrix(
    pred: &[usize],
    gold: &[usize],
    k_pred: usize,
    k_gold: usize,
) -> Vec<Vec<usize>> {
    assert_eq!(pred.len(), gold.len());
    let mut m = vec![vec![0usize; k_gold]; k_pred];
    for (&p, &g) in pred.iter().zip(gold) {
        m[p][g] += 1;
    }
    m
}

/// Maximum-weight perfect matching on a square score matrix via the
/// Jonker–Volgenant style augmenting-path Hungarian algorithm (O(n^3)).
/// Returns `assignment[row] = column`.
pub fn hungarian_max(scores: &[Vec<f32>]) -> Vec<usize> {
    let n = scores.len();
    assert!(
        scores.iter().all(|r| r.len() == n),
        "score matrix must be square"
    );
    if n == 0 {
        return Vec::new();
    }
    // Convert to cost minimization.
    let max_val = scores
        .iter()
        .flat_map(|r| r.iter())
        .cloned()
        .fold(f32::NEG_INFINITY, f32::max);
    let cost: Vec<Vec<f64>> = scores
        .iter()
        .map(|r| r.iter().map(|&v| (max_val - v) as f64).collect())
        .collect();

    // 1-indexed potentials, standard JV formulation.
    let inf = f64::INFINITY;
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; n + 1];
    let mut p = vec![0usize; n + 1]; // p[col] = row matched to col
    let mut way = vec![0usize; n + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=n {
                if !used[j] {
                    let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    let mut assignment = vec![0usize; n];
    for j in 1..=n {
        if p[j] != 0 {
            assignment[p[j] - 1] = j - 1;
        }
    }
    assignment
}

/// Map cluster ids to class ids by Hungarian matching on the confusion
/// matrix (requires equal counts). Returns `mapping[cluster] = class`.
pub fn map_clusters_to_classes(pred: &[usize], gold: &[usize], k: usize) -> Vec<usize> {
    let cm = confusion_matrix(pred, gold, k, k);
    let scores: Vec<Vec<f32>> = cm
        .iter()
        .map(|row| row.iter().map(|&c| c as f32).collect())
        .collect();
    hungarian_max(&scores)
}

/// Accuracy of cluster assignments after optimal cluster→class mapping
/// ("clustering accuracy" in the X-Class paper).
pub fn aligned_accuracy(pred: &[usize], gold: &[usize], k: usize) -> f32 {
    if pred.is_empty() {
        return 0.0;
    }
    let mapping = map_clusters_to_classes(pred, gold, k);
    let correct = pred
        .iter()
        .zip(gold)
        .filter(|(&p, &g)| mapping[p] == g)
        .count();
    correct as f32 / pred.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn hungarian_solves_identity() {
        let scores = vec![
            vec![10.0, 1.0, 1.0],
            vec![1.0, 10.0, 1.0],
            vec![1.0, 1.0, 10.0],
        ];
        assert_eq!(hungarian_max(&scores), vec![0, 1, 2]);
    }

    #[test]
    fn hungarian_solves_permutation() {
        let scores = vec![
            vec![1.0, 9.0, 2.0],
            vec![8.0, 1.0, 3.0],
            vec![2.0, 3.0, 9.0],
        ];
        assert_eq!(hungarian_max(&scores), vec![1, 0, 2]);
    }

    #[test]
    fn hungarian_handles_tradeoffs() {
        // Greedy would pick (0,0)=9 then be forced to (1,1)=1, total 10;
        // optimal is (0,1)=8 + (1,0)=7 = 15.
        let scores = vec![vec![9.0, 8.0], vec![7.0, 1.0]];
        assert_eq!(hungarian_max(&scores), vec![1, 0]);
    }

    #[test]
    fn aligned_accuracy_with_permuted_clusters() {
        // Perfect clustering, permuted ids.
        let gold = vec![0, 0, 1, 1, 2, 2];
        let pred = vec![2, 2, 0, 0, 1, 1];
        assert!((aligned_accuracy(&pred, &gold, 3) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn aligned_accuracy_with_noise() {
        let gold = vec![0, 0, 0, 0, 1, 1, 1, 1];
        // cluster 1 ~ class 0 (3 hits), cluster 0 ~ class 1 (4 hits), one error.
        let pred = vec![1, 1, 1, 0, 0, 0, 0, 0];
        let acc = aligned_accuracy(&pred, &gold, 2);
        assert!((acc - 7.0 / 8.0).abs() < 1e-6);
    }

    #[test]
    fn confusion_matrix_counts() {
        let cm = confusion_matrix(&[0, 0, 1], &[1, 1, 0], 2, 2);
        assert_eq!(cm, vec![vec![0, 2], vec![1, 0]]);
    }

    proptest! {
        /// Hungarian must always produce a permutation, and its total score
        /// must be at least as good as the identity assignment.
        #[test]
        fn hungarian_returns_optimal_permutation(
            flat in proptest::collection::vec(0.0f32..10.0, 16)
        ) {
            let scores: Vec<Vec<f32>> = flat.chunks(4).map(|c| c.to_vec()).collect();
            let a = hungarian_max(&scores);
            let mut seen = [false; 4];
            for &col in &a {
                prop_assert!(!seen[col]);
                seen[col] = true;
            }
            let total: f32 = a.iter().enumerate().map(|(r, &c)| scores[r][c]).sum();
            let identity: f32 = (0..4).map(|i| scores[i][i]).sum();
            prop_assert!(total >= identity - 1e-3);
        }
    }
}
