//! Clustering quality measures: purity, NMI, silhouette.

use structmine_linalg::{vector, Matrix};

/// Purity: fraction of points in their cluster's majority class.
pub fn purity(pred: &[usize], gold: &[usize]) -> f32 {
    if pred.is_empty() {
        return 0.0;
    }
    let k_pred = pred.iter().max().map_or(0, |&m| m + 1);
    let k_gold = gold.iter().max().map_or(0, |&m| m + 1);
    let cm = crate::align::confusion_matrix(pred, gold, k_pred, k_gold);
    let correct: usize = cm
        .iter()
        .map(|row| row.iter().max().copied().unwrap_or(0))
        .sum();
    correct as f32 / pred.len() as f32
}

/// Normalized mutual information between two labelings (0..=1).
pub fn nmi(a: &[usize], b: &[usize]) -> f32 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    if n == 0 {
        return 0.0;
    }
    let ka = a.iter().max().map_or(0, |&m| m + 1);
    let kb = b.iter().max().map_or(0, |&m| m + 1);
    let joint = crate::align::confusion_matrix(a, b, ka, kb);
    let nf = n as f32;
    let pa: Vec<f32> = (0..ka)
        .map(|i| joint[i].iter().sum::<usize>() as f32 / nf)
        .collect();
    let pb: Vec<f32> = (0..kb)
        .map(|j| (0..ka).map(|i| joint[i][j]).sum::<usize>() as f32 / nf)
        .collect();
    let mut mi = 0.0f32;
    for i in 0..ka {
        for j in 0..kb {
            let pij = joint[i][j] as f32 / nf;
            if pij > 0.0 {
                mi += pij * (pij / (pa[i] * pb[j])).ln();
            }
        }
    }
    let ha: f32 = -pa
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| p * p.ln())
        .sum::<f32>();
    let hb: f32 = -pb
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| p * p.ln())
        .sum::<f32>();
    let denom = (ha * hb).sqrt();
    if denom <= 0.0 {
        if mi.abs() < 1e-9 {
            1.0 // both labelings constant: identical partitions
        } else {
            0.0
        }
    } else {
        mi / denom
    }
}

/// Mean silhouette coefficient of a clustering (Euclidean).
/// Clusters with a single member contribute 0.
pub fn silhouette(data: &Matrix, assignments: &[usize]) -> f32 {
    let n = data.rows();
    assert_eq!(assignments.len(), n);
    if n < 2 {
        return 0.0;
    }
    let k = assignments.iter().max().map_or(0, |&m| m + 1);
    let mut total = 0.0f32;
    for i in 0..n {
        // Mean distance to own cluster and nearest other cluster.
        let mut sums = vec![0.0f32; k];
        let mut counts = vec![0usize; k];
        for j in 0..n {
            if i == j {
                continue;
            }
            let d = vector::sq_dist(data.row(i), data.row(j)).sqrt();
            sums[assignments[j]] += d;
            counts[assignments[j]] += 1;
        }
        let own = assignments[i];
        if counts[own] == 0 {
            continue; // singleton cluster
        }
        let a = sums[own] / counts[own] as f32;
        let mut b = f32::INFINITY;
        for c in 0..k {
            if c != own && counts[c] > 0 {
                b = b.min(sums[c] / counts[c] as f32);
            }
        }
        if b.is_finite() {
            total += (b - a) / a.max(b);
        }
    }
    total / n as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn purity_of_perfect_clustering_is_one() {
        assert!((purity(&[1, 1, 0, 0], &[0, 0, 1, 1]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn purity_of_random_two_way_split_is_half_or_more() {
        let p = purity(&[0, 1, 0, 1], &[0, 0, 1, 1]);
        assert!(p >= 0.5);
    }

    #[test]
    fn nmi_of_identical_partitions_is_one() {
        let a = vec![0, 0, 1, 1, 2, 2];
        assert!((nmi(&a, &a) - 1.0).abs() < 1e-5);
        // Permutation-invariant.
        let b = vec![2, 2, 0, 0, 1, 1];
        assert!((nmi(&a, &b) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn nmi_of_independent_partitions_is_near_zero() {
        let a = vec![0, 0, 1, 1, 0, 0, 1, 1];
        let b = vec![0, 1, 0, 1, 0, 1, 0, 1];
        assert!(nmi(&a, &b).abs() < 1e-5);
    }

    #[test]
    fn silhouette_high_for_separated_blobs() {
        let data = Matrix::from_rows(&[
            &[0.0, 0.0],
            &[0.1, 0.0],
            &[0.0, 0.1],
            &[9.0, 9.0],
            &[9.1, 9.0],
            &[9.0, 9.1],
        ]);
        let s = silhouette(&data, &[0, 0, 0, 1, 1, 1]);
        assert!(s > 0.9, "silhouette {s}");
        // Bad clustering scores much lower.
        let bad = silhouette(&data, &[0, 1, 0, 1, 0, 1]);
        assert!(bad < s - 0.5, "bad {bad} vs good {s}");
    }
}
