//! Clustering and alignment primitives.
//!
//! X-Class clusters class-oriented document representations with a Gaussian
//! mixture seeded on prior class means; ConWea clusters contextualized
//! occurrences of each seed word to split senses; the "vanilla BERT
//! representations" figure clusters average-pooled embeddings with k-means
//! and aligns clusters to classes with the Hungarian algorithm. This crate
//! provides those pieces: [`kmeans`], [`gmm`], [`align`] (Hungarian +
//! confusion matrices) and quality measures in [`quality`].

pub mod align;
pub mod gmm;
pub mod kmeans;
pub mod quality;

pub use align::{confusion_matrix, hungarian_max, map_clusters_to_classes};
pub use gmm::{Gmm, GmmConfig};
pub use kmeans::{kmeans, spherical_kmeans, KMeansResult};
