//! K-means and spherical k-means (cosine) clustering.

use structmine_linalg::{rng as lrng, vector, Matrix};

/// Result of a k-means run.
#[derive(Clone, Debug)]
pub struct KMeansResult {
    /// Cluster assignment per row of the input.
    pub assignments: Vec<usize>,
    /// `k x d` centroid matrix.
    pub centroids: Matrix,
    /// Final within-cluster sum of squared distances (or 1 - cosine for the
    /// spherical variant).
    pub inertia: f32,
    /// Iterations executed.
    pub iterations: usize,
}

/// Standard Euclidean k-means with k-means++-style seeding.
///
/// `init_centroids` overrides seeding with explicit starting centroids (used
/// by X-Class to seed clusters on class representations).
pub fn kmeans(
    data: &Matrix,
    k: usize,
    seed: u64,
    max_iters: usize,
    init_centroids: Option<&Matrix>,
) -> KMeansResult {
    run(data, k, seed, max_iters, init_centroids, false)
}

/// Spherical k-means: rows and centroids are L2-normalized and similarity is
/// cosine. Appropriate for embedding spaces.
pub fn spherical_kmeans(
    data: &Matrix,
    k: usize,
    seed: u64,
    max_iters: usize,
    init_centroids: Option<&Matrix>,
) -> KMeansResult {
    let mut normalized = data.clone();
    normalized.normalize_rows();
    run(&normalized, k, seed, max_iters, init_centroids, true)
}

fn run(
    data: &Matrix,
    k: usize,
    seed: u64,
    max_iters: usize,
    init_centroids: Option<&Matrix>,
    spherical: bool,
) -> KMeansResult {
    let n = data.rows();
    let d = data.cols();
    assert!(k >= 1, "k must be positive");
    assert!(n >= k, "need at least k rows");

    let mut centroids = match init_centroids {
        Some(c) => {
            assert_eq!(c.shape(), (k, d), "init centroid shape mismatch");
            let mut c = c.clone();
            if spherical {
                c.normalize_rows();
            }
            c
        }
        None => plus_plus_seed(data, k, seed),
    };

    let mut assignments = vec![0usize; n];
    let mut inertia = f32::INFINITY;
    let mut iterations = 0;
    for it in 0..max_iters {
        iterations = it + 1;
        // Assign.
        let mut new_inertia = 0.0f32;
        for (i, slot) in assignments.iter_mut().enumerate() {
            let row = data.row(i);
            let mut best = 0usize;
            let mut best_cost = f32::INFINITY;
            for c in 0..k {
                let cost = if spherical {
                    1.0 - vector::cosine(row, centroids.row(c))
                } else {
                    vector::sq_dist(row, centroids.row(c))
                };
                if cost < best_cost {
                    best_cost = cost;
                    best = c;
                }
            }
            *slot = best;
            new_inertia += best_cost;
        }
        // Update.
        let mut sums = Matrix::zeros(k, d);
        let mut counts = vec![0usize; k];
        for (i, &a) in assignments.iter().enumerate() {
            for (s, &v) in sums.row_mut(a).iter_mut().zip(data.row(i)) {
                *s += v;
            }
            counts[a] += 1;
        }
        for (c, &count) in counts.iter().enumerate() {
            if count == 0 {
                // Re-seed an empty cluster on the farthest point.
                let far = (0..n)
                    .max_by(|&a, &b| {
                        let da = vector::sq_dist(data.row(a), centroids.row(assignments[a]));
                        let db = vector::sq_dist(data.row(b), centroids.row(assignments[b]));
                        da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .unwrap_or(0);
                centroids.row_mut(c).copy_from_slice(data.row(far));
            } else {
                let inv = 1.0 / count as f32;
                for (t, &s) in centroids.row_mut(c).iter_mut().zip(sums.row(c)) {
                    *t = s * inv;
                }
            }
            if spherical {
                vector::normalize(centroids.row_mut(c));
            }
        }
        if (inertia - new_inertia).abs() < 1e-6 * (1.0 + inertia.abs().min(1e9)) {
            inertia = new_inertia;
            break;
        }
        inertia = new_inertia;
    }
    KMeansResult {
        assignments,
        centroids,
        inertia,
        iterations,
    }
}

/// k-means++ seeding.
fn plus_plus_seed(data: &Matrix, k: usize, seed: u64) -> Matrix {
    let mut rng = lrng::seeded(seed);
    let n = data.rows();
    let mut centroids = Matrix::zeros(k, data.cols());
    let first = lrng::sample_categorical(&mut rng, &vec![1.0; n]);
    centroids.row_mut(0).copy_from_slice(data.row(first));
    let mut min_dist: Vec<f32> = (0..n)
        .map(|i| vector::sq_dist(data.row(i), centroids.row(0)))
        .collect();
    for c in 1..k {
        let pick = lrng::sample_categorical(&mut rng, &min_dist);
        centroids.row_mut(c).copy_from_slice(data.row(pick));
        for (i, md) in min_dist.iter_mut().enumerate() {
            let d = vector::sq_dist(data.row(i), centroids.row(c));
            if d < *md {
                *md = d;
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;
    use structmine_linalg::rng as lrng;

    fn blobs(per: usize, centers: &[[f32; 2]], spread: f32, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = lrng::seeded(seed);
        let n = per * centers.len();
        let mut m = Matrix::zeros(n, 2);
        let mut gold = Vec::with_capacity(n);
        for (c, center) in centers.iter().enumerate() {
            for i in 0..per {
                let r = c * per + i;
                m.set(r, 0, center[0] + lrng::gaussian(&mut rng) * spread);
                m.set(r, 1, center[1] + lrng::gaussian(&mut rng) * spread);
                gold.push(c);
            }
        }
        (m, gold)
    }

    fn purity(assignments: &[usize], gold: &[usize], k: usize) -> f32 {
        let mut counts = vec![vec![0usize; k]; k];
        for (&a, &g) in assignments.iter().zip(gold) {
            counts[a][g] += 1;
        }
        let correct: usize = counts
            .iter()
            .map(|row| row.iter().max().copied().unwrap_or(0))
            .sum();
        correct as f32 / assignments.len() as f32
    }

    #[test]
    fn kmeans_recovers_separated_blobs() {
        let (data, gold) = blobs(60, &[[0.0, 0.0], [8.0, 0.0], [0.0, 8.0]], 0.5, 1);
        let r = kmeans(&data, 3, 2, 100, None);
        assert!(purity(&r.assignments, &gold, 3) > 0.98);
        assert!(r.iterations >= 1);
    }

    #[test]
    fn explicit_init_is_respected() {
        let (data, gold) = blobs(40, &[[0.0, 0.0], [10.0, 10.0]], 0.3, 3);
        let init = Matrix::from_rows(&[&[0.0, 0.0], &[10.0, 10.0]]);
        let r = kmeans(&data, 2, 0, 50, Some(&init));
        // With init at the true centers, cluster ids must match gold exactly.
        assert_eq!(&r.assignments[..], &gold[..]);
    }

    #[test]
    fn spherical_kmeans_clusters_by_direction() {
        // Two clusters distinguished by direction, not magnitude.
        let mut rng = lrng::seeded(5);
        let mut rows = Vec::new();
        let mut gold = Vec::new();
        for i in 0..100 {
            let scale = 1.0 + (i % 7) as f32;
            let (x, y) = if i % 2 == 0 { (1.0, 0.05) } else { (0.05, 1.0) };
            rows.push(vec![
                x * scale + lrng::gaussian(&mut rng) * 0.02,
                y * scale + lrng::gaussian(&mut rng) * 0.02,
            ]);
            gold.push(i % 2);
        }
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let data = Matrix::from_rows(&refs);
        let r = spherical_kmeans(&data, 2, 1, 50, None);
        assert!(purity(&r.assignments, &gold, 2) > 0.98);
        // Centroids are unit norm.
        for c in 0..2 {
            assert!((vector::norm(r.centroids.row(c)) - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (data, _) = blobs(30, &[[0.0, 0.0], [5.0, 5.0]], 0.4, 7);
        let a = kmeans(&data, 2, 9, 50, None);
        let b = kmeans(&data, 2, 9, 50, None);
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let data = Matrix::from_rows(&[&[0.0, 0.0], &[5.0, 0.0], &[0.0, 5.0]]);
        let r = kmeans(&data, 3, 1, 20, None);
        assert!(r.inertia < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least k rows")]
    fn too_few_rows_panics() {
        let data = Matrix::zeros(2, 2);
        kmeans(&data, 3, 1, 10, None);
    }
}
