//! Sharded multi-process execution (DESIGN §12).
//!
//! The determinism contract says output bytes are identical for any thread
//! count; this crate generalizes it across *process* boundaries. A
//! [`Supervisor`] splits work into index-ordered shards, spawns one worker
//! process per shard (the existing binaries re-entered via a `worker` mode,
//! see [`spec`]), and merges results in shard-index order — so 1-way and
//! 4-way runs produce byte-identical output. The shared artifact store is
//! the coordination substrate: workers publish through its atomic
//! temp-then-rename discipline, claim expensive stages via cross-process
//! leases (`structmine_store::lease`), and a crashed worker's restart
//! resumes from whatever the store already holds.
//!
//! The failure model is explicit:
//!
//! * **Heartbeats & deadlines** — each worker touches a heartbeat file
//!   ([`worker::Heartbeat`]); the coordinator kills workers whose heartbeat
//!   goes stale past the deadline and treats the kill as transient.
//! * **Exit-status taxonomy** — exit 0 is success; exit 2 is *persistent*
//!   (usage/config errors a retry cannot fix); any other exit code or a
//!   signal death is *transient*.
//! * **Bounded deterministic restart** — transient failures restart the
//!   worker up to `max_restarts` times with the store's exponential
//!   backoff (1, 2, 4 ms), the restarted incarnation running fault-clean
//!   of any targeted `kill_worker` clause.
//! * **Degradation ladder** — a persistent failure (or an exhausted
//!   restart budget) sheds that worker: the coordinator runs the shard
//!   in-process instead, with exactly one warning per shed worker, and
//!   records the step in the process health registry
//!   (`structmine_store::health`).
//!
//! Observability: the coordinator attributes each worker's lifetime as a
//! `shard/worker-<i>` span, imports the worker's own root spans and
//! counters from its per-worker run report, and counts spawns, restarts,
//! deadline kills, and degradation steps under `shard.*`.
//!
//! | Knob | Effect |
//! |---|---|
//! | `--shards N` / `STRUCTMINE_SHARDS` | Number of worker processes (1 = in-process, no spawning) |
//! | `STRUCTMINE_SHARD_HEARTBEAT_MS` | Worker heartbeat interval (default 100) |
//! | `STRUCTMINE_SHARD_DEADLINE_MS` | Stale-heartbeat kill threshold (default 30000) |
//! | `STRUCTMINE_SHARD_MAX_RESTARTS` | Restart budget per worker (default 3) |
//! | `STRUCTMINE_FAULTS=kill_worker=i@after_writes=N` | Targeted chaos: worker `i`'s first incarnation aborts after `N` store writes |

pub mod coordinator;
pub mod plan;
pub mod spec;
pub mod worker;

pub use coordinator::{Supervisor, SupervisorConfig, WorkerOutcome};
pub use plan::{parse_shards, shard_range, shards_from_env};
pub use spec::{WorkerSpec, SPEC_ENV};
pub use worker::{write_output_atomic, Heartbeat};
