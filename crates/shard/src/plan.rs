//! Index-ordered shard planning.
//!
//! Shards are contiguous, index-ordered ranges over the item list, so
//! concatenating per-shard results in shard order reproduces the unsharded
//! order exactly — the merge step of the bitwise-determinism contract.

use std::ops::Range;
use structmine_store::PipelineError;

/// Upper bound on `--shards`: far above any sane process count on one
/// machine, low enough to catch `--shards 40000` typos.
pub const MAX_SHARDS: usize = 64;

/// The half-open item range owned by shard `index` of `count` over `total`
/// items. Ranges are contiguous and index-ordered; the first `total %
/// count` shards carry one extra item. Every item belongs to exactly one
/// shard, and shards beyond `total` come out empty rather than panicking.
pub fn shard_range(total: usize, index: usize, count: usize) -> Range<usize> {
    assert!(count > 0, "shard count must be positive");
    assert!(index < count, "shard index {index} out of {count}");
    let base = total / count;
    let extra = total % count;
    let start = index * base + index.min(extra);
    let len = base + usize::from(index < extra);
    start..(start + len).min(total)
}

/// Parse a `--shards` / `STRUCTMINE_SHARDS` value: an integer in
/// `1..=`[`MAX_SHARDS`].
pub fn parse_shards(value: &str) -> Result<usize, PipelineError> {
    let n: usize = value.trim().parse().map_err(|_| PipelineError::Unknown {
        what: "shard count",
        name: value.to_string(),
        expected: format!("an integer in 1..={MAX_SHARDS}"),
    })?;
    if n == 0 || n > MAX_SHARDS {
        return Err(PipelineError::InvalidInput(format!(
            "shard count {n} is outside 1..={MAX_SHARDS}"
        )));
    }
    Ok(n)
}

/// The shard count from `STRUCTMINE_SHARDS`, if set. A malformed value is
/// a hard error, like a malformed fault plan: silently running unsharded
/// would make every sharding test pass vacuously.
pub fn shards_from_env() -> Result<Option<usize>, PipelineError> {
    match std::env::var("STRUCTMINE_SHARDS") {
        Ok(s) if !s.trim().is_empty() => parse_shards(&s).map(Some),
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_partition_in_index_order() {
        for total in [0usize, 1, 5, 7, 8, 100] {
            for count in [1usize, 2, 3, 4, 7, 11] {
                let mut covered = Vec::new();
                let mut prev_end = 0;
                for i in 0..count {
                    let r = shard_range(total, i, count);
                    assert_eq!(r.start, prev_end, "shards must be contiguous");
                    prev_end = r.end;
                    covered.extend(r);
                }
                assert_eq!(
                    covered,
                    (0..total).collect::<Vec<_>>(),
                    "total={total} count={count} must partition in order"
                );
            }
        }
    }

    #[test]
    fn load_is_balanced_within_one() {
        let sizes: Vec<usize> = (0..4).map(|i| shard_range(10, i, 4).len()).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
        let max = sizes.iter().max().unwrap();
        let min = sizes.iter().min().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn parse_rejects_nonsense() {
        assert_eq!(parse_shards("4").unwrap(), 4);
        assert_eq!(parse_shards(" 1 ").unwrap(), 1);
        assert!(parse_shards("0").is_err());
        assert!(parse_shards("65").is_err());
        assert!(parse_shards("four").is_err());
        assert!(parse_shards("-1").is_err());
    }
}
