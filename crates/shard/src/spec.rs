//! The coordinator→worker contract: a spec file naming the shard, the job,
//! and the paths the worker must use.
//!
//! Workers are not a separate binary — each front-end (the CLI, the bench
//! tables) re-enters itself in worker mode when [`SPEC_ENV`] names a spec
//! file. The `job` field is an opaque string the front-end interprets (the
//! shard layer neither parses nor constrains it), which keeps this crate
//! free of engine/bench dependencies.

use serde::{Deserialize, Serialize};
use std::path::Path;
use structmine_store::PipelineError;

/// Environment variable naming the worker's spec file. Set per worker by
/// the [`Supervisor`](crate::Supervisor); its presence is what switches a
/// binary into worker mode.
pub const SPEC_ENV: &str = "STRUCTMINE_WORKER_SPEC";

/// Everything one worker process needs to know.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkerSpec {
    /// This worker's shard (also its identity in logs, spans, and faults).
    pub shard_index: usize,
    /// Total number of shards in the run.
    pub shard_count: usize,
    /// Front-end-interpreted job description (opaque to the shard layer).
    pub job: String,
    /// Where the worker must atomically write its result bytes.
    pub out: String,
    /// Heartbeat file the worker touches every heartbeat interval.
    pub heartbeat: String,
    /// Heartbeat interval in milliseconds.
    pub heartbeat_ms: u64,
}

impl WorkerSpec {
    /// Write the spec as JSON (plain write: the file is created before the
    /// worker is spawned, so no reader can race it).
    pub fn save(&self, path: &Path) -> Result<(), PipelineError> {
        let json = serde_json::to_string(self)
            .map_err(|e| PipelineError::InvalidInput(format!("serialize worker spec: {e:?}")))?;
        std::fs::write(path, json).map_err(|e| PipelineError::Io {
            context: format!("writing worker spec {}", path.display()),
            source: e,
        })
    }

    /// Read a spec back.
    pub fn load(path: &Path) -> Result<WorkerSpec, PipelineError> {
        let text = std::fs::read_to_string(path).map_err(|e| PipelineError::Io {
            context: format!("reading worker spec {}", path.display()),
            source: e,
        })?;
        serde_json::from_str(&text).map_err(|e| {
            PipelineError::InvalidInput(format!(
                "worker spec {} does not parse: {e:?}",
                path.display()
            ))
        })
    }

    /// The spec named by [`SPEC_ENV`], if this process is a worker.
    pub fn from_env() -> Result<Option<WorkerSpec>, PipelineError> {
        match std::env::var(SPEC_ENV) {
            Ok(path) if !path.trim().is_empty() => WorkerSpec::load(Path::new(&path)).map(Some),
            _ => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("structmine-spec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let spec = WorkerSpec {
            shard_index: 2,
            shard_count: 4,
            job: "classify labels=a,b method=xclass".into(),
            out: "/tmp/out-2".into(),
            heartbeat: "/tmp/hb-2".into(),
            heartbeat_ms: 100,
        };
        let path = dir.join("spec.json");
        spec.save(&path).unwrap();
        assert_eq!(WorkerSpec::load(&path).unwrap(), spec);
        assert!(WorkerSpec::load(&dir.join("absent.json")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
