//! Worker-side runtime: heartbeat, atomic output, and the job wrapper
//! front-ends call from worker mode.

use crate::spec::WorkerSpec;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use structmine_store::{obs, PipelineError};

/// A background thread that proves this worker is alive by rewriting its
/// heartbeat file every interval. The coordinator compares the file's
/// mtime against the deadline; a worker that hangs (or loses this thread)
/// goes stale and gets killed as transient.
pub struct Heartbeat {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Heartbeat {
    /// Start beating on `path` every `interval`. The first beat is written
    /// synchronously so the coordinator never observes a started worker
    /// with no heartbeat file at all.
    pub fn start(path: &Path, interval: Duration) -> Heartbeat {
        let beat = {
            let path = path.to_path_buf();
            move || {
                let _ = std::fs::write(&path, format!("{}\n", std::process::id()));
            }
        };
        beat();
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("shard-heartbeat".into())
                .spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        std::thread::sleep(interval);
                        beat();
                    }
                })
                .ok()
        };
        Heartbeat { stop, handle }
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Write `bytes` to `path` with the store's temp-then-rename discipline:
/// the coordinator either finds the complete result or nothing — never a
/// torn file, even if the worker is killed mid-write.
pub fn write_output_atomic(path: &Path, bytes: &[u8]) -> Result<(), PipelineError> {
    let io = |context: String| move |e: std::io::Error| PipelineError::Io { context, source: e };
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(io(format!("creating output dir {}", parent.display())))?;
        }
    }
    let tmp = path.with_extension(format!("tmp-{}", std::process::id()));
    std::fs::write(&tmp, bytes).map_err(io(format!("writing shard output {}", tmp.display())))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        PipelineError::Io {
            context: format!("publishing shard output {}", path.display()),
            source: e,
        }
    })
}

/// Run one worker job under the runtime: heartbeat up, job computed, result
/// atomically published to the spec's `out` path. The front-end supplies
/// the job body (it alone understands `spec.job`) and maps the returned
/// error to its exit taxonomy — exit 2 for persistent errors, exit 1 for
/// transient ones.
pub fn run_job(
    spec: &WorkerSpec,
    job: impl FnOnce(&WorkerSpec) -> Result<Vec<u8>, PipelineError>,
) -> Result<(), PipelineError> {
    let _hb = Heartbeat::start(
        Path::new(&spec.heartbeat),
        Duration::from_millis(spec.heartbeat_ms.max(1)),
    );
    let _span = obs::span(&format!("shard/worker-job-{}", spec.shard_index));
    obs::log_info(&format!(
        "[shard] worker {}/{} starting: {}",
        spec.shard_index, spec.shard_count, spec.job
    ));
    let bytes = job(spec)?;
    write_output_atomic(Path::new(&spec.out), &bytes)?;
    obs::log_info(&format!(
        "[shard] worker {} wrote {} bytes",
        spec.shard_index,
        bytes.len()
    ));
    Ok(())
}

/// True when `err` is worth a restart. Mirrors the store's taxonomy:
/// IO-shaped failures are transient, everything structural (bad input,
/// unknown names, invalid fault plans) is persistent.
pub fn is_transient(err: &PipelineError) -> bool {
    match err {
        PipelineError::Io { .. } => true,
        PipelineError::Store { source, .. } => source.is_transient(),
        PipelineError::Shard { transient, .. } => *transient,
        PipelineError::InvalidFaultPlan(_)
        | PipelineError::Unknown { .. }
        | PipelineError::InvalidInput(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeat_keeps_the_file_fresh() {
        let dir = std::env::temp_dir().join(format!("structmine-hb-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hb");
        {
            let _hb = Heartbeat::start(&path, Duration::from_millis(5));
            assert!(path.exists(), "first beat must be synchronous");
            let first = std::fs::metadata(&path).unwrap().modified().unwrap();
            std::thread::sleep(Duration::from_millis(40));
            let later = std::fs::metadata(&path).unwrap().modified().unwrap();
            assert!(later >= first, "heartbeat must keep touching the file");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_job_publishes_atomically_and_reports_errors() {
        let dir = std::env::temp_dir().join(format!("structmine-runjob-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let spec = WorkerSpec {
            shard_index: 0,
            shard_count: 1,
            job: "noop".into(),
            out: dir.join("out").to_string_lossy().into_owned(),
            heartbeat: dir.join("hb").to_string_lossy().into_owned(),
            heartbeat_ms: 50,
        };
        run_job(&spec, |_| Ok(b"payload\n".to_vec())).unwrap();
        assert_eq!(std::fs::read(&spec.out).unwrap(), b"payload\n");

        let failing = run_job(&spec, |_| {
            Err(PipelineError::InvalidInput("empty shard".into()))
        });
        assert!(failing.is_err());
        assert!(
            !is_transient(&failing.unwrap_err()),
            "bad input is persistent"
        );
        let io_err = PipelineError::Io {
            context: "x".into(),
            source: std::io::Error::other("disk"),
        };
        assert!(is_transient(&io_err));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
