//! The supervising coordinator: spawn, watch, restart, shed, merge.

use crate::plan::MAX_SHARDS;
use crate::spec::{WorkerSpec, SPEC_ENV};
use crate::worker::write_output_atomic;
use serde::Value;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use structmine_store::{health, obs, FaultPlan, PipelineError};

/// Supervisor policy knobs. Defaults are deliberately lopsided: heartbeats
/// are cheap (100 ms), the deadline is generous (30 s) because workers do
/// real PLM work between beats, and the restart budget matches the store's
/// retry budget shape.
#[derive(Clone, Copy, Debug)]
pub struct SupervisorConfig {
    /// Worker processes to run (= shard count).
    pub shards: usize,
    /// Worker heartbeat interval, milliseconds.
    pub heartbeat_ms: u64,
    /// Heartbeat staleness past which a worker is killed, milliseconds.
    pub deadline_ms: u64,
    /// Restarts allowed per worker before it is shed.
    pub max_restarts: u32,
}

impl SupervisorConfig {
    /// Defaults for `shards` workers, overridable via
    /// `STRUCTMINE_SHARD_HEARTBEAT_MS`, `STRUCTMINE_SHARD_DEADLINE_MS`,
    /// and `STRUCTMINE_SHARD_MAX_RESTARTS`.
    pub fn from_env(shards: usize) -> SupervisorConfig {
        fn env_num<T: std::str::FromStr>(name: &str, default: T) -> T {
            std::env::var(name)
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(default)
        }
        SupervisorConfig {
            shards,
            heartbeat_ms: env_num("STRUCTMINE_SHARD_HEARTBEAT_MS", 100),
            deadline_ms: env_num("STRUCTMINE_SHARD_DEADLINE_MS", 30_000),
            max_restarts: env_num("STRUCTMINE_SHARD_MAX_RESTARTS", 3),
        }
    }
}

/// What happened to one worker, for the coordinator's report and tests.
#[derive(Clone, Debug)]
pub struct WorkerOutcome {
    /// The shard this worker owned.
    pub shard_index: usize,
    /// Restarts consumed (0 for a clean run).
    pub restarts: u32,
    /// True when the shard was shed to in-process execution.
    pub degraded: bool,
}

/// Deterministic backoff before restart `attempt` (1-based): 1, 2, 4 ms —
/// the same shape as the store's IO retry backoff.
fn backoff_delay(attempt: u32) -> Duration {
    Duration::from_millis(1u64 << (attempt.saturating_sub(1)).min(4))
}

/// Poll interval of the supervision loop.
const POLL: Duration = Duration::from_millis(10);

/// One supervised worker slot.
struct Slot {
    spec: WorkerSpec,
    spec_path: PathBuf,
    child: Option<Child>,
    started: Instant,
    spawned_at: Instant,
    incarnation: u32,
    restarts: u32,
    degraded: bool,
    done: bool,
}

/// The supervising coordinator. Front-ends hand it one job string per
/// shard, a command factory that re-enters their own binary in worker
/// mode, and an in-process fallback for the bottom of the degradation
/// ladder; they get back the per-shard output paths in shard-index order.
pub struct Supervisor {
    cfg: SupervisorConfig,
    work_dir: PathBuf,
}

impl Supervisor {
    /// A supervisor writing specs/heartbeats/outputs under `work_dir`
    /// (created on demand).
    pub fn new(cfg: SupervisorConfig, work_dir: impl Into<PathBuf>) -> Supervisor {
        assert!(
            cfg.shards >= 1 && cfg.shards <= MAX_SHARDS,
            "shard count out of range"
        );
        Supervisor {
            cfg,
            work_dir: work_dir.into(),
        }
    }

    /// Run `jobs[i]` on worker `i` for every shard and return the output
    /// paths in shard-index order. `make_command` builds the worker
    /// process (typically `current_exe()` with a `worker` argument); the
    /// supervisor adds the spec/fault/lease environment. `fallback` runs a
    /// shard in-process when its worker is shed.
    ///
    /// With `shards == 1` the supervisor still spawns the single worker —
    /// byte-equality of 1-way vs N-way output is the acceptance contract,
    /// so both sides must run the identical code path.
    pub fn run(
        &self,
        jobs: &[String],
        make_command: &dyn Fn(usize, &Path) -> Command,
        fallback: &dyn Fn(&WorkerSpec) -> Result<Vec<u8>, PipelineError>,
    ) -> Result<(Vec<PathBuf>, Vec<WorkerOutcome>), PipelineError> {
        assert_eq!(jobs.len(), self.cfg.shards, "one job per shard");
        std::fs::create_dir_all(&self.work_dir).map_err(|e| PipelineError::Io {
            context: format!("creating shard work dir {}", self.work_dir.display()),
            source: e,
        })?;
        let plan = FaultPlan::from_env()?.unwrap_or_default();

        let mut slots: Vec<Slot> = Vec::with_capacity(self.cfg.shards);
        for (i, job) in jobs.iter().enumerate() {
            let spec = WorkerSpec {
                shard_index: i,
                shard_count: self.cfg.shards,
                job: job.clone(),
                out: self
                    .work_dir
                    .join(format!("out-{i}"))
                    .to_string_lossy()
                    .into_owned(),
                heartbeat: self
                    .work_dir
                    .join(format!("heartbeat-{i}"))
                    .to_string_lossy()
                    .into_owned(),
                heartbeat_ms: self.cfg.heartbeat_ms,
            };
            // A leftover output from a previous (crashed) coordinator run
            // is already complete — the atomic rename guarantees it — but
            // it may belong to a different job string, so start clean; the
            // *store* is the resume substrate, not the output files.
            let _ = std::fs::remove_file(&spec.out);
            let spec_path = self.work_dir.join(format!("spec-{i}.json"));
            spec.save(&spec_path)?;
            let now = Instant::now();
            slots.push(Slot {
                spec,
                spec_path,
                child: None,
                started: now,
                spawned_at: now,
                incarnation: 0,
                restarts: 0,
                degraded: false,
                done: false,
            });
        }

        obs::counter_add("shard.workers", self.cfg.shards as u64);
        for slot in slots.iter_mut() {
            self.spawn(slot, &plan, make_command)?;
        }

        while slots.iter().any(|s| !s.done) {
            for slot in slots.iter_mut().filter(|s| !s.done) {
                self.step(slot, &plan, make_command, fallback)?;
            }
            std::thread::sleep(POLL);
        }

        let outputs = slots
            .iter()
            .map(|s| PathBuf::from(&s.spec.out))
            .collect::<Vec<_>>();
        for (i, out) in outputs.iter().enumerate() {
            if !out.exists() {
                return Err(PipelineError::Shard {
                    context: format!("worker {i}"),
                    transient: false,
                    detail: format!("completed without publishing {}", out.display()),
                });
            }
        }
        let outcomes = slots
            .iter()
            .map(|s| WorkerOutcome {
                shard_index: s.spec.shard_index,
                restarts: s.restarts,
                degraded: s.degraded,
            })
            .collect();
        Ok((outputs, outcomes))
    }

    /// Spawn (or respawn) a slot's worker process.
    fn spawn(
        &self,
        slot: &mut Slot,
        plan: &FaultPlan,
        make_command: &dyn Fn(usize, &Path) -> Command,
    ) -> Result<(), PipelineError> {
        let i = slot.spec.shard_index;
        let mut cmd = make_command(i, &slot.spec_path);
        cmd.env(SPEC_ENV, &slot.spec_path)
            .env("STRUCTMINE_LEASE", "1")
            .env(
                obs::REPORT_ENV,
                self.work_dir.join(format!("report-{i}.json")),
            )
            // A worker must never become a coordinator itself.
            .env_remove("STRUCTMINE_SHARDS")
            .stdout(Stdio::null());
        let worker_plan = plan.for_worker(i as u64, slot.incarnation);
        let rendered = worker_plan.to_plan_string();
        if rendered.is_empty() {
            cmd.env_remove("STRUCTMINE_FAULTS");
        } else {
            cmd.env("STRUCTMINE_FAULTS", &rendered);
        }
        // A fresh heartbeat baseline: the deadline clock starts at spawn,
        // not at some stale file from the previous incarnation.
        let _ = std::fs::remove_file(&slot.spec.heartbeat);
        obs::log_debug(&format!(
            "[shard] spawning worker {i} (incarnation {})",
            slot.incarnation
        ));
        match cmd.spawn() {
            Ok(child) => {
                slot.child = Some(child);
                slot.spawned_at = Instant::now();
                Ok(())
            }
            Err(e) => Err(PipelineError::Io {
                context: format!("spawning worker {i}"),
                source: e,
            }),
        }
    }

    /// One supervision step for one live slot: reap exits, enforce the
    /// heartbeat deadline, restart transients, shed persistents.
    fn step(
        &self,
        slot: &mut Slot,
        plan: &FaultPlan,
        make_command: &dyn Fn(usize, &Path) -> Command,
        fallback: &dyn Fn(&WorkerSpec) -> Result<Vec<u8>, PipelineError>,
    ) -> Result<(), PipelineError> {
        let i = slot.spec.shard_index;
        let stale = self.heartbeat_stale(slot);
        let Some(child) = slot.child.as_mut() else {
            return Ok(());
        };
        let status = match child.try_wait() {
            Ok(Some(status)) => status,
            Ok(None) => {
                if stale {
                    obs::log_warn(&format!(
                        "[shard] worker {i} missed its heartbeat deadline ({} ms); killing",
                        self.cfg.deadline_ms
                    ));
                    obs::counter_add("shard.deadline_kills", 1);
                    let _ = child.kill();
                    let _ = child.wait();
                    self.note_transient(slot, plan, make_command, fallback)?;
                }
                return Ok(());
            }
            Err(e) => {
                return Err(PipelineError::Io {
                    context: format!("waiting on worker {i}"),
                    source: e,
                })
            }
        };
        slot.child = None;
        match status.code() {
            Some(0) => {
                if Path::new(&slot.spec.out).exists() {
                    self.finish(slot);
                } else {
                    // Exit 0 without output is a worker bug; treat as
                    // persistent rather than restarting what would likely
                    // repeat it.
                    obs::log_warn(&format!(
                        "[shard] worker {i} exited 0 without publishing output"
                    ));
                    self.shed(slot, fallback)?;
                }
                Ok(())
            }
            Some(2) => {
                obs::log_warn(&format!("[shard] worker {i} failed persistently (exit 2)"));
                self.shed(slot, fallback)
            }
            Some(code) => {
                obs::log_warn(&format!("[shard] worker {i} exited {code} (transient)"));
                self.note_transient(slot, plan, make_command, fallback)
            }
            None => {
                obs::log_warn(&format!("[shard] worker {i} died on a signal (transient)"));
                self.note_transient(slot, plan, make_command, fallback)
            }
        }
    }

    fn heartbeat_stale(&self, slot: &Slot) -> bool {
        let deadline = Duration::from_millis(self.cfg.deadline_ms);
        match std::fs::metadata(&slot.spec.heartbeat).and_then(|m| m.modified()) {
            Ok(modified) => modified
                .elapsed()
                .map(|age| age > deadline)
                .unwrap_or(false),
            // No heartbeat file yet: measure from spawn, so a worker that
            // never starts beating still trips the deadline.
            Err(_) => slot.spawned_at.elapsed() > deadline,
        }
    }

    /// A transient failure: restart with deterministic backoff while the
    /// budget lasts, then shed.
    fn note_transient(
        &self,
        slot: &mut Slot,
        plan: &FaultPlan,
        make_command: &dyn Fn(usize, &Path) -> Command,
        fallback: &dyn Fn(&WorkerSpec) -> Result<Vec<u8>, PipelineError>,
    ) -> Result<(), PipelineError> {
        let i = slot.spec.shard_index;
        if slot.restarts >= self.cfg.max_restarts {
            obs::log_warn(&format!(
                "[shard] worker {i} exhausted its restart budget ({})",
                self.cfg.max_restarts
            ));
            return self.shed(slot, fallback);
        }
        slot.restarts += 1;
        slot.incarnation += 1;
        obs::counter_add("shard.restarts", 1);
        std::thread::sleep(backoff_delay(slot.restarts));
        obs::log_info(&format!(
            "[shard] restarting worker {i} (attempt {}/{})",
            slot.restarts, self.cfg.max_restarts
        ));
        self.spawn(slot, plan, make_command)
    }

    /// The degradation ladder's bottom: shed the worker and run its shard
    /// in-process, serially. Exactly one warning per shed worker.
    fn shed(
        &self,
        slot: &mut Slot,
        fallback: &dyn Fn(&WorkerSpec) -> Result<Vec<u8>, PipelineError>,
    ) -> Result<(), PipelineError> {
        let i = slot.spec.shard_index;
        obs::log_warn(&format!(
            "[shard] WARNING: degrading shard {i} to in-process execution \
             — output stays byte-identical, capacity is reduced"
        ));
        obs::counter_add("shard.degraded_steps", 1);
        health::note_degraded(&format!("shard: worker {i} shed to in-process"));
        slot.degraded = true;
        let bytes = fallback(&slot.spec).map_err(|e| PipelineError::Shard {
            context: format!("worker {i} in-process fallback"),
            transient: false,
            detail: e.to_string(),
        })?;
        write_output_atomic(Path::new(&slot.spec.out), &bytes)?;
        self.finish(slot);
        Ok(())
    }

    /// Mark a slot complete: attribute its wall time as a
    /// `shard/worker-<i>` span and fold its run report into ours.
    fn finish(&self, slot: &mut Slot) {
        slot.done = true;
        let i = slot.spec.shard_index;
        let root = format!("shard/worker-{i}");
        obs::record_span_at(std::slice::from_ref(&root), slot.started.elapsed());
        self.import_worker_report(i, &root);
        obs::log_info(&format!(
            "[shard] worker {i} complete ({} restart(s){})",
            slot.restarts,
            if slot.degraded { ", degraded" } else { "" }
        ));
    }

    /// Import a finished worker's run report: its counters land under
    /// `shard.w<i>.*`, its root spans nest under `shard/worker-<i>` — so
    /// the coordinator's single report names every worker's work.
    fn import_worker_report(&self, i: usize, root: &str) {
        let path = self.work_dir.join(format!("report-{i}.json"));
        let Ok(text) = std::fs::read_to_string(&path) else {
            return; // a shed or crashed-out worker may have no report
        };
        let Ok(report) = obs::validate_report(&text) else {
            obs::log_warn(&format!(
                "[shard] worker {i} report {} failed validation; skipping import",
                path.display()
            ));
            return;
        };
        let lookup = |map: &Value, key: &str| -> Option<Value> {
            match map {
                Value::Map(entries) => entries
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v.clone()),
                _ => None,
            }
        };
        if let Some(Value::Map(counters)) = lookup(&report, "counters") {
            for (name, value) in counters {
                if let Value::UInt(v) = value {
                    obs::counter_add(&format!("shard.w{i}.{name}"), v);
                }
            }
        }
        if let Some(spans) = lookup(&report, "spans") {
            if let Some(Value::Seq(tree)) = lookup(&spans, "tree") {
                for node in tree {
                    let (Some(Value::Str(label)), Some(wall)) =
                        (lookup(&node, "label"), lookup(&node, "wall_ms"))
                    else {
                        continue;
                    };
                    let wall_ms = match wall {
                        Value::Float(f) => f,
                        Value::UInt(u) => u as f64,
                        _ => continue,
                    };
                    obs::record_span_at(
                        &[root.to_string(), label],
                        Duration::from_nanos((wall_ms * 1.0e6).max(0.0) as u64),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        assert_eq!(backoff_delay(1), Duration::from_millis(1));
        assert_eq!(backoff_delay(2), Duration::from_millis(2));
        assert_eq!(backoff_delay(3), Duration::from_millis(4));
        assert_eq!(backoff_delay(100), Duration::from_millis(16));
    }

    #[test]
    fn config_defaults_are_sane() {
        let cfg = SupervisorConfig::from_env(4);
        assert_eq!(cfg.shards, 4);
        assert!(cfg.heartbeat_ms >= 1);
        assert!(cfg.deadline_ms > cfg.heartbeat_ms);
        assert!(cfg.max_restarts >= 1);
    }

    /// End-to-end supervision with `/bin/sh` workers: success, targeted
    /// kill_worker chaos via restart, and shedding on persistent failure.
    #[test]
    fn supervisor_restarts_transients_and_sheds_persistents() {
        let dir = std::env::temp_dir().join(format!("structmine-sup-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = SupervisorConfig {
            shards: 3,
            heartbeat_ms: 20,
            deadline_ms: 5_000,
            max_restarts: 2,
        };
        let sup = Supervisor::new(cfg, &dir);
        // Worker 0 succeeds; worker 1 crashes transiently (exit 7) on its
        // first incarnation only (a marker file distinguishes incarnations);
        // worker 2 fails persistently (exit 2) every time.
        let marker = dir.join("w1-tried");
        let jobs: Vec<String> = (0..3).map(|i| format!("job-{i}")).collect();
        let make = |i: usize, spec_path: &Path| -> Command {
            let spec = WorkerSpec::load(spec_path).unwrap();
            let script = match i {
                0 => format!("printf 'shard-0\\n' > '{}.tmp' && mv '{}.tmp' '{}'", spec.out, spec.out, spec.out),
                1 => format!(
                    "if [ -e '{m}' ]; then printf 'shard-1\\n' > '{o}.tmp' && mv '{o}.tmp' '{o}'; else touch '{m}'; exit 7; fi",
                    m = marker.display(),
                    o = spec.out,
                ),
                _ => "exit 2".to_string(),
            };
            let mut cmd = Command::new("/bin/sh");
            cmd.arg("-c").arg(script);
            cmd
        };
        let fallback = |spec: &WorkerSpec| -> Result<Vec<u8>, PipelineError> {
            Ok(format!("shard-{}-fallback\n", spec.shard_index).into_bytes())
        };
        let (outputs, outcomes) = sup.run(&jobs, &make, &fallback).unwrap();
        let merged: String = outputs
            .iter()
            .map(|p| std::fs::read_to_string(p).unwrap())
            .collect();
        assert_eq!(merged, "shard-0\nshard-1\nshard-2-fallback\n");
        assert_eq!(outcomes[0].restarts, 0);
        assert!(!outcomes[0].degraded);
        assert_eq!(outcomes[1].restarts, 1, "one transient crash, one restart");
        assert!(!outcomes[1].degraded);
        assert!(outcomes[2].degraded, "exit 2 must shed, not restart");
        assert_eq!(outcomes[2].restarts, 0, "persistent failures skip restarts");
        assert!(
            health::degradations()
                .iter()
                .any(|r| r.contains("worker 2")),
            "shedding must land in the health registry"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A worker that hangs (sleeps far past the deadline without beating)
    /// is killed and — with no restart budget — shed to the fallback.
    #[test]
    fn hung_worker_trips_the_deadline() {
        let dir = std::env::temp_dir().join(format!("structmine-hang-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = SupervisorConfig {
            shards: 1,
            heartbeat_ms: 10,
            deadline_ms: 150,
            max_restarts: 0,
        };
        let sup = Supervisor::new(cfg, &dir);
        let make = |_i: usize, _spec: &Path| -> Command {
            let mut cmd = Command::new("/bin/sh");
            cmd.arg("-c").arg("sleep 30");
            cmd
        };
        let fallback =
            |_spec: &WorkerSpec| -> Result<Vec<u8>, PipelineError> { Ok(b"rescued\n".to_vec()) };
        let start = Instant::now();
        let (outputs, outcomes) = sup.run(&["hang".to_string()], &make, &fallback).unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(20),
            "the deadline, not the sleep, must bound the wait"
        );
        assert_eq!(std::fs::read(&outputs[0]).unwrap(), b"rescued\n");
        assert!(outcomes[0].degraded);
        assert!(obs::counter_value("shard.deadline_kills") >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
