//! Numerically stable reductions and summary statistics.

/// Stable softmax over a slice, in place.
pub fn softmax_inplace(a: &mut [f32]) {
    if a.is_empty() {
        return;
    }
    let max = a.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in a.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        let inv = 1.0 / sum;
        for v in a {
            *v *= inv;
        }
    }
}

/// Fast-tier stable softmax in place: identical max-subtract/normalize
/// structure to [`softmax_inplace`], with [`crate::fastmath::fast_exp`]
/// (rel error ≤ 1e-5) instead of libm `exp`. Entries more than ~41
/// below the row max come out at `fast_exp`'s ~2^-60 saturation floor
/// rather than underflowing further — beyond f32 resolution of the
/// normalized row either way, and it keeps the output (and everything
/// later multiplied by it) free of subnormals. Only Fast-precision
/// inference graphs call this; Exact paths keep the libm version.
/// Dispatches to the SSE2 row pass ([`crate::simd::softmax_row_fast`])
/// where available, with the scalar loop as the portable fallback.
pub fn softmax_inplace_fast(a: &mut [f32]) {
    crate::simd::softmax_row_fast(a);
}

/// Stable softmax, returning a new vector.
pub fn softmax(a: &[f32]) -> Vec<f32> {
    let mut v = a.to_vec();
    softmax_inplace(&mut v);
    v
}

/// log(sum(exp(a))) computed stably.
pub fn log_sum_exp(a: &[f32]) -> f32 {
    if a.is_empty() {
        return f32::NEG_INFINITY;
    }
    let max = a.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    if max.is_infinite() {
        return max;
    }
    max + a.iter().map(|v| (v - max).exp()).sum::<f32>().ln()
}

/// Arithmetic mean; 0 for empty input.
pub fn mean(a: &[f32]) -> f32 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f32>() / a.len() as f32
    }
}

/// Population standard deviation; 0 for fewer than two samples.
pub fn std_dev(a: &[f32]) -> f32 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    (a.iter().map(|v| (v - m) * (v - m)).sum::<f32>() / a.len() as f32).sqrt()
}

/// Shannon entropy (nats) of a probability vector; ignores non-positive entries.
pub fn entropy(p: &[f32]) -> f32 {
    -p.iter()
        .filter(|&&v| v > 0.0)
        .map(|&v| v * v.ln())
        .sum::<f32>()
}

/// Sharpen a probability distribution with temperature `t` (< 1 sharpens).
pub fn sharpen(p: &[f32], t: f32) -> Vec<f32> {
    let mut out: Vec<f32> = p.iter().map(|&v| v.max(1e-12).powf(1.0 / t)).collect();
    let sum: f32 = out.iter().sum();
    for v in &mut out {
        *v /= sum;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let s = softmax(&[1.0, 2.0, 3.0]);
        assert!((s.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(s[2] > s[1] && s[1] > s[0]);
    }

    #[test]
    fn softmax_stable_under_large_inputs() {
        let s = softmax(&[1000.0, 1000.0]);
        assert!((s[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn log_sum_exp_matches_naive_for_small_values() {
        let a = [0.1f32, 0.2, 0.3];
        let naive = a.iter().map(|v| v.exp()).sum::<f32>().ln();
        assert!((log_sum_exp(&a) - naive).abs() < 1e-5);
    }

    #[test]
    fn entropy_uniform_is_log_n() {
        let p = [0.25f32; 4];
        assert!((entropy(&p) - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn sharpen_increases_max_probability() {
        let p = [0.6f32, 0.3, 0.1];
        let s = sharpen(&p, 0.5);
        assert!(s[0] > p[0]);
        assert!((s.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn std_dev_of_constant_is_zero() {
        assert_eq!(std_dev(&[2.0, 2.0, 2.0]), 0.0);
    }

    proptest! {
        #[test]
        fn softmax_is_a_distribution(v in proptest::collection::vec(-50.0f32..50.0, 1..16)) {
            let s = softmax(&v);
            prop_assert!((s.iter().sum::<f32>() - 1.0).abs() < 1e-4);
            prop_assert!(s.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
        }

        #[test]
        fn log_sum_exp_ge_max(v in proptest::collection::vec(-50.0f32..50.0, 1..16)) {
            let max = v.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(log_sum_exp(&v) >= max - 1e-4);
        }

        #[test]
        fn fast_softmax_tracks_exact_softmax(v in proptest::collection::vec(-50.0f32..50.0, 1..16)) {
            let exact = softmax(&v);
            let mut fast = v.clone();
            softmax_inplace_fast(&mut fast);
            prop_assert!((fast.iter().sum::<f32>() - 1.0).abs() < 1e-4);
            for (f, e) in fast.iter().zip(&exact) {
                prop_assert!((f - e).abs() <= 1e-4, "fast={f} exact={e}");
            }
        }
    }
}
