//! Principal component analysis via power iteration with deflation.
//!
//! Used for the tutorial's "vanilla BERT representations" figure (2-D PCA of
//! average-pooled hidden states) and for diagnostics elsewhere. Power
//! iteration is ample for the handful of leading components we ever need.

use crate::matrix::Matrix;
use crate::vector;

/// A fitted PCA: mean vector plus the top-k principal axes (rows).
#[derive(Clone, Debug)]
pub struct Pca {
    mean: Vec<f32>,
    /// `k x d`; each row is a unit-norm principal axis.
    components: Matrix,
    /// Eigenvalues (variance captured) for each component, descending.
    explained: Vec<f32>,
}

impl Pca {
    /// Fit the top `k` principal components of the rows of `data`.
    ///
    /// Deterministic: power iteration starts from a fixed vector. Returns a
    /// PCA with fewer than `k` components if the data has lower rank.
    pub fn fit(data: &Matrix, k: usize) -> Pca {
        let d = data.cols();
        let mean = data.col_mean();
        // Covariance (d x d), fine for the small d used in this workspace.
        let mut cov = Matrix::zeros(d, d);
        let n = data.rows().max(1) as f32;
        for row in data.iter_rows() {
            let centered: Vec<f32> = row.iter().zip(&mean).map(|(v, m)| v - m).collect();
            for i in 0..d {
                if centered[i] == 0.0 {
                    continue;
                }
                let ci = centered[i];
                let cov_row = cov.row_mut(i);
                for (j, &cj) in centered.iter().enumerate() {
                    cov_row[j] += ci * cj / n;
                }
            }
        }

        let mut components = Vec::new();
        let mut explained = Vec::new();
        let mut deflated = cov;
        for comp in 0..k.min(d) {
            let (axis, eigenvalue) = power_iteration(&deflated, comp as u64);
            if eigenvalue <= 1e-9 {
                break;
            }
            // Deflate: cov -= lambda * v v^T
            for i in 0..d {
                let vi = axis[i];
                let row = deflated.row_mut(i);
                for (j, &vj) in axis.iter().enumerate() {
                    row[j] -= eigenvalue * vi * vj;
                }
            }
            components.push(axis);
            explained.push(eigenvalue);
        }

        let comp_mat = if components.is_empty() {
            Matrix::zeros(0, d)
        } else {
            let refs: Vec<&[f32]> = components.iter().map(|c| c.as_slice()).collect();
            Matrix::from_rows(&refs)
        };
        Pca {
            mean,
            components: comp_mat,
            explained: explained.clone(),
        }
    }

    /// Project the rows of `data` onto the fitted components (`n x k`).
    pub fn transform(&self, data: &Matrix) -> Matrix {
        let k = self.components.rows();
        let mut out = Matrix::zeros(data.rows(), k);
        for (i, row) in data.iter_rows().enumerate() {
            let centered: Vec<f32> = row.iter().zip(&self.mean).map(|(v, m)| v - m).collect();
            for c in 0..k {
                out.set(i, c, vector::dot(&centered, self.components.row(c)));
            }
        }
        out
    }

    /// Variance explained by each retained component, descending.
    pub fn explained_variance(&self) -> &[f32] {
        &self.explained
    }

    /// Number of retained components.
    pub fn n_components(&self) -> usize {
        self.components.rows()
    }

    /// The principal axes as a `k x d` matrix.
    pub fn components(&self) -> &Matrix {
        &self.components
    }
}

/// Returns (unit eigenvector, eigenvalue) of the dominant eigenpair.
fn power_iteration(m: &Matrix, salt: u64) -> (Vec<f32>, f32) {
    let d = m.rows();
    // Deterministic pseudo-random start so repeated components do not align.
    let mut v: Vec<f32> = (0..d)
        .map(|i| {
            let h = crate::rng::derive_seed(salt.wrapping_add(1), i as u64);
            (h % 1000) as f32 / 1000.0 - 0.5 + 1e-3
        })
        .collect();
    vector::normalize(&mut v);
    let mut eigenvalue = 0.0f32;
    for _ in 0..200 {
        let mut next = vec![0.0f32; d];
        for (i, nx) in next.iter_mut().enumerate() {
            *nx = vector::dot(m.row(i), &v);
        }
        let norm = vector::norm(&next);
        if norm <= 1e-12 {
            return (v, 0.0);
        }
        vector::scale(&mut next, 1.0 / norm);
        let delta = vector::sq_dist(&next, &v);
        v = next;
        eigenvalue = norm;
        if delta < 1e-12 {
            break;
        }
    }
    (v, eigenvalue)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;
    use rand::Rng;

    /// Build data stretched along a known direction and check PCA finds it.
    #[test]
    fn recovers_dominant_direction() {
        let mut r = rng::seeded(1);
        let axis = vector::normalized(&[3.0, 1.0, 0.5, 0.0]);
        let mut rows = Vec::new();
        for _ in 0..400 {
            let t = rng::gaussian(&mut r) * 5.0;
            let noise: Vec<f32> = (0..4).map(|_| rng::gaussian(&mut r) * 0.1).collect();
            let row: Vec<f32> = axis.iter().zip(&noise).map(|(a, n)| a * t + n).collect();
            rows.push(row);
        }
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let data = Matrix::from_rows(&refs);
        let pca = Pca::fit(&data, 2);
        let c0 = pca.components().row(0);
        let align = vector::cosine(c0, &axis).abs();
        assert!(align > 0.99, "alignment {align}");
        assert!(
            pca.explained_variance()[0] > pca.explained_variance().get(1).copied().unwrap_or(0.0)
        );
    }

    #[test]
    fn transform_centers_data() {
        let data = Matrix::from_rows(&[&[1.0, 0.0], &[3.0, 0.0], &[5.0, 0.0]]);
        let pca = Pca::fit(&data, 1);
        let proj = pca.transform(&data);
        // Projections of centered data must themselves be centered.
        let mean: f32 = (0..3).map(|i| proj.get(i, 0)).sum::<f32>() / 3.0;
        assert!(mean.abs() < 1e-5);
    }

    #[test]
    fn rank_deficient_data_yields_fewer_components() {
        // All rows identical: zero variance, no components survive.
        let data = Matrix::from_rows(&[&[1.0, 2.0], &[1.0, 2.0], &[1.0, 2.0]]);
        let pca = Pca::fit(&data, 2);
        assert_eq!(pca.n_components(), 0);
    }

    #[test]
    fn components_are_orthonormal() {
        let mut r = rng::seeded(2);
        let mut rows = Vec::new();
        for _ in 0..200 {
            let row: Vec<f32> = (0..6).map(|_| r.gen_range(-1.0..1.0)).collect();
            rows.push(row);
        }
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let pca = Pca::fit(&Matrix::from_rows(&refs), 3);
        for i in 0..pca.n_components() {
            assert!((vector::norm(pca.components().row(i)) - 1.0).abs() < 1e-3);
            for j in 0..i {
                let d = vector::dot(pca.components().row(i), pca.components().row(j));
                assert!(d.abs() < 1e-2, "components {i},{j} not orthogonal: {d}");
            }
        }
    }
}
