//! Dense linear algebra and numerics for the `structmine` workspace.
//!
//! Everything in the workspace that touches numbers — static embeddings, the
//! mini transformer, clustering, classifiers — is built on this crate. It
//! deliberately stays small: a row-major `f32` [`Matrix`], slice-based vector
//! helpers, numerically stable reductions, power-iteration [`pca`], and seeded
//! RNG constructors so every experiment is reproducible.
//!
//! # Example
//! ```
//! use structmine_linalg::{Matrix, vector};
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.row(1), &[3.0, 4.0]);
//! assert!((vector::dot(c.row(0), c.row(1)) - 11.0).abs() < 1e-6);
//! ```

pub mod exec;
pub mod fastmath;
pub mod matrix;
pub mod pca;
pub mod rng;
pub mod simd;
pub mod stats;
pub mod vector;

pub use exec::{ExecPolicy, Precision};
pub use matrix::{Matrix, PackedMatrix};
pub use pca::Pca;
