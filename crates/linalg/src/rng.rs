//! Seeded RNG constructors and sampling helpers.
//!
//! Every stochastic component in the workspace accepts an explicit `u64`
//! seed; these helpers keep that convention ergonomic and give us Gaussian /
//! categorical sampling without further dependencies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Construct a deterministic RNG from a seed.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derive a child seed from a parent seed and a stream id (splitmix-style),
/// so that independent components never share an RNG stream.
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Standard normal sample via Box–Muller.
pub fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Fill a slice with `N(0, std^2)` samples.
pub fn fill_gaussian(rng: &mut StdRng, out: &mut [f32], std: f32) {
    for v in out {
        *v = gaussian(rng) * std;
    }
}

/// Sample an index proportionally to non-negative `weights`.
/// Falls back to uniform if all weights are zero.
pub fn sample_categorical(rng: &mut StdRng, weights: &[f32]) -> usize {
    debug_assert!(!weights.is_empty());
    let total: f32 = weights.iter().sum();
    if total <= 0.0 {
        return rng.gen_range(0..weights.len());
    }
    let mut target = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        target -= w;
        if target <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Sample `k` distinct indices from `0..n` (Floyd's algorithm); `k >= n`
/// returns all of `0..n` shuffled.
pub fn sample_distinct(rng: &mut StdRng, n: usize, k: usize) -> Vec<usize> {
    use rand::seq::SliceRandom;
    if k >= n {
        let mut all: Vec<usize> = (0..n).collect();
        all.shuffle(rng);
        return all;
    }
    let mut chosen = std::collections::HashSet::with_capacity(k);
    let mut out = Vec::with_capacity(k);
    for j in n - k..n {
        let t = rng.gen_range(0..=j);
        let pick = if chosen.contains(&t) { j } else { t };
        chosen.insert(pick);
        out.push(pick);
    }
    out
}

/// Sample from a symmetric Dirichlet with concentration `alpha` (via Gamma
/// samples using Marsaglia–Tsang for alpha >= 1 and the boosting trick below it).
pub fn sample_dirichlet(rng: &mut StdRng, alpha: f32, dim: usize) -> Vec<f32> {
    let mut out: Vec<f32> = (0..dim).map(|_| sample_gamma(rng, alpha)).collect();
    let sum: f32 = out.iter().sum();
    if sum <= 0.0 {
        return vec![1.0 / dim as f32; dim];
    }
    for v in &mut out {
        *v /= sum;
    }
    out
}

/// Gamma(shape, 1) sample; Marsaglia–Tsang squeeze method.
pub fn sample_gamma(rng: &mut StdRng, shape: f32) -> f32 {
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) * U^(1/a)
        let u: f32 = rng.gen_range(f32::EPSILON..1.0);
        return sample_gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = gaussian(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f32 = rng.gen_range(f32::EPSILON..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded(7);
        let mut b = seeded(7);
        assert_eq!(gaussian(&mut a), gaussian(&mut b));
    }

    #[test]
    fn derive_seed_changes_with_stream() {
        assert_ne!(derive_seed(1, 0), derive_seed(1, 1));
        assert_eq!(derive_seed(1, 3), derive_seed(1, 3));
    }

    #[test]
    fn gaussian_has_roughly_zero_mean_unit_var() {
        let mut rng = seeded(42);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn categorical_respects_weights() {
        let mut rng = seeded(3);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[sample_categorical(&mut rng, &[1.0, 2.0, 7.0])] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0]);
        let p2 = counts[2] as f32 / 30_000.0;
        assert!((p2 - 0.7).abs() < 0.02, "p2 {p2}");
    }

    #[test]
    fn categorical_all_zero_weights_falls_back_to_uniform() {
        let mut rng = seeded(9);
        let idx = sample_categorical(&mut rng, &[0.0, 0.0, 0.0]);
        assert!(idx < 3);
    }

    #[test]
    fn sample_distinct_gives_unique_indices() {
        let mut rng = seeded(11);
        let picks = sample_distinct(&mut rng, 100, 10);
        let set: std::collections::HashSet<_> = picks.iter().collect();
        assert_eq!(set.len(), 10);
        assert!(picks.iter().all(|&p| p < 100));
    }

    #[test]
    fn dirichlet_sums_to_one() {
        let mut rng = seeded(5);
        for &alpha in &[0.1f32, 1.0, 10.0] {
            let p = sample_dirichlet(&mut rng, alpha, 6);
            assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
            assert!(p.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn gamma_mean_approximates_shape() {
        let mut rng = seeded(17);
        let shape = 3.0;
        let n = 20_000;
        let mean = (0..n).map(|_| sample_gamma(&mut rng, shape)).sum::<f32>() / n as f32;
        assert!((mean - shape).abs() < 0.1, "mean {mean}");
    }
}
