//! Row-major dense `f32` matrix.
//!
//! The workspace only needs a handful of operations (matmul, transpose,
//! element-wise arithmetic, row views), so this type favours clarity and
//! cache-friendly loops over generality. The matmul uses the i-k-j loop
//! order, which keeps the inner loop streaming over contiguous rows of the
//! right-hand operand — the standard cache-friendly form for row-major data.

use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f32`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Create a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Create a matrix from an owned row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length must equal rows*cols"
        );
        Self { rows, cols, data }
    }

    /// Create a matrix from row slices. All rows must share a length.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "all rows must have equal length");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow the underlying row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the underlying row-major buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.cols + j]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        self.data[i * self.cols + j] = v;
    }

    /// Iterate over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Row count above which `matmul`/`matmul_t` go through the parallel
    /// executor. Each output row is still computed by exactly one thread
    /// with the serial inner loops, so results are bitwise identical to the
    /// serial path for any thread count.
    const PAR_ROW_THRESHOLD: usize = 64;

    /// Matrix product `self * rhs`, under the process-global
    /// [`ExecPolicy`](crate::ExecPolicy) for large left operands.
    ///
    /// # Panics
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        self.matmul_with(rhs, Self::routing_policy(self.rows))
    }

    /// Matrix product `self * rhs` under an explicit execution policy.
    pub fn matmul_with(&self, rhs: &Matrix, policy: &crate::ExecPolicy) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        crate::exec::par_fill_rows(policy, self.rows, rhs.cols, &mut out.data, |i, out_row| {
            let a_row = self.row(i);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        });
        out
    }

    /// Matrix product `self * rhs^T`. Avoids materializing the transpose.
    /// Parallel above the same row threshold as [`Matrix::matmul`].
    pub fn matmul_t(&self, rhs: &Matrix) -> Matrix {
        self.matmul_t_with(rhs, Self::routing_policy(self.rows))
    }

    /// Matrix product `self * rhs^T` under an explicit execution policy.
    pub fn matmul_t_with(&self, rhs: &Matrix, policy: &crate::ExecPolicy) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "matmul_t shape mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        crate::exec::par_fill_rows(policy, self.rows, rhs.rows, &mut out.data, |i, out_row| {
            let a_row = self.row(i);
            for (j, o) in out_row.iter_mut().enumerate() {
                *o = crate::vector::dot(a_row, rhs.row(j));
            }
        });
        out
    }

    /// The global policy for implicit routing, degraded to serial below the
    /// row threshold so small products skip thread overhead entirely.
    fn routing_policy(rows: usize) -> &'static crate::ExecPolicy {
        static SERIAL: crate::ExecPolicy = crate::ExecPolicy::serial();
        if rows >= Self::PAR_ROW_THRESHOLD {
            crate::ExecPolicy::global()
        } else {
            &SERIAL
        }
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Element-wise addition.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Multiply every element by `s`.
    pub fn scale(&self, s: f32) -> Matrix {
        let data = self.data.iter().map(|a| a * s).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// In-place `self += alpha * rhs`.
    pub fn axpy(&mut self, alpha: f32, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Add `v` to every row (broadcast).
    pub fn add_row_broadcast(&self, v: &[f32]) -> Matrix {
        assert_eq!(v.len(), self.cols, "broadcast length mismatch");
        let mut out = self.clone();
        for i in 0..out.rows {
            for (o, &b) in out.row_mut(i).iter_mut().zip(v) {
                *o += b;
            }
        }
        out
    }

    /// Mean of each column.
    pub fn col_mean(&self) -> Vec<f32> {
        let mut mean = vec![0.0f32; self.cols];
        if self.rows == 0 {
            return mean;
        }
        for row in self.iter_rows() {
            for (m, &v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        let inv = 1.0 / self.rows as f32;
        for m in &mut mean {
            *m *= inv;
        }
        mean
    }

    /// L2-normalize every row in place; zero rows are left untouched.
    pub fn normalize_rows(&mut self) {
        for i in 0..self.rows {
            crate::vector::normalize(self.row_mut(i));
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Stack matrices vertically; all operands must share a column count.
    pub fn vstack(mats: &[&Matrix]) -> Matrix {
        let cols = mats.first().map_or(0, |m| m.cols);
        let rows = mats.iter().map(|m| m.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for m in mats {
            assert_eq!(m.cols, cols, "vstack column mismatch");
            data.extend_from_slice(&m.data);
        }
        Matrix::from_vec(rows, cols, data)
    }

    /// Extract the sub-matrix made of the given rows (copied).
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix::from_vec(indices.len(), self.cols, data)
    }
}

impl structmine_store::StableHash for Matrix {
    /// Content fingerprint: shape plus the IEEE-754 bit pattern of every
    /// element — two matrices hash equal iff they are bitwise equal.
    fn stable_hash(&self, h: &mut structmine_store::StableHasher) {
        h.write_u64(self.rows as u64);
        h.write_u64(self.cols as u64);
        for &v in &self.data {
            h.write_bytes(&v.to_bits().to_le_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
        proptest::collection::vec(-10.0f32..10.0, rows * cols)
            .prop_map(move |data| Matrix::from_vec(rows, cols, data))
    }

    proptest! {
        /// (A·B)ᵀ = Bᵀ·Aᵀ
        #[test]
        fn transpose_of_product(a in small_matrix(3, 4), b in small_matrix(4, 2)) {
            let left = a.matmul(&b).transpose();
            let right = b.transpose().matmul(&a.transpose());
            for (x, y) in left.data().iter().zip(right.data()) {
                prop_assert!((x - y).abs() < 1e-3);
            }
        }

        /// A·(B + C) = A·B + A·C
        #[test]
        fn matmul_distributes_over_add(
            a in small_matrix(2, 3),
            b in small_matrix(3, 2),
            c in small_matrix(3, 2),
        ) {
            let left = a.matmul(&b.add(&c));
            let right = a.matmul(&b).add(&a.matmul(&c));
            for (x, y) in left.data().iter().zip(right.data()) {
                prop_assert!((x - y).abs() < 1e-2);
            }
        }

        /// Parallel matmul/matmul_t are bitwise identical to serial for
        /// every thread count — the determinism contract of the exec layer.
        #[test]
        fn parallel_matmul_is_bitwise_serial(a in small_matrix(13, 7), b in small_matrix(7, 5)) {
            let serial = a.matmul_with(&b, &crate::ExecPolicy::serial());
            let bt = b.transpose();
            let serial_t = a.matmul_t_with(&bt, &crate::ExecPolicy::serial());
            for threads in [1usize, 2, 3, 8] {
                let policy = crate::ExecPolicy::with_threads(threads);
                prop_assert_eq!(a.matmul_with(&b, &policy).data(), serial.data());
                prop_assert_eq!(a.matmul_t_with(&bt, &policy).data(), serial_t.data());
            }
        }

        /// vstack then select_rows recovers the operands.
        #[test]
        fn vstack_select_inverse(a in small_matrix(2, 3), b in small_matrix(3, 3)) {
            let s = Matrix::vstack(&[&a, &b]);
            prop_assert_eq!(s.select_rows(&[0, 1]), a);
            prop_assert_eq!(s.select_rows(&[2, 3, 4]), b);
        }

        /// Scaling commutes with matmul.
        #[test]
        fn scale_commutes(a in small_matrix(2, 2), b in small_matrix(2, 2), s in -3.0f32..3.0) {
            let left = a.scale(s).matmul(&b);
            let right = a.matmul(&b).scale(s);
            for (x, y) in left.data().iter().zip(right.data()) {
                prop_assert!((x - y).abs() < 1e-2);
            }
        }
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.5, -1.0], &[2.0, -2.0, 0.0]]);
        assert_eq!(a.matmul_t(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn col_mean_of_constant_rows() {
        let a = Matrix::from_rows(&[&[2.0, 4.0], &[2.0, 4.0], &[2.0, 4.0]]);
        assert_eq!(a.col_mean(), vec![2.0, 4.0]);
    }

    #[test]
    fn normalize_rows_gives_unit_norm() {
        let mut a = Matrix::from_rows(&[&[3.0, 4.0], &[0.0, 0.0]]);
        a.normalize_rows();
        assert!((crate::vector::norm(a.row(0)) - 1.0).abs() < 1e-6);
        assert_eq!(a.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn vstack_and_select_rows_round_trip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let s = Matrix::vstack(&[&a, &b]);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.select_rows(&[1, 2]), b);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        a.axpy(0.5, &b);
        assert_eq!(a, Matrix::filled(2, 2, 2.0));
    }
}
