//! Row-major dense `f32` matrix.
//!
//! The workspace only needs a handful of operations (matmul, transpose,
//! element-wise arithmetic, row views), so this type favours clarity and
//! cache-friendly loops over generality.
//!
//! # Matmul kernel
//!
//! `matmul`/`matmul_t` share one blocked kernel: the right-hand operand is
//! packed once per call into contiguous panels of [`NR`] output columns,
//! then output rows are produced [`MR`] at a time by a register-tiled
//! micro-kernel that keeps an `MR x NR` accumulator tile live while
//! streaming the panel, giving `MR` independent fused-multiply-add chains
//! per column vector.
//! Crucially the summation order of every output element is unchanged from
//! the naive kernel — ascending `k`, one accumulator per element, terms
//! with a zero left-hand factor skipped — so the blocked kernel is bitwise
//! identical to the naive reference (up to the sign of exact zeros) and,
//! because packing happens on the calling thread before rows are split
//! across workers, bitwise identical for any thread count. See DESIGN §9.

use serde::{Deserialize, Serialize};

/// Register-tile width of the packed micro-kernel: output columns are
/// processed in panels of `NR` independent accumulators (two 4-wide SIMD
/// lanes after LLVM auto-vectorization).
pub(crate) const NR: usize = 8;

/// Register-tile height of the packed micro-kernel: `MR` output rows are
/// produced together so the inner `k` loop carries `MR` independent
/// accumulator chains. A single row's chain is latency-bound (each
/// fused-multiply-add waits on the previous one); interleaving `MR` rows
/// hides that latency without changing any row's summation order.
pub(crate) const MR: usize = 4;

/// Left-row count below which the packed kernel is skipped: packing costs
/// one pass over the right operand and only pays for itself when amortized
/// across enough output rows. The fallback uses the same per-element
/// summation order, so the choice (a function of shape only) never changes
/// output bits.
const PACK_MIN_ROWS: usize = 8;

thread_local! {
    /// Per-thread scratch for the packed right-hand operand, reused across
    /// calls so steady-state matmuls allocate nothing. Taken (not borrowed)
    /// for the duration of a call, so a re-entrant matmul simply falls back
    /// to a fresh allocation instead of panicking.
    static PACK_SCRATCH: std::cell::Cell<Vec<f32>> = const { std::cell::Cell::new(Vec::new()) };
}

fn with_pack_scratch<R>(f: impl FnOnce(&mut Vec<f32>) -> R) -> R {
    PACK_SCRATCH.with(|cell| {
        let mut buf = cell.take();
        let out = f(&mut buf);
        cell.set(buf);
        out
    })
}

/// A block of output rows of the packed kernel: `out = a_block * B` where
/// `a_block` is a contiguous run of left-hand rows (`rows x k`) and `B`
/// (`k x n`) is packed in `NR`-column panels. Panels are the outer loop so
/// one panel (`k * NR` floats) stays in L1 while it is swept across every
/// `MR`-row register tile of the block. Every output element remains an
/// ascending-`k` sum in its own accumulator, zero `a` terms skipped — the
/// exact summation order of the naive kernel — so row grouping changes
/// instruction interleaving but never output bits.
#[inline]
fn packed_block_kernel(a_block: &[f32], k: usize, packed: &[f32], n: usize, out: &mut [f32]) {
    debug_assert!(k > 0 && n > 0);
    let rows = a_block.len() / k;
    let mut panel_start = 0;
    let mut j0 = 0;
    while j0 < n {
        let w = NR.min(n - j0);
        let panel = &packed[panel_start..panel_start + k * w];
        let mut r0 = 0;
        while r0 < rows {
            let h = MR.min(rows - r0);
            if w == NR && h == MR {
                // Full register tile: MR x NR accumulators, one independent
                // fused-multiply-add chain per row, shared panel loads.
                let mut acc = [[0.0f32; NR]; MR];
                for kk in 0..k {
                    let b = &panel[kk * NR..kk * NR + NR];
                    for (r, acc_r) in acc.iter_mut().enumerate() {
                        let a = a_block[(r0 + r) * k + kk];
                        if a == 0.0 {
                            continue;
                        }
                        for (o, &bv) in acc_r.iter_mut().zip(b) {
                            *o += a * bv;
                        }
                    }
                }
                for (r, acc_r) in acc.iter().enumerate() {
                    let o0 = (r0 + r) * n + j0;
                    out[o0..o0 + NR].copy_from_slice(acc_r);
                }
            } else {
                // Ragged edge (< MR rows left or < NR columns in the last
                // panel): plain per-row sweep, same accumulation order.
                for r in r0..r0 + h {
                    let a_row = &a_block[r * k..(r + 1) * k];
                    let mut acc = [0.0f32; NR];
                    for (kk, &a) in a_row.iter().enumerate() {
                        if a == 0.0 {
                            continue;
                        }
                        let b = &panel[kk * w..kk * w + w];
                        for (o, &bv) in acc[..w].iter_mut().zip(b) {
                            *o += a * bv;
                        }
                    }
                    out[r * n + j0..r * n + j0 + w].copy_from_slice(&acc[..w]);
                }
            }
            r0 += h;
        }
        panel_start += k * w;
        j0 += w;
    }
}

/// [`packed_block_kernel`] without the `a == 0.0` skip, for the Fast
/// precision tier: runtime-dispatched between an explicit SSE2 tile and
/// a portable scalar twin — see [`crate::simd`] for both implementations
/// and the guarantees the Fast tier does (and does not) keep.
#[inline]
fn packed_block_kernel_fast(a_block: &[f32], k: usize, packed: &[f32], n: usize, out: &mut [f32]) {
    crate::simd::packed_block_kernel_fast(a_block, k, packed, n, out);
}

/// Pack a logical `k x n` right-hand operand into `NR`-column panels, each
/// panel contiguous and row-major within itself. `fill(kk, j0, w, dst)`
/// writes logical row `kk`, columns `j0..j0+w`, into `dst`. Packing always
/// runs on the calling thread before any row parallelism, so panel bytes —
/// and everything computed from them — are identical for every thread
/// count. Reports panel count via the `linalg.pack_panels` counter.
fn pack_panels(
    packed: &mut Vec<f32>,
    n: usize,
    k: usize,
    fill: impl Fn(usize, usize, usize, &mut [f32]),
) {
    packed.clear();
    packed.resize(k * n, 0.0);
    let mut panel_start = 0;
    let mut j0 = 0;
    let mut panels = 0u64;
    while j0 < n {
        let w = NR.min(n - j0);
        for kk in 0..k {
            let dst = &mut packed[panel_start + kk * w..panel_start + kk * w + w];
            fill(kk, j0, w, dst);
        }
        panel_start += k * w;
        j0 += w;
        panels += 1;
    }
    structmine_store::obs::counter_add("linalg.pack_panels", panels);
}

/// A right-hand matmul operand pre-packed, once, into the blocked
/// kernel's [`NR`]-column panel layout (DESIGN §14).
///
/// `matmul`/`matmul_t` pack their right operand on **every** call; for
/// inference weights — frozen after `Engine::load` — that pass is pure
/// waste on the serving hot path. A `PackedMatrix` is exactly the panel
/// buffer `pack_panels` would have produced, built ahead of time, so
/// [`Matrix::matmul_prepacked_into`] skips straight to the micro-kernel.
/// Because the panel bytes are a pure function of the operand (packing
/// always happens before any row parallelism) and the kernel consumes
/// them identically, the Exact prepacked product is **bitwise identical**
/// to the per-call path for every shape and thread count — only where
/// the packing happens moves. Property-tested in this module.
///
/// The [`Self::fingerprint`] is a content hash of the source operand and
/// orientation; caches key on it (or on a cheaper generation counter, as
/// `nn::ParamStore` does) to make stale panels impossible.
#[derive(Clone, Debug)]
pub struct PackedMatrix {
    /// Inner dimension: rows of the logical right operand.
    k: usize,
    /// Output columns: columns of the logical right operand.
    n: usize,
    /// Whether this was packed from the transpose ([`Self::pack_transposed`]).
    transposed: bool,
    /// The `NR`-column panels, each `k * w` floats, concatenated.
    panels: Vec<f32>,
    /// Stable content hash of (orientation, source matrix).
    fingerprint: u128,
}

impl PackedMatrix {
    /// Pack `rhs` (`k x n`) for use as the right operand of
    /// [`Matrix::matmul_prepacked_into`] — the prepacked analogue of
    /// `matmul(_, rhs)`. Counts one `linalg.prepack.builds`.
    pub fn pack(rhs: &Matrix) -> Self {
        let (k, n) = rhs.shape();
        let mut panels = Vec::new();
        if k > 0 && n > 0 {
            pack_panels(&mut panels, n, k, |kk, j0, w, dst| {
                dst.copy_from_slice(&rhs.data[kk * n + j0..kk * n + j0 + w]);
            });
        }
        structmine_store::obs::counter_add("linalg.prepack.builds", 1);
        Self {
            k,
            n,
            transposed: false,
            panels,
            fingerprint: Self::fingerprint_of(rhs, false),
        }
    }

    /// Pack `rhs` (`n x k`) as its transpose, for use as the right
    /// operand of [`Matrix::matmul_prepacked_into`] wherever the per-call
    /// code would have used `matmul_t(_, rhs)` (e.g. the tied embedding
    /// table). Counts one `linalg.prepack.builds`.
    pub fn pack_transposed(rhs: &Matrix) -> Self {
        let (n, k) = rhs.shape();
        let mut panels = Vec::new();
        if k > 0 && n > 0 {
            pack_panels(&mut panels, n, k, |kk, j0, _w, dst| {
                for (jj, d) in dst.iter_mut().enumerate() {
                    *d = rhs.data[(j0 + jj) * k + kk];
                }
            });
        }
        structmine_store::obs::counter_add("linalg.prepack.builds", 1);
        Self {
            k,
            n,
            transposed: true,
            panels,
            fingerprint: Self::fingerprint_of(rhs, true),
        }
    }

    fn fingerprint_of(rhs: &Matrix, transposed: bool) -> u128 {
        use structmine_store::StableHash;
        let mut h = structmine_store::StableHasher::new();
        h.write_u64(u64::from(transposed));
        rhs.stable_hash(&mut h);
        h.finish()
    }

    /// Inner dimension (rows of the logical right operand).
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output columns of the product this operand produces.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Whether the panels were packed from the operand's transpose.
    #[inline]
    pub fn is_transposed(&self) -> bool {
        self.transposed
    }

    /// Content hash of (orientation, source matrix): equal iff the
    /// source bytes and orientation are equal.
    #[inline]
    pub fn fingerprint(&self) -> u128 {
        self.fingerprint
    }

    /// Panel buffer size in floats (diagnostics / memory accounting).
    #[inline]
    pub fn panel_len(&self) -> usize {
        self.panels.len()
    }
}

/// A dense row-major matrix of `f32`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Create a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Create a matrix from an owned row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length must equal rows*cols"
        );
        Self { rows, cols, data }
    }

    /// Create a matrix from row slices. All rows must share a length.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "all rows must have equal length");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow the underlying row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Consume the matrix, returning its row-major buffer (for buffer
    /// recycling arenas).
    #[inline]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Mutably borrow the underlying row-major buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.cols + j]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        self.data[i * self.cols + j] = v;
    }

    /// Iterate over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Row count above which `matmul`/`matmul_t` go through the parallel
    /// executor. Each output row is still computed by exactly one thread
    /// with the serial inner loops, so results are bitwise identical to the
    /// serial path for any thread count. Below the threshold the kernel
    /// runs serially regardless of policy — a function of shape only, so
    /// runs at different thread counts execute (and count) identically.
    const PAR_ROW_THRESHOLD: usize = 64;

    /// Matrix product `self * rhs`, under the process-global
    /// [`ExecPolicy`](crate::ExecPolicy) for large left operands.
    ///
    /// # Panics
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        self.matmul_with(rhs, crate::ExecPolicy::global())
    }

    /// Matrix product `self * rhs` under an explicit execution policy.
    pub fn matmul_with(&self, rhs: &Matrix, policy: &crate::ExecPolicy) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into_with(rhs, policy, &mut out);
        out
    }

    /// Matrix product `self * rhs` written into a caller-provided matrix
    /// (fully overwritten; prior contents are irrelevant). Lets arena-style
    /// callers reuse output storage across steps.
    ///
    /// # Panics
    /// Panics if `self.cols != rhs.rows` or `out.shape() != (self.rows, rhs.cols)`.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        self.matmul_into_with(rhs, crate::ExecPolicy::global(), out);
    }

    /// [`Matrix::matmul_into`] under an explicit execution policy.
    pub fn matmul_into_with(&self, rhs: &Matrix, policy: &crate::ExecPolicy, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        assert_eq!(
            out.shape(),
            (self.rows, rhs.cols),
            "matmul output shape mismatch"
        );
        let n = rhs.cols;
        if self.rows >= PACK_MIN_ROWS && self.cols > 0 && n > 0 {
            with_pack_scratch(|packed| {
                pack_panels(packed, n, self.cols, |kk, j0, w, dst| {
                    dst.copy_from_slice(&rhs.data[kk * n + j0..kk * n + j0 + w]);
                });
                let k = self.cols;
                Self::fill_row_blocks(policy, self.rows, n, &mut out.data, |start, block| {
                    let h = block.len() / n;
                    packed_block_kernel(
                        &self.data[start * k..(start + h) * k],
                        k,
                        packed,
                        n,
                        block,
                    );
                });
            });
        } else {
            // Too few rows to amortize packing: i-k-j loops straight over
            // `rhs` rows. Same per-element summation order as the packed
            // kernel, so the two paths agree bitwise.
            Self::fill_rows(policy, self.rows, n, &mut out.data, |i, out_row| {
                out_row.fill(0.0);
                for (k, &a) in self.row(i).iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let b_row = &rhs.data[k * n..(k + 1) * n];
                    for (o, &b) in out_row.iter_mut().zip(b_row) {
                        *o += a * b;
                    }
                }
            });
        }
    }

    /// Fast-tier matrix product `self * rhs` (see
    /// [`Precision::Fast`](crate::exec::Precision::Fast)): same tiling and
    /// parallel split as [`Matrix::matmul_into`], but the branch-free
    /// kernel without the `a == 0.0` skip, so output is *not* bit-compatible
    /// with the exact path. Never called by training code — only
    /// Fast-precision inference graphs select it.
    pub fn matmul_into_fast(&self, rhs: &Matrix, out: &mut Matrix) {
        self.matmul_into_fast_with(rhs, crate::ExecPolicy::global(), out);
    }

    /// [`Matrix::matmul_into_fast`] under an explicit execution policy.
    pub fn matmul_into_fast_with(
        &self,
        rhs: &Matrix,
        policy: &crate::ExecPolicy,
        out: &mut Matrix,
    ) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        assert_eq!(
            out.shape(),
            (self.rows, rhs.cols),
            "matmul output shape mismatch"
        );
        let n = rhs.cols;
        if self.rows >= PACK_MIN_ROWS && self.cols > 0 && n > 0 {
            with_pack_scratch(|packed| {
                pack_panels(packed, n, self.cols, |kk, j0, w, dst| {
                    dst.copy_from_slice(&rhs.data[kk * n + j0..kk * n + j0 + w]);
                });
                let k = self.cols;
                Self::fill_row_blocks(policy, self.rows, n, &mut out.data, |start, block| {
                    let h = block.len() / n;
                    packed_block_kernel_fast(
                        &self.data[start * k..(start + h) * k],
                        k,
                        packed,
                        n,
                        block,
                    );
                });
            });
        } else {
            Self::fill_rows(policy, self.rows, n, &mut out.data, |i, out_row| {
                out_row.fill(0.0);
                for (k, &a) in self.row(i).iter().enumerate() {
                    let b_row = &rhs.data[k * n..(k + 1) * n];
                    for (o, &b) in out_row.iter_mut().zip(b_row) {
                        *o += a * b;
                    }
                }
            });
        }
    }

    /// Matrix product `self * rhs^T`. Avoids materializing the transpose.
    /// Parallel above the same row threshold as [`Matrix::matmul`].
    pub fn matmul_t(&self, rhs: &Matrix) -> Matrix {
        self.matmul_t_with(rhs, crate::ExecPolicy::global())
    }

    /// Matrix product `self * rhs^T` under an explicit execution policy.
    pub fn matmul_t_with(&self, rhs: &Matrix, policy: &crate::ExecPolicy) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        self.matmul_t_into_with(rhs, policy, &mut out);
        out
    }

    /// Matrix product `self * rhs^T` written into a caller-provided matrix
    /// (fully overwritten; prior contents are irrelevant).
    ///
    /// # Panics
    /// Panics if `self.cols != rhs.cols` or `out.shape() != (self.rows, rhs.rows)`.
    pub fn matmul_t_into(&self, rhs: &Matrix, out: &mut Matrix) {
        self.matmul_t_into_with(rhs, crate::ExecPolicy::global(), out);
    }

    /// [`Matrix::matmul_t_into`] under an explicit execution policy.
    pub fn matmul_t_into_with(&self, rhs: &Matrix, policy: &crate::ExecPolicy, out: &mut Matrix) {
        assert_eq!(self.cols, rhs.cols, "matmul_t shape mismatch");
        assert_eq!(
            out.shape(),
            (self.rows, rhs.rows),
            "matmul_t output shape mismatch"
        );
        let n = rhs.rows;
        let k = self.cols;
        if self.rows >= PACK_MIN_ROWS && k > 0 && n > 0 {
            with_pack_scratch(|packed| {
                // Packing interleaves `NR` rhs rows per panel, so the
                // micro-kernel reads one contiguous NR-vector per k step.
                pack_panels(packed, n, k, |kk, j0, _w, dst| {
                    for (jj, d) in dst.iter_mut().enumerate() {
                        *d = rhs.data[(j0 + jj) * k + kk];
                    }
                });
                Self::fill_row_blocks(policy, self.rows, n, &mut out.data, |start, block| {
                    let h = block.len() / n;
                    packed_block_kernel(
                        &self.data[start * k..(start + h) * k],
                        k,
                        packed,
                        n,
                        block,
                    );
                });
            });
        } else {
            Self::fill_rows(policy, self.rows, n, &mut out.data, |i, out_row| {
                let a_row = self.row(i);
                for (j, o) in out_row.iter_mut().enumerate() {
                    let mut acc = 0.0f32;
                    for (&a, &b) in a_row.iter().zip(rhs.row(j)) {
                        if a == 0.0 {
                            continue;
                        }
                        acc += a * b;
                    }
                    *o = acc;
                }
            });
        }
    }

    /// Fast-tier matrix product `self * rhs^T`: the transposed analogue of
    /// [`Matrix::matmul_into_fast`], with the same dropped guarantees.
    pub fn matmul_t_into_fast(&self, rhs: &Matrix, out: &mut Matrix) {
        self.matmul_t_into_fast_with(rhs, crate::ExecPolicy::global(), out);
    }

    /// [`Matrix::matmul_t_into_fast`] under an explicit execution policy.
    pub fn matmul_t_into_fast_with(
        &self,
        rhs: &Matrix,
        policy: &crate::ExecPolicy,
        out: &mut Matrix,
    ) {
        assert_eq!(self.cols, rhs.cols, "matmul_t shape mismatch");
        assert_eq!(
            out.shape(),
            (self.rows, rhs.rows),
            "matmul_t output shape mismatch"
        );
        let n = rhs.rows;
        let k = self.cols;
        if self.rows >= PACK_MIN_ROWS && k > 0 && n > 0 {
            with_pack_scratch(|packed| {
                pack_panels(packed, n, k, |kk, j0, _w, dst| {
                    for (jj, d) in dst.iter_mut().enumerate() {
                        *d = rhs.data[(j0 + jj) * k + kk];
                    }
                });
                Self::fill_row_blocks(policy, self.rows, n, &mut out.data, |start, block| {
                    let h = block.len() / n;
                    packed_block_kernel_fast(
                        &self.data[start * k..(start + h) * k],
                        k,
                        packed,
                        n,
                        block,
                    );
                });
            });
        } else {
            Self::fill_rows(policy, self.rows, n, &mut out.data, |i, out_row| {
                let a_row = self.row(i);
                for (j, o) in out_row.iter_mut().enumerate() {
                    let mut acc = 0.0f32;
                    for (&a, &b) in a_row.iter().zip(rhs.row(j)) {
                        acc += a * b;
                    }
                    *o = acc;
                }
            });
        }
    }

    /// Matrix product `self * B` where `B` arrives pre-packed as a
    /// [`PackedMatrix`] (either orientation — packing normalizes both to
    /// the same panel layout). **Bitwise identical** to
    /// [`Matrix::matmul_into`] (resp. [`Matrix::matmul_t_into`] for a
    /// transposed pack) for every shape and thread count: the packed
    /// kernel and the small-row fallback share one per-element summation
    /// order, so this path may use the packed kernel unconditionally.
    /// Counts one `linalg.prepack.hits`.
    ///
    /// # Panics
    /// Panics if `self.cols != packed.k()` or
    /// `out.shape() != (self.rows, packed.n())`.
    pub fn matmul_prepacked_into(&self, packed: &PackedMatrix, out: &mut Matrix) {
        self.matmul_prepacked_into_with(packed, crate::ExecPolicy::global(), out);
    }

    /// [`Matrix::matmul_prepacked_into`] under an explicit execution policy.
    pub fn matmul_prepacked_into_with(
        &self,
        packed: &PackedMatrix,
        policy: &crate::ExecPolicy,
        out: &mut Matrix,
    ) {
        self.prepacked_dispatch(packed, policy, out, packed_block_kernel);
    }

    /// Fast-tier prepacked product: [`Matrix::matmul_prepacked_into`]
    /// with the branch-free SIMD-dispatched kernel, i.e. the prepacked
    /// analogue of [`Matrix::matmul_into_fast`] (bit-compatibility with
    /// the Exact tier is documented away, agreement is bounded by the
    /// Fast tier's tolerance harness). Counts one `linalg.prepack.hits`.
    pub fn matmul_prepacked_fast_into(&self, packed: &PackedMatrix, out: &mut Matrix) {
        self.matmul_prepacked_fast_into_with(packed, crate::ExecPolicy::global(), out);
    }

    /// [`Matrix::matmul_prepacked_fast_into`] under an explicit execution
    /// policy.
    pub fn matmul_prepacked_fast_into_with(
        &self,
        packed: &PackedMatrix,
        policy: &crate::ExecPolicy,
        out: &mut Matrix,
    ) {
        self.prepacked_dispatch(packed, policy, out, packed_block_kernel_fast);
    }

    fn prepacked_dispatch(
        &self,
        packed: &PackedMatrix,
        policy: &crate::ExecPolicy,
        out: &mut Matrix,
        kernel: fn(&[f32], usize, &[f32], usize, &mut [f32]),
    ) {
        assert_eq!(
            self.cols, packed.k,
            "prepacked matmul shape mismatch: {}x{} * packed {}x{}",
            self.rows, self.cols, packed.k, packed.n
        );
        assert_eq!(
            out.shape(),
            (self.rows, packed.n),
            "prepacked matmul output shape mismatch"
        );
        structmine_store::obs::counter_add("linalg.prepack.hits", 1);
        let (k, n) = (packed.k, packed.n);
        if k == 0 {
            // Empty inner dimension: the product is all zeros (same +0.0
            // the per-call fallback writes).
            out.data.fill(0.0);
            return;
        }
        Self::fill_row_blocks(policy, self.rows, n, &mut out.data, |start, block| {
            let h = block.len() / n;
            kernel(
                &self.data[start * k..(start + h) * k],
                k,
                &packed.panels,
                n,
                block,
            );
        });
    }

    /// Row-filling driver shared by both products: serial below
    /// [`Self::PAR_ROW_THRESHOLD`] (a shape-only decision, so small
    /// products skip executor bookkeeping identically at every thread
    /// count), the deterministic parallel executor above it.
    fn fill_rows<F>(
        policy: &crate::ExecPolicy,
        n_rows: usize,
        row_len: usize,
        out: &mut [f32],
        f: F,
    ) where
        F: Fn(usize, &mut [f32]) + Sync,
    {
        if row_len == 0 {
            return;
        }
        if n_rows < Self::PAR_ROW_THRESHOLD {
            for (i, row) in out.chunks_exact_mut(row_len).enumerate() {
                f(i, row);
            }
        } else {
            crate::exec::par_fill_rows(policy, n_rows, row_len, out, f);
        }
    }

    /// Block variant of [`Self::fill_rows`] for the packed kernel: the
    /// callback receives a whole contiguous row block (`f(start_row,
    /// block)`) so it can register-tile across rows. Same serial/parallel
    /// threshold, so the decision stays a function of shape only.
    fn fill_row_blocks<F>(
        policy: &crate::ExecPolicy,
        n_rows: usize,
        row_len: usize,
        out: &mut [f32],
        f: F,
    ) where
        F: Fn(usize, &mut [f32]) + Sync,
    {
        if row_len == 0 {
            return;
        }
        if n_rows < Self::PAR_ROW_THRESHOLD {
            f(0, out);
        } else {
            crate::exec::par_fill_row_blocks(policy, n_rows, row_len, out, f);
        }
    }

    /// Transpose, blocked into 32x32 tiles so both the source rows and the
    /// destination columns stay within cache lines. A pure permutation —
    /// bitwise identical to the naive element loop.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        self.transpose_into(&mut out);
        out
    }

    /// Transpose into a caller-provided matrix (fully overwritten).
    ///
    /// # Panics
    /// Panics if `out.shape() != (self.cols, self.rows)`.
    pub fn transpose_into(&self, out: &mut Matrix) {
        const TB: usize = 32;
        assert_eq!(
            out.shape(),
            (self.cols, self.rows),
            "transpose output shape mismatch"
        );
        for ib in (0..self.rows).step_by(TB) {
            let i_end = (ib + TB).min(self.rows);
            for jb in (0..self.cols).step_by(TB) {
                let j_end = (jb + TB).min(self.cols);
                for i in ib..i_end {
                    let row = &self.data[i * self.cols..(i + 1) * self.cols];
                    for (j, &v) in row.iter().enumerate().take(j_end).skip(jb) {
                        out.data[j * self.rows + i] = v;
                    }
                }
            }
        }
    }

    /// Element-wise addition.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Multiply every element by `s`.
    pub fn scale(&self, s: f32) -> Matrix {
        let data = self.data.iter().map(|a| a * s).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// In-place `self *= s` (same per-element arithmetic as [`Matrix::scale`]).
    pub fn scale_in_place(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// In-place `self += alpha * rhs`.
    pub fn axpy(&mut self, alpha: f32, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Add `v` to every row (broadcast).
    pub fn add_row_broadcast(&self, v: &[f32]) -> Matrix {
        assert_eq!(v.len(), self.cols, "broadcast length mismatch");
        let mut out = self.clone();
        for i in 0..out.rows {
            for (o, &b) in out.row_mut(i).iter_mut().zip(v) {
                *o += b;
            }
        }
        out
    }

    /// Mean of each column.
    pub fn col_mean(&self) -> Vec<f32> {
        let mut mean = vec![0.0f32; self.cols];
        if self.rows == 0 {
            return mean;
        }
        for row in self.iter_rows() {
            for (m, &v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        let inv = 1.0 / self.rows as f32;
        for m in &mut mean {
            *m *= inv;
        }
        mean
    }

    /// L2-normalize every row in place; zero rows are left untouched.
    pub fn normalize_rows(&mut self) {
        for i in 0..self.rows {
            crate::vector::normalize(self.row_mut(i));
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Stack matrices vertically; all operands must share a column count.
    pub fn vstack(mats: &[&Matrix]) -> Matrix {
        let cols = mats.first().map_or(0, |m| m.cols);
        let rows = mats.iter().map(|m| m.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for m in mats {
            assert_eq!(m.cols, cols, "vstack column mismatch");
            data.extend_from_slice(&m.data);
        }
        Matrix::from_vec(rows, cols, data)
    }

    /// Extract the sub-matrix made of the given rows (copied).
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix::from_vec(indices.len(), self.cols, data)
    }
}

impl structmine_store::StableHash for Matrix {
    /// Content fingerprint: shape plus the IEEE-754 bit pattern of every
    /// element — two matrices hash equal iff they are bitwise equal.
    fn stable_hash(&self, h: &mut structmine_store::StableHasher) {
        h.write_u64(self.rows as u64);
        h.write_u64(self.cols as u64);
        for &v in &self.data {
            h.write_bytes(&v.to_bits().to_le_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
        proptest::collection::vec(-10.0f32..10.0, rows * cols)
            .prop_map(move |data| Matrix::from_vec(rows, cols, data))
    }

    proptest! {
        /// (A·B)ᵀ = Bᵀ·Aᵀ
        #[test]
        fn transpose_of_product(a in small_matrix(3, 4), b in small_matrix(4, 2)) {
            let left = a.matmul(&b).transpose();
            let right = b.transpose().matmul(&a.transpose());
            for (x, y) in left.data().iter().zip(right.data()) {
                prop_assert!((x - y).abs() < 1e-3);
            }
        }

        /// A·(B + C) = A·B + A·C
        #[test]
        fn matmul_distributes_over_add(
            a in small_matrix(2, 3),
            b in small_matrix(3, 2),
            c in small_matrix(3, 2),
        ) {
            let left = a.matmul(&b.add(&c));
            let right = a.matmul(&b).add(&a.matmul(&c));
            for (x, y) in left.data().iter().zip(right.data()) {
                prop_assert!((x - y).abs() < 1e-2);
            }
        }

        /// Parallel matmul/matmul_t are bitwise identical to serial for
        /// every thread count — the determinism contract of the exec layer.
        /// 70 rows puts the products above PAR_ROW_THRESHOLD so the
        /// parallel executor actually engages.
        #[test]
        fn parallel_matmul_is_bitwise_serial(a in small_matrix(70, 7), b in small_matrix(7, 5)) {
            let serial = a.matmul_with(&b, &crate::ExecPolicy::serial());
            let bt = b.transpose();
            let serial_t = a.matmul_t_with(&bt, &crate::ExecPolicy::serial());
            for threads in [1usize, 2, 3, 8] {
                let policy = crate::ExecPolicy::with_threads(threads);
                prop_assert_eq!(a.matmul_with(&b, &policy).data(), serial.data());
                prop_assert_eq!(a.matmul_t_with(&bt, &policy).data(), serial_t.data());
            }
        }

        /// The blocked/packed kernel agrees with a naive triple-loop
        /// reference within tolerance for arbitrary shapes in 1..64 —
        /// covering the packed path, the small-row fallback, and ragged
        /// last panels. Zeros are mixed in so the `a == 0.0` skip is hit.
        #[test]
        fn blocked_matmul_matches_naive_reference(
            m in 1usize..64,
            k in 1usize..64,
            n in 1usize..64,
            a_pool in proptest::collection::vec(-10.0f32..10.0, 64 * 64),
            b_pool in proptest::collection::vec(-10.0f32..10.0, 64 * 64),
        ) {
            // Zero out a stride of the left operand so the `a == 0.0` skip
            // is exercised alongside dense values.
            let mut a_data = a_pool[..m * k].to_vec();
            for v in a_data.iter_mut().step_by(7) {
                *v = 0.0;
            }
            let a = Matrix::from_vec(m, k, a_data);
            let b = Matrix::from_vec(k, n, b_pool[..k * n].to_vec());
            // Naive i-j-k reference, no blocking, no zero skip.
            let mut reference = Matrix::zeros(m, n);
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for kk in 0..k {
                        acc += a.get(i, kk) * b.get(kk, j);
                    }
                    reference.set(i, j, acc);
                }
            }
            let blocked = a.matmul(&b);
            let bt = b.transpose();
            let blocked_t = a.matmul_t(&bt);
            for i in 0..m {
                for j in 0..n {
                    prop_assert!((blocked.get(i, j) - reference.get(i, j)).abs() < 1e-5);
                    prop_assert!((blocked_t.get(i, j) - reference.get(i, j)).abs() < 1e-5);
                }
            }
        }

        /// The `_into` variants are bitwise identical at 1 vs 4 threads and
        /// fully overwrite stale buffer contents (the arena reuse contract).
        #[test]
        fn matmul_into_is_bitwise_thread_invariant(a in small_matrix(70, 9), b in small_matrix(9, 6)) {
            let bt = b.transpose();
            let one = crate::ExecPolicy::with_threads(1);
            let four = crate::ExecPolicy::with_threads(4);
            let mut out1 = Matrix::filled(70, 6, f32::NAN);
            let mut out4 = Matrix::filled(70, 6, -7.25);
            a.matmul_into_with(&b, &one, &mut out1);
            a.matmul_into_with(&b, &four, &mut out4);
            prop_assert_eq!(out1.data(), out4.data());
            let mut t1 = Matrix::filled(70, 6, f32::NAN);
            let mut t4 = Matrix::filled(70, 6, 3.5);
            a.matmul_t_into_with(&bt, &one, &mut t1);
            a.matmul_t_into_with(&bt, &four, &mut t4);
            prop_assert_eq!(t1.data(), t4.data());
            prop_assert_eq!(out1.data(), t1.data());
        }

        /// vstack then select_rows recovers the operands.
        #[test]
        fn vstack_select_inverse(a in small_matrix(2, 3), b in small_matrix(3, 3)) {
            let s = Matrix::vstack(&[&a, &b]);
            prop_assert_eq!(s.select_rows(&[0, 1]), a);
            prop_assert_eq!(s.select_rows(&[2, 3, 4]), b);
        }

        /// Scaling commutes with matmul.
        #[test]
        fn scale_commutes(a in small_matrix(2, 2), b in small_matrix(2, 2), s in -3.0f32..3.0) {
            let left = a.scale(s).matmul(&b);
            let right = a.matmul(&b).scale(s);
            for (x, y) in left.data().iter().zip(right.data()) {
                prop_assert!((x - y).abs() < 1e-2);
            }
        }
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.5, -1.0], &[2.0, -2.0, 0.0]]);
        assert_eq!(a.matmul_t(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn col_mean_of_constant_rows() {
        let a = Matrix::from_rows(&[&[2.0, 4.0], &[2.0, 4.0], &[2.0, 4.0]]);
        assert_eq!(a.col_mean(), vec![2.0, 4.0]);
    }

    #[test]
    fn normalize_rows_gives_unit_norm() {
        let mut a = Matrix::from_rows(&[&[3.0, 4.0], &[0.0, 0.0]]);
        a.normalize_rows();
        assert!((crate::vector::norm(a.row(0)) - 1.0).abs() < 1e-6);
        assert_eq!(a.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn vstack_and_select_rows_round_trip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let s = Matrix::vstack(&[&a, &b]);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.select_rows(&[1, 2]), b);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        a.axpy(0.5, &b);
        assert_eq!(a, Matrix::filled(2, 2, 2.0));
    }

    /// The fast kernel drops the zero-skip and ordering guarantees, not
    /// correctness: on shapes covering both the packed and fallback paths
    /// (and ragged tile edges) it must agree with the exact kernel to
    /// f32 round-off, including when the left operand carries exact zeros.
    fn gaussian_matrix(rows: usize, cols: usize, rng: &mut rand::rngs::StdRng) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        crate::rng::fill_gaussian(rng, &mut m.data, 1.0);
        m
    }

    #[test]
    fn fast_matmul_agrees_with_exact_within_roundoff() {
        let mut rng = crate::rng::seeded(41);
        for &(m, k, n) in &[(3usize, 5usize, 4usize), (8, 16, 9), (70, 33, 21)] {
            let mut a = gaussian_matrix(m, k, &mut rng);
            let b = gaussian_matrix(k, n, &mut rng);
            // Sprinkle exact zeros: the exact kernel skips them, the fast
            // kernel multiplies through — results must still agree.
            for i in 0..m {
                a.row_mut(i)[i % k] = 0.0;
            }
            let exact = a.matmul_with(&b, &crate::ExecPolicy::serial());
            let mut fast = Matrix::zeros(m, n);
            a.matmul_into_fast_with(&b, &crate::ExecPolicy::serial(), &mut fast);
            for (e, f) in exact.data.iter().zip(&fast.data) {
                assert!((e - f).abs() <= 1e-4 * (1.0 + e.abs()), "e={e} f={f}");
            }

            let bt = b.transpose();
            let exact_t = a.matmul_t_with(&bt, &crate::ExecPolicy::serial());
            let mut fast_t = Matrix::zeros(m, n);
            a.matmul_t_into_fast_with(&bt, &crate::ExecPolicy::serial(), &mut fast_t);
            for (e, f) in exact_t.data.iter().zip(&fast_t.data) {
                assert!((e - f).abs() <= 1e-4 * (1.0 + e.abs()), "e={e} f={f}");
            }
        }
    }

    proptest! {
        /// The tentpole bitwise contract: an Exact product against a
        /// pre-packed operand is bit-identical to the per-call packed
        /// path — across arbitrary shapes (covering the packed path, the
        /// small-row fallback, and ragged last panels), both packing
        /// orientations, and every thread count. Zeros are mixed into
        /// the left operand so the `a == 0.0` skip is exercised.
        #[test]
        fn prepacked_exact_matmul_is_bitwise_per_call(
            m in 1usize..64,
            k in 1usize..64,
            n in 1usize..64,
            a_pool in proptest::collection::vec(-10.0f32..10.0, 64 * 64),
            b_pool in proptest::collection::vec(-10.0f32..10.0, 64 * 64),
        ) {
            let mut a_data = a_pool[..m * k].to_vec();
            for v in a_data.iter_mut().step_by(5) {
                *v = 0.0;
            }
            let a = Matrix::from_vec(m, k, a_data);
            let b = Matrix::from_vec(k, n, b_pool[..k * n].to_vec());
            let bt = b.transpose();
            let packed = PackedMatrix::pack(&b);
            let packed_t = PackedMatrix::pack_transposed(&bt);
            prop_assert!(!packed.is_transposed());
            prop_assert!(packed_t.is_transposed());
            for threads in [1usize, 2, 4] {
                let policy = crate::ExecPolicy::with_threads(threads);
                let mut per_call = Matrix::filled(m, n, f32::NAN);
                let mut pre = Matrix::filled(m, n, -3.5);
                a.matmul_into_with(&b, &policy, &mut per_call);
                a.matmul_prepacked_into_with(&packed, &policy, &mut pre);
                for (x, y) in per_call.data().iter().zip(pre.data()) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
                let mut per_call_t = Matrix::filled(m, n, f32::NAN);
                let mut pre_t = Matrix::filled(m, n, 7.0);
                a.matmul_t_into_with(&bt, &policy, &mut per_call_t);
                a.matmul_prepacked_into_with(&packed_t, &policy, &mut pre_t);
                for (x, y) in per_call_t.data().iter().zip(pre_t.data()) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }

        /// Fast-tier prepacked products are bitwise equal to the per-call
        /// fast path too: the dispatched kernel is the same, prepacking
        /// only moves where the panels are built.
        #[test]
        fn prepacked_fast_matmul_is_bitwise_per_call(
            m in 1usize..48,
            k in 1usize..48,
            n in 1usize..48,
            a_pool in proptest::collection::vec(-8.0f32..8.0, 48 * 48),
            b_pool in proptest::collection::vec(-8.0f32..8.0, 48 * 48),
        ) {
            let a = Matrix::from_vec(m, k, a_pool[..m * k].to_vec());
            let b = Matrix::from_vec(k, n, b_pool[..k * n].to_vec());
            let packed = PackedMatrix::pack(&b);
            let policy = crate::ExecPolicy::serial();
            let mut per_call = Matrix::zeros(m, n);
            let mut pre = Matrix::filled(m, n, f32::NAN);
            a.matmul_into_fast_with(&b, &policy, &mut per_call);
            a.matmul_prepacked_fast_into_with(&packed, &policy, &mut pre);
            for (x, y) in per_call.data().iter().zip(pre.data()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    /// Fingerprints are content hashes: equal for equal operands, and
    /// sensitive to any element change and to the packing orientation.
    #[test]
    fn packed_matrix_fingerprint_tracks_content() {
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let same = PackedMatrix::pack(&b);
        assert_eq!(PackedMatrix::pack(&b).fingerprint(), same.fingerprint());
        let mut changed = b.clone();
        changed.set(1, 0, 3.25);
        assert_ne!(
            PackedMatrix::pack(&changed).fingerprint(),
            same.fingerprint()
        );
        // Orientation is part of the key: a symmetric source packs to the
        // same panels either way, but must not alias in a cache.
        let sym = Matrix::from_rows(&[&[1.0, 5.0], &[5.0, 2.0]]);
        assert_ne!(
            PackedMatrix::pack(&sym).fingerprint(),
            PackedMatrix::pack_transposed(&sym).fingerprint()
        );
    }

    /// Degenerate shapes: an empty inner dimension must produce the same
    /// all-zero output the per-call fallback writes.
    #[test]
    fn prepacked_matmul_handles_empty_inner_dim() {
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 4);
        let packed = PackedMatrix::pack(&b);
        let mut out = Matrix::filled(3, 4, f32::NAN);
        a.matmul_prepacked_into(&packed, &mut out);
        assert!(out.data().iter().all(|&v| v == 0.0));
    }

    /// Fast-tier output is still deterministic: thread count must not
    /// change bits (chunked rows, one writer per element — same structural
    /// argument as the exact path).
    #[test]
    fn fast_matmul_is_thread_count_invariant() {
        let mut rng = crate::rng::seeded(42);
        let a = gaussian_matrix(70, 24, &mut rng);
        let b = gaussian_matrix(24, 18, &mut rng);
        let mut serial = Matrix::zeros(70, 18);
        a.matmul_into_fast_with(&b, &crate::ExecPolicy::serial(), &mut serial);
        for threads in [2, 3, 8] {
            let mut par = Matrix::zeros(70, 18);
            a.matmul_into_fast_with(&b, &crate::ExecPolicy::with_threads(threads), &mut par);
            assert_eq!(serial.data, par.data, "threads={threads}");
        }
    }
}
