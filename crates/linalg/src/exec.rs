//! Deterministic parallel execution policy for the whole workspace.
//!
//! Every parallel code path in structmine funnels through this module, and
//! all of it obeys one rule: **output must be bitwise identical for any
//! thread count**. That is achieved structurally, not probabilistically —
//! work is split into fixed, index-ordered chunks, each output element is
//! computed by exactly one thread using the same scalar code the serial
//! path uses, and results are merged in chunk order. No reductions ever
//! cross a chunk boundary, so floating-point non-associativity never
//! enters the picture.
//!
//! Threads are scoped (`std::thread::scope`), so borrowed inputs work
//! without `Arc` and a panic in any worker propagates to the caller.
//! The thread count comes from [`ExecPolicy`]: explicit, from the
//! `STRUCTMINE_THREADS` environment variable, or from
//! `std::thread::available_parallelism`.

use std::num::NonZeroUsize;
use std::sync::OnceLock;

/// Numeric precision tier for *inference* arithmetic.
///
/// * [`Precision::Exact`] — the workspace default: every transcendental
///   goes through libm, the matmul kernels keep their per-element
///   summation order and `a == 0.0` skip, and all output is bitwise
///   reproducible across thread counts, processes, and cache states.
/// * [`Precision::Fast`] — an explicitly opt-in serving tier: polynomial
///   `tanh`/`exp` approximations ([`crate::fastmath`]), a fused GELU
///   forward with no cached-tanh bookkeeping, and matmul kernels without
///   the zero-skip branch. Output is deterministic for a fixed build but
///   is **not** bit-compatible with Exact; it is gated by the tolerance
///   harness (label agreement ≥ 99.5% on the standard eval recipes).
///
/// Training and adaptation always run Exact regardless of the policy: the
/// tier selects which inference graphs the PLM constructs, and gradient
/// graphs are never constructed at Fast precision.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Precision {
    /// Bitwise-reproducible arithmetic (the default everywhere).
    #[default]
    Exact,
    /// Approximate inference-only arithmetic, tolerance-gated.
    Fast,
}

impl Precision {
    /// Parse a CLI/env spelling. Accepts `exact` and `fast` (trimmed,
    /// ASCII case-insensitive); anything else is an error naming the
    /// valid spellings.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "exact" => Ok(Precision::Exact),
            "fast" => Ok(Precision::Fast),
            other => Err(format!(
                "unknown precision '{other}' (expected 'exact' or 'fast')"
            )),
        }
    }

    /// The canonical spelling, as accepted by [`Precision::parse`].
    pub fn name(&self) -> &'static str {
        match self {
            Precision::Exact => "exact",
            Precision::Fast => "fast",
        }
    }

    /// Read the tier from `STRUCTMINE_PRECISION`; unset or invalid values
    /// fall back to Exact (the conservative default — a typo must never
    /// silently enable approximate arithmetic... nor silently disable the
    /// bit-compat contract the rest of the stack documents).
    pub fn from_env() -> Self {
        match std::env::var("STRUCTMINE_PRECISION") {
            Ok(v) => Precision::parse(&v).unwrap_or(Precision::Exact),
            Err(_) => Precision::Exact,
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl structmine_store::StableHash for Precision {
    fn stable_hash(&self, h: &mut structmine_store::StableHasher) {
        h.write_bytes(self.name().as_bytes());
    }
}

/// How many worker threads data-parallel operations may use, and at which
/// [`Precision`] tier inference arithmetic runs.
///
/// The policy is a plain value — cheap to copy, compare and embed in method
/// configs — and is threaded through the corpus→representation pipeline
/// (`plm::repr::encode_corpus`, the core methods' `exec` fields, the CLI's
/// `--threads` flag). The thread count can never change outputs; the
/// precision tier can, which is why stage fingerprints hash
/// [`ExecPolicy::precision`] and nothing else from the policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecPolicy {
    threads: usize,
    precision: Precision,
}

impl ExecPolicy {
    /// Single-threaded execution at Exact precision.
    pub const fn serial() -> Self {
        ExecPolicy {
            threads: 1,
            precision: Precision::Exact,
        }
    }

    /// Exactly `threads` workers (values below 1 are clamped to 1), Exact
    /// precision.
    pub fn with_threads(threads: usize) -> Self {
        ExecPolicy {
            threads: threads.max(1),
            precision: Precision::Exact,
        }
    }

    /// This policy with the given precision tier.
    pub fn with_precision(self, precision: Precision) -> Self {
        ExecPolicy { precision, ..self }
    }

    /// Read the policy from the environment: `STRUCTMINE_THREADS` if set
    /// (invalid or zero values fall back to 1), otherwise the machine's
    /// available parallelism; plus the precision tier from
    /// `STRUCTMINE_PRECISION` (see [`Precision::from_env`]).
    pub fn from_env() -> Self {
        let threads = match std::env::var("STRUCTMINE_THREADS") {
            Ok(v) => v.trim().parse::<usize>().unwrap_or(1).max(1),
            Err(_) => std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
        };
        ExecPolicy {
            threads,
            precision: Precision::from_env(),
        }
    }

    /// The process-wide default policy, resolved from the environment once
    /// on first use. Hot paths that have no policy parameter (e.g.
    /// [`Matrix::matmul`](crate::Matrix::matmul)) consult this.
    pub fn global() -> &'static ExecPolicy {
        static GLOBAL: OnceLock<ExecPolicy> = OnceLock::new();
        GLOBAL.get_or_init(ExecPolicy::from_env)
    }

    /// The worker count (always ≥ 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The inference precision tier.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// True when this policy admits real parallelism for `n` items.
    pub fn is_parallel_for(&self, n: usize) -> bool {
        self.threads > 1 && n > 1
    }
}

impl Default for ExecPolicy {
    fn default() -> Self {
        ExecPolicy::from_env()
    }
}

/// Re-raise a worker panic with context: which helper, which chunk, which
/// item range, and (when one is set) the pipeline stage that was running —
/// `structmine_store::context` labels are pushed by the store around every
/// memoized compute and by each method's `run()` entry point. The payload
/// message is preserved so the original assertion text is not lost.
fn resume_worker_panic(
    helper: &str,
    chunk: usize,
    range: (usize, usize),
    payload: Box<dyn std::any::Any + Send>,
) -> ! {
    let message = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string panic payload>".to_string());
    let stage = structmine_store::context::current_stage_label()
        .map(|s| format!(" during stage '{s}'"))
        .unwrap_or_default();
    panic!(
        "{helper} worker for chunk {chunk} (items {}..{}) panicked{stage}: {message}",
        range.0, range.1
    );
}

/// The fixed, index-ordered chunk boundaries for `n` items across
/// `threads` workers: the first `n % threads` chunks take one extra item.
/// Returns `(start, end)` pairs covering `0..n` in order.
fn chunk_bounds(n: usize, threads: usize) -> Vec<(usize, usize)> {
    let t = threads.min(n).max(1);
    let base = n / t;
    let extra = n % t;
    let mut bounds = Vec::with_capacity(t);
    let mut start = 0;
    for c in 0..t {
        let len = base + usize::from(c < extra);
        bounds.push((start, start + len));
        start += len;
    }
    bounds
}

/// Map `f` over `items` in parallel, deterministically.
///
/// `f(i, &items[i])` must be a pure function of its arguments; under that
/// contract the result is bitwise identical to the serial
/// `items.iter().enumerate().map(..)` for **any** thread count, because
/// each element is computed by exactly one worker with the same scalar
/// code and results are merged in chunk order.
pub fn par_map_chunks<T, U, F>(policy: &ExecPolicy, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let n = items.len();
    // Counted at entry, before the serial/parallel split, so the values are
    // identical for every thread count (they fingerprint the workload, not
    // the schedule).
    structmine_store::obs::counter_add("exec.par_calls", 1);
    structmine_store::obs::counter_add("exec.par_items", n as u64);
    if !policy.is_parallel_for(n) {
        // Serial execution is one chunk — counted so the counter key exists
        // for every thread count (only its value is thread-dependent, and
        // the `thread` token in the name puts it under report masking).
        structmine_store::obs::counter_add("exec.thread_chunks", 1);
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let bounds = chunk_bounds(n, policy.threads);
    structmine_store::obs::counter_add("exec.thread_chunks", bounds.len() as u64);
    let f = &f;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(bounds.len().saturating_sub(1));
        // Chunks 1.. run on workers; chunk 0 runs on the calling thread.
        for &(start, end) in &bounds[1..] {
            let chunk = &items[start..end];
            handles.push(scope.spawn(move || {
                chunk
                    .iter()
                    .enumerate()
                    .map(|(k, x)| f(start + k, x))
                    .collect::<Vec<U>>()
            }));
        }
        let (s0, e0) = bounds[0];
        let mut out: Vec<U> = items[s0..e0]
            .iter()
            .enumerate()
            .map(|(k, x)| f(s0 + k, x))
            .collect();
        out.reserve_exact(n - out.len());
        for (w, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(part) => out.extend(part),
                Err(payload) => {
                    resume_worker_panic("par_map_chunks", w + 1, bounds[w + 1], payload)
                }
            }
        }
        out
    })
}

/// Fill the rows of a pre-allocated row-major buffer in parallel,
/// deterministically. `out.len()` must equal `n_rows * row_len`; worker
/// `c` fills the `c`-th fixed chunk of rows in place via
/// `f(row_index, row_slice)`. Used by the matmul hot path to avoid any
/// per-row allocation.
pub fn par_fill_rows<F>(policy: &ExecPolicy, n_rows: usize, row_len: usize, out: &mut [f32], f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert_eq!(
        out.len(),
        n_rows * row_len,
        "par_fill_rows buffer shape mismatch"
    );
    if row_len == 0 {
        return;
    }
    structmine_store::obs::counter_add("exec.par_calls", 1);
    structmine_store::obs::counter_add("exec.par_items", n_rows as u64);
    if !policy.is_parallel_for(n_rows) {
        // One chunk, like the serial path of `par_map_chunks`.
        structmine_store::obs::counter_add("exec.thread_chunks", 1);
        for (i, row) in out.chunks_exact_mut(row_len).enumerate() {
            f(i, row);
        }
        return;
    }
    let bounds = chunk_bounds(n_rows, policy.threads);
    structmine_store::obs::counter_add("exec.thread_chunks", bounds.len() as u64);
    let f = &f;
    std::thread::scope(|scope| {
        let mut rest = out;
        let mut handles = Vec::with_capacity(bounds.len());
        for &(start, end) in &bounds {
            let (chunk, tail) = rest.split_at_mut((end - start) * row_len);
            rest = tail;
            handles.push(scope.spawn(move || {
                for (k, row) in chunk.chunks_exact_mut(row_len).enumerate() {
                    f(start + k, row);
                }
            }));
        }
        for (w, h) in handles.into_iter().enumerate() {
            if let Err(payload) = h.join() {
                resume_worker_panic("par_fill_rows", w, bounds[w], payload);
            }
        }
    });
}

/// Like [`par_fill_rows`], but hands each worker its whole contiguous row
/// block in a single call as `f(start_row, block)`, for kernels that tile
/// across rows. Chunk boundaries, ordering, and observability counters are
/// identical to [`par_fill_rows`]; because every output element is still
/// computed by exactly one thread with the same per-element arithmetic,
/// results are bitwise identical for any thread count even though row
/// grouping inside a block may differ.
pub fn par_fill_row_blocks<F>(
    policy: &ExecPolicy,
    n_rows: usize,
    row_len: usize,
    out: &mut [f32],
    f: F,
) where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert_eq!(
        out.len(),
        n_rows * row_len,
        "par_fill_row_blocks buffer shape mismatch"
    );
    if row_len == 0 {
        return;
    }
    structmine_store::obs::counter_add("exec.par_calls", 1);
    structmine_store::obs::counter_add("exec.par_items", n_rows as u64);
    if !policy.is_parallel_for(n_rows) {
        structmine_store::obs::counter_add("exec.thread_chunks", 1);
        f(0, out);
        return;
    }
    let bounds = chunk_bounds(n_rows, policy.threads);
    structmine_store::obs::counter_add("exec.thread_chunks", bounds.len() as u64);
    let f = &f;
    std::thread::scope(|scope| {
        let mut rest = out;
        let mut handles = Vec::with_capacity(bounds.len());
        for &(start, end) in &bounds {
            let (chunk, tail) = rest.split_at_mut((end - start) * row_len);
            rest = tail;
            handles.push(scope.spawn(move || f(start, chunk)));
        }
        for (w, h) in handles.into_iter().enumerate() {
            if let Err(payload) = h.join() {
                resume_worker_panic("par_fill_row_blocks", w, bounds[w], payload);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_bounds_partition_in_order() {
        for n in [0usize, 1, 2, 7, 16, 100] {
            for t in [1usize, 2, 3, 8, 64] {
                let bounds = chunk_bounds(n, t);
                let mut expect_start = 0;
                for &(s, e) in &bounds {
                    assert_eq!(s, expect_start);
                    assert!(e >= s);
                    expect_start = e;
                }
                assert_eq!(expect_start, n);
                if n > 0 {
                    let sizes: Vec<usize> = bounds.iter().map(|&(s, e)| e - s).collect();
                    let max = *sizes.iter().max().unwrap();
                    let min = *sizes.iter().min().unwrap();
                    assert!(max - min <= 1, "chunks must be balanced: {sizes:?}");
                }
            }
        }
    }

    #[test]
    fn par_map_matches_serial_for_every_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let serial: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, x)| x.wrapping_mul(31) ^ i as u64)
            .collect();
        for threads in [1, 2, 3, 8, 33] {
            let policy = ExecPolicy::with_threads(threads);
            let par = par_map_chunks(&policy, &items, |i, x| x.wrapping_mul(31) ^ i as u64);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn par_fill_rows_matches_serial() {
        let n_rows = 23;
        let row_len = 5;
        let mut serial = vec![0.0f32; n_rows * row_len];
        for (i, row) in serial.chunks_exact_mut(row_len).enumerate() {
            for (j, v) in row.iter_mut().enumerate() {
                *v = (i * 31 + j) as f32 * 0.5;
            }
        }
        for threads in [1, 2, 3, 8] {
            let policy = ExecPolicy::with_threads(threads);
            let mut out = vec![0.0f32; n_rows * row_len];
            par_fill_rows(&policy, n_rows, row_len, &mut out, |i, row| {
                for (j, v) in row.iter_mut().enumerate() {
                    *v = (i * 31 + j) as f32 * 0.5;
                }
            });
            assert_eq!(out, serial, "threads={threads}");
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let policy = ExecPolicy::with_threads(4);
        let out: Vec<u32> = par_map_chunks(&policy, &[] as &[u32], |_, &x| x);
        assert!(out.is_empty());
        let mut buf: Vec<f32> = Vec::new();
        par_fill_rows(&policy, 0, 7, &mut buf, |_, _| unreachable!());
    }

    #[test]
    fn worker_panic_carries_chunk_and_stage_context() {
        let items: Vec<u32> = (0..64).collect();
        let policy = ExecPolicy::with_threads(4);
        let caught = std::panic::catch_unwind(|| {
            structmine_store::context::with_stage_label("test/explode", || {
                par_map_chunks(&policy, &items, |i, &x| {
                    assert!(i < 40, "item {i} out of tolerance");
                    x
                })
            })
        });
        let payload = caught.expect_err("worker assertion must propagate");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("enriched panic carries a String payload");
        assert!(message.contains("par_map_chunks worker"), "{message}");
        assert!(message.contains("chunk"), "{message}");
        assert!(message.contains("test/explode"), "{message}");
        assert!(message.contains("out of tolerance"), "{message}");

        let caught = std::panic::catch_unwind(|| {
            let mut buf = vec![0.0f32; 64];
            par_fill_rows(&policy, 16, 4, &mut buf, |i, _| {
                assert!(i < 10, "row {i} rejected");
            });
        });
        let payload = caught.expect_err("fill worker assertion must propagate");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(message.contains("par_fill_rows worker"), "{message}");
        assert!(
            message.contains("row 1") || message.contains("rejected"),
            "{message}"
        );
    }

    #[test]
    fn policy_constructors_clamp() {
        assert_eq!(ExecPolicy::with_threads(0).threads(), 1);
        assert_eq!(ExecPolicy::serial().threads(), 1);
        assert!(ExecPolicy::from_env().threads() >= 1);
    }

    #[test]
    fn precision_parses_and_defaults_exact() {
        assert_eq!(Precision::parse("exact"), Ok(Precision::Exact));
        assert_eq!(Precision::parse(" Fast \n"), Ok(Precision::Fast));
        assert!(Precision::parse("fastest").is_err());
        assert_eq!(Precision::default(), Precision::Exact);
        assert_eq!(ExecPolicy::serial().precision(), Precision::Exact);
        assert_eq!(ExecPolicy::with_threads(4).precision(), Precision::Exact);
        let fast = ExecPolicy::serial().with_precision(Precision::Fast);
        assert_eq!(fast.precision(), Precision::Fast);
        assert_eq!(fast.threads(), 1, "with_precision keeps the thread count");
    }

    #[test]
    fn precision_tiers_hash_differently() {
        use structmine_store::fingerprint_of;
        let exact = fingerprint_of(&Precision::Exact);
        let fast = fingerprint_of(&Precision::Fast);
        assert_ne!(
            exact, fast,
            "tiers must produce distinct stage fingerprints"
        );
    }
}
