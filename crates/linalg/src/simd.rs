//! Runtime-dispatched SSE2 micro-kernels for the Fast precision tier.
//!
//! Every function here has two implementations with identical arithmetic
//! structure: an explicit `f32x4` SSE2 version (`std::arch::x86_64`) and
//! the portable scalar code it was derived from. Dispatch happens at
//! runtime via `is_x86_feature_detected!("sse2")` — never at compile time
//! — because this workspace's reference container is a virtualized host
//! where `-C target-cpu=native` measurably *hurts* (the hypervisor
//! advertises AVX the host executes at half rate; DESIGN §14 has the
//! numbers). SSE2-first is the deliberate ceiling: it is the x86-64
//! baseline, so the detected branch is taken on effectively every x86
//! machine, and the scalar fallback exists for other architectures and
//! is exercised by the same test suite (`*_scalar` twins are public for
//! exactly that purpose).
//!
//! None of this is reachable from Exact-tier code: only the Fast kernels
//! ([`Matrix::matmul_into_fast`], the fast GELU/softmax/LayerNorm row
//! passes) route through this module, so the bitwise-reproducibility
//! contract of the Exact tier is untouched. Within the Fast tier the
//! SSE2 and scalar paths agree *bitwise* for finite inputs on the matmul
//! and `tanh`/`exp` kernels (same operation order, and SSE2 `mulps`/
//! `addps`/`divps` round identically to scalar `f32` ops); the row
//! reductions (softmax sum/max, LayerNorm mean/variance) tree-reduce
//! four lanes and so may differ from scalar in the last bits — inside
//! the documented Fast-tier bounds, and still deterministic for a fixed
//! input length.
//!
//! [`Matrix::matmul_into_fast`]: crate::Matrix::matmul_into_fast

use crate::fastmath;
use crate::matrix::{MR, NR};

/// Whether the SSE2 branches are taken on this machine. `true` on every
/// x86-64 (SSE2 is the architecture baseline), `false` elsewhere; public
/// so tests can assert which path the suite actually exercised.
#[inline]
pub fn sse2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("sse2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

// ------------------------------------------------------------- matmul tile

/// Fast-tier packed block kernel: runtime dispatch between the SSE2 tile
/// and the scalar twin. Same contract as the scalar version (see
/// [`packed_block_kernel_fast_scalar`]); callers are the Fast matmul
/// entry points in `matrix.rs`.
#[inline]
pub(crate) fn packed_block_kernel_fast(
    a_block: &[f32],
    k: usize,
    packed: &[f32],
    n: usize,
    out: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if sse2_available() {
        // SAFETY: SSE2 support verified at runtime on the line above.
        unsafe { packed_block_kernel_fast_sse2(a_block, k, packed, n, out) };
        return;
    }
    packed_block_kernel_fast_scalar(a_block, k, packed, n, out);
}

/// Portable fast-tier block kernel: the exact kernel's tiling without the
/// `a == 0.0` skip, so the inner loop is a straight multiply-add sweep
/// with no data-dependent branch. The result can differ from the exact
/// kernel in the last bits because zero left-hand contributions (and
/// `-0.0`/NaN propagation through them) are no longer skipped — exactly
/// the guarantee [`Precision::Fast`] documents away.
///
/// [`Precision::Fast`]: crate::exec::Precision::Fast
pub(crate) fn packed_block_kernel_fast_scalar(
    a_block: &[f32],
    k: usize,
    packed: &[f32],
    n: usize,
    out: &mut [f32],
) {
    debug_assert!(k > 0 && n > 0);
    let rows = a_block.len() / k;
    let mut panel_start = 0;
    let mut j0 = 0;
    while j0 < n {
        let w = NR.min(n - j0);
        let panel = &packed[panel_start..panel_start + k * w];
        let mut r0 = 0;
        while r0 < rows {
            let h = MR.min(rows - r0);
            if w == NR && h == MR {
                let mut acc = [[0.0f32; NR]; MR];
                for kk in 0..k {
                    let b = &panel[kk * NR..kk * NR + NR];
                    for (r, acc_r) in acc.iter_mut().enumerate() {
                        let a = a_block[(r0 + r) * k + kk];
                        for (o, &bv) in acc_r.iter_mut().zip(b) {
                            *o += a * bv;
                        }
                    }
                }
                for (r, acc_r) in acc.iter().enumerate() {
                    let o0 = (r0 + r) * n + j0;
                    out[o0..o0 + NR].copy_from_slice(acc_r);
                }
            } else {
                for r in r0..r0 + h {
                    let a_row = &a_block[r * k..(r + 1) * k];
                    let mut acc = [0.0f32; NR];
                    for (kk, &a) in a_row.iter().enumerate() {
                        let b = &panel[kk * w..kk * w + w];
                        for (o, &bv) in acc[..w].iter_mut().zip(b) {
                            *o += a * bv;
                        }
                    }
                    out[r * n + j0..r * n + j0 + w].copy_from_slice(&acc[..w]);
                }
            }
            r0 += h;
        }
        panel_start += k * w;
        j0 += w;
    }
}

/// SSE2 fast-tier block kernel: the full `MR x NR` register tile holds
/// eight `__m128` accumulators (two 4-lane vectors per row); each `k`
/// step loads the panel's `NR`-vector once and broadcasts one left-hand
/// scalar per row. `mulps` + `addps` round identically to the scalar
/// `a * b` then `+=`, and the lane order equals the scalar `j` order, so
/// the full tile is bitwise equal to the scalar twin for finite inputs.
/// Ragged edges (< MR rows or < NR columns) reuse the scalar sweep.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn packed_block_kernel_fast_sse2(
    a_block: &[f32],
    k: usize,
    packed: &[f32],
    n: usize,
    out: &mut [f32],
) {
    use std::arch::x86_64::*;
    debug_assert!(k > 0 && n > 0);
    let rows = a_block.len() / k;
    let mut panel_start = 0;
    let mut j0 = 0;
    while j0 < n {
        let w = NR.min(n - j0);
        let panel = &packed[panel_start..panel_start + k * w];
        let mut r0 = 0;
        while r0 < rows {
            let h = MR.min(rows - r0);
            if w == NR && h == MR {
                let mut acc = [[_mm_setzero_ps(); 2]; MR];
                for kk in 0..k {
                    let b0 = _mm_loadu_ps(panel.as_ptr().add(kk * NR));
                    let b1 = _mm_loadu_ps(panel.as_ptr().add(kk * NR + 4));
                    for (r, acc_r) in acc.iter_mut().enumerate() {
                        let a = _mm_set1_ps(*a_block.get_unchecked((r0 + r) * k + kk));
                        acc_r[0] = _mm_add_ps(acc_r[0], _mm_mul_ps(a, b0));
                        acc_r[1] = _mm_add_ps(acc_r[1], _mm_mul_ps(a, b1));
                    }
                }
                for (r, acc_r) in acc.iter().enumerate() {
                    let o0 = (r0 + r) * n + j0;
                    _mm_storeu_ps(out.as_mut_ptr().add(o0), acc_r[0]);
                    _mm_storeu_ps(out.as_mut_ptr().add(o0 + 4), acc_r[1]);
                }
            } else {
                for r in r0..r0 + h {
                    let a_row = &a_block[r * k..(r + 1) * k];
                    let mut acc = [0.0f32; NR];
                    for (kk, &a) in a_row.iter().enumerate() {
                        let b = &panel[kk * w..kk * w + w];
                        for (o, &bv) in acc[..w].iter_mut().zip(b) {
                            *o += a * bv;
                        }
                    }
                    out[r * n + j0..r * n + j0 + w].copy_from_slice(&acc[..w]);
                }
            }
            r0 += h;
        }
        panel_start += k * w;
        j0 += w;
    }
}

// -------------------------------------------------------- tanh / exp rows

/// Apply [`fastmath::fast_tanh`] over a slice: SSE2 four-at-a-time where
/// available, the scalar twin elsewhere and for the tail. Bitwise equal
/// to the scalar loop for finite inputs (same clamp, same polynomial
/// evaluation order, identically-rounded ops).
#[inline]
pub fn fast_tanh_slice(xs: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if sse2_available() {
        // SAFETY: SSE2 verified at runtime.
        unsafe { fast_tanh_slice_sse2(xs) };
        return;
    }
    fast_tanh_slice_scalar(xs);
}

/// Scalar twin of [`fast_tanh_slice`] — the portable fallback, public so
/// the property suite runs against both paths.
#[inline]
pub fn fast_tanh_slice_scalar(xs: &mut [f32]) {
    for x in xs {
        *x = fastmath::fast_tanh(*x);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn fast_tanh_slice_sse2(xs: &mut [f32]) {
    use std::arch::x86_64::*;
    let lo = _mm_set1_ps(-fastmath::TANH_CLAMP);
    let hi = _mm_set1_ps(fastmath::TANH_CLAMP);
    let c0 = _mm_set1_ps(135135.0);
    let c1 = _mm_set1_ps(17325.0);
    let c2 = _mm_set1_ps(378.0);
    let d1 = _mm_set1_ps(62370.0);
    let d2 = _mm_set1_ps(3150.0);
    let d3 = _mm_set1_ps(28.0);
    let mut chunks = xs.chunks_exact_mut(4);
    for c in &mut chunks {
        let x = _mm_loadu_ps(c.as_ptr());
        let x = _mm_max_ps(_mm_min_ps(x, hi), lo);
        let x2 = _mm_mul_ps(x, x);
        // p = x * (135135 + x² (17325 + x² (378 + x²)))
        let p = _mm_mul_ps(
            x,
            _mm_add_ps(
                c0,
                _mm_mul_ps(x2, _mm_add_ps(c1, _mm_mul_ps(x2, _mm_add_ps(c2, x2)))),
            ),
        );
        // q = 135135 + x² (62370 + x² (3150 + 28 x²))
        let q = _mm_add_ps(
            c0,
            _mm_mul_ps(
                x2,
                _mm_add_ps(d1, _mm_mul_ps(x2, _mm_add_ps(d2, _mm_mul_ps(x2, d3)))),
            ),
        );
        _mm_storeu_ps(c.as_mut_ptr(), _mm_div_ps(p, q));
    }
    fast_tanh_slice_scalar(chunks.into_remainder());
}

/// Apply [`fastmath::fast_exp`] over a slice: SSE2 four-at-a-time where
/// available, scalar elsewhere and for the tail. Bitwise equal to the
/// scalar loop for finite inputs (the round-to-nearest magic split and
/// the degree-5 polynomial evaluate in the same order; `cvtps2dq` on the
/// already-integral `n` equals the scalar `as i32`).
#[inline]
pub fn fast_exp_slice(xs: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if sse2_available() {
        // SAFETY: SSE2 verified at runtime.
        unsafe { fast_exp_slice_sse2(xs) };
        return;
    }
    fast_exp_slice_scalar(xs);
}

/// Scalar twin of [`fast_exp_slice`].
#[inline]
pub fn fast_exp_slice_scalar(xs: &mut [f32]) {
    for x in xs {
        *x = fastmath::fast_exp(*x);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn fast_exp_slice_sse2(xs: &mut [f32]) {
    use std::arch::x86_64::*;
    let log2_e = _mm_set1_ps(std::f32::consts::LOG2_E);
    let ln_2 = _mm_set1_ps(std::f32::consts::LN_2);
    let magic = _mm_set1_ps(12_582_912.0); // 1.5 * 2^23, round-to-nearest split
    let lo = _mm_set1_ps(fastmath::EXP_MIN_EXP2);
    let hi = _mm_set1_ps(126.0);
    let one = _mm_set1_ps(1.0);
    let half = _mm_set1_ps(0.5);
    let c3 = _mm_set1_ps(1.0 / 6.0);
    let c4 = _mm_set1_ps(1.0 / 24.0);
    let c5 = _mm_set1_ps(1.0 / 120.0);
    let bias = _mm_set1_epi32(127);
    let mut chunks = xs.chunks_exact_mut(4);
    for c in &mut chunks {
        let x = _mm_loadu_ps(c.as_ptr());
        let y = _mm_max_ps(_mm_min_ps(_mm_mul_ps(x, log2_e), hi), lo);
        let shifted = _mm_add_ps(y, magic);
        let n = _mm_sub_ps(shifted, magic); // round(y), exact
        let f = _mm_sub_ps(y, n); // in [-0.5, 0.5]
        let t = _mm_mul_ps(f, ln_2);
        // 1 + t(1 + t(1/2 + t(1/6 + t(1/24 + t/120)))) — scalar order.
        let poly = _mm_add_ps(
            one,
            _mm_mul_ps(
                t,
                _mm_add_ps(
                    one,
                    _mm_mul_ps(
                        t,
                        _mm_add_ps(
                            half,
                            _mm_mul_ps(
                                t,
                                _mm_add_ps(c3, _mm_mul_ps(t, _mm_add_ps(c4, _mm_mul_ps(t, c5)))),
                            ),
                        ),
                    ),
                ),
            ),
        );
        // 2^n via the exponent field; n ∈ [-60, 126] so the shift is safe.
        let scale = _mm_castsi128_ps(_mm_slli_epi32(_mm_add_epi32(_mm_cvtps_epi32(n), bias), 23));
        _mm_storeu_ps(c.as_mut_ptr(), _mm_mul_ps(poly, scale));
    }
    fast_exp_slice_scalar(chunks.into_remainder());
}

// --------------------------------------------------------- row reductions

/// Fast-tier softmax row pass: max-subtract, `fast_exp`, normalize —
/// the same stable structure as `stats::softmax_inplace`, four lanes at
/// a time. The max and sum reductions tree-reduce the lanes, so the
/// normalizer can differ from the scalar twin in the last bits (max is
/// order-independent; the sum is not) — deterministic for a fixed row
/// length, and inside the Fast tier's documented tolerance.
#[inline]
pub fn softmax_row_fast(a: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if sse2_available() {
        // SAFETY: SSE2 verified at runtime.
        unsafe { softmax_row_fast_sse2(a) };
        return;
    }
    softmax_row_fast_scalar(a);
}

/// Scalar twin of [`softmax_row_fast`] — the original Fast-tier row pass.
pub fn softmax_row_fast_scalar(a: &mut [f32]) {
    if a.is_empty() {
        return;
    }
    let max = a.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in a.iter_mut() {
        *v = fastmath::fast_exp(*v - max);
        sum += *v;
    }
    if sum > 0.0 {
        let inv = 1.0 / sum;
        for v in a {
            *v *= inv;
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn softmax_row_fast_sse2(a: &mut [f32]) {
    use std::arch::x86_64::*;
    if a.is_empty() {
        return;
    }
    // Row max: lane-wise max, horizontally folded (order-independent).
    let mut max = f32::NEG_INFINITY;
    {
        let mut chunks = a.chunks_exact(4);
        let mut m4 = _mm_set1_ps(f32::NEG_INFINITY);
        for c in &mut chunks {
            m4 = _mm_max_ps(m4, _mm_loadu_ps(c.as_ptr()));
        }
        let mut lanes = [0.0f32; 4];
        _mm_storeu_ps(lanes.as_mut_ptr(), m4);
        for l in lanes {
            max = max.max(l);
        }
        for &v in chunks.remainder() {
            max = max.max(v);
        }
    }
    // Shift, exponentiate, accumulate the normalizer.
    for v in a.iter_mut() {
        *v -= max;
    }
    fast_exp_slice_sse2(a);
    let mut sum;
    {
        let mut chunks = a.chunks_exact(4);
        let mut s4 = _mm_setzero_ps();
        for c in &mut chunks {
            s4 = _mm_add_ps(s4, _mm_loadu_ps(c.as_ptr()));
        }
        let mut lanes = [0.0f32; 4];
        _mm_storeu_ps(lanes.as_mut_ptr(), s4);
        sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
        for &v in chunks.remainder() {
            sum += v;
        }
    }
    if sum > 0.0 {
        let inv = _mm_set1_ps(1.0 / sum);
        let mut chunks = a.chunks_exact_mut(4);
        for c in &mut chunks {
            _mm_storeu_ps(c.as_mut_ptr(), _mm_mul_ps(_mm_loadu_ps(c.as_ptr()), inv));
        }
        let inv1 = 1.0 / sum;
        for v in chunks.into_remainder() {
            *v *= inv1;
        }
    }
}

/// Fast-tier LayerNorm row pass: mean/variance reduction then the
/// `(x - mean) * istd * gain + bias` affine sweep. Lane reductions may
/// shift the last bits versus the scalar twin; the affine sweep itself is
/// element-wise and rounds identically.
#[inline]
pub fn layer_norm_row_fast(row: &mut [f32], gain: &[f32], bias: &[f32], eps: f32) {
    #[cfg(target_arch = "x86_64")]
    if sse2_available() {
        // SAFETY: SSE2 verified at runtime.
        unsafe { layer_norm_row_fast_sse2(row, gain, bias, eps) };
        return;
    }
    layer_norm_row_fast_scalar(row, gain, bias, eps);
}

/// Scalar twin of [`layer_norm_row_fast`]: the Exact tier's per-row
/// loops (mean, variance, normalize-affine) verbatim.
pub fn layer_norm_row_fast_scalar(row: &mut [f32], gain: &[f32], bias: &[f32], eps: f32) {
    debug_assert_eq!(row.len(), gain.len());
    debug_assert_eq!(row.len(), bias.len());
    if row.is_empty() {
        return;
    }
    let n = row.len() as f32;
    let mean = row.iter().sum::<f32>() / n;
    let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
    let istd = 1.0 / (var + eps).sqrt();
    for ((v, &g), &b) in row.iter_mut().zip(gain).zip(bias) {
        *v = (*v - mean) * istd * g + b;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn layer_norm_row_fast_sse2(row: &mut [f32], gain: &[f32], bias: &[f32], eps: f32) {
    use std::arch::x86_64::*;
    debug_assert_eq!(row.len(), gain.len());
    debug_assert_eq!(row.len(), bias.len());
    if row.is_empty() {
        return;
    }
    let n = row.len() as f32;
    let hsum = |v: __m128| -> f32 {
        let mut lanes = [0.0f32; 4];
        _mm_storeu_ps(lanes.as_mut_ptr(), v);
        lanes[0] + lanes[1] + lanes[2] + lanes[3]
    };
    let mean = {
        let mut chunks = row.chunks_exact(4);
        let mut s4 = _mm_setzero_ps();
        for c in &mut chunks {
            s4 = _mm_add_ps(s4, _mm_loadu_ps(c.as_ptr()));
        }
        let mut sum = hsum(s4);
        for &v in chunks.remainder() {
            sum += v;
        }
        sum / n
    };
    let var = {
        let m4 = _mm_set1_ps(mean);
        let mut chunks = row.chunks_exact(4);
        let mut s4 = _mm_setzero_ps();
        for c in &mut chunks {
            let d = _mm_sub_ps(_mm_loadu_ps(c.as_ptr()), m4);
            s4 = _mm_add_ps(s4, _mm_mul_ps(d, d));
        }
        let mut sum = hsum(s4);
        for &v in chunks.remainder() {
            sum += (v - mean) * (v - mean);
        }
        sum / n
    };
    let istd = 1.0 / (var + eps).sqrt();
    let m4 = _mm_set1_ps(mean);
    let s4 = _mm_set1_ps(istd);
    let len4 = row.len() - row.len() % 4;
    for i in (0..len4).step_by(4) {
        let x = _mm_loadu_ps(row.as_ptr().add(i));
        let g = _mm_loadu_ps(gain.as_ptr().add(i));
        let b = _mm_loadu_ps(bias.as_ptr().add(i));
        let y = _mm_add_ps(_mm_mul_ps(_mm_mul_ps(_mm_sub_ps(x, m4), s4), g), b);
        _mm_storeu_ps(row.as_mut_ptr().add(i), y);
    }
    for i in len4..row.len() {
        row[i] = (row[i] - mean) * istd * gain[i] + bias[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sse2_detected_on_x86_64() {
        // On the x86-64 CI/reference hosts the SIMD branch must actually
        // be the one under test; elsewhere the scalar fallback is.
        if cfg!(target_arch = "x86_64") {
            assert!(sse2_available());
        } else {
            assert!(!sse2_available());
        }
    }

    proptest! {
        /// The dispatched tanh slice pass agrees with the scalar twin
        /// bitwise for finite inputs — same clamp, same polynomial, same
        /// rounding — so either path passes the fastmath error-bound
        /// suite identically.
        #[test]
        fn tanh_slice_simd_matches_scalar_bitwise(
            v in proptest::collection::vec(-50.0f32..50.0, 0..67)
        ) {
            let mut simd = v.clone();
            let mut scalar = v.clone();
            fast_tanh_slice(&mut simd);
            fast_tanh_slice_scalar(&mut scalar);
            for (s, c) in simd.iter().zip(&scalar) {
                prop_assert_eq!(s.to_bits(), c.to_bits());
            }
        }

        /// Same for the exp slice pass, across exp's full accurate range
        /// plus the saturated tail.
        #[test]
        fn exp_slice_simd_matches_scalar_bitwise(
            v in proptest::collection::vec(-200.0f32..87.0, 0..67)
        ) {
            let mut simd = v.clone();
            let mut scalar = v.clone();
            fast_exp_slice(&mut simd);
            fast_exp_slice_scalar(&mut scalar);
            for (s, c) in simd.iter().zip(&scalar) {
                prop_assert_eq!(s.to_bits(), c.to_bits());
            }
        }

        /// Softmax row pass: the SIMD reduction may move the normalizer's
        /// last bits, so the contract is a tolerance (well inside the
        /// Fast tier's documented bounds), plus distribution shape.
        #[test]
        fn softmax_row_simd_tracks_scalar(
            v in proptest::collection::vec(-50.0f32..50.0, 1..67)
        ) {
            let mut simd = v.clone();
            let mut scalar = v.clone();
            softmax_row_fast(&mut simd);
            softmax_row_fast_scalar(&mut scalar);
            prop_assert!((simd.iter().sum::<f32>() - 1.0).abs() < 1e-4);
            for (s, c) in simd.iter().zip(&scalar) {
                prop_assert!((s - c).abs() <= 1e-6, "simd={s} scalar={c}");
            }
        }

        /// LayerNorm row pass: same tolerance argument as softmax.
        #[test]
        fn layer_norm_row_simd_tracks_scalar(
            v in proptest::collection::vec(-10.0f32..10.0, 1..67),
            g in -2.0f32..2.0,
            b in -2.0f32..2.0,
        ) {
            let gain = vec![g; v.len()];
            let bias = vec![b; v.len()];
            let mut simd = v.clone();
            let mut scalar = v.clone();
            layer_norm_row_fast(&mut simd, &gain, &bias, 1e-5);
            layer_norm_row_fast_scalar(&mut scalar, &gain, &bias, 1e-5);
            for (s, c) in simd.iter().zip(&scalar) {
                prop_assert!((s - c).abs() <= 1e-4 * (1.0 + c.abs()), "simd={s} scalar={c}");
            }
        }
    }

    /// The scalar fallback passes the same error-bound suite as the
    /// dispatched path: run fastmath's documented contracts against the
    /// explicit `*_scalar` twins (on x86-64 the dispatched assertions
    /// above cover the SSE2 side of the same bounds).
    #[test]
    fn scalar_fallback_meets_fastmath_bounds() {
        let mut xs: Vec<f32> = (-1000..=1000).map(|i| i as f32 * 8e-3).collect();
        let expect_tanh: Vec<f32> = xs.iter().map(|x| x.tanh()).collect();
        fast_tanh_slice_scalar(&mut xs);
        for (got, want) in xs.iter().zip(&expect_tanh) {
            assert!((got - want).abs() <= 2e-4);
        }
        let mut xs: Vec<f32> = (-400..=800).map(|i| i as f32 * 0.1).collect();
        let expect_exp: Vec<f32> = xs.iter().map(|x| x.exp()).collect();
        fast_exp_slice_scalar(&mut xs);
        for (got, want) in xs.iter().zip(&expect_exp) {
            assert!(((got - want) / want).abs() <= 1e-5);
        }
    }
}
