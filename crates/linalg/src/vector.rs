//! Slice-based vector helpers.
//!
//! Free functions over `&[f32]` / `&mut [f32]` so callers are never forced
//! into a wrapper type; embedding tables and hidden states flow through the
//! workspace as plain slices.

/// Dot product. Panics in debug builds on length mismatch.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance between two vectors.
#[inline]
pub fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Cosine similarity; returns 0 when either vector is all-zero.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot(a, b) / (na * nb)
    }
}

/// L2-normalize in place; all-zero vectors are left untouched.
pub fn normalize(a: &mut [f32]) {
    let n = norm(a);
    if n > 0.0 {
        let inv = 1.0 / n;
        for v in a {
            *v *= inv;
        }
    }
}

/// Return an L2-normalized copy.
pub fn normalized(a: &[f32]) -> Vec<f32> {
    let mut v = a.to_vec();
    normalize(&mut v);
    v
}

/// `a += alpha * b`, in place.
#[inline]
pub fn axpy(a: &mut [f32], alpha: f32, b: &[f32]) {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter_mut().zip(b) {
        *x += alpha * y;
    }
}

/// Element-wise in-place scale.
#[inline]
pub fn scale(a: &mut [f32], alpha: f32) {
    for x in a {
        *x *= alpha;
    }
}

/// Arithmetic mean of a set of equal-length vectors; empty input gives an
/// all-zero vector of length `dim`.
pub fn mean_of(vectors: &[&[f32]], dim: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; dim];
    if vectors.is_empty() {
        return out;
    }
    for v in vectors {
        axpy(&mut out, 1.0, v);
    }
    scale(&mut out, 1.0 / vectors.len() as f32);
    out
}

/// Index of the maximum element (first on ties); `None` for empty input.
pub fn argmax(a: &[f32]) -> Option<usize> {
    if a.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, &v) in a.iter().enumerate().skip(1) {
        if v > a[best] {
            best = i;
        }
    }
    Some(best)
}

/// Indices of the `k` largest elements, in descending order of value.
pub fn top_k(a: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..a.len()).collect();
    idx.sort_by(|&i, &j| a[j].partial_cmp(&a[i]).unwrap_or(std::cmp::Ordering::Equal));
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cosine_of_parallel_vectors_is_one() {
        assert!((cosine(&[1.0, 2.0], &[2.0, 4.0]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_orthogonal_vectors_is_zero() {
        assert!(cosine(&[1.0, 0.0], &[0.0, 5.0]).abs() < 1e-6);
    }

    #[test]
    fn cosine_handles_zero_vector() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), Some(1));
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn top_k_orders_descending() {
        assert_eq!(top_k(&[0.1, 0.9, 0.5, 0.7], 3), vec![1, 3, 2]);
    }

    #[test]
    fn mean_of_vectors() {
        let a = [1.0, 3.0];
        let b = [3.0, 5.0];
        assert_eq!(mean_of(&[&a, &b], 2), vec![2.0, 4.0]);
        assert_eq!(mean_of(&[], 2), vec![0.0, 0.0]);
    }

    proptest! {
        #[test]
        fn normalize_gives_unit_norm(v in proptest::collection::vec(-100.0f32..100.0, 1..32)) {
            prop_assume!(norm(&v) > 1e-3);
            let n = normalized(&v);
            prop_assert!((norm(&n) - 1.0).abs() < 1e-4);
        }

        #[test]
        fn cosine_is_bounded(
            a in proptest::collection::vec(-10.0f32..10.0, 8),
            b in proptest::collection::vec(-10.0f32..10.0, 8),
        ) {
            let c = cosine(&a, &b);
            prop_assert!((-1.0 - 1e-4..=1.0 + 1e-4).contains(&c));
        }

        #[test]
        fn sq_dist_is_symmetric(
            a in proptest::collection::vec(-10.0f32..10.0, 8),
            b in proptest::collection::vec(-10.0f32..10.0, 8),
        ) {
            prop_assert!((sq_dist(&a, &b) - sq_dist(&b, &a)).abs() < 1e-4);
        }
    }
}
