//! Branch-free polynomial approximations backing [`Precision::Fast`].
//!
//! The Exact tier spends ~26% of a corpus encode inside scalar libm
//! `tanh`/`exp` (BENCH_kernels.json); these replacements trade the last
//! few digits for straight-line arithmetic the autovectorizer can work
//! with. Both functions are total over finite inputs, monotone
//! non-decreasing, and carry documented error bounds that the property
//! tests in this module enforce:
//!
//! * [`fast_tanh`] — odd rational (Padé 7/6) with the input clamped to
//!   `|x| ≤ 4.9`. Absolute error ≤ 2e-4 over all of ℝ (≤ 2e-5 for
//!   `|x| ≤ 4`); output stays strictly inside `(-1, 1)`.
//! * [`fast_exp`] — `2^n · 2^f` with round-to-nearest split and a
//!   degree-5 polynomial for `2^f`, `f ∈ [-0.5, 0.5]`. Relative error
//!   ≤ 1e-5 for `x ∈ [-41, 87]`; inputs are clamped so the result is
//!   always finite, positive, and *normal* (underflow saturates near
//!   `2^-60`, overflow near `2^126` — the low floor keeps subnormals,
//!   and their per-op microcode penalty, out of every downstream
//!   computation).
//!
//! None of this is used by Exact-tier code paths: training, adaptation,
//! and the default inference graphs never call into this module.
//!
//! [`Precision::Fast`]: crate::exec::Precision::Fast

/// Largest input magnitude the tanh rational is evaluated at. Beyond it
/// the true tanh is within 1.1e-4 of ±1 and the *unclamped* rational
/// would exceed 1 in magnitude, so the clamp is a correctness bound, not
/// just an optimization.
pub(crate) const TANH_CLAMP: f32 = 4.9;

/// Fast hyperbolic tangent: odd Padé(7,6) rational, clamped, branch-free.
///
/// Contract (property-tested below):
/// * `|fast_tanh(x) - tanh(x)| ≤ 2e-4` for every finite `x`;
/// * monotone non-decreasing;
/// * odd (`fast_tanh(-x) == -fast_tanh(x)` bitwise);
/// * `|fast_tanh(x)| < 1` always.
#[inline]
pub fn fast_tanh(x: f32) -> f32 {
    // min/max compile to branch-free scalar SSE min/max.
    let x = x.clamp(-TANH_CLAMP, TANH_CLAMP);
    let x2 = x * x;
    // tanh(x) ≈ x (135135 + 17325 x² + 378 x⁴ + x⁶)
    //          / (135135 + 62370 x² + 3150 x⁴ + 28 x⁶)
    let p = x * (135135.0 + x2 * (17325.0 + x2 * (378.0 + x2)));
    let q = 135135.0 + x2 * (62370.0 + x2 * (3150.0 + x2 * 28.0));
    p / q
}

/// Smallest base-2 exponent [`fast_exp`] evaluates at: outputs saturate
/// at ~`2^-60` (≈ 6e-19) instead of descending toward f32's subnormal
/// range. This is a *performance* bound, not just an accuracy trade:
/// an earlier `-126` clamp produced subnormal results for deeply
/// negative inputs (softmax tails over attention scores), and every
/// downstream multiply touching them took the CPU's ~100-cycle
/// subnormal microcode assist — a Fast-tier corpus encode ran ~2x
/// *slower* than Exact. With the floor at `2^-60`, `fast_exp` and
/// everything computed from it stays in normal-f32 territory, and no
/// caller cares: softmax tails below e^-41 are beyond f32 resolution
/// of the normalized row, and a sigmoid is exactly 1.0 at f32 long
/// before its `fast_exp(-x)` term reaches 6e-19.
pub(crate) const EXP_MIN_EXP2: f32 = -60.0;

/// Fast natural exponential: exponent-bit scaling plus a degree-5
/// polynomial, branch-free.
///
/// Contract (property-tested below):
/// * relative error ≤ 1e-5 for `x ∈ [-41, 87]`;
/// * below that, saturates at ~`2^-60` ≈ 6e-19 ([`EXP_MIN_EXP2`]) —
///   never subnormal, so no consumer pays the denormal penalty;
/// * monotone non-decreasing over inputs spaced ≥ 1e-3 apart;
/// * always finite, strictly positive, and a normal f32.
#[inline]
pub fn fast_exp(x: f32) -> f32 {
    const LOG2_E: f32 = std::f32::consts::LOG2_E;
    const LN_2: f32 = std::f32::consts::LN_2;
    // Round-to-nearest magic constant: adding 1.5·2^23 forces the
    // fractional bits out of an f32, leaving round(y) in the low mantissa.
    const MAGIC: f32 = 12_582_912.0; // 1.5 * 2^23
    let y = (x * LOG2_E).clamp(EXP_MIN_EXP2, 126.0);
    let shifted = y + MAGIC;
    let n = shifted - MAGIC; // round(y), exact
    let f = y - n; // in [-0.5, 0.5]
                   // 2^f = exp(f·ln2), degree-5 Taylor in t = f·ln2, |t| ≤ 0.347.
    let t = f * LN_2;
    let poly = 1.0 + t * (1.0 + t * (0.5 + t * (1.0 / 6.0 + t * (1.0 / 24.0 + t * (1.0 / 120.0)))));
    // 2^n via the exponent field; n ∈ [-60, 126] so the shift is safe
    // and the scale (hence the product) is always a normal f32.
    let scale = f32::from_bits((((n as i32) + 127) as u32) << 23);
    poly * scale
}

/// Apply [`fast_tanh`] over a slice in place (the shape the fused GELU
/// and activation kernels want). Dispatches to the SSE2 four-lane pass
/// where available ([`crate::simd::fast_tanh_slice`]) — bitwise equal to
/// the scalar loop for finite inputs.
#[inline]
pub fn fast_tanh_slice(xs: &mut [f32]) {
    crate::simd::fast_tanh_slice(xs);
}

/// Apply [`fast_exp`] over a slice in place, SSE2-dispatched the same
/// way as [`fast_tanh_slice`].
#[inline]
pub fn fast_exp_slice(xs: &mut [f32]) {
    crate::simd::fast_exp_slice(xs);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tanh_abs_error_bound_on_dense_grid() {
        // 2M-point dense sweep of the interesting range plus the tails.
        let mut worst = 0.0f32;
        let mut x = -10.0f32;
        while x <= 10.0 {
            let err = (fast_tanh(x) - x.tanh()).abs();
            worst = worst.max(err);
            assert!(err <= 2e-4, "x={x} err={err}");
            assert!(fast_tanh(x).abs() < 1.0, "x={x} escaped (-1,1)");
            x += 1e-3;
        }
        assert!(worst > 0.0, "sanity: approximation differs somewhere");
    }

    #[test]
    fn exp_relative_error_bound_on_dense_grid() {
        let mut x = -41.0f32;
        while x <= 87.0 {
            let truth = x.exp();
            let got = fast_exp(x);
            let rel = ((got - truth) / truth).abs();
            assert!(rel <= 1e-5, "x={x} got={got} truth={truth} rel={rel}");
            assert!(got.is_finite() && got > 0.0, "x={x} got={got}");
            x += 1e-2;
        }
        // Saturation: far inputs stay finite and positive.
        assert!(fast_exp(1e6).is_finite());
        assert!(fast_exp(-1e6) > 0.0);
    }

    /// The output is *normal* f32 everywhere — the saturation floor exists
    /// so no downstream arithmetic ever touches a subnormal (the CPU's
    /// per-op denormal assist made a clamp-at-2^-126 variant of this
    /// function 2x slower end-to-end than libm).
    #[test]
    fn exp_never_returns_a_subnormal() {
        for &x in &[-1e9f32, -1e4, -100.0, -60.0, -42.0, -41.0, 0.0, 80.0] {
            let got = fast_exp(x);
            assert!(
                got >= f32::MIN_POSITIVE,
                "x={x} got={got} is subnormal or zero"
            );
        }
        // The floor itself: ~2^-60, orders of magnitude above subnormal.
        assert!((fast_exp(-1e9).log2() + 60.0).abs() <= 1.0);
    }

    #[test]
    fn tanh_is_odd_bitwise() {
        for &x in &[0.0f32, 0.1, 0.5, 1.0, 2.5, 4.89, 5.0, 100.0] {
            assert_eq!(fast_tanh(-x).to_bits(), (-fast_tanh(x)).to_bits(), "x={x}");
        }
    }

    use proptest::prelude::*;

    proptest! {
        /// The documented abs-error bound holds at randomly sampled points
        /// across the full finite range (the dense grid above covers the
        /// near field; this covers magnitudes the grid cannot).
        #[test]
        fn tanh_error_bound_holds_at_random_points(x in -1e6f32..1e6) {
            prop_assert!((fast_tanh(x) - x.tanh()).abs() <= 2e-4, "x={x}");
        }

        /// Monotone non-decreasing over sampled ascending pairs.
        #[test]
        fn tanh_is_monotone(x in -8.0f32..8.0, dx in 0.0f32..4.0) {
            prop_assert!(fast_tanh(x + dx) >= fast_tanh(x), "x={x} dx={dx}");
        }

        /// The documented rel-error bound at random points in exp's
        /// accurate range (below -41 the saturation floor takes over).
        #[test]
        fn exp_error_bound_holds_at_random_points(x in -41.0f32..87.0) {
            let truth = x.exp();
            let rel = ((fast_exp(x) - truth) / truth).abs();
            prop_assert!(rel <= 1e-5, "x={x} rel={rel}");
        }

        /// Monotone non-decreasing for inputs spaced ≥ 1e-3 apart (the
        /// documented spacing: below it the ≤1e-5 relative error can
        /// locally reorder two almost-equal outputs).
        #[test]
        fn exp_is_monotone_at_documented_spacing(x in -80.0f32..80.0, dx in 1e-3f32..8.0) {
            prop_assert!(fast_exp(x + dx) >= fast_exp(x), "x={x} dx={dx}");
        }
    }
}
