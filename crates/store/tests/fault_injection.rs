//! Property test for the fault-injection invariant: **faults change when
//! things are computed or cached, never what is computed.** A multi-stage
//! pipeline run under any single injected fault class must produce output
//! bitwise identical to the fault-free run.

use std::path::PathBuf;
use std::sync::Arc;
use structmine_store::{ArtifactKey, ArtifactStore, FaultInjector, FaultPlan, Persistence};

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "structmine-fault-prop-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A three-stage pipeline with real data dependencies: each stage's key
/// chains the upstream digest, and each output feeds the next compute.
/// Deterministic in its inputs, so any two runs must agree bitwise.
fn run_pipeline(store: &ArtifactStore, salt: u64) -> Vec<u64> {
    let k1 = ArtifactKey::new("prop/base", 1, |h| h.write_u64(salt));
    let base = store.get_or_compute(&k1, Persistence::Full, || {
        (0..256u64)
            .map(|i| i.wrapping_mul(salt | 1))
            .collect::<Vec<u64>>()
    });

    let k2 = ArtifactKey::new("prop/fold", 1, |h| h.write_u128(k1.digest));
    let upstream = Arc::clone(&base);
    let folded = store.get_or_compute(&k2, Persistence::Full, move || {
        upstream
            .chunks(16)
            .map(|c| c.iter().fold(0u64, |a, &x| a.rotate_left(7) ^ x))
            .collect::<Vec<u64>>()
    });

    let k3 = ArtifactKey::new("prop/final", 1, |h| h.write_u128(k2.digest));
    let upstream = Arc::clone(&folded);
    let final_out = store.get_or_compute(&k3, Persistence::Full, move || {
        let mut v: Vec<u64> = upstream.iter().map(|&x| x ^ 0xdead_beef).collect();
        v.sort_unstable();
        v
    });
    (*final_out).clone()
}

/// Run the pipeline twice through one store (cold then warm) and once more
/// through a fresh store over the same dir (disk-warm): all three results
/// must equal the fault-free reference bitwise.
fn assert_identical_under(plan: FaultPlan, reference: &[u64], salt: u64, tag: &str) {
    let dir = fresh_dir(tag);
    let store = ArtifactStore::with_dir_and_faults(&dir, FaultInjector::with_plan(plan));
    let cold = run_pipeline(&store, salt);
    let warm = run_pipeline(&store, salt);
    assert_eq!(cold, reference, "cold run diverged under {plan:?}");
    assert_eq!(warm, reference, "warm run diverged under {plan:?}");

    let reread = ArtifactStore::with_dir_and_faults(&dir, FaultInjector::with_plan(plan));
    let disk_warm = run_pipeline(&reread, salt);
    assert_eq!(
        disk_warm, reference,
        "disk-warm run diverged under {plan:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn any_single_fault_class_yields_bitwise_identical_output() {
    let salt = 7;
    let clean_dir = fresh_dir("clean");
    let clean = ArtifactStore::with_dir_and_faults(&clean_dir, FaultInjector::none());
    let reference = run_pipeline(&clean, salt);
    let _ = std::fs::remove_dir_all(&clean_dir);
    assert!(!reference.is_empty());

    for seed in [1u64, 7, 23] {
        for p in [0.3f64, 1.0] {
            assert_identical_under(
                FaultPlan {
                    disk_write: p,
                    seed,
                    ..Default::default()
                },
                &reference,
                salt,
                &format!("w{seed}-{}", (p * 10.0) as u32),
            );
            assert_identical_under(
                FaultPlan {
                    disk_read: p,
                    seed,
                    ..Default::default()
                },
                &reference,
                salt,
                &format!("r{seed}-{}", (p * 10.0) as u32),
            );
            assert_identical_under(
                FaultPlan {
                    truncate: p,
                    seed,
                    ..Default::default()
                },
                &reference,
                salt,
                &format!("t{seed}-{}", (p * 10.0) as u32),
            );
        }
    }
}

#[test]
fn mixed_fault_plan_matches_the_documented_example() {
    // The README/ISSUE example plan, exercised end to end.
    let plan = FaultPlan::parse("disk_write=0.2,disk_read=0.1,truncate=0.05;seed=7")
        .expect("documented example must parse");
    let salt = 11;
    let clean_dir = fresh_dir("mixed-clean");
    let clean = ArtifactStore::with_dir_and_faults(&clean_dir, FaultInjector::none());
    let reference = run_pipeline(&clean, salt);
    let _ = std::fs::remove_dir_all(&clean_dir);
    assert_identical_under(plan, &reference, salt, "mixed");
}

#[test]
fn degraded_store_still_matches_reference() {
    let salt = 13;
    let clean_dir = fresh_dir("degr-clean");
    let clean = ArtifactStore::with_dir_and_faults(&clean_dir, FaultInjector::none());
    let reference = run_pipeline(&clean, salt);
    let _ = std::fs::remove_dir_all(&clean_dir);

    // Total write failure: the store must demote itself (at most one
    // warning — enforced by an atomic swap; the resume integration test
    // asserts the stderr side) and still produce identical output.
    let dir = fresh_dir("degr");
    let store = ArtifactStore::with_dir_and_faults(
        &dir,
        FaultInjector::with_plan(FaultPlan {
            disk_write: 1.0,
            seed: 3,
            ..Default::default()
        }),
    );
    // Enough distinct pipelines to exhaust the failure tolerance.
    for extra in 0..4u64 {
        run_pipeline(&store, 1000 + extra);
    }
    assert!(store.is_degraded(), "p=1.0 writes must degrade the store");
    let out = run_pipeline(&store, salt);
    assert_eq!(out, reference, "degraded store diverged");
    let _ = std::fs::remove_dir_all(&dir);
}
