//! Thread-local "which stage is executing" context.
//!
//! The store pushes the stage name around every memoized `compute()`, and
//! methods label their uncached entry points too; anything that fails deep
//! inside a pipeline — a worker panic in `structmine_linalg::exec`, a store
//! warning — can then name the stage it happened in instead of reporting a
//! bare "worker panicked". Labels nest (a method stage may run store stages
//! inside itself); the innermost label wins.
//!
//! Since the observability layer ([`crate::obs`]) landed, every guard is
//! also a span: on drop it records its wall time, invocation count, and
//! thread index into the global span registry under its full nesting path.
//! Re-pushing the label that is already innermost (the memoized-store path:
//! `run_memoized("x/predict")` wraps a compute that immediately pushes
//! `"x/predict"` again) produces a pass-through guard that neither deepens
//! the path nor double-counts the span.
//!
//! The context is per-thread. Parallel helpers join their workers on the
//! spawning thread, so the label visible at `join()` time — where panics
//! are reported — is the right one.

use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static STAGE_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard that pops the label it pushed, panic-safely, and records the
/// elapsed span into [`crate::obs`]. A pass-through guard (duplicate
/// innermost label) does neither.
pub struct StageGuard {
    start: Option<Instant>,
}

impl Drop for StageGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        let elapsed = start.elapsed();
        STAGE_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            crate::obs::record_span(&stack, elapsed);
            stack.pop();
        });
    }
}

/// Push `label` as the current stage for the lifetime of the returned
/// guard. Typical use: `let _stage = stage_guard("xclass/run");` as the
/// first line of a stage's body.
pub fn stage_guard(label: &str) -> StageGuard {
    crate::obs::init();
    let pushed = STAGE_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        if stack.last().map(String::as_str) == Some(label) {
            false
        } else {
            stack.push(label.to_string());
            true
        }
    });
    StageGuard {
        start: pushed.then(Instant::now),
    }
}

/// Run `f` with `label` as the current stage.
pub fn with_stage_label<R>(label: &str, f: impl FnOnce() -> R) -> R {
    let _guard = stage_guard(label);
    f()
}

/// The innermost stage label on this thread, if any.
pub fn current_stage_label() -> Option<String> {
    STAGE_STACK.with(|s| s.borrow().last().cloned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_nest_and_unwind() {
        assert_eq!(current_stage_label(), None);
        with_stage_label("outer", || {
            assert_eq!(current_stage_label().as_deref(), Some("outer"));
            with_stage_label("inner", || {
                assert_eq!(current_stage_label().as_deref(), Some("inner"));
            });
            assert_eq!(current_stage_label().as_deref(), Some("outer"));
        });
        assert_eq!(current_stage_label(), None);
    }

    #[test]
    fn label_survives_a_panic_unwind() {
        let caught = std::panic::catch_unwind(|| {
            with_stage_label("doomed", || panic!("boom"));
        });
        assert!(caught.is_err());
        assert_eq!(current_stage_label(), None, "guard must pop on unwind");
    }

    #[test]
    fn duplicate_innermost_label_is_pass_through() {
        with_stage_label("ctx-dup", || {
            with_stage_label("ctx-dup", || {
                assert_eq!(current_stage_label().as_deref(), Some("ctx-dup"));
            });
            // The inner pass-through guard must not have popped our label.
            assert_eq!(current_stage_label().as_deref(), Some("ctx-dup"));
        });
        assert_eq!(current_stage_label(), None);
    }
}
