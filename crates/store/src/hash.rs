//! Stable content fingerprints.
//!
//! `std::hash::Hash` is explicitly *not* stable across processes (SipHash is
//! randomly keyed, and `Hash` implementations may change between std
//! releases), so it cannot name artifacts on disk. [`StableHasher`] is a
//! 128-bit FNV-1a over an explicitly defined byte encoding: every value
//! writes a fixed little-endian representation, sequences are
//! length-prefixed, and floats hash their IEEE-754 bit patterns. Two values
//! hash equal iff their encodings are byte-identical, on any platform.

/// 128-bit FNV-1a offset basis.
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// 128-bit FNV-1a prime.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// An incremental, platform-independent 128-bit hasher.
#[derive(Clone, Debug)]
pub struct StableHasher {
    state: u128,
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        StableHasher { state: FNV_OFFSET }
    }

    /// Mix raw bytes into the state.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u128;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Mix a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Mix a `u128` (little-endian).
    pub fn write_u128(&mut self, v: u128) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Mix a string (length-prefixed UTF-8).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u128 {
        self.state
    }
}

/// Values with a stable, platform-independent fingerprint.
pub trait StableHash {
    /// Mix this value into the hasher.
    fn stable_hash(&self, h: &mut StableHasher);
}

/// Fingerprint a single value.
pub fn fingerprint_of<T: StableHash + ?Sized>(value: &T) -> u128 {
    let mut h = StableHasher::new();
    value.stable_hash(&mut h);
    h.finish()
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl StableHash for $t {
            fn stable_hash(&self, h: &mut StableHasher) {
                h.write_u64(*self as u64);
            }
        }
    )*};
}
impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StableHash for u128 {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u128(*self);
    }
}

impl StableHash for bool {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(*self as u64);
    }
}

impl StableHash for f32 {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_bytes(&self.to_bits().to_le_bytes());
    }
}

impl StableHash for f64 {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_bytes(&self.to_bits().to_le_bytes());
    }
}

impl StableHash for str {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_str(self);
    }
}

impl StableHash for String {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_str(self);
    }
}

impl<T: StableHash + ?Sized> StableHash for &T {
    fn stable_hash(&self, h: &mut StableHasher) {
        (*self).stable_hash(h);
    }
}

impl<T: StableHash> StableHash for [T] {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(self.len() as u64);
        for item in self {
            item.stable_hash(h);
        }
    }
}

impl<T: StableHash> StableHash for Vec<T> {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.as_slice().stable_hash(h);
    }
}

impl<T: StableHash> StableHash for Option<T> {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            None => h.write_u64(0),
            Some(v) => {
                h.write_u64(1);
                v.stable_hash(h);
            }
        }
    }
}

impl<A: StableHash, B: StableHash> StableHash for (A, B) {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.0.stable_hash(h);
        self.1.stable_hash(h);
    }
}

impl<A: StableHash, B: StableHash, C: StableHash> StableHash for (A, B, C) {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.0.stable_hash(h);
        self.1.stable_hash(h);
        self.2.stable_hash(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_deterministic_and_input_sensitive() {
        let a = fingerprint_of(&vec![1u32, 2, 3]);
        let b = fingerprint_of(&vec![1u32, 2, 3]);
        let c = fingerprint_of(&vec![1u32, 2, 4]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn length_prefix_disambiguates_concatenation() {
        // ["ab"] vs ["a", "b"] must differ: the length prefixes break the
        // ambiguity of raw concatenation.
        let joined = fingerprint_of(&vec!["ab".to_string()]);
        let split = fingerprint_of(&vec!["a".to_string(), "b".to_string()]);
        assert_ne!(joined, split);
    }

    #[test]
    fn floats_hash_bit_patterns() {
        assert_ne!(fingerprint_of(&0.0f32), fingerprint_of(&-0.0f32));
        assert_eq!(fingerprint_of(&1.5f32), fingerprint_of(&1.5f32));
    }

    #[test]
    fn known_fnv_vector() {
        // FNV-1a 128 of the empty input is the offset basis.
        assert_eq!(StableHasher::new().finish(), FNV_OFFSET);
        // And of "a": (offset ^ 0x61) * prime.
        let mut h = StableHasher::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), (FNV_OFFSET ^ 0x61).wrapping_mul(FNV_PRIME));
    }

    #[test]
    fn option_and_tuple_compose() {
        let some = fingerprint_of(&Some(7u64));
        let none = fingerprint_of(&Option::<u64>::None);
        assert_ne!(some, none);
        assert_ne!(fingerprint_of(&(1u32, 2u32)), fingerprint_of(&(2u32, 1u32)));
    }
}
