//! Typed error taxonomy for the artifact store and the staged pipeline.
//!
//! The workspace carries no external error crates, so these are
//! `thiserror`-style enums with manual [`std::fmt::Display`] and
//! [`std::error::Error`] impls. Two layers:
//!
//! * [`StoreError`] — one disk-layer operation failed (an injected fault, a
//!   real IO error, a corrupt artifact, an exhausted retry budget). The
//!   store never surfaces these to callers of
//!   [`get_or_compute`](crate::ArtifactStore::get_or_compute): every
//!   `StoreError` is classified, counted, and converted into "recompute" —
//!   but the classification drives the retry and degradation policy, and
//!   the variants appear verbatim in warnings and in
//!   [`StatsSnapshot`](crate::StatsSnapshot) counters.
//! * [`PipelineError`] — a stage- or entry-point-level failure (a bad fault
//!   plan, unreadable input, an unknown method name). The CLI and harness
//!   binaries report these instead of `unwrap()`ing.

use std::path::PathBuf;

/// Which disk operation a [`StoreError`] belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoOp {
    /// Reading an artifact file.
    Read,
    /// Writing (temp file + rename) an artifact file.
    Write,
}

impl std::fmt::Display for IoOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            IoOp::Read => "read",
            IoOp::Write => "write",
        })
    }
}

/// One failed disk-layer operation.
#[derive(Debug)]
pub enum StoreError {
    /// A real filesystem error (anything but `NotFound`, which is a plain
    /// cache miss, not an error).
    Io {
        /// The operation that failed.
        op: IoOp,
        /// The artifact file involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A fault injected by the [`faults`](crate::faults) layer.
    InjectedFault {
        /// The operation the fault was injected into.
        op: IoOp,
        /// The artifact file involved.
        path: PathBuf,
    },
    /// The artifact's checksum footer does not match its body: the file was
    /// truncated or bit-rotted after it was written. Detected *before*
    /// deserialization, so garbage never reaches serde.
    ChecksumMismatch {
        /// The corrupt artifact file.
        path: PathBuf,
        /// Checksum recorded in the footer.
        expected: u128,
        /// Checksum of the bytes actually on disk.
        actual: u128,
    },
    /// The artifact has no checksum footer at all — truncated so hard the
    /// footer itself is gone, or not a store file.
    MissingChecksum {
        /// The corrupt artifact file.
        path: PathBuf,
    },
    /// The artifact body passed its checksum but failed to decode. With the
    /// checksum verified this indicates an encoder/decoder bug, not disk
    /// corruption.
    Decode {
        /// The artifact file involved.
        path: PathBuf,
        /// Decoder message.
        message: String,
    },
    /// A transient operation still failed after every retry.
    RetriesExhausted {
        /// The operation that failed.
        op: IoOp,
        /// The artifact file involved.
        path: PathBuf,
        /// Total attempts made (first try + retries).
        attempts: u32,
        /// The error from the final attempt.
        last: Box<StoreError>,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { op, path, source } => {
                write!(f, "disk {op} of {} failed: {source}", path.display())
            }
            StoreError::InjectedFault { op, path } => {
                write!(f, "injected {op} fault on {}", path.display())
            }
            StoreError::ChecksumMismatch {
                path,
                expected,
                actual,
            } => write!(
                f,
                "checksum mismatch in {} (footer {expected:032x}, body {actual:032x}): \
                 artifact is truncated or corrupt",
                path.display()
            ),
            StoreError::MissingChecksum { path } => write!(
                f,
                "no checksum footer in {}: artifact is truncated or not a store file",
                path.display()
            ),
            StoreError::Decode { path, message } => {
                write!(
                    f,
                    "decoding {} failed after checksum passed: {message}",
                    path.display()
                )
            }
            StoreError::RetriesExhausted {
                op,
                path,
                attempts,
                last,
            } => write!(
                f,
                "disk {op} of {} still failing after {attempts} attempts: {last}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::RetriesExhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl StoreError {
    /// True for failures worth retrying: the operation might succeed on the
    /// next attempt (injected faults, real IO errors). Corruption is not
    /// transient — re-reading the same bytes cannot fix them.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            StoreError::Io { .. } | StoreError::InjectedFault { .. }
        )
    }

    /// True for corruption detected in an artifact's content (checksum or
    /// decode failures) as opposed to the IO path.
    pub fn is_corruption(&self) -> bool {
        matches!(
            self,
            StoreError::ChecksumMismatch { .. }
                | StoreError::MissingChecksum { .. }
                | StoreError::Decode { .. }
        )
    }
}

/// A malformed `STRUCTMINE_FAULTS` plan.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultPlanError {
    /// An entry without `=`.
    MissingValue(String),
    /// An unrecognized fault class or option key.
    UnknownKey(String),
    /// A value that does not parse for its key.
    BadValue {
        /// The key whose value failed to parse.
        key: String,
        /// The offending value text.
        value: String,
    },
    /// A probability outside `[0, 1]`.
    OutOfRange {
        /// The key whose value is out of range.
        key: String,
        /// The parsed (out-of-range) probability.
        value: f64,
    },
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultPlanError::MissingValue(entry) => {
                write!(f, "fault plan entry {entry:?} has no '=value'")
            }
            FaultPlanError::UnknownKey(key) => write!(
                f,
                "unknown fault plan key {key:?} (known: disk_write, disk_read, truncate, \
                 kill_after_writes, kill_worker, seed)"
            ),
            FaultPlanError::BadValue { key, value } => {
                write!(f, "fault plan value {value:?} for {key} does not parse")
            }
            FaultPlanError::OutOfRange { key, value } => {
                write!(f, "fault probability {key}={value} is outside [0, 1]")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// A stage- or entry-point-level failure: what table binaries and the CLI
/// report instead of panicking.
#[derive(Debug)]
pub enum PipelineError {
    /// A store operation failed inside a named stage (only reachable through
    /// APIs that surface rather than absorb store failures).
    Store {
        /// The stage that was executing.
        stage: String,
        /// The underlying store failure.
        source: StoreError,
    },
    /// `STRUCTMINE_FAULTS` / `--faults` did not parse.
    InvalidFaultPlan(FaultPlanError),
    /// An input file could not be read / an output could not be written.
    Io {
        /// What was being done, e.g. `"reading --input docs.txt"`.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A user-supplied name (method, recipe) is not known.
    Unknown {
        /// The kind of name, e.g. `"method"`.
        what: &'static str,
        /// The offending name.
        name: String,
        /// The accepted names, for the error message.
        expected: String,
    },
    /// Input was structurally invalid (empty document set, unencodable
    /// label, …).
    InvalidInput(String),
    /// A sharded run failed in the coordinator/worker layer. `transient`
    /// distinguishes crashes worth restarting (signals, IO) from persistent
    /// failures (usage errors, exhausted restart budgets) that map to exit 2.
    Shard {
        /// What failed, e.g. `"worker 2"` or `"coordinator"`.
        context: String,
        /// True when a retry could plausibly succeed.
        transient: bool,
        /// Human-readable detail.
        detail: String,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Store { stage, source } => {
                write!(f, "stage '{stage}' failed: {source}")
            }
            PipelineError::InvalidFaultPlan(e) => write!(f, "invalid fault plan: {e}"),
            PipelineError::Io { context, source } => write!(f, "{context}: {source}"),
            PipelineError::Unknown {
                what,
                name,
                expected,
            } => write!(f, "unknown {what} {name:?} (expected one of: {expected})"),
            PipelineError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            PipelineError::Shard {
                context,
                transient,
                detail,
            } => write!(
                f,
                "sharded run: {context} failed ({}): {detail}",
                if *transient {
                    "transient"
                } else {
                    "persistent"
                }
            ),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Store { source, .. } => Some(source),
            PipelineError::InvalidFaultPlan(e) => Some(e),
            PipelineError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<FaultPlanError> for PipelineError {
    fn from(e: FaultPlanError) -> Self {
        PipelineError::InvalidFaultPlan(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StoreError::ChecksumMismatch {
            path: PathBuf::from("/tmp/a.json"),
            expected: 1,
            actual: 2,
        };
        let msg = e.to_string();
        assert!(msg.contains("/tmp/a.json"));
        assert!(msg.contains("checksum"));

        let e = StoreError::RetriesExhausted {
            op: IoOp::Write,
            path: PathBuf::from("x"),
            attempts: 4,
            last: Box::new(StoreError::InjectedFault {
                op: IoOp::Write,
                path: PathBuf::from("x"),
            }),
        };
        assert!(e.to_string().contains("4 attempts"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn transience_classification() {
        let inj = StoreError::InjectedFault {
            op: IoOp::Read,
            path: PathBuf::new(),
        };
        assert!(inj.is_transient());
        assert!(!inj.is_corruption());
        let chk = StoreError::MissingChecksum {
            path: PathBuf::new(),
        };
        assert!(!chk.is_transient());
        assert!(chk.is_corruption());
    }

    #[test]
    fn pipeline_error_display() {
        let e = PipelineError::Unknown {
            what: "method",
            name: "frob".into(),
            expected: "xclass, lotclass".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("method"));
        assert!(msg.contains("frob"));
        assert!(msg.contains("xclass"));
    }
}
