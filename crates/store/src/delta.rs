//! Generation-keyed incremental stages (DESIGN §11).
//!
//! A [`DeltaStage`] is a [`Stage`](crate::Stage)-like pipeline step over an
//! append-only input (a `DeltaCorpus` upstream): its artifact at generation
//! g is `refresh(artifact_{g-1}, delta_g)`, with generation 0 computed from
//! the base input alone.
//!
//! ## Keying
//!
//! Instead of fingerprinting the whole merged input, each generation's
//! artifact key **chains** on the previous one:
//!
//! ```text
//! key_0 = H(name, version, 0, base_fingerprint)
//! key_g = H(name, version, g, key_{g-1}.digest, delta_fingerprint_g)
//! ```
//!
//! This is the "(upstream key, generation)" scheme: key_g commits to the
//! exact sequence of deltas 1..=g, so editing delta j changes keys j..N
//! (those artifacts recompute) while keys 0..j-1 — and their cached
//! artifacts — survive untouched. Out-of-order or duplicate deltas cannot
//! produce a colliding key because the generation number itself is hashed.
//!
//! ## Refresh walk
//!
//! [`ArtifactStore::run_delta`] probes the chain from the target generation
//! backwards with [`ArtifactStore::peek`] until it finds the newest cached
//! artifact (or computes the base), then rolls forward one `refresh` per
//! missing generation through the ordinary memoizing
//! [`ArtifactStore::get_or_compute`] path. Per-generation hit/miss counters
//! are mirrored into [`obs`](crate::obs) as
//! `<scope>.generation.<g>.hits|misses`, so `/stats` exposes how much of
//! the chain each refresh reused.

use crate::hash::StableHasher;
use crate::key::ArtifactKey;
use crate::stage::{Artifact, Persistence};
use crate::store::ArtifactStore;
use std::sync::Arc;

/// A pipeline step over an append-only input, refreshed per generation.
pub trait DeltaStage {
    /// The artifact type produced at every generation.
    type Output: Artifact;

    /// Stable stage name, e.g. `"plm/encode-delta"`.
    fn name(&self) -> &'static str;

    /// Bump to invalidate all cached artifacts after a code change.
    fn version(&self) -> u32 {
        1
    }

    /// Which store layers the per-generation artifacts may live in.
    fn persistence(&self) -> Persistence {
        Persistence::Full
    }

    /// The target generation (the upstream input's current generation).
    fn generation(&self) -> u64;

    /// Everything the generation-0 artifact depends on (base corpus
    /// fingerprint, model fingerprint, config — but never execution
    /// policy).
    fn base_fingerprint(&self, h: &mut StableHasher);

    /// Everything generation `g`'s delta contributes (g >= 1). The previous
    /// key's digest and `g` itself are mixed in by the chain, not here.
    fn delta_fingerprint(&self, h: &mut StableHasher, g: u64);

    /// Compute the generation-0 artifact from the base input.
    fn compute_base(&self) -> Self::Output;

    /// Fold generation `g`'s delta into the previous artifact. Must equal
    /// what `compute_base` over the concatenated input would produce —
    /// byte-identically — for the chain to honor the store's warm == cold
    /// contract.
    fn refresh(&self, previous: &Self::Output, g: u64) -> Self::Output;

    /// The chained keys for generations `0..=upto` (see module docs).
    fn key_chain(&self, upto: u64) -> Vec<ArtifactKey> {
        let mut keys = Vec::with_capacity(upto as usize + 1);
        let mut key = ArtifactKey::new(self.name(), self.version(), |h| {
            h.write_u64(0);
            self.base_fingerprint(h);
        });
        for g in 1..=upto {
            let prev_digest = crate::fingerprint_of(&key);
            keys.push(key);
            key = ArtifactKey::new(self.name(), self.version(), |h| {
                h.write_u64(g);
                h.write_u128(prev_digest);
                self.delta_fingerprint(h, g);
            });
        }
        keys.push(key);
        keys
    }

    /// The key of the artifact at the target generation.
    fn key(&self) -> ArtifactKey {
        self.key_chain(self.generation())
            .pop()
            .expect("key_chain is never empty")
    }
}

/// How many trailing generations to keep in the in-process layer
/// (`STRUCTMINE_GENERATION_KEEP`); `None` keeps the whole chain.
fn generation_keep() -> Option<u64> {
    std::env::var("STRUCTMINE_GENERATION_KEEP")
        .ok()?
        .parse()
        .ok()
}

impl ArtifactStore {
    /// Run a [`DeltaStage`] at its target generation, reusing the newest
    /// cached generation and computing only the missing refreshes.
    ///
    /// Like [`ArtifactStore::run`], this never fails: a fully cold chain
    /// simply computes the base and every refresh.
    pub fn run_delta<S: DeltaStage>(&self, stage: &S) -> Arc<S::Output> {
        let target = stage.generation();
        let keys = stage.key_chain(target);
        let persistence = stage.persistence();

        // Probe newest-first for the most advanced cached artifact.
        let mut found: Option<(u64, Arc<S::Output>)> = None;
        for g in (0..=target).rev() {
            if let Some(hit) = self.peek::<S::Output>(&keys[g as usize], persistence) {
                self.generation_count(g, "hits");
                found = Some((g, hit));
                break;
            }
            self.generation_count(g, "misses");
        }
        let (mut g, mut current) = match found {
            Some(pair) => pair,
            None => (
                0,
                self.get_or_compute(&keys[0], persistence, || stage.compute_base()),
            ),
        };
        while g < target {
            g += 1;
            let prev = Arc::clone(&current);
            current =
                self.get_or_compute(&keys[g as usize], persistence, || stage.refresh(&prev, g));
        }

        // Optionally bound memory: evict generations older than the
        // trailing `STRUCTMINE_GENERATION_KEEP` window. Disk copies (for
        // persisted stages) are kept, so this trades recompute/reread for
        // memory, never correctness.
        if let Some(keep) = generation_keep() {
            for old in keys.iter().take((target + 1).saturating_sub(keep) as usize) {
                self.forget(old);
            }
        }
        current
    }

    /// Mirror one per-generation chain event into the obs registry as
    /// `<scope>.generation.<g>.<what>` (scopeless test stores mirror
    /// nothing, like the built-in counters).
    fn generation_count(&self, g: u64, what: &str) {
        if let Some(scope) = self.scope() {
            crate::obs::counter_add(&format!("{scope}.generation.{g}.{what}"), 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Running sums over a base vector plus per-generation extensions: the
    /// artifact at generation g is the prefix-sum vector of the
    /// concatenation, so refresh must continue from the previous artifact's
    /// last element to match a cold build.
    struct RunningSum<'a> {
        base: &'a [u64],
        deltas: &'a [Vec<u64>],
        base_calls: AtomicUsize,
        refresh_calls: AtomicUsize,
    }

    impl<'a> RunningSum<'a> {
        fn new(base: &'a [u64], deltas: &'a [Vec<u64>]) -> Self {
            RunningSum {
                base,
                deltas,
                base_calls: AtomicUsize::new(0),
                refresh_calls: AtomicUsize::new(0),
            }
        }

        fn extend(mut acc: Vec<u64>, items: &[u64]) -> Vec<u64> {
            let mut run = acc.last().copied().unwrap_or(0);
            for &x in items {
                run += x;
                acc.push(run);
            }
            acc
        }
    }

    impl DeltaStage for RunningSum<'_> {
        type Output = Vec<u64>;
        fn name(&self) -> &'static str {
            "test/running-sum"
        }
        fn persistence(&self) -> Persistence {
            Persistence::MemoryOnly
        }
        fn generation(&self) -> u64 {
            self.deltas.len() as u64
        }
        fn base_fingerprint(&self, h: &mut StableHasher) {
            crate::StableHash::stable_hash(&self.base, h);
        }
        fn delta_fingerprint(&self, h: &mut StableHasher, g: u64) {
            crate::StableHash::stable_hash(&self.deltas[g as usize - 1], h);
        }
        fn compute_base(&self) -> Vec<u64> {
            self.base_calls.fetch_add(1, Ordering::Relaxed);
            Self::extend(Vec::new(), self.base)
        }
        fn refresh(&self, previous: &Vec<u64>, g: u64) -> Vec<u64> {
            self.refresh_calls.fetch_add(1, Ordering::Relaxed);
            Self::extend(previous.clone(), &self.deltas[g as usize - 1])
        }
    }

    #[test]
    fn warm_chain_computes_only_the_new_generation() {
        let store = ArtifactStore::memory_only();
        let base = [1, 2, 3];
        let d1 = vec![vec![10, 10]];
        let d2 = vec![vec![10, 10], vec![5]];

        let s1 = RunningSum::new(&base, &d1);
        let out1 = store.run_delta(&s1);
        assert_eq!(*out1, vec![1, 3, 6, 16, 26]);
        assert_eq!(s1.base_calls.load(Ordering::Relaxed), 1);
        assert_eq!(s1.refresh_calls.load(Ordering::Relaxed), 1);

        // Same chain one generation further: only refresh(2) runs.
        let s2 = RunningSum::new(&base, &d2);
        let out2 = store.run_delta(&s2);
        assert_eq!(*out2, vec![1, 3, 6, 16, 26, 31]);
        assert_eq!(s2.base_calls.load(Ordering::Relaxed), 0, "base was cached");
        assert_eq!(
            s2.refresh_calls.load(Ordering::Relaxed),
            1,
            "generation 1 was cached; only generation 2 may compute"
        );
    }

    #[test]
    fn warm_equals_cold_bitwise() {
        let base = [7, 1];
        let deltas = vec![vec![2], vec![9, 9], vec![4]];
        // Warm: three incremental runs against one store.
        let store = ArtifactStore::memory_only();
        let mut warm = Vec::new();
        for upto in 1..=deltas.len() {
            let s = RunningSum::new(&base, &deltas[..upto]);
            warm = (*store.run_delta(&s)).clone();
        }
        // Cold: a disabled store recomputes the whole chain from scratch.
        let cold_store = ArtifactStore::disabled();
        let s = RunningSum::new(&base, &deltas);
        let cold = cold_store.run_delta(&s);
        assert_eq!(warm, *cold);
        assert_eq!(s.base_calls.load(Ordering::Relaxed), 1);
        assert_eq!(s.refresh_calls.load(Ordering::Relaxed), deltas.len());
    }

    #[test]
    fn editing_a_delta_invalidates_its_suffix_only() {
        let base = [1];
        let a = vec![vec![1], vec![2], vec![3]];
        // Same chain with generation 2's delta edited.
        let b = vec![vec![1], vec![20], vec![3]];
        let sa = RunningSum::new(&base, &a);
        let sb = RunningSum::new(&base, &b);
        let ka = sa.key_chain(3);
        let kb = sb.key_chain(3);
        assert_eq!(ka[0], kb[0], "base key must survive a later-delta edit");
        assert_eq!(ka[1], kb[1], "keys before the edit must survive");
        assert_ne!(ka[2], kb[2], "the edited generation must re-key");
        assert_ne!(ka[3], kb[3], "every later generation must re-key too");

        // And the store actually recomputes the changed suffix.
        let store = ArtifactStore::memory_only();
        store.run_delta(&sa);
        let out = store.run_delta(&sb);
        assert_eq!(*out, vec![1, 2, 22, 25]);
        assert_eq!(sb.base_calls.load(Ordering::Relaxed), 0);
        assert_eq!(
            sb.refresh_calls.load(Ordering::Relaxed),
            2,
            "generations 2 and 3 recompute; generation 1 is reused"
        );
    }

    #[test]
    fn generation_number_is_part_of_the_key() {
        // Identical content at different chain positions must not collide.
        let base = [1];
        let deltas = vec![vec![5], vec![5]];
        let s = RunningSum::new(&base, &deltas);
        let keys = s.key_chain(2);
        assert_ne!(keys[1], keys[2]);
    }

    #[test]
    fn disk_layer_resumes_a_chain_across_stores() {
        let dir =
            std::env::temp_dir().join(format!("structmine-delta-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        struct PersistedSum<'a>(RunningSum<'a>);
        impl DeltaStage for PersistedSum<'_> {
            type Output = Vec<u64>;
            fn name(&self) -> &'static str {
                "test/running-sum-disk"
            }
            fn persistence(&self) -> Persistence {
                Persistence::Full
            }
            fn generation(&self) -> u64 {
                self.0.generation()
            }
            fn base_fingerprint(&self, h: &mut StableHasher) {
                self.0.base_fingerprint(h)
            }
            fn delta_fingerprint(&self, h: &mut StableHasher, g: u64) {
                self.0.delta_fingerprint(h, g)
            }
            fn compute_base(&self) -> Vec<u64> {
                self.0.compute_base()
            }
            fn refresh(&self, previous: &Vec<u64>, g: u64) -> Vec<u64> {
                self.0.refresh(previous, g)
            }
        }

        let base = [3, 3];
        let deltas = vec![vec![1], vec![2]];
        let first = ArtifactStore::with_dir_and_faults(&dir, crate::FaultInjector::none());
        let s = PersistedSum(RunningSum::new(&base, &deltas[..1]));
        first.run_delta(&s);

        // A fresh store (new process, cold memory) extends the chain from
        // the persisted generation-1 artifact.
        let second = ArtifactStore::with_dir_and_faults(&dir, crate::FaultInjector::none());
        let s2 = PersistedSum(RunningSum::new(&base, &deltas));
        let out = second.run_delta(&s2);
        assert_eq!(*out, vec![3, 6, 7, 9]);
        assert_eq!(s2.0.base_calls.load(Ordering::Relaxed), 0);
        assert_eq!(s2.0.refresh_calls.load(Ordering::Relaxed), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn forget_evicts_only_the_memory_layer() {
        let store = ArtifactStore::memory_only();
        let base = [1];
        let deltas = vec![vec![1]];
        let s = RunningSum::new(&base, &deltas);
        let key = s.key();
        store.run_delta(&s);
        assert!(store
            .peek::<Vec<u64>>(&key, Persistence::MemoryOnly)
            .is_some());
        store.forget(&key);
        assert!(store
            .peek::<Vec<u64>>(&key, Persistence::MemoryOnly)
            .is_none());
    }
}
