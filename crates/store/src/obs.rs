//! Observability: structured spans, typed counters, a leveled logger, and
//! the JSON run report (DESIGN §8).
//!
//! The workspace's determinism contract makes observability cheap to add
//! safely: timings and thread ids live **only** in the run report, never in
//! hashed artifacts or stdout tables, so enabling any of this changes no
//! output byte. The pieces:
//!
//! * **Spans** — every [`context::stage_guard`](crate::context) label is
//!   also an RAII wall-clock timer. Nested labels form a path; the global
//!   registry accumulates, per path, the invocation count, total wall time,
//!   and the set of (process-local) thread indices that closed the span.
//! * **Counters** — one registry unifying what used to be per-subsystem
//!   atomics: artifact-store hit/miss/write/fault/retry/degradation stats
//!   (mirrored by [`ArtifactStore`](crate::ArtifactStore) under its scope),
//!   parallel-execution call/item/chunk counts (from
//!   `structmine_linalg::exec`), and log-call tallies. Typed store counters
//!   use [`Counter`]; ad-hoc subsystems use [`counter_add`] with a
//!   dot-separated name.
//! * **Logger** — `STRUCTMINE_LOG=warn|info|debug` (default `info`) gates
//!   every formerly ad-hoc `eprintln!` site through [`log_warn`] /
//!   [`log_info`] / [`log_debug`]. Message text is unchanged, so existing
//!   `grep '\[artifact-store\]'` workflows keep working at the default
//!   level.
//! * **Run report** — a JSON document with a stable schema
//!   ([`REPORT_SCHEMA_VERSION`]): config fingerprint, counters, and the
//!   per-stage timing tree. Written by the CLI and every table binary when
//!   `STRUCTMINE_REPORT=<path>` (or `--report-json <path>`) is set. Two
//!   identical runs produce byte-identical reports after masking the
//!   timing/thread fields (see [`masked_report`]); everything else — stage
//!   names, counts, counters, the config fingerprint — is deterministic.
//!
//! ## Masking convention
//!
//! A report field is *volatile* (allowed to differ between two otherwise
//! identical runs, or between thread counts) iff its key ends in `_ms` or
//! any of its `.`/`_`-separated tokens equals `thread`/`threads`
//! (case-insensitive). Everything else must be byte-stable. [`masked_report`]
//! applies exactly this rule; the determinism tests and the CI smoke rely
//! on it.

use parking_lot::Mutex;
use serde::Value;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Version of the run-report schema. Bump on any structural change so
/// downstream report diffing (`BENCH_*.json` trajectories) can dispatch.
pub const REPORT_SCHEMA_VERSION: u32 = 1;

// --------------------------------------------------------------- process

static PROCESS_START: OnceLock<Instant> = OnceLock::new();

/// Start the process wall clock (idempotent). Binaries call this first
/// thing in `main` so the report's `total_wall_ms` covers the whole run;
/// every other obs entry point also initializes it lazily.
pub fn init() {
    let _ = PROCESS_START.get_or_init(Instant::now);
}

fn process_elapsed() -> Duration {
    PROCESS_START.get_or_init(Instant::now).elapsed()
}

// ---------------------------------------------------------------- threads

static NEXT_THREAD_INDEX: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_INDEX: u64 = NEXT_THREAD_INDEX.fetch_add(1, Ordering::Relaxed);
}

/// A small process-local index for the current thread (0 for the first
/// thread that asks, usually `main`). Only ever surfaced in masked report
/// fields — the assignment order is scheduling-dependent.
pub fn thread_index() -> u64 {
    THREAD_INDEX.with(|t| *t)
}

// --------------------------------------------------------------- counters

/// The typed counters the artifact store reports, unified here so every
/// store scope ("store", "plm", test scopes) lands in one registry under
/// `<scope>.<key>`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Counter {
    /// Artifacts served from the in-process `Arc` layer.
    MemHits,
    /// Artifacts deserialized from disk.
    DiskHits,
    /// Artifacts that had to be computed.
    Misses,
    /// Artifacts written to disk.
    DiskWrites,
    /// Reads rejected by the checksum footer.
    ChecksumFailures,
    /// Reads whose body passed the checksum but failed to decode.
    DecodeFailures,
    /// Faults injected by the fault layer.
    InjectedFaults,
    /// Retries performed after transient failures.
    IoRetries,
    /// Operations that failed after every retry.
    PersistentFailures,
    /// Store demotions to memory-only (0 or 1 per store).
    Degradations,
}

impl Counter {
    /// The registry key suffix, matching the [`StatsSnapshot`]
    /// (crate::StatsSnapshot) field names so report counters and the
    /// `[artifact-store]` summary line agree verbatim.
    pub fn key(self) -> &'static str {
        match self {
            Counter::MemHits => "mem_hits",
            Counter::DiskHits => "disk_hits",
            Counter::Misses => "misses",
            Counter::DiskWrites => "disk_writes",
            Counter::ChecksumFailures => "checksum_failures",
            Counter::DecodeFailures => "decode_failures",
            Counter::InjectedFaults => "injected_faults",
            Counter::IoRetries => "io_retries",
            Counter::PersistentFailures => "persistent_failures",
            Counter::Degradations => "degradations",
        }
    }
}

fn counters() -> &'static Mutex<BTreeMap<String, u64>> {
    static COUNTERS: OnceLock<Mutex<BTreeMap<String, u64>>> = OnceLock::new();
    COUNTERS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Add `delta` to the named counter. Names are dot-separated
/// (`scope.metric`); thread-count-dependent metrics must carry a
/// `thread`/`threads` token in their name so the masking convention covers
/// them (e.g. `exec.thread_chunks`).
pub fn counter_add(name: &str, delta: u64) {
    init();
    if delta == 0 {
        return;
    }
    let mut map = counters().lock();
    match map.get_mut(name) {
        Some(v) => *v += delta,
        None => {
            map.insert(name.to_string(), delta);
        }
    }
}

/// Add `delta` to a typed store counter under `scope`.
pub fn count(scope: &str, c: Counter, delta: u64) {
    counter_add(&format!("{scope}.{}", c.key()), delta);
}

/// The value of one counter (0 when never touched).
pub fn counter_value(name: &str) -> u64 {
    counters().lock().get(name).copied().unwrap_or(0)
}

/// A sorted snapshot of every counter.
pub fn counters_snapshot() -> BTreeMap<String, u64> {
    counters().lock().clone()
}

// ------------------------------------------------------------------ spans

#[derive(Clone, Debug, Default)]
struct SpanStat {
    count: u64,
    total_ns: u128,
    threads: BTreeSet<u64>,
}

type SpanMap = BTreeMap<Vec<String>, SpanStat>;

fn spans() -> &'static Mutex<SpanMap> {
    static SPANS: OnceLock<Mutex<SpanMap>> = OnceLock::new();
    SPANS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Record one closed span. Called by [`context::StageGuard`]
/// (crate::context::StageGuard) on drop; `path` is the nesting path of
/// stage labels (a label itself may contain `/`, so nesting is a list, not
/// a joined string).
pub(crate) fn record_span(path: &[String], elapsed: Duration) {
    let mut map = spans().lock();
    let stat = map.entry(path.to_vec()).or_default();
    stat.count += 1;
    stat.total_ns += elapsed.as_nanos();
    stat.threads.insert(thread_index());
}

/// Open a span without any store involvement — an alias for
/// [`context::stage_guard`](crate::context::stage_guard), exported here so
/// binaries can wrap their whole run (`let _run = obs::span("bench/...")`).
pub fn span(label: &str) -> crate::context::StageGuard {
    crate::context::stage_guard(label)
}

/// Record one closed span at an explicit path, bypassing the thread-local
/// guard stack. The shard coordinator uses this to attribute each worker
/// process's lifetime (`shard/worker-<i>`) and to import spans from worker
/// run reports into its own aggregated report — work that happened in
/// another process and therefore never crossed a local guard.
pub fn record_span_at(path: &[String], elapsed: Duration) {
    init();
    record_span(path, elapsed);
}

/// Total recorded wall time of root (depth-1) spans, in nanoseconds. The
/// report's `attributed_ms` comes from this; the CI smoke asserts it covers
/// ≥ 90% of `total_wall_ms`.
fn attributed_root_ns(map: &SpanMap) -> u128 {
    map.iter()
        .filter(|(path, _)| path.len() == 1)
        .map(|(_, s)| s.total_ns)
        .sum()
}

// ----------------------------------------------------------------- logger

/// Log verbosity, parsed once from `STRUCTMINE_LOG`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Only warnings (degradations, injected crashes, report failures).
    Warn,
    /// Warnings plus progress lines and store summaries (the default —
    /// matches what the pre-obs `eprintln!` sites printed).
    Info,
    /// Everything, including per-stage diagnostics.
    Debug,
}

/// The active log level: `STRUCTMINE_LOG=warn|info|debug`, default `info`
/// (unknown values also fall back to `info`).
pub fn log_level() -> Level {
    static LEVEL: OnceLock<Level> = OnceLock::new();
    *LEVEL.get_or_init(|| match std::env::var("STRUCTMINE_LOG") {
        Ok(v) if v.eq_ignore_ascii_case("warn") => Level::Warn,
        Ok(v) if v.eq_ignore_ascii_case("debug") => Level::Debug,
        _ => Level::Info,
    })
}

fn log_at(level: Level, tag: &str, msg: &str) {
    init();
    counter_add(&format!("log.{tag}"), 1);
    if level <= log_level() {
        eprintln!("{msg}");
    }
}

/// Log at warn level (always shown unless stderr itself is discarded).
pub fn log_warn(msg: &str) {
    log_at(Level::Warn, "warn", msg);
}

/// Log at info level (shown by default; hidden under `STRUCTMINE_LOG=warn`).
pub fn log_info(msg: &str) {
    log_at(Level::Info, "info", msg);
}

/// Log at debug level (hidden by default).
pub fn log_debug(msg: &str) {
    log_at(Level::Debug, "debug", msg);
}

// ------------------------------------------------------------- run report

/// Env var naming the report path; the CLI's `--report-json` sets it.
pub const REPORT_ENV: &str = "STRUCTMINE_REPORT";

/// The configured report path, if any.
pub fn report_path() -> Option<String> {
    std::env::var(REPORT_ENV)
        .ok()
        .filter(|s| !s.trim().is_empty())
}

fn ms(ns: u128) -> f64 {
    ns as f64 / 1.0e6
}

/// The `STRUCTMINE_*` environment entries that describe this run, sorted.
/// `STRUCTMINE_REPORT` is excluded (it names the report itself, not the
/// computation).
fn config_env() -> Vec<(String, String)> {
    let mut entries: Vec<(String, String)> = std::env::vars()
        .filter(|(k, _)| k.starts_with("STRUCTMINE_") && k != REPORT_ENV)
        .collect();
    entries.sort();
    entries
}

/// Fingerprint of the run configuration: binary name plus every
/// config-relevant environment entry. Thread-count and log-level knobs are
/// excluded — they cannot change any computed output (PR 1's determinism
/// contract), so reports from 1- and 4-thread runs fingerprint identically.
fn config_fingerprint(binary: &str, env: &[(String, String)]) -> u128 {
    let mut h = crate::StableHasher::new();
    h.write_str(binary);
    for (k, v) in env {
        if k == "STRUCTMINE_THREADS" || k == "STRUCTMINE_LOG" {
            continue;
        }
        h.write_str(k);
        h.write_str(v);
    }
    h.finish()
}

fn span_tree(map: &SpanMap) -> Value {
    // Children of `prefix`, in key order (deterministic).
    fn children(map: &SpanMap, prefix: &[String]) -> Value {
        let mut nodes = Vec::new();
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        for (path, stat) in map.iter() {
            if path.len() != prefix.len() + 1 || !path.starts_with(prefix) {
                continue;
            }
            let label = path.last().expect("non-empty path").as_str();
            if !seen.insert(label) {
                continue;
            }
            nodes.push(Value::Map(vec![
                ("label".into(), Value::Str(label.to_string())),
                ("count".into(), Value::UInt(stat.count)),
                ("wall_ms".into(), Value::Float(ms(stat.total_ns))),
                (
                    "threads".into(),
                    Value::Seq(stat.threads.iter().map(|&t| Value::UInt(t)).collect()),
                ),
                ("children".into(), children(map, path)),
            ]));
        }
        Value::Seq(nodes)
    }
    children(map, &[])
}

/// Pure report assembly — everything volatile is passed in, so tests can
/// build byte-exact golden reports.
fn build_report(
    binary: &str,
    env: &[(String, String)],
    counters: &BTreeMap<String, u64>,
    span_map: &SpanMap,
    total_wall: Duration,
    created_unix_ms: u128,
) -> Value {
    let fingerprint = config_fingerprint(binary, env);
    let config = Value::Map(vec![
        (
            "fingerprint".into(),
            Value::Str(format!("{fingerprint:032x}")),
        ),
        (
            "env".into(),
            Value::Map(
                env.iter()
                    .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                    .collect(),
            ),
        ),
    ]);
    let counters_value = Value::Map(
        counters
            .iter()
            .map(|(k, &v)| (k.clone(), Value::UInt(v)))
            .collect(),
    );
    let spans_value = Value::Map(vec![
        (
            "total_wall_ms".into(),
            Value::Float(ms(total_wall.as_nanos())),
        ),
        (
            "attributed_ms".into(),
            Value::Float(ms(attributed_root_ns(span_map))),
        ),
        ("tree".into(), span_tree(span_map)),
    ]);
    Value::Map(vec![
        (
            "schema_version".into(),
            Value::UInt(REPORT_SCHEMA_VERSION as u64),
        ),
        ("binary".into(), Value::Str(binary.to_string())),
        (
            "created_unix_ms".into(),
            Value::UInt(created_unix_ms as u64),
        ),
        ("config".into(), config),
        ("counters".into(), counters_value),
        ("spans".into(), spans_value),
    ])
}

/// The run report for this process, from the live registries.
pub fn report(binary: &str) -> Value {
    init();
    let created = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0);
    build_report(
        binary,
        &config_env(),
        &counters_snapshot(),
        &spans().lock(),
        process_elapsed(),
        created,
    )
}

/// Serialize the run report and write it to `path` (parent directories are
/// created). Report I/O never goes through the artifact store, so a
/// degraded or faulted store cannot lose the report.
pub fn write_report(path: &str, binary: &str) -> Result<(), String> {
    let value = report(binary);
    let mut text = serde_json::to_string(&value).map_err(|e| format!("serialize report: {e}"))?;
    text.push('\n');
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("create report dir {}: {e}", parent.display()))?;
        }
    }
    std::fs::write(path, text).map_err(|e| format!("write report {path}: {e}"))
}

/// Write the run report iff `STRUCTMINE_REPORT` is set. Called by every
/// binary as its last act; failures are warnings, never a changed exit
/// code — observability must not fail a run that computed correctly.
pub fn write_report_if_configured(binary: &str) {
    if let Some(path) = report_path() {
        match write_report(&path, binary) {
            Ok(()) => log_info(&format!("[report] wrote {path}")),
            Err(e) => log_warn(&format!("[report] WARNING: {e}")),
        }
    }
}

// ------------------------------------------------- masking & validation

/// True when a report key is volatile under the masking convention: it
/// ends in `_ms`, or any `.`/`_`-separated token equals `thread`/`threads`
/// (case-insensitive) — covering `wall_ms`, `threads`,
/// `exec.thread_chunks`, `STRUCTMINE_THREADS`, …
pub fn is_masked_key(key: &str) -> bool {
    key.ends_with("_ms")
        || key
            .split(['.', '_'])
            .any(|t| t.eq_ignore_ascii_case("thread") || t.eq_ignore_ascii_case("threads"))
}

fn mask_value(v: &Value) -> Value {
    match v {
        Value::Map(entries) => Value::Map(
            entries
                .iter()
                .map(|(k, v)| {
                    if is_masked_key(k) {
                        (k.clone(), Value::Str("<masked>".into()))
                    } else {
                        (k.clone(), mask_value(v))
                    }
                })
                .collect(),
        ),
        Value::Seq(items) => Value::Seq(items.iter().map(mask_value).collect()),
        other => other.clone(),
    }
}

/// Parse a report and replace every volatile field's value with
/// `"<masked>"`. Two runs of the same configuration must produce
/// byte-identical masked reports; 1-thread and 4-thread runs may differ
/// only in the fields this masks.
pub fn masked_report(json: &str) -> Result<String, String> {
    let v: Value = serde_json::from_str(json).map_err(|e| format!("parse report: {e}"))?;
    serde_json::to_string(&mask_value(&v)).map_err(|e| format!("serialize masked: {e}"))
}

fn get<'a>(map: &'a Value, key: &str, at: &str) -> Result<&'a Value, String> {
    match map {
        Value::Map(entries) => entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("{at}: missing key `{key}`")),
        _ => Err(format!("{at}: expected an object")),
    }
}

fn expect_number(v: &Value, at: &str) -> Result<f64, String> {
    match v {
        Value::Float(f) => Ok(*f),
        Value::UInt(u) => Ok(*u as f64),
        Value::Int(i) => Ok(*i as f64),
        _ => Err(format!("{at}: expected a number")),
    }
}

fn validate_node(node: &Value, at: &str) -> Result<(), String> {
    match get(node, "label", at)? {
        Value::Str(s) if !s.is_empty() => {}
        _ => return Err(format!("{at}: `label` must be a non-empty string")),
    }
    match get(node, "count", at)? {
        Value::UInt(n) if *n > 0 => {}
        _ => return Err(format!("{at}: `count` must be a positive integer")),
    }
    expect_number(get(node, "wall_ms", at)?, &format!("{at}.wall_ms"))?;
    match get(node, "threads", at)? {
        Value::Seq(items) if !items.is_empty() => {
            for t in items {
                if !matches!(t, Value::UInt(_)) {
                    return Err(format!("{at}: `threads` entries must be integers"));
                }
            }
        }
        _ => return Err(format!("{at}: `threads` must be a non-empty array")),
    }
    match get(node, "children", at)? {
        Value::Seq(children) => {
            for (i, c) in children.iter().enumerate() {
                validate_node(c, &format!("{at}.children[{i}]"))?;
            }
            Ok(())
        }
        _ => Err(format!("{at}: `children` must be an array")),
    }
}

/// Validate a report against the schema. Returns the parsed [`Value`] so
/// callers (the golden test, `report_check`) can inspect further.
pub fn validate_report(json: &str) -> Result<Value, String> {
    let v: Value = serde_json::from_str(json).map_err(|e| format!("parse report: {e}"))?;
    match get(&v, "schema_version", "report")? {
        Value::UInt(n) if *n == REPORT_SCHEMA_VERSION as u64 => {}
        other => {
            return Err(format!(
                "report: schema_version must be {REPORT_SCHEMA_VERSION}, got {other:?}"
            ))
        }
    }
    match get(&v, "binary", "report")? {
        Value::Str(s) if !s.is_empty() => {}
        _ => return Err("report: `binary` must be a non-empty string".into()),
    }
    let config = get(&v, "config", "report")?;
    match get(config, "fingerprint", "report.config")? {
        Value::Str(s) if s.len() == 32 && s.bytes().all(|b| b.is_ascii_hexdigit()) => {}
        _ => return Err("report.config: `fingerprint` must be 32 hex chars".into()),
    }
    match get(config, "env", "report.config")? {
        Value::Map(_) => {}
        _ => return Err("report.config: `env` must be an object".into()),
    }
    match get(&v, "counters", "report")? {
        Value::Map(entries) => {
            for (k, c) in entries {
                if !matches!(c, Value::UInt(_)) {
                    return Err(format!("report.counters: `{k}` must be an integer"));
                }
            }
        }
        _ => return Err("report: `counters` must be an object".into()),
    }
    let spans = get(&v, "spans", "report")?;
    expect_number(
        get(spans, "total_wall_ms", "report.spans")?,
        "total_wall_ms",
    )?;
    expect_number(
        get(spans, "attributed_ms", "report.spans")?,
        "attributed_ms",
    )?;
    match get(spans, "tree", "report.spans")? {
        Value::Seq(nodes) => {
            for (i, n) in nodes.iter().enumerate() {
                validate_node(n, &format!("report.spans.tree[{i}]"))?;
            }
        }
        _ => return Err("report.spans: `tree` must be an array".into()),
    }
    Ok(v)
}

/// The fraction of process wall time attributed to root spans
/// (`attributed_ms / total_wall_ms`). The CI smoke asserts ≥ 0.9: a run
/// whose time mostly escapes the span tree is not observable.
pub fn report_coverage(report: &Value) -> Result<f64, String> {
    let spans = get(report, "spans", "report")?;
    let total = expect_number(
        get(spans, "total_wall_ms", "report.spans")?,
        "total_wall_ms",
    )?;
    let attributed = expect_number(
        get(spans, "attributed_ms", "report.spans")?,
        "attributed_ms",
    )?;
    if total <= 0.0 {
        return Err("report.spans: total_wall_ms must be positive".into());
    }
    Ok(attributed / total)
}

/// The value of one `config.env` entry in a validated report, if present.
/// CI uses this to assert the precision tier landed in the config
/// fingerprint's input set (`STRUCTMINE_PRECISION`).
pub fn report_config_env(report: &Value, key: &str) -> Result<Option<String>, String> {
    let config = get(report, "config", "report")?;
    match get(config, "env", "report.config")? {
        Value::Map(entries) => {
            Ok(entries
                .iter()
                .find(|(k, _)| k == key)
                .and_then(|(_, v)| match v {
                    Value::Str(s) => Some(s.clone()),
                    _ => None,
                }))
        }
        _ => Err("report.config: `env` must be an object".into()),
    }
}

/// The value of one counter in a validated report: `Ok(Some(v))` when the
/// counter was recorded, `Ok(None)` when absent (zero deltas never
/// materialize a counter, so absence means zero), `Err` on a malformed
/// report. CI uses this to assert prepack hit-rate > 0 on warm serve runs.
pub fn report_counter(report: &Value, name: &str) -> Result<Option<u64>, String> {
    match get(report, "counters", "report")? {
        Value::Map(entries) => entries
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| match v {
                Value::UInt(n) => Ok(*n),
                other => Err(format!(
                    "report.counters: `{name}` must be an integer, got {other:?}"
                )),
            })
            .transpose(),
        _ => Err("report: `counters` must be an object".into()),
    }
}

/// Every stage label appearing anywhere in the report's span tree.
pub fn report_stage_labels(report: &Value) -> Result<BTreeSet<String>, String> {
    fn walk(nodes: &Value, out: &mut BTreeSet<String>) {
        if let Value::Seq(items) = nodes {
            for node in items {
                if let Ok(Value::Str(label)) = get(node, "label", "node") {
                    out.insert(label.clone());
                }
                if let Ok(children) = get(node, "children", "node") {
                    walk(children, out);
                }
            }
        }
    }
    let spans = get(report, "spans", "report")?;
    let tree = get(spans, "tree", "report.spans")?;
    let mut out = BTreeSet::new();
    walk(tree, &mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::with_stage_label;

    fn span_map(entries: &[(&[&str], u64, u128, &[u64])]) -> SpanMap {
        let mut map = SpanMap::new();
        for &(path, count, total_ns, threads) in entries {
            map.insert(
                path.iter().map(|s| s.to_string()).collect(),
                SpanStat {
                    count,
                    total_ns,
                    threads: threads.iter().copied().collect(),
                },
            );
        }
        map
    }

    /// The golden report: schema changes must be deliberate. Everything
    /// here is injected, so the bytes are exact.
    #[test]
    fn report_schema_golden() {
        let env = vec![
            ("STRUCTMINE_SCALE".to_string(), "0.05".to_string()),
            ("STRUCTMINE_THREADS".to_string(), "4".to_string()),
        ];
        let mut counters = BTreeMap::new();
        counters.insert("store.mem_hits".to_string(), 3);
        counters.insert("store.misses".to_string(), 2);
        let spans = span_map(&[
            (&["bench/table_x"], 1, 10_000_000, &[0]),
            (&["bench/table_x", "xclass/predict"], 2, 7_000_000, &[0]),
        ]);
        let report = build_report(
            "table_x",
            &env,
            &counters,
            &spans,
            Duration::from_millis(11),
            1_700_000_000_000,
        );
        let json = serde_json::to_string(&report).unwrap();
        let expected = concat!(
            r#"{"schema_version":1,"binary":"table_x","created_unix_ms":1700000000000,"#,
            r#""config":{"fingerprint":"9b7999a914bbb3ee672433bbba6c3103","#,
            r#""env":{"STRUCTMINE_SCALE":"0.05","STRUCTMINE_THREADS":"4"}},"#,
            r#""counters":{"store.mem_hits":3,"store.misses":2},"#,
            r#""spans":{"total_wall_ms":11.0,"attributed_ms":10.0,"#,
            r#""tree":[{"label":"bench/table_x","count":1,"wall_ms":10.0,"threads":[0],"#,
            r#""children":[{"label":"xclass/predict","count":2,"wall_ms":7.0,"threads":[0],"#,
            r#""children":[]}]}]}}"#,
        );
        assert_eq!(json, expected, "schema drift — bump REPORT_SCHEMA_VERSION");
        validate_report(&json).expect("golden report must validate");
    }

    #[test]
    fn fingerprint_ignores_thread_and_log_knobs_only() {
        let base = vec![("STRUCTMINE_SCALE".to_string(), "0.3".to_string())];
        let mut with_threads = base.clone();
        with_threads.push(("STRUCTMINE_LOG".to_string(), "debug".to_string()));
        with_threads.push(("STRUCTMINE_THREADS".to_string(), "4".to_string()));
        assert_eq!(
            config_fingerprint("b", &base),
            config_fingerprint("b", &with_threads),
            "thread/log knobs must not change the fingerprint"
        );
        let mut other = base.clone();
        other.push(("STRUCTMINE_SEEDS".to_string(), "2".to_string()));
        assert_ne!(
            config_fingerprint("b", &base),
            config_fingerprint("b", &other)
        );
        assert_ne!(
            config_fingerprint("a", &base),
            config_fingerprint("b", &base)
        );
    }

    #[test]
    fn masking_covers_timing_and_thread_fields() {
        assert!(is_masked_key("wall_ms"));
        assert!(is_masked_key("total_wall_ms"));
        assert!(is_masked_key("created_unix_ms"));
        assert!(is_masked_key("threads"));
        assert!(is_masked_key("exec.thread_chunks"));
        assert!(is_masked_key("STRUCTMINE_THREADS"));
        assert!(!is_masked_key("count"));
        assert!(!is_masked_key("store.misses"));
        assert!(!is_masked_key("label"));
        assert!(!is_masked_key("fingerprint"));
    }

    #[test]
    fn masked_reports_are_stable_across_timing_differences() {
        let env = vec![("STRUCTMINE_SCALE".to_string(), "0.1".to_string())];
        let counters = BTreeMap::new();
        let fast = span_map(&[(&["run"], 1, 1_000_000, &[0])]);
        let slow = span_map(&[(&["run"], 1, 9_000_000, &[0, 3])]);
        let a = serde_json::to_string(&build_report(
            "b",
            &env,
            &counters,
            &fast,
            Duration::from_millis(2),
            1,
        ))
        .unwrap();
        let b = serde_json::to_string(&build_report(
            "b",
            &env,
            &counters,
            &slow,
            Duration::from_millis(20),
            2,
        ))
        .unwrap();
        assert_ne!(a, b, "raw reports differ in timing fields");
        assert_eq!(
            masked_report(&a).unwrap(),
            masked_report(&b).unwrap(),
            "masked reports must be byte-identical"
        );
    }

    #[test]
    fn validation_rejects_broken_reports() {
        assert!(validate_report("not json").is_err());
        assert!(validate_report("{}").is_err());
        let wrong_version = r#"{"schema_version":99,"binary":"b","created_unix_ms":0,
            "config":{"fingerprint":"00000000000000000000000000000000","env":{}},
            "counters":{},"spans":{"total_wall_ms":1.0,"attributed_ms":1.0,"tree":[]}}"#;
        let err = validate_report(wrong_version).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
    }

    #[test]
    fn spans_record_through_stage_guards() {
        with_stage_label("obs-test/outer", || {
            with_stage_label("obs-test/inner", || {
                std::thread::sleep(Duration::from_millis(2))
            })
        });
        let map = spans().lock().clone();
        let outer = map
            .get(&vec!["obs-test/outer".to_string()])
            .expect("outer span recorded");
        assert!(outer.count >= 1);
        assert!(outer.total_ns > 0);
        assert!(!outer.threads.is_empty());
        let inner = map
            .get(&vec![
                "obs-test/outer".to_string(),
                "obs-test/inner".to_string(),
            ])
            .expect("inner span nests under outer");
        assert!(inner.total_ns <= outer.total_ns);
    }

    #[test]
    fn duplicate_nested_labels_record_once() {
        with_stage_label("obs-test/dup", || {
            with_stage_label("obs-test/dup", || {
                std::thread::sleep(Duration::from_millis(1))
            })
        });
        let map = spans().lock().clone();
        let stat = map
            .get(&vec!["obs-test/dup".to_string()])
            .expect("span recorded");
        assert_eq!(
            stat.count, 1,
            "re-entering the same label must not double-count"
        );
        assert!(
            !map.contains_key(&vec![
                "obs-test/dup".to_string(),
                "obs-test/dup".to_string()
            ]),
            "no self-nested node"
        );
    }

    #[test]
    fn counters_accumulate_by_name_and_type() {
        counter_add("obs-test.adhoc", 2);
        counter_add("obs-test.adhoc", 3);
        assert_eq!(counter_value("obs-test.adhoc"), 5);
        count("obs-test-scope", Counter::MemHits, 4);
        assert_eq!(counter_value("obs-test-scope.mem_hits"), 4);
        counter_add("obs-test.zero", 0);
        assert_eq!(counter_value("obs-test.zero"), 0);
        assert!(
            !counters_snapshot().contains_key("obs-test.zero"),
            "zero deltas must not materialize counters"
        );
    }

    #[test]
    fn live_report_validates_and_names_recorded_stages() {
        with_stage_label("obs-live/root", || {
            counter_add("obs-live.widget", 1);
        });
        let value = report("obs-unit-test");
        let json = serde_json::to_string(&value).unwrap();
        let parsed = validate_report(&json).expect("live report must be schema-valid");
        let labels = report_stage_labels(&parsed).unwrap();
        assert!(labels.contains("obs-live/root"), "labels: {labels:?}");
        masked_report(&json).expect("live report must mask cleanly");
        assert!(report_coverage(&parsed).is_ok());
    }

    #[test]
    fn report_counter_reads_present_and_absent_names() {
        counter_add("obs-counter-test.widget", 7);
        let value = report("obs-counter-test");
        let json = serde_json::to_string(&value).unwrap();
        let parsed = validate_report(&json).unwrap();
        let got = report_counter(&parsed, "obs-counter-test.widget").unwrap();
        assert!(
            got.is_some_and(|n| n >= 7),
            "recorded counter must be readable, got {got:?}"
        );
        assert_eq!(
            report_counter(&parsed, "obs-counter-test.never-recorded").unwrap(),
            None,
            "absent counters read as None (zero deltas never materialize)"
        );
    }
}
