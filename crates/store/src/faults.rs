//! Deterministic fault injection for the disk layer.
//!
//! A [`FaultPlan`] describes *which* failures to provoke and *how often*; a
//! [`FaultInjector`] turns the plan into a deterministic decision stream
//! (the workspace's seeded `StdRng`), so a given plan + seed injects the
//! same faults at the same operations every run. The store consults the
//! injector on every disk read and write; nothing outside the disk layer is
//! ever faulted, which is exactly the failure model of a real machine — the
//! computation is trusted, the storage is not.
//!
//! The plan is parsed from the `STRUCTMINE_FAULTS` environment variable
//! (also settable via the CLI's `--faults` flag):
//!
//! ```text
//! STRUCTMINE_FAULTS=disk_write=0.2,disk_read=0.1,truncate=0.05;seed=7
//! ```
//!
//! Entries are `key=value`, separated by `,` or `;`:
//!
//! | key | meaning |
//! |---|---|
//! | `disk_write=P` | each write attempt fails with probability `P` |
//! | `disk_read=P` | each read attempt fails with probability `P` |
//! | `truncate=P` | each *completed* write is then truncated in place with probability `P` (silent corruption; caught later by the checksum footer) |
//! | `kill_after_writes=N` | `abort()` the process right after the `N`-th completed disk write (crash-at-a-stage-boundary simulation) |
//! | `kill_worker=i@after_writes=N` | targeted chaos for sharded runs: the coordinator rewrites worker `i`'s first incarnation to run under `kill_after_writes=N`; single-process injectors parse but ignore the clause |
//! | `seed=S` | seed of the decision stream (default 0) |
//!
//! Under any plan the pipeline's *outputs* are unchanged — faults only ever
//! suppress caching (see `store`'s retry and degradation policy), never
//! alter a computed value.

use crate::error::{FaultPlanError, IoOp, StoreError};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Which faults to inject, and how often. All probabilities default to 0
/// (no injection).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Probability that one disk-write attempt fails.
    pub disk_write: f64,
    /// Probability that one disk-read attempt fails.
    pub disk_read: f64,
    /// Probability that a completed write is silently truncated in place.
    pub truncate: f64,
    /// Abort the process after this many completed disk writes.
    pub kill_after_writes: Option<u64>,
    /// Targeted chaos for sharded runs, `(worker_index, after_writes)`: the
    /// shard coordinator translates this into `kill_after_writes` for the
    /// first incarnation of worker `worker_index` only. Single-process
    /// injectors parse the clause but never act on it themselves.
    pub kill_worker: Option<(u64, u64)>,
    /// Seed of the deterministic decision stream.
    pub seed: u64,
}

impl FaultPlan {
    /// Parse a plan string, e.g. `disk_write=0.2,disk_read=0.1;seed=7`.
    /// Entries are `key=value` separated by `,` or `;`; empty entries are
    /// ignored. Unknown keys and malformed values are hard errors — a
    /// typo'd fault plan must never silently run fault-free.
    pub fn parse(s: &str) -> Result<FaultPlan, FaultPlanError> {
        let mut plan = FaultPlan::default();
        for entry in s.split([',', ';']) {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (key, value) = entry
                .split_once('=')
                .ok_or_else(|| FaultPlanError::MissingValue(entry.to_string()))?;
            let (key, value) = (key.trim(), value.trim());
            let bad = || FaultPlanError::BadValue {
                key: key.to_string(),
                value: value.to_string(),
            };
            match key {
                "disk_write" | "disk_read" | "truncate" => {
                    let p: f64 = value.parse().map_err(|_| bad())?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(FaultPlanError::OutOfRange {
                            key: key.to_string(),
                            value: p,
                        });
                    }
                    match key {
                        "disk_write" => plan.disk_write = p,
                        "disk_read" => plan.disk_read = p,
                        _ => plan.truncate = p,
                    }
                }
                "kill_after_writes" => {
                    plan.kill_after_writes = Some(value.parse().map_err(|_| bad())?);
                }
                "kill_worker" => {
                    // `kill_worker=i@after_writes=N` — the whole clause is one
                    // `key=value` entry, so `value` here is `i@after_writes=N`.
                    let (worker, rest) = value.split_once('@').ok_or_else(&bad)?;
                    let writes = rest.trim().strip_prefix("after_writes=").ok_or_else(&bad)?;
                    plan.kill_worker = Some((
                        worker.trim().parse().map_err(|_| bad())?,
                        writes.trim().parse().map_err(|_| bad())?,
                    ));
                }
                "seed" => plan.seed = value.parse().map_err(|_| bad())?,
                _ => return Err(FaultPlanError::UnknownKey(key.to_string())),
            }
        }
        Ok(plan)
    }

    /// The plan from `STRUCTMINE_FAULTS`, if set.
    pub fn from_env() -> Result<Option<FaultPlan>, FaultPlanError> {
        match std::env::var("STRUCTMINE_FAULTS") {
            Ok(s) if !s.trim().is_empty() => FaultPlan::parse(&s).map(Some),
            _ => Ok(None),
        }
    }

    /// True when the plan injects anything at all. A `kill_worker` clause
    /// counts: it injects nothing in *this* process, but a shard coordinator
    /// sharing the environment will translate it into a worker crash, so
    /// exact cache-traffic assertions are off the table either way.
    pub fn is_active(&self) -> bool {
        self.disk_write > 0.0
            || self.disk_read > 0.0
            || self.truncate > 0.0
            || self.kill_after_writes.is_some()
            || self.kill_worker.is_some()
    }

    /// Render the plan back into the `STRUCTMINE_FAULTS` syntax, omitting
    /// defaults. The shard coordinator uses this to propagate the plan to
    /// workers — typically via [`FaultPlan::for_worker`], which strips the
    /// coordinator-only `kill_worker` clause.
    pub fn to_plan_string(&self) -> String {
        let mut parts = Vec::new();
        if self.disk_write > 0.0 {
            parts.push(format!("disk_write={}", self.disk_write));
        }
        if self.disk_read > 0.0 {
            parts.push(format!("disk_read={}", self.disk_read));
        }
        if self.truncate > 0.0 {
            parts.push(format!("truncate={}", self.truncate));
        }
        if let Some(n) = self.kill_after_writes {
            parts.push(format!("kill_after_writes={n}"));
        }
        if let Some((w, n)) = self.kill_worker {
            parts.push(format!("kill_worker={w}@after_writes={n}"));
        }
        if self.seed != 0 {
            parts.push(format!("seed={}", self.seed));
        }
        parts.join(",")
    }

    /// The plan a shard worker should run under. Strips `kill_worker` and,
    /// when `worker_index` is the targeted worker and this is its first
    /// incarnation (`incarnation == 0`), arms `kill_after_writes` instead —
    /// targeted, deterministic, and bounded chaos: the restart runs clean.
    pub fn for_worker(&self, worker_index: u64, incarnation: u32) -> FaultPlan {
        let mut plan = *self;
        plan.kill_worker = None;
        if let Some((target, writes)) = self.kill_worker {
            if target == worker_index && incarnation == 0 {
                plan.kill_after_writes = Some(writes);
            }
        }
        plan
    }
}

/// Turns a [`FaultPlan`] into deterministic per-operation decisions.
///
/// One injector is shared by every store built from the environment (so
/// `kill_after_writes` counts writes across *all* stores in the process,
/// matching a real crash); tests build private injectors via
/// [`FaultInjector::with_plan`] for full isolation.
pub struct FaultInjector {
    plan: FaultPlan,
    rng: Mutex<StdRng>,
    writes_completed: AtomicU64,
}

impl FaultInjector {
    /// An injector that never injects anything.
    pub fn none() -> Arc<FaultInjector> {
        FaultInjector::with_plan(FaultPlan::default())
    }

    /// An injector for an explicit plan (deterministic per plan seed).
    pub fn with_plan(plan: FaultPlan) -> Arc<FaultInjector> {
        Arc::new(FaultInjector {
            plan,
            rng: Mutex::new(StdRng::seed_from_u64(plan.seed)),
            writes_completed: AtomicU64::new(0),
        })
    }

    /// The process-wide injector, parsed from `STRUCTMINE_FAULTS` on first
    /// use. Panics with the parse error on a malformed plan: a fault plan
    /// is an explicit testing instruction, and running fault-free because
    /// of a typo would make every fault test pass vacuously.
    pub fn global() -> &'static Arc<FaultInjector> {
        static GLOBAL: OnceLock<Arc<FaultInjector>> = OnceLock::new();
        GLOBAL.get_or_init(|| match FaultPlan::from_env() {
            Ok(Some(plan)) => {
                crate::obs::log_info(&format!("[faults] active plan: {plan:?}"));
                FaultInjector::with_plan(plan)
            }
            Ok(None) => FaultInjector::none(),
            Err(e) => panic!("invalid STRUCTMINE_FAULTS: {e}"),
        })
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// True when this injector can inject anything.
    pub fn is_active(&self) -> bool {
        self.plan.is_active()
    }

    /// Deterministic biased coin. Draws from the stream only for active
    /// probabilities, so enabling one fault class does not perturb the
    /// decisions of another plan with different classes enabled.
    fn roll(&self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        self.rng.lock().gen_bool(p)
    }

    /// Consulted before each disk-read attempt.
    pub fn before_read(&self, path: &Path) -> Result<(), StoreError> {
        if self.roll(self.plan.disk_read) {
            return Err(StoreError::InjectedFault {
                op: IoOp::Read,
                path: path.to_path_buf(),
            });
        }
        Ok(())
    }

    /// Consulted before each disk-write attempt.
    pub fn before_write(&self, path: &Path) -> Result<(), StoreError> {
        if self.roll(self.plan.disk_write) {
            return Err(StoreError::InjectedFault {
                op: IoOp::Write,
                path: path.to_path_buf(),
            });
        }
        Ok(())
    }

    /// Called after each *successful* write: may silently truncate the just
    /// written file (`truncate` faults), and triggers the planned crash
    /// once the write counter reaches `kill_after_writes`.
    pub fn after_write_success(&self, path: &Path) {
        if self.roll(self.plan.truncate) {
            // Silent corruption: keep the front half of the file. The store
            // must catch this later via the checksum footer, not serde.
            if let Ok(meta) = std::fs::metadata(path) {
                let keep = meta.len() / 2;
                if let Ok(file) = std::fs::OpenOptions::new().write(true).open(path) {
                    let _ = file.set_len(keep);
                }
            }
        }
        let n = self.writes_completed.fetch_add(1, Ordering::Relaxed) + 1;
        if self.plan.kill_after_writes == Some(n) {
            crate::obs::log_warn(&format!(
                "[faults] injected crash: aborting after {n} completed disk writes"
            ));
            std::process::abort();
        }
    }

    /// Completed disk writes seen so far (across every store sharing this
    /// injector).
    pub fn writes_completed(&self) -> u64 {
        self.writes_completed.load(Ordering::Relaxed)
    }
}

/// True when `STRUCTMINE_FAULTS` is set to an active plan. Tests that
/// assert exact hit/miss counters consult this: under an environment fault
/// plan only *correctness* (identical outputs) is guaranteed, not cache
/// traffic.
pub fn env_active() -> bool {
    FaultInjector::global().is_active()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_example() {
        let plan = FaultPlan::parse("disk_write=0.2,disk_read=0.1,truncate=0.05;seed=7").unwrap();
        assert_eq!(plan.disk_write, 0.2);
        assert_eq!(plan.disk_read, 0.1);
        assert_eq!(plan.truncate, 0.05);
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.kill_after_writes, None);
        assert!(plan.is_active());
    }

    #[test]
    fn parses_kill_and_tolerates_whitespace_and_empties() {
        let plan = FaultPlan::parse(" kill_after_writes = 3 ; ; seed=9 ,").unwrap();
        assert_eq!(plan.kill_after_writes, Some(3));
        assert_eq!(plan.seed, 9);
        assert!(FaultPlan::parse("").unwrap() == FaultPlan::default());
        assert!(!FaultPlan::default().is_active());
    }

    #[test]
    fn rejects_malformed_plans() {
        assert_eq!(
            FaultPlan::parse("disk_write"),
            Err(FaultPlanError::MissingValue("disk_write".into()))
        );
        assert_eq!(
            FaultPlan::parse("disk_wrote=0.2"),
            Err(FaultPlanError::UnknownKey("disk_wrote".into()))
        );
        assert!(matches!(
            FaultPlan::parse("disk_write=maybe"),
            Err(FaultPlanError::BadValue { .. })
        ));
        assert!(matches!(
            FaultPlan::parse("disk_read=1.5"),
            Err(FaultPlanError::OutOfRange { .. })
        ));
        assert!(matches!(
            FaultPlan::parse("kill_after_writes=-1"),
            Err(FaultPlanError::BadValue { .. })
        ));
    }

    #[test]
    fn parses_kill_worker_clause_and_round_trips() {
        let plan = FaultPlan::parse("disk_write=0.25,kill_worker=2@after_writes=5;seed=7").unwrap();
        assert_eq!(plan.kill_worker, Some((2, 5)));
        assert!(plan.is_active());
        let rendered = plan.to_plan_string();
        assert_eq!(FaultPlan::parse(&rendered).unwrap(), plan);
        assert_eq!(FaultPlan::default().to_plan_string(), "");

        for bad in [
            "kill_worker=2",
            "kill_worker=2@writes=5",
            "kill_worker=x@after_writes=5",
            "kill_worker=2@after_writes=y",
        ] {
            assert!(
                matches!(FaultPlan::parse(bad), Err(FaultPlanError::BadValue { .. })),
                "{bad} must be rejected"
            );
        }
    }

    #[test]
    fn for_worker_targets_first_incarnation_only() {
        let plan = FaultPlan::parse("disk_read=0.1,kill_worker=1@after_writes=3,seed=4").unwrap();
        let w0 = plan.for_worker(0, 0);
        assert_eq!(w0.kill_after_writes, None);
        assert_eq!(w0.kill_worker, None);
        assert_eq!(w0.disk_read, 0.1);
        let w1 = plan.for_worker(1, 0);
        assert_eq!(w1.kill_after_writes, Some(3));
        assert_eq!(w1.kill_worker, None);
        let w1_restart = plan.for_worker(1, 1);
        assert_eq!(w1_restart.kill_after_writes, None, "restarts run clean");
    }

    #[test]
    fn decision_stream_is_deterministic_per_seed() {
        let plan = FaultPlan {
            disk_read: 0.5,
            seed: 11,
            ..Default::default()
        };
        let decisions = |inj: &FaultInjector| -> Vec<bool> {
            (0..64)
                .map(|_| inj.before_read(Path::new("x")).is_err())
                .collect()
        };
        let a = decisions(&FaultInjector::with_plan(plan));
        let b = decisions(&FaultInjector::with_plan(plan));
        assert_eq!(a, b, "same plan, same decisions");
        assert!(a.iter().any(|&x| x), "p=0.5 must fire at least once in 64");
        assert!(!a.iter().all(|&x| x), "p=0.5 must also pass sometimes");

        let c = decisions(&FaultInjector::with_plan(FaultPlan { seed: 12, ..plan }));
        assert_ne!(a, c, "different seed, different decisions");
    }

    #[test]
    fn inactive_probabilities_do_not_draw_from_the_stream() {
        // A plan with only writes enabled must make the same write
        // decisions whether or not reads are also being *asked* about.
        let plan = FaultPlan {
            disk_write: 0.5,
            seed: 3,
            ..Default::default()
        };
        let a = FaultInjector::with_plan(plan);
        let b = FaultInjector::with_plan(plan);
        let mut wa = Vec::new();
        let mut wb = Vec::new();
        for i in 0..32 {
            if i % 2 == 0 {
                // Interleave read checks on one injector only.
                assert!(b.before_read(Path::new("r")).is_ok());
            }
            wa.push(a.before_write(Path::new("w")).is_err());
            wb.push(b.before_write(Path::new("w")).is_err());
        }
        assert_eq!(wa, wb, "inactive read checks must not perturb the stream");
    }

    #[test]
    fn truncate_fault_halves_the_file() {
        let dir = std::env::temp_dir().join(format!("structmine-faults-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("truncate-victim");
        std::fs::write(&path, vec![7u8; 100]).unwrap();
        let inj = FaultInjector::with_plan(FaultPlan {
            truncate: 1.0,
            ..Default::default()
        });
        inj.after_write_success(&path);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 50);
        assert_eq!(inj.writes_completed(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
