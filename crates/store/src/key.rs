//! Artifact keys: stage name + content digest.

use crate::hash::{StableHash, StableHasher};

/// Bump to invalidate every artifact at once (on-disk format or fingerprint
/// encoding changes).
///
/// v2: artifact files carry a checksum footer; v1 files (no footer) would
/// read as `MissingChecksum`, but since the version is part of the key
/// digest their filenames are never even consulted.
pub const STORE_FORMAT_VERSION: u32 = 2;

/// The content address of one stage output.
///
/// The digest covers the store format version, the stage's name and
/// version, and whatever the stage mixed in (dataset content hash, config,
/// seeds, upstream artifact keys) — identical inputs produce identical
/// keys across processes, so a key can name a file on disk.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ArtifactKey {
    /// Stage name, e.g. `"xclass/class-reps"`.
    pub stage: String,
    /// Digest of everything the output depends on.
    pub digest: u128,
}

impl ArtifactKey {
    /// Build a key for `stage` at `version`, mixing stage-specific inputs
    /// via the closure.
    pub fn new(stage: &str, version: u32, parts: impl FnOnce(&mut StableHasher)) -> Self {
        let mut h = StableHasher::new();
        h.write_u64(STORE_FORMAT_VERSION as u64);
        h.write_str(stage);
        h.write_u64(version as u64);
        parts(&mut h);
        ArtifactKey {
            stage: stage.to_string(),
            digest: h.finish(),
        }
    }

    /// Unique id string (also the disk file stem).
    pub fn id(&self) -> String {
        format!("{}-{:032x}", self.stage.replace('/', "-"), self.digest)
    }

    /// Disk file name for this key.
    pub fn file_name(&self) -> String {
        format!("{}.json", self.id())
    }
}

impl StableHash for ArtifactKey {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_str(&self.stage);
        h.write_u128(self.digest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_bump_changes_the_key() {
        let a = ArtifactKey::new("s", 1, |h| h.write_u64(7));
        let b = ArtifactKey::new("s", 2, |h| h.write_u64(7));
        assert_ne!(a.digest, b.digest);
        assert_ne!(a.file_name(), b.file_name());
    }

    #[test]
    fn stage_name_and_inputs_change_the_key() {
        let a = ArtifactKey::new("s", 1, |h| h.write_u64(7));
        let b = ArtifactKey::new("t", 1, |h| h.write_u64(7));
        let c = ArtifactKey::new("s", 1, |h| h.write_u64(8));
        assert_ne!(a.digest, b.digest);
        assert_ne!(a.digest, c.digest);
    }

    #[test]
    fn file_name_is_path_safe() {
        let k = ArtifactKey::new("plm/encode-corpus", 1, |_| {});
        assert!(!k.file_name().contains('/'));
        assert!(k.file_name().ends_with(".json"));
    }
}
