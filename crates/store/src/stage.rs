//! The [`Stage`] trait: a typed, memoizable pipeline step.
//!
//! A method run is a chain of stages — pretrain → encode-corpus →
//! seed-expansion → pseudo-label → train-classifier → self-train → predict.
//! Each stage borrows its typed inputs as struct fields, declares its typed
//! output as an associated type, and describes what the output depends on
//! via [`Stage::fingerprint`]. [`crate::ArtifactStore::run`] then memoizes
//! the stage: a rerun with identical inputs returns the stored artifact and
//! skips the computation, so a pipeline resumes at its first *stale* stage.

use crate::hash::StableHasher;
use crate::key::ArtifactKey;

/// Anything the store can hold: serializable (for the disk layer) and
/// shareable across threads (for the in-process `Arc` layer).
pub trait Artifact: serde::Serialize + serde::Deserialize + Send + Sync + 'static {}
impl<T: serde::Serialize + serde::Deserialize + Send + Sync + 'static> Artifact for T {}

/// Where a stage's output lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Persistence {
    /// In-process `Arc` sharing only — for artifacts too large to be worth
    /// serializing (e.g. full token-level corpus encodings).
    MemoryOnly,
    /// Disk only — for artifacts that are themselves caches of large
    /// objects held elsewhere in memory (e.g. model checkpoints).
    DiskOnly,
    /// Both layers (the default).
    Full,
}

/// One typed step of a method pipeline.
///
/// Implementors borrow their inputs:
///
/// ```ignore
/// struct EncodeCorpus<'a> {
///     model: &'a MiniPlm,
///     model_fp: u128,
///     corpus: &'a Corpus,
///     corpus_fp: u128,
/// }
/// ```
///
/// and the store runs them memoized:
///
/// ```ignore
/// let reps = structmine_store::global().run(&EncodeCorpus { .. });
/// ```
pub trait Stage {
    /// Typed output artifact.
    type Output: Artifact;

    /// Stable stage name, e.g. `"plm/encode-corpus"`.
    fn name(&self) -> &'static str;

    /// Bump when the computation's meaning changes, so stale artifacts
    /// from older code are ignored.
    fn version(&self) -> u32 {
        1
    }

    /// Where the output should live.
    fn persistence(&self) -> Persistence {
        Persistence::Full
    }

    /// Mix in everything the output depends on: input content hashes,
    /// configuration, seeds, upstream artifact keys. The exec policy
    /// (thread count) must NOT be mixed in — outputs are bitwise identical
    /// for any thread count.
    fn fingerprint(&self, h: &mut StableHasher);

    /// The computation itself.
    fn compute(&self) -> Self::Output;

    /// This stage's content address.
    fn key(&self) -> ArtifactKey {
        ArtifactKey::new(self.name(), self.version(), |h| self.fingerprint(h))
    }
}
