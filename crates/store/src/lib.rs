//! Content-addressed artifact store and staged-pipeline substrate.
//!
//! The tutorial's method family (X-Class, LOTClass, ConWea, …) shares one
//! expensive substrate: corpus-wide PLM encodings, expanded seed sets,
//! pseudo-labels, trained classifiers. Every one of those intermediate
//! products is a pure function of its inputs — the execution layer
//! (`structmine_linalg::exec`) guarantees bitwise-identical output for any
//! thread count — so they can be memoized safely. This crate provides the
//! machinery:
//!
//! * [`hash`] — a stable, platform-independent fingerprint ([`StableHash`] /
//!   [`StableHasher`], FNV-1a over a 128-bit state). Unlike `std::hash`,
//!   the digest is identical across processes, builds, and architectures,
//!   so it can name files on disk.
//! * [`key`] — [`ArtifactKey`]: a stage name plus the digest of everything
//!   the stage output depends on (store format version, stage version,
//!   dataset content hash, config, seeds, upstream artifact keys).
//! * [`store`] — [`ArtifactStore`]: a two-level cache. An in-process layer
//!   shares artifacts as `Arc`s; a disk layer persists them as JSON files
//!   named by their key, written with the write-temp-then-rename discipline
//!   so racing writers always leave a complete artifact. Corrupt, truncated,
//!   or stale-version files are ignored and recomputed.
//! * [`stage`] — the [`Stage`] trait: a typed pipeline step (inputs borrowed
//!   as struct fields, output as an associated type) that the store can run
//!   memoized via [`ArtifactStore::run`].
//! * [`error`] — the typed failure taxonomy ([`StoreError`],
//!   [`PipelineError`]) replacing silent fall-throughs and `unwrap()`s.
//! * [`faults`] — deterministic fault injection ([`FaultPlan`] /
//!   [`FaultInjector`]): a seeded probability plan parsed from
//!   `STRUCTMINE_FAULTS` that makes disk reads/writes fail, truncates
//!   completed writes, or kills the process at a write boundary — for
//!   testing the retry/degradation/resume machinery end to end.
//! * [`lease`] — cross-process lease/claim on stage keys: under
//!   `STRUCTMINE_LEASE` (set by the shard coordinator), sibling worker
//!   processes claim a stage before computing it and wait on the holder's
//!   artifact instead of duplicating the work. Stale leases (dead holders)
//!   are reaped, so crash-and-rerun recovers with no manual cleanup.
//! * [`health`] — process-wide degradation/unusable registry rendered by
//!   `structmine-serve`'s `/healthz`.
//! * [`context`] — a thread-local stage-label stack so deep failures
//!   (worker panics, store warnings) can name the stage they happened in.
//! * [`obs`] — the observability layer (DESIGN §8): every stage label is
//!   also a wall-clock span, subsystem counters share one registry, log
//!   output is leveled (`STRUCTMINE_LOG`), and a schema-stable JSON run
//!   report can be written at process exit (`STRUCTMINE_REPORT` /
//!   `--report-json`).
//!
//! Configuration (read once, at first use of the global store):
//!
//! | Environment variable | Effect |
//! |---|---|
//! | `STRUCTMINE_STORE_DIR` | Artifact directory (default: `<tmp>/structmine-store`) |
//! | `STRUCTMINE_STORE_NO_DISK` | Disable the disk layer (memory sharing still on) |
//! | `STRUCTMINE_NO_CACHE` | Disable the store entirely (every stage recomputes) |
//! | `STRUCTMINE_FAULTS` | Deterministic fault plan, e.g. `disk_write=0.2,disk_read=0.1,truncate=0.05;seed=7` |
//! | `STRUCTMINE_LEASE` | Enable cross-process stage leases (set by the shard coordinator for its workers) |
//! | `STRUCTMINE_LOG` | Log level: `warn`, `info` (default), or `debug` |
//! | `STRUCTMINE_REPORT` | Write the JSON run report to this path at process exit |

pub mod context;
pub mod delta;
pub mod error;
pub mod faults;
pub mod hash;
pub mod health;
pub mod key;
pub mod lease;
pub mod obs;
pub mod stage;
pub mod store;

pub use delta::DeltaStage;
pub use error::{FaultPlanError, IoOp, PipelineError, StoreError};
pub use faults::{FaultInjector, FaultPlan};
pub use hash::{fingerprint_of, StableHash, StableHasher};
pub use key::ArtifactKey;
pub use lease::Lease;
pub use stage::{Artifact, Persistence, Stage};
pub use store::{global, ArtifactStore, StatsSnapshot};
