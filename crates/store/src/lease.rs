//! Cross-process lease/claim on stage keys.
//!
//! Sharded runs put several worker processes behind one disk store. The
//! store's temp-then-rename discipline already makes racing writers *safe*
//! (the slot always holds a complete artifact); leases make them *cheap*:
//! before computing an expensive disk-persisted stage, a worker claims the
//! stage key, and every other worker waits for the artifact to appear
//! instead of recomputing it.
//!
//! A lease is a file under `<store_dir>/leases/` named by the stage key's
//! id, created with `O_EXCL` (`create_new`) so exactly one process wins the
//! claim. The file body is the holder's pid. A lease is **stale** when its
//! holder is no longer alive (`/proc/<pid>` on Linux) or, where pid
//! liveness cannot be checked, when the file has not been refreshed within
//! [`LEASE_TTL`]. Stale leases are broken and re-claimed — this is what
//! lets a rerun recover after a coordinator or worker crash with zero
//! manual intervention.
//!
//! Leases are an optimization, never a correctness gate: if claiming fails
//! in any unexpected way the caller just computes locally, and the store's
//! atomic publish keeps the result correct.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Freshness window for holders whose pid liveness cannot be checked.
pub const LEASE_TTL: Duration = Duration::from_secs(60);

/// How long a waiter polls for the holder's artifact before giving up and
/// computing locally (duplicated work, still correct).
pub const LEASE_WAIT_CAP: Duration = Duration::from_secs(300);

/// Poll interval while waiting on another process's lease.
pub const LEASE_POLL: Duration = Duration::from_millis(25);

/// True when cross-process leasing is enabled for this process. The shard
/// coordinator sets `STRUCTMINE_LEASE=1` in every worker's environment;
/// single-process runs skip the lease files entirely.
pub fn enabled() -> bool {
    static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var_os("STRUCTMINE_LEASE").is_some())
}

/// The lease directory under a store directory.
pub fn lease_dir(store_dir: &Path) -> PathBuf {
    store_dir.join("leases")
}

/// A held claim on one stage key. Dropping the guard releases the claim
/// (removes the lease file); a crashed holder's file is reaped as stale.
pub struct Lease {
    path: PathBuf,
}

impl Lease {
    /// Claim `id` under `leases_dir`. Returns `None` when another live
    /// process holds the claim (the caller should wait) — and, to stay an
    /// optimization rather than a gate, also on unexpected IO errors (the
    /// caller then computes locally).
    pub fn try_acquire(leases_dir: &Path, id: &str) -> Option<Lease> {
        if std::fs::create_dir_all(leases_dir).is_err() {
            return None;
        }
        let path = leases_dir.join(format!("{id}.lease"));
        for _ in 0..2 {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    let _ = write!(f, "{}", std::process::id());
                    return Some(Lease { path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    if !is_stale(&path) {
                        return None;
                    }
                    // Break the stale lease and retry the claim once. Two
                    // breakers can race here; `create_new` still admits only
                    // one winner, and the loser waits like any other waiter.
                    let _ = std::fs::remove_file(&path);
                }
                Err(_) => return None,
            }
        }
        None
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// True when the lease file at `path` belongs to a dead or silent holder.
/// A vanished file counts as stale: the claim is free to retry.
fn is_stale(path: &Path) -> bool {
    let pid: Option<u32> = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| s.trim().parse().ok());
    match pid {
        Some(pid) if cfg!(target_os = "linux") => !Path::new(&format!("/proc/{pid}")).exists(),
        _ => {
            // No readable pid (or no /proc): fall back to the TTL.
            match std::fs::metadata(path).and_then(|m| m.modified()) {
                Ok(modified) => modified
                    .elapsed()
                    .map(|age| age > LEASE_TTL)
                    .unwrap_or(false),
                Err(e) => e.kind() == std::io::ErrorKind::NotFound,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("structmine-lease-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn second_claim_loses_until_release() {
        let dir = tmp("claim");
        let held = Lease::try_acquire(&dir, "stage-abc").expect("first claim wins");
        assert!(
            Lease::try_acquire(&dir, "stage-abc").is_none(),
            "live holder must block a second claim"
        );
        assert!(
            Lease::try_acquire(&dir, "stage-other").is_some(),
            "claims on other keys are independent"
        );
        drop(held);
        assert!(
            Lease::try_acquire(&dir, "stage-abc").is_some(),
            "released claim must be re-claimable"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dead_holder_lease_is_broken() {
        let dir = tmp("stale");
        std::fs::create_dir_all(&dir).unwrap();
        // Forge a lease held by a pid that cannot be alive (pid_max on
        // Linux defaults well below this).
        std::fs::write(dir.join("stage-dead.lease"), "999999999").unwrap();
        assert!(
            Lease::try_acquire(&dir, "stage-dead").is_some(),
            "a dead holder's lease must be reaped and re-claimed"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn release_removes_the_file() {
        let dir = tmp("release");
        let path = dir.join("k.lease");
        {
            let _l = Lease::try_acquire(&dir, "k").unwrap();
            assert!(path.exists());
        }
        assert!(!path.exists(), "drop must remove the lease file");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
