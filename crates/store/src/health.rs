//! Process-wide health registry: the degradation ladder, made visible.
//!
//! Subsystems that shed capability while staying correct record the step
//! here — the store demoting itself to memory-only, the shard coordinator
//! shedding a worker — and subsystems that become *unable to answer* (a
//! dead batcher thread, an engine that failed to load) mark the process
//! unusable. `structmine-serve`'s `/healthz` renders the registry:
//!
//! * healthy → `200` with body `ok`
//! * degraded → still `200` (the process answers correctly, just with less
//!   capacity or persistence) with a body naming each degradation step
//! * unusable → `503`
//!
//! The rendering lives in the pure [`health_body_for`] so it can be unit
//! tested without a process in any particular state.

use parking_lot::Mutex;
use std::sync::OnceLock;

fn degradations_cell() -> &'static Mutex<Vec<String>> {
    static CELL: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    CELL.get_or_init(|| Mutex::new(Vec::new()))
}

fn unusable_cell() -> &'static Mutex<Option<String>> {
    static CELL: OnceLock<Mutex<Option<String>>> = OnceLock::new();
    CELL.get_or_init(|| Mutex::new(None))
}

fn tier_cell() -> &'static Mutex<Option<String>> {
    static CELL: OnceLock<Mutex<Option<String>>> = OnceLock::new();
    CELL.get_or_init(|| Mutex::new(None))
}

/// Advertise the inference precision tier the process serves at (set once
/// by the server at startup; serving responses append it to every
/// `/healthz` body). Non-serving processes never set it and keep the
/// plain ladder bodies.
pub fn set_precision_tier(tier: &str) {
    *tier_cell().lock() = Some(tier.to_string());
}

/// The advertised precision tier, if one was set.
pub fn precision_tier() -> Option<String> {
    tier_cell().lock().clone()
}

/// Record one degradation step (idempotent per distinct reason): the
/// process still answers correctly, with reduced capability.
pub fn note_degraded(reason: &str) {
    let mut list = degradations_cell().lock();
    if !list.iter().any(|r| r == reason) {
        list.push(reason.to_string());
    }
}

/// Every degradation step recorded so far, in the order they happened.
pub fn degradations() -> Vec<String> {
    degradations_cell().lock().clone()
}

/// Mark the process unable to answer requests (first reason wins).
pub fn set_unusable(reason: &str) {
    let mut cell = unusable_cell().lock();
    if cell.is_none() {
        *cell = Some(reason.to_string());
    }
}

/// The unusable reason, if the process has one.
pub fn unusable() -> Option<String> {
    unusable_cell().lock().clone()
}

/// Render the current registry as an HTTP health answer.
pub fn health_body() -> (u16, String) {
    health_body_for(
        &degradations(),
        unusable().as_deref(),
        precision_tier().as_deref(),
    )
}

/// Pure rendering rule for `/healthz` (see module docs for the ladder).
/// When a precision tier was advertised, every body carries it as a
/// trailing ` (precision=<tier>)` so probes can see which tier answered.
pub fn health_body_for(
    degradations: &[String],
    unusable: Option<&str>,
    tier: Option<&str>,
) -> (u16, String) {
    let suffix = tier
        .map(|t| format!(" (precision={t})"))
        .unwrap_or_default();
    if let Some(reason) = unusable {
        return (503, format!("unusable: {reason}{suffix}\n"));
    }
    if degradations.is_empty() {
        (200, format!("ok{suffix}\n"))
    } else {
        (
            200,
            format!("degraded: {}{suffix}\n", degradations.join("; ")),
        )
    }
}

/// Test hook: reset the registry to healthy (and drop the advertised
/// tier).
pub fn reset() {
    degradations_cell().lock().clear();
    *unusable_cell().lock() = None;
    *tier_cell().lock() = None;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_covers_the_ladder() {
        let (code, body) = health_body_for(&[], None, None);
        assert_eq!((code, body.as_str()), (200, "ok\n"));

        let degr = vec![
            "store: memory-only".to_string(),
            "shard: worker 2 shed".to_string(),
        ];
        let (code, body) = health_body_for(&degr, None, None);
        assert_eq!(code, 200, "degraded still answers 200");
        assert_eq!(body, "degraded: store: memory-only; shard: worker 2 shed\n");

        let (code, body) = health_body_for(&degr, Some("batcher thread died"), None);
        assert_eq!(code, 503, "an unusable process must fail the probe");
        assert!(body.contains("batcher thread died"));
    }

    #[test]
    fn rendering_appends_the_advertised_tier() {
        let (code, body) = health_body_for(&[], None, Some("fast"));
        assert_eq!((code, body.as_str()), (200, "ok (precision=fast)\n"));

        let degr = vec!["store: memory-only".to_string()];
        let (_, body) = health_body_for(&degr, None, Some("exact"));
        assert_eq!(body, "degraded: store: memory-only (precision=exact)\n");

        let (code, body) = health_body_for(&[], Some("tolerance self-check failed"), Some("fast"));
        assert_eq!(code, 503);
        assert_eq!(
            body,
            "unusable: tolerance self-check failed (precision=fast)\n"
        );
    }

    #[test]
    fn degradations_dedup_and_order() {
        // The registry is process-global; make the reasons unique to this
        // test so parallel tests cannot interfere.
        let a = format!("t-{}-a", line!());
        let b = format!("t-{}-b", line!());
        note_degraded(&a);
        note_degraded(&b);
        note_degraded(&a); // idempotent per reason: one warning, one entry
        let all = degradations();
        let ours: Vec<_> = all.iter().filter(|r| **r == a || **r == b).collect();
        assert_eq!(ours, vec![&a, &b]);
    }
}
