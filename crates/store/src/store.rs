//! The two-level content-addressed artifact store.
//!
//! # Failure model (see DESIGN §7)
//!
//! The disk layer is treated as untrusted: every read and write can fail
//! (or be failed on purpose by the [`faults`](crate::faults) layer), and
//! every file can be silently truncated or bit-rotted between a write and a
//! later read. The store's defenses, in order:
//!
//! 1. **Checksum footer** — every artifact file ends with a
//!    [`StableHasher`](crate::StableHasher) digest of its body. Reads
//!    verify it *before* deserializing, so corruption is detected as a
//!    checksum mismatch, never as a serde error on garbage.
//! 2. **Bounded deterministic retry** — transient failures (IO errors,
//!    injected faults) are retried up to [`MAX_IO_ATTEMPTS`] times with a
//!    fixed exponential backoff (1, 2, 4 ms). Corruption is not retried:
//!    re-reading the same bytes cannot fix it.
//! 3. **Recompute, never propagate** — a failed read is a cache miss; a
//!    failed write just leaves the slot empty. Callers always get the
//!    correct value.
//! 4. **Degradation ladder** — after [`DEGRADE_AFTER`] *persistent*
//!    (post-retry) disk failures the store demotes itself to memory-only
//!    with a single `[artifact-store]` warning; the pipeline continues
//!    correct but uncached, instead of hammering a dead disk.

use crate::context;
use crate::error::{IoOp, StoreError};
use crate::faults::FaultInjector;
use crate::hash::StableHasher;
use crate::key::{ArtifactKey, STORE_FORMAT_VERSION};
use crate::stage::{Artifact, Persistence, Stage};
use parking_lot::Mutex;
use std::any::Any;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// On-disk artifact envelope: `(format version, stage name, payload)`. The
/// metadata lets the reader reject files written by an incompatible store
/// version or a different stage. (A tuple rather than a struct because the
/// workspace's offline serde shim does not derive generic structs.)
type Envelope<T> = (u32, String, T);

/// Marker introducing the checksum footer appended after the JSON body.
/// The body itself is compact JSON (no raw newlines), so searching for the
/// marker from the end of the file is unambiguous.
const CHECKSUM_MARKER: &[u8] = b"\n#structmine-checksum-fnv128:";

/// First try + up to three retries for transient disk failures.
const MAX_IO_ATTEMPTS: u32 = 4;

/// Persistent (post-retry) disk failures tolerated before the store
/// demotes itself to memory-only.
const DEGRADE_AFTER: u64 = 3;

/// Deterministic backoff before retry `attempt` (1-based): 1, 2, 4 ms.
fn backoff_delay(attempt: u32) -> std::time::Duration {
    std::time::Duration::from_millis(1u64 << (attempt - 1).min(4))
}

/// Hit/miss counters (monotonic, process-wide per store).
#[derive(Default)]
struct Stats {
    mem_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    disk_writes: AtomicU64,
    checksum_failures: AtomicU64,
    decode_failures: AtomicU64,
    injected_faults: AtomicU64,
    io_retries: AtomicU64,
    persistent_failures: AtomicU64,
}

/// A point-in-time copy of a store's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Artifacts served from the in-process `Arc` layer.
    pub mem_hits: u64,
    /// Artifacts deserialized from disk.
    pub disk_hits: u64,
    /// Artifacts that had to be computed.
    pub misses: u64,
    /// Artifacts written to disk.
    pub disk_writes: u64,
    /// Reads rejected by the checksum footer (truncation / bit-rot),
    /// *before* any deserialization was attempted.
    pub checksum_failures: u64,
    /// Reads whose body passed the checksum but failed to decode
    /// (encoder/decoder bug, not disk corruption).
    pub decode_failures: u64,
    /// Faults injected by the [`faults`](crate::faults) layer into this
    /// store's operations.
    pub injected_faults: u64,
    /// Retries performed after transient failures.
    pub io_retries: u64,
    /// Operations that still failed after every retry.
    pub persistent_failures: u64,
    /// True once the store has demoted itself to memory-only.
    pub degraded: bool,
}

impl StatsSnapshot {
    /// Total cache hits across both layers.
    pub fn hits(&self) -> u64 {
        self.mem_hits + self.disk_hits
    }
}

/// A content-addressed artifact store: in-process `Arc` layer over a disk
/// layer of JSON files named by [`ArtifactKey`].
pub struct ArtifactStore {
    /// Disk directory; `None` disables the disk layer.
    dir: Option<PathBuf>,
    /// `false` disables the in-process layer too (full recompute mode).
    memory_enabled: bool,
    mem: Mutex<HashMap<String, Arc<dyn Any + Send + Sync>>>,
    stats: Stats,
    /// When set, every [`Stats`] increment is mirrored into the global
    /// [`obs`](crate::obs) counter registry under `<scope>.<counter>`, so
    /// the run report's counters match this store's `[artifact-store]`
    /// summary by construction. The process-wide store uses `"store"`, the
    /// PLM cache `"plm"`; anonymous (test) stores mirror nothing.
    scope: Option<String>,
    /// Fault injector consulted by every disk operation. Stores built from
    /// the environment share [`FaultInjector::global`]; tests may pin a
    /// private injector (or [`FaultInjector::none`]).
    faults: Arc<FaultInjector>,
    /// Set once [`DEGRADE_AFTER`] persistent failures have accumulated;
    /// from then on the disk layer is bypassed entirely.
    degraded: AtomicBool,
    /// Persistent (post-retry) disk failure count, driving degradation.
    disk_failures: AtomicU64,
}

impl ArtifactStore {
    fn new(dir: Option<PathBuf>, memory_enabled: bool, faults: Arc<FaultInjector>) -> Self {
        ArtifactStore {
            dir,
            memory_enabled,
            mem: Mutex::new(HashMap::new()),
            stats: Stats::default(),
            scope: None,
            faults,
            degraded: AtomicBool::new(false),
            disk_failures: AtomicU64::new(0),
        }
    }

    /// A store persisting to `dir` (created lazily on first write), subject
    /// to the process-wide fault plan (`STRUCTMINE_FAULTS`), if any.
    pub fn with_dir(dir: impl Into<PathBuf>) -> Self {
        ArtifactStore::new(Some(dir.into()), true, Arc::clone(FaultInjector::global()))
    }

    /// A store persisting to `dir` under an explicit fault injector —
    /// deterministic fault tests build their own injector per store.
    pub fn with_dir_and_faults(dir: impl Into<PathBuf>, faults: Arc<FaultInjector>) -> Self {
        ArtifactStore::new(Some(dir.into()), true, faults)
    }

    /// A store with only the in-process layer.
    pub fn memory_only() -> Self {
        ArtifactStore::new(None, true, FaultInjector::none())
    }

    /// A fully disabled store: every lookup recomputes.
    pub fn disabled() -> Self {
        ArtifactStore::new(None, false, FaultInjector::none())
    }

    /// Build from the environment (see crate docs for the variables).
    pub fn from_env() -> Self {
        if std::env::var_os("STRUCTMINE_NO_CACHE").is_some() {
            return ArtifactStore::disabled();
        }
        if std::env::var_os("STRUCTMINE_STORE_NO_DISK").is_some() {
            return ArtifactStore::memory_only();
        }
        let dir = std::env::var_os("STRUCTMINE_STORE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| std::env::temp_dir().join("structmine-store"));
        ArtifactStore::with_dir(dir)
    }

    /// Mirror this store's counters into the global [`obs`](crate::obs)
    /// registry under `<scope>.<counter>` (e.g. `store.mem_hits`).
    pub fn with_scope(mut self, scope: impl Into<String>) -> Self {
        self.scope = Some(scope.into());
        self
    }

    /// Increment one stat, mirroring it into [`obs`](crate::obs) when this
    /// store has a scope.
    fn bump(&self, stat: &AtomicU64, counter: crate::obs::Counter) {
        stat.fetch_add(1, Ordering::Relaxed);
        if let Some(scope) = &self.scope {
            crate::obs::count(scope, counter, 1);
        }
    }

    /// The disk directory, if the disk layer is enabled.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// True once the store has demoted itself to memory-only after
    /// persistent disk failures.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Run a [`Stage`] memoized: return the stored artifact when the key
    /// hits, otherwise compute, store, and return. Under `STRUCTMINE_LEASE`
    /// (set by the shard coordinator for its workers) disk-persisted stages
    /// additionally go through the cross-process lease protocol so sibling
    /// worker processes never compute the same stage twice.
    pub fn run<S: Stage>(&self, stage: &S) -> Arc<S::Output> {
        if crate::lease::enabled() {
            return self.run_leased(stage);
        }
        self.get_or_compute(&stage.key(), stage.persistence(), || stage.compute())
    }

    /// Run a [`Stage`] under the cross-process lease protocol (see
    /// [`lease`](crate::lease)): claim the stage key before computing; on a
    /// lost claim, wait for the holder's artifact to land on disk instead
    /// of recomputing. Falls back to a plain compute when the disk layer is
    /// unavailable or the wait cap expires — leases are an optimization,
    /// never a correctness gate.
    pub fn run_leased<S: Stage>(&self, stage: &S) -> Arc<S::Output> {
        let key = stage.key();
        let persistence = stage.persistence();
        if let Some(hit) = self.peek(&key, persistence) {
            return hit;
        }
        let leasable =
            self.dir.is_some() && !self.is_degraded() && persistence != Persistence::MemoryOnly;
        if !leasable {
            return self.get_or_compute(&key, persistence, || stage.compute());
        }
        let leases = crate::lease::lease_dir(self.dir.as_deref().expect("leasable implies dir"));
        let id = key.id();
        let deadline = std::time::Instant::now() + crate::lease::LEASE_WAIT_CAP;
        loop {
            match crate::lease::Lease::try_acquire(&leases, &id) {
                Some(_claim) => {
                    // Re-check under the claim: the previous holder may have
                    // published between our peek and our acquire.
                    if let Some(hit) = self.peek(&key, persistence) {
                        return hit;
                    }
                    return self.get_or_compute(&key, persistence, || stage.compute());
                }
                None => {
                    if let Some(hit) = self.peek(&key, persistence) {
                        return hit;
                    }
                    if std::time::Instant::now() >= deadline {
                        // A live holder that never publishes (e.g. its disk
                        // writes keep failing). Duplicate the work locally —
                        // correct, just not shared.
                        crate::obs::log_warn(&format!(
                            "[lease] wait cap expired on {}; computing locally",
                            key.stage
                        ));
                        return self.get_or_compute(&key, persistence, || stage.compute());
                    }
                    std::thread::sleep(crate::lease::LEASE_POLL);
                }
            }
        }
    }

    /// Insert an externally computed value under a stage's key — the shard
    /// coordinator uses this to publish a merged artifact (assembled from
    /// per-shard pieces) so downstream single-process consumers find it
    /// warm under the canonical key. Publishing is authoritative: it
    /// overwrites any in-memory memo for the key.
    pub fn publish<S: Stage>(&self, stage: &S, value: S::Output) -> Arc<S::Output> {
        let key = stage.key();
        let persistence = stage.persistence();
        let arc = Arc::new(value);
        let degraded = self.is_degraded();
        let use_mem = self.memory_enabled && (persistence != Persistence::DiskOnly || degraded);
        let use_disk = self.dir.is_some() && !degraded && persistence != Persistence::MemoryOnly;
        if use_disk {
            if let Err(e) = self.write_disk(&key, arc.as_ref()) {
                self.note_persistent_failure(&e);
            }
        }
        if use_mem || (self.memory_enabled && self.is_degraded()) {
            let clone: Arc<dyn Any + Send + Sync> = Arc::clone(&arc) as Arc<dyn Any + Send + Sync>;
            self.mem.lock().insert(key.id(), clone);
        }
        arc
    }

    /// Memoize an ad-hoc computation under `key`.
    ///
    /// This never fails: any disk-layer error ([`StoreError`]) is
    /// classified, counted, retried if transient, and ultimately converted
    /// into "recompute" — the caller always receives the correct value.
    pub fn get_or_compute<T: Artifact>(
        &self,
        key: &ArtifactKey,
        persistence: Persistence,
        compute: impl FnOnce() -> T,
    ) -> Arc<T> {
        if let Some(hit) = self.peek(key, persistence) {
            return hit;
        }
        let id = key.id();
        let degraded = self.is_degraded();
        // After demotion, disk-only artifacts are held in memory instead:
        // correct (just uncached across processes), and it prevents a dead
        // disk from turning every checkpoint lookup into a recompute.
        let use_mem = self.memory_enabled && (persistence != Persistence::DiskOnly || degraded);
        let use_disk = self.dir.is_some() && !degraded && persistence != Persistence::MemoryOnly;

        self.bump(&self.stats.misses, crate::obs::Counter::Misses);
        let arc = Arc::new(context::with_stage_label(&key.stage, compute));
        if use_disk && !self.is_degraded() {
            if let Err(e) = self.write_disk(key, arc.as_ref()) {
                self.note_persistent_failure(&e);
            }
        }
        if use_mem || (self.memory_enabled && self.is_degraded()) {
            self.memoize(&id, &arc);
        }
        arc
    }

    /// Look up `key` in the configured layers *without* computing on a
    /// miss. A hit bumps the usual hit counters (and memoizes a disk hit);
    /// a miss bumps nothing — the caller decides whether to compute. The
    /// delta-stage machinery ([`ArtifactStore::run_delta`]) uses this to
    /// probe a generation chain for the newest cached artifact.
    pub fn peek<T: Artifact>(&self, key: &ArtifactKey, persistence: Persistence) -> Option<Arc<T>> {
        let id = key.id();
        let degraded = self.is_degraded();
        let use_mem = self.memory_enabled && (persistence != Persistence::DiskOnly || degraded);
        let use_disk = self.dir.is_some() && !degraded && persistence != Persistence::MemoryOnly;

        if use_mem {
            if let Some(hit) = self.mem.lock().get(&id) {
                if let Ok(typed) = Arc::clone(hit).downcast::<T>() {
                    self.bump(&self.stats.mem_hits, crate::obs::Counter::MemHits);
                    return Some(typed);
                }
            }
        }
        if use_disk {
            match self.read_disk::<T>(key) {
                Ok(Some(payload)) => {
                    self.bump(&self.stats.disk_hits, crate::obs::Counter::DiskHits);
                    let arc = Arc::new(payload);
                    if use_mem {
                        self.memoize(&id, &arc);
                    }
                    return Some(arc);
                }
                Ok(None) => {} // clean miss (absent or stale artifact)
                Err(e) => self.note_read_failure(&e), // failed read = miss
            }
        }
        None
    }

    /// Evict one artifact from the in-process layer (disk files are kept).
    /// Generation retention (`STRUCTMINE_GENERATION_KEEP`) uses this to
    /// bound memory across long delta chains.
    pub fn forget(&self, key: &ArtifactKey) {
        self.mem.lock().remove(&key.id());
    }

    /// The obs-mirroring scope, for modules that add their own counters
    /// under this store's namespace (e.g. per-generation hit rates).
    pub(crate) fn scope(&self) -> Option<&str> {
        self.scope.as_deref()
    }

    fn memoize<T: Artifact>(&self, id: &str, arc: &Arc<T>) {
        let clone: Arc<dyn Any + Send + Sync> = Arc::clone(arc) as Arc<dyn Any + Send + Sync>;
        self.mem.lock().entry(id.to_string()).or_insert(clone);
    }

    /// Drop every in-process artifact (disk files are kept). Long-running
    /// harnesses call this between experiments to bound memory.
    pub fn clear_memory(&self) {
        self.mem.lock().clear();
    }

    /// Classify a failed read. Corruption (checksum/decode) is counted but
    /// does not threaten the disk layer — the recompute below repairs the
    /// slot. IO-level persistent failures feed the degradation ladder.
    fn note_read_failure(&self, e: &StoreError) {
        match e {
            StoreError::ChecksumMismatch { .. } | StoreError::MissingChecksum { .. } => {
                self.bump(
                    &self.stats.checksum_failures,
                    crate::obs::Counter::ChecksumFailures,
                );
            }
            StoreError::Decode { .. } => {
                self.bump(
                    &self.stats.decode_failures,
                    crate::obs::Counter::DecodeFailures,
                );
            }
            _ => self.note_persistent_failure(e),
        }
    }

    /// Record a persistent (post-retry) disk failure; after
    /// [`DEGRADE_AFTER`] of them, demote to memory-only with one warning.
    fn note_persistent_failure(&self, e: &StoreError) {
        self.bump(
            &self.stats.persistent_failures,
            crate::obs::Counter::PersistentFailures,
        );
        let n = self.disk_failures.fetch_add(1, Ordering::Relaxed) + 1;
        if n >= DEGRADE_AFTER && !self.degraded.swap(true, Ordering::Relaxed) {
            if let Some(scope) = &self.scope {
                crate::obs::count(scope, crate::obs::Counter::Degradations, 1);
            }
            // Scoped stores are the long-lived, process-level ones; their
            // demotion is a process-health fact `/healthz` should surface.
            if let Some(scope) = &self.scope {
                crate::health::note_degraded(&format!("{scope}: demoted to memory-only"));
            }
            crate::obs::log_warn(&format!(
                "[artifact-store] WARNING: {n} persistent disk failures (last: {e}); \
                 demoting to memory-only — results stay correct but are no longer persisted"
            ));
        }
    }

    /// Run one transient-retryable disk operation with bounded
    /// deterministic backoff. Non-transient errors (corruption) abort the
    /// loop immediately; transient ones retry up to [`MAX_IO_ATTEMPTS`].
    fn with_retries<R>(
        &self,
        op: IoOp,
        path: &Path,
        mut attempt_fn: impl FnMut() -> Result<R, StoreError>,
    ) -> Result<R, StoreError> {
        let mut attempt = 1;
        loop {
            match attempt_fn() {
                Ok(r) => return Ok(r),
                Err(e) => {
                    if matches!(e, StoreError::InjectedFault { .. }) {
                        self.bump(
                            &self.stats.injected_faults,
                            crate::obs::Counter::InjectedFaults,
                        );
                    }
                    if !e.is_transient() {
                        return Err(e);
                    }
                    if attempt >= MAX_IO_ATTEMPTS {
                        return Err(StoreError::RetriesExhausted {
                            op,
                            path: path.to_path_buf(),
                            attempts: attempt,
                            last: Box::new(e),
                        });
                    }
                    self.bump(&self.stats.io_retries, crate::obs::Counter::IoRetries);
                    std::thread::sleep(backoff_delay(attempt));
                    attempt += 1;
                }
            }
        }
    }

    /// Read and verify one artifact. `Ok(None)` is a clean miss (no file,
    /// or a stale format/stage — both expected); `Err` is a real failure.
    fn read_disk<T: Artifact>(&self, key: &ArtifactKey) -> Result<Option<T>, StoreError> {
        let Some(dir) = self.dir.as_ref() else {
            return Ok(None);
        };
        let path = dir.join(key.file_name());
        let bytes = match self.with_retries(IoOp::Read, &path, || {
            self.faults.before_read(&path)?;
            match std::fs::read(&path) {
                Ok(b) => Ok(Some(b)),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
                Err(e) => Err(StoreError::Io {
                    op: IoOp::Read,
                    path: path.clone(),
                    source: e,
                }),
            }
        })? {
            Some(b) => b,
            None => return Ok(None),
        };

        // Verify the checksum footer BEFORE deserializing: truncation and
        // bit-rot must fail closed here, never reach the decoder.
        let (body, recorded) =
            split_checksum(&bytes).ok_or(StoreError::MissingChecksum { path: path.clone() })?;
        let actual = checksum_of(body);
        if actual != recorded {
            return Err(StoreError::ChecksumMismatch {
                path,
                expected: recorded,
                actual,
            });
        }

        let (format, stage, payload): Envelope<T> =
            serde_json::from_slice(body).map_err(|e| StoreError::Decode {
                path: path.clone(),
                message: format!("{e:?}"),
            })?;
        // Version/stage mismatches are expected invalidations, not errors.
        if format != STORE_FORMAT_VERSION || stage != key.stage {
            return Ok(None);
        }
        Ok(Some(payload))
    }

    /// Serialize, checksum, and atomically persist one artifact.
    fn write_disk<T: Artifact>(&self, key: &ArtifactKey, payload: &T) -> Result<(), StoreError> {
        let Some(dir) = self.dir.as_ref() else {
            return Ok(());
        };
        let env: Envelope<&T> = (STORE_FORMAT_VERSION, key.stage.clone(), payload);
        let mut bytes = serde_json::to_vec(&env).map_err(|e| StoreError::Decode {
            path: dir.join(key.file_name()),
            message: format!("serialize: {e:?}"),
        })?;
        let digest = checksum_of(&bytes);
        bytes.extend_from_slice(CHECKSUM_MARKER);
        bytes.extend_from_slice(format!("{digest:032x}").as_bytes());

        let path = dir.join(key.file_name());
        self.with_retries(IoOp::Write, &path, || {
            self.faults.before_write(&path)?;
            let io = |e: std::io::Error| StoreError::Io {
                op: IoOp::Write,
                path: path.clone(),
                source: e,
            };
            std::fs::create_dir_all(dir).map_err(io)?;
            // Write to a private temp file, then atomically rename into
            // place: a reader never observes a torn artifact, and the slot
            // always holds some complete artifact no matter how many
            // writers race. The temp name carries pid *and* a process-local
            // sequence number so concurrent threads of one process cannot
            // interleave writes either.
            static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
            let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
            let tmp = path.with_extension(format!("tmp-{}-{seq}", std::process::id()));
            let result = std::fs::write(&tmp, &bytes)
                .and_then(|()| std::fs::rename(&tmp, &path))
                .map_err(io);
            if result.is_err() {
                let _ = std::fs::remove_file(&tmp);
            }
            result
        })?;
        self.bump(&self.stats.disk_writes, crate::obs::Counter::DiskWrites);
        // The fault layer may corrupt the completed file (truncate faults)
        // or crash the process here (kill_after_writes) — both simulate
        // hazards that strike *after* a successful write.
        self.faults.after_write_success(&path);
        Ok(())
    }

    /// Current counters.
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            mem_hits: self.stats.mem_hits.load(Ordering::Relaxed),
            disk_hits: self.stats.disk_hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            disk_writes: self.stats.disk_writes.load(Ordering::Relaxed),
            checksum_failures: self.stats.checksum_failures.load(Ordering::Relaxed),
            decode_failures: self.stats.decode_failures.load(Ordering::Relaxed),
            injected_faults: self.stats.injected_faults.load(Ordering::Relaxed),
            io_retries: self.stats.io_retries.load(Ordering::Relaxed),
            persistent_failures: self.stats.persistent_failures.load(Ordering::Relaxed),
            degraded: self.is_degraded(),
        }
    }

    /// One-line human- and grep-friendly summary of the counters, e.g. for
    /// a table binary to log after its run. Fault/failure counters appear
    /// only when nonzero, so fault-free runs keep the familiar short line.
    pub fn summary(&self) -> String {
        let s = self.stats();
        let dir = match (&self.dir, self.memory_enabled) {
            (Some(d), _) if s.degraded => format!("DEGRADED to memory-only, was {}", d.display()),
            (Some(d), _) => format!("dir {}", d.display()),
            (None, true) => "memory only".to_string(),
            (None, false) => "disabled".to_string(),
        };
        let mut line = format!(
            "[artifact-store] hits={} (mem_hits={} disk_hits={}) misses={} disk_writes={}",
            s.hits(),
            s.mem_hits,
            s.disk_hits,
            s.misses,
            s.disk_writes
        );
        if s.checksum_failures
            + s.decode_failures
            + s.injected_faults
            + s.io_retries
            + s.persistent_failures
            > 0
        {
            line.push_str(&format!(
                " faults(injected={} retries={} persistent={} checksum={} decode={})",
                s.injected_faults,
                s.io_retries,
                s.persistent_failures,
                s.checksum_failures,
                s.decode_failures
            ));
        }
        line.push_str(&format!(" ({dir})"));
        line
    }
}

/// Checksum of an artifact body: the store's own stable 128-bit digest.
fn checksum_of(body: &[u8]) -> u128 {
    let mut h = StableHasher::new();
    h.write_bytes(body);
    h.finish()
}

/// Split `bytes` into (body, recorded checksum) at the footer marker.
/// Returns `None` when the marker or a parseable digest is absent.
fn split_checksum(bytes: &[u8]) -> Option<(&[u8], u128)> {
    // Search from the end: the footer is the last thing written, and the
    // compact-JSON body contains no raw newlines.
    let pos = bytes
        .windows(CHECKSUM_MARKER.len())
        .rposition(|w| w == CHECKSUM_MARKER)?;
    let body = &bytes[..pos];
    let hex = std::str::from_utf8(&bytes[pos + CHECKSUM_MARKER.len()..]).ok()?;
    let digest = u128::from_str_radix(hex.trim(), 16).ok()?;
    Some((body, digest))
}

static GLOBAL: OnceLock<ArtifactStore> = OnceLock::new();

/// The process-wide store, configured from the environment on first use.
/// CLI flags that must influence it (`--no-cache`, `--cache-dir`,
/// `--faults`) set the corresponding environment variables before any
/// store access.
pub fn global() -> &'static ArtifactStore {
    GLOBAL.get_or_init(|| ArtifactStore::from_env().with_scope("store"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{env_active, FaultPlan};
    use crate::hash::StableHasher;
    use std::sync::atomic::AtomicUsize;

    struct Doubler {
        input: Vec<u32>,
        version: u32,
        calls: AtomicUsize,
    }

    impl Stage for Doubler {
        type Output = Vec<u32>;
        fn name(&self) -> &'static str {
            "test/doubler"
        }
        fn version(&self) -> u32 {
            self.version
        }
        fn fingerprint(&self, h: &mut StableHasher) {
            crate::StableHash::stable_hash(&self.input, h);
        }
        fn compute(&self) -> Vec<u32> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            self.input.iter().map(|x| x * 2).collect()
        }
    }

    fn doubler(input: Vec<u32>, version: u32) -> Doubler {
        Doubler {
            input,
            version,
            calls: AtomicUsize::new(0),
        }
    }

    fn tmp_store(tag: &str) -> (ArtifactStore, PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "structmine-store-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        (ArtifactStore::with_dir(&dir), dir)
    }

    // NOTE on `env_active()` guards: the CI fault-injection smoke job runs
    // this suite under `STRUCTMINE_FAULTS=disk_write=0.3;seed=7`. Output
    // *values* must then still be correct (asserted unconditionally), but
    // exact hit/miss/recompute counts legitimately differ, so counter
    // assertions are skipped under an active environment fault plan.

    #[test]
    fn warm_read_equals_cold_compute_bitwise() {
        let (store, dir) = tmp_store("warm");
        let s = doubler(vec![1, 2, 3], 1);
        let cold = store.run(&s);
        assert_eq!(*cold, vec![2, 4, 6]);

        // Same process: memory hit.
        let warm_mem = store.run(&s);
        assert_eq!(*cold, *warm_mem);

        // Fresh store over the same dir: disk hit, byte-identical payload.
        let store2 = ArtifactStore::with_dir(&dir);
        let warm_disk = store2.run(&s);
        assert_eq!(*cold, *warm_disk);
        if !env_active() {
            assert_eq!(s.calls.load(Ordering::Relaxed), 1, "must not recompute");
            assert_eq!(store2.stats().disk_hits, 1);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_bump_invalidates() {
        let (store, dir) = tmp_store("version");
        let v1 = doubler(vec![5], 1);
        store.run(&v1);
        assert!(v1.calls.load(Ordering::Relaxed) >= 1);
        let v2 = doubler(vec![5], 2);
        store.run(&v2);
        assert!(
            v2.calls.load(Ordering::Relaxed) >= 1,
            "bumped version must recompute"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_and_truncated_artifacts_are_recomputed_via_checksum() {
        let (store, dir) = tmp_store("corrupt");
        let s = doubler(vec![7, 8], 1);
        let good = store.run(&s);
        let path = dir.join(s.key().file_name());
        if !path.exists() {
            assert!(env_active(), "write must succeed in a fault-free run");
            return;
        }

        let intact = std::fs::read(&path).unwrap();
        // Three corruption shapes: footer-preserving body corruption, a
        // mid-file truncation (footer gone), and an empty file.
        let half = intact.len() / 2;
        let cases: Vec<Vec<u8>> = vec![
            {
                let mut v = intact.clone();
                v[2] ^= 0xff; // bit-rot inside the JSON body
                v
            },
            intact[..half].to_vec(),
            Vec::new(),
        ];
        for garbage in cases {
            std::fs::write(&path, &garbage).unwrap();
            let fresh = ArtifactStore::with_dir(&dir);
            let back = fresh.run(&s);
            assert_eq!(*good, *back, "corrupt file must be recomputed");
            if !env_active() {
                let st = fresh.stats();
                assert_eq!(st.misses, 1);
                assert_eq!(st.disk_writes, 1, "slot must be repaired");
                // The failure must be caught by the checksum footer, not by
                // feeding garbage to the deserializer.
                assert_eq!(st.checksum_failures, 1, "must fail closed via checksum");
                assert_eq!(st.decode_failures, 0, "serde must never see garbage");
            }
        }
        // After the repair, a fresh store reads it from disk again.
        let fresh = ArtifactStore::with_dir(&dir);
        let back = fresh.run(&s);
        assert_eq!(*good, *back);
        if !env_active() {
            assert_eq!(fresh.stats().disk_hits, 1);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_format_version_on_disk_is_ignored() {
        let (store, dir) = tmp_store("format");
        let s = doubler(vec![9], 1);
        store.run(&s);
        let path = dir.join(s.key().file_name());
        if !path.exists() {
            assert!(env_active(), "write must succeed in a fault-free run");
            return;
        }
        let bytes = std::fs::read(&path).unwrap();
        let (body, _) = split_checksum(&bytes).expect("fresh artifact must carry a footer");
        let text = std::str::from_utf8(body).unwrap();
        // The envelope is `[format, stage, payload]`; bump the leading
        // format number, then re-checksum so only the version mismatches.
        let bumped = text.replacen(
            &format!("[{STORE_FORMAT_VERSION},"),
            &format!("[{},", STORE_FORMAT_VERSION + 1),
            1,
        );
        assert_ne!(text, bumped, "envelope must lead with the format field");
        let mut rewritten = bumped.into_bytes();
        let digest = checksum_of(&rewritten);
        rewritten.extend_from_slice(CHECKSUM_MARKER);
        rewritten.extend_from_slice(format!("{digest:032x}").as_bytes());
        std::fs::write(&path, rewritten).unwrap();
        let fresh = ArtifactStore::with_dir(&dir);
        let back = fresh.run(&s);
        assert_eq!(*back, vec![18]);
        if !env_active() {
            let st = fresh.stats();
            assert_eq!(st.misses, 1, "future-format file must be ignored");
            assert_eq!(
                st.checksum_failures, 0,
                "a well-formed future-format file is stale, not corrupt"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn racing_writers_leave_a_complete_artifact() {
        let (_, dir) = tmp_store("race");
        let s = doubler((0..512).collect(), 1);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..5 {
                        // Each iteration uses a cold store so every call
                        // races through the disk write path.
                        let store = ArtifactStore::disabled_memory_with_dir(&dir);
                        store.run(&s);
                    }
                });
            }
        });
        // Whatever writer won, the slot must hold a complete artifact.
        let reader = ArtifactStore::with_dir(&dir);
        let back = reader.run(&s);
        assert_eq!(*back, s.compute());
        if !env_active() {
            assert_eq!(reader.stats().disk_hits, 1);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persistence_modes_route_layers() {
        let (store, dir) = tmp_store("persist");
        let key = ArtifactKey::new("test/mem", 1, |h| h.write_u64(1));
        let a = store.get_or_compute(&key, Persistence::MemoryOnly, || vec![1u32]);
        assert!(!dir.join(key.file_name()).exists(), "MemoryOnly wrote disk");
        let b = store.get_or_compute(&key, Persistence::MemoryOnly, || vec![2u32]);
        assert_eq!(*a, *b, "memory layer must serve the first value");
        assert_eq!(store.stats().mem_hits, 1);

        let key2 = ArtifactKey::new("test/disk", 1, |h| h.write_u64(2));
        let c = store.get_or_compute(&key2, Persistence::DiskOnly, || vec![3u32]);
        let d = store.get_or_compute(&key2, Persistence::DiskOnly, || vec![4u32]);
        if !env_active() {
            assert!(dir.join(key2.file_name()).exists());
            assert_eq!(*c, *d, "DiskOnly must serve the persisted value");
            assert_eq!(store.stats().disk_hits, 1, "DiskOnly must skip memory");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_store_always_recomputes() {
        let store = ArtifactStore::disabled();
        let s = doubler(vec![1], 1);
        store.run(&s);
        store.run(&s);
        assert_eq!(s.calls.load(Ordering::Relaxed), 2);
        assert_eq!(store.stats().misses, 2);
        assert_eq!(store.stats().hits(), 0);
    }

    #[test]
    fn clear_memory_falls_back_to_disk() {
        let (store, dir) = tmp_store("clear");
        let s = doubler(vec![6], 1);
        let first = store.run(&s);
        store.clear_memory();
        let second = store.run(&s);
        assert_eq!(*first, *second);
        if !env_active() {
            assert_eq!(s.calls.load(Ordering::Relaxed), 1);
            assert_eq!(store.stats().disk_hits, 1);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_write_faults_are_retried_through() {
        // One injected failure per operation at most: p=0.5 with this seed
        // yields a mix of clean and faulted attempts, and every operation
        // still succeeds within the retry budget.
        let (_, dir) = tmp_store("retry");
        let inj = FaultInjector::with_plan(FaultPlan {
            disk_write: 0.25,
            disk_read: 0.25,
            seed: 1,
            ..Default::default()
        });
        let store = ArtifactStore::with_dir_and_faults(&dir, inj);
        for i in 0..16u32 {
            let s = doubler(vec![i], 1);
            assert_eq!(*store.run(&s), vec![i * 2]);
        }
        let st = store.stats();
        assert!(st.injected_faults > 0, "p=0.25 over 32+ ops must inject");
        assert!(st.io_retries > 0, "injected faults must be retried");
        // Deterministic seed: with p=0.25 and a 4-attempt budget this seed
        // never exhausts the retries, so no persistent failures accrue.
        assert_eq!(st.persistent_failures, 0);
        assert!(!st.degraded);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn total_disk_failure_degrades_to_memory_only_and_stays_correct() {
        let (_, dir) = tmp_store("degrade");
        let inj = FaultInjector::with_plan(FaultPlan {
            disk_write: 1.0,
            seed: 5,
            ..Default::default()
        });
        let store = ArtifactStore::with_dir_and_faults(&dir, inj);
        let mut outputs = Vec::new();
        for i in 0..6u32 {
            let s = doubler(vec![i, i + 1], 1);
            outputs.push((*store.run(&s)).clone());
        }
        assert_eq!(
            outputs,
            (0..6u32)
                .map(|i| vec![i * 2, (i + 1) * 2])
                .collect::<Vec<_>>(),
            "results must stay correct through degradation"
        );
        let st = store.stats();
        assert!(st.degraded, "p=1.0 writes must trip the degradation ladder");
        assert_eq!(st.persistent_failures, DEGRADE_AFTER);
        assert_eq!(st.disk_writes, 0);
        // Memory layer still works after demotion.
        let s = doubler(vec![0, 1], 1);
        let again = store.run(&s);
        assert_eq!(*again, vec![0, 2]);
        assert!(store.stats().mem_hits >= 1, "degraded store still memoizes");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn degraded_store_holds_disk_only_artifacts_in_memory() {
        let (_, dir) = tmp_store("degrade-diskonly");
        let inj = FaultInjector::with_plan(FaultPlan {
            disk_write: 1.0,
            seed: 2,
            ..Default::default()
        });
        let store = ArtifactStore::with_dir_and_faults(&dir, inj);
        // Trip the ladder.
        for i in 0..DEGRADE_AFTER as u32 {
            store.run(&doubler(vec![100 + i], 1));
        }
        assert!(store.is_degraded());
        // A DiskOnly artifact must now be served from memory, not
        // recomputed every call.
        let key = ArtifactKey::new("test/ckpt", 1, |h| h.write_u64(9));
        let calls = AtomicUsize::new(0);
        let compute = || {
            calls.fetch_add(1, Ordering::Relaxed);
            vec![42u32]
        };
        store.get_or_compute(&key, Persistence::DiskOnly, compute);
        store.get_or_compute(&key, Persistence::DiskOnly, compute);
        assert_eq!(
            calls.load(Ordering::Relaxed),
            1,
            "demoted store must hold DiskOnly artifacts in memory"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncate_fault_is_caught_by_checksum_not_serde() {
        let (_, dir) = tmp_store("truncate");
        let inj = FaultInjector::with_plan(FaultPlan {
            truncate: 1.0,
            seed: 4,
            ..Default::default()
        });
        let store = ArtifactStore::with_dir_and_faults(&dir, inj);
        let s = doubler(vec![3, 4, 5], 1);
        let first = store.run(&s);
        assert_eq!(*first, vec![6, 8, 10]);
        // The write completed but the file was silently halved. A fresh,
        // fault-free store must detect it via the checksum and recompute.
        let clean = ArtifactStore::with_dir_and_faults(&dir, FaultInjector::none());
        let back = clean.run(&s);
        assert_eq!(*back, vec![6, 8, 10]);
        let st = clean.stats();
        assert_eq!(st.checksum_failures, 1, "truncation must fail closed");
        assert_eq!(st.decode_failures, 0);
        assert_eq!(st.misses, 1);
        assert_eq!(st.disk_writes, 1, "slot must be repaired");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checksum_footer_round_trips() {
        let body = br#"[2,"stage",[1,2,3]]"#.to_vec();
        let digest = checksum_of(&body);
        let mut file = body.clone();
        file.extend_from_slice(CHECKSUM_MARKER);
        file.extend_from_slice(format!("{digest:032x}").as_bytes());
        let (split_body, split_digest) = split_checksum(&file).unwrap();
        assert_eq!(split_body, &body[..]);
        assert_eq!(split_digest, digest);
        assert!(split_checksum(&body).is_none(), "no footer, no split");
        assert!(split_checksum(b"").is_none());
    }

    #[test]
    fn scoped_store_mirrors_stats_into_obs_counters() {
        // A unique scope isolates this test from every other store in the
        // shared test process.
        let scope = format!("test-scope-{}", std::process::id());
        let store = ArtifactStore::memory_only().with_scope(&scope);
        let s = doubler(vec![11], 1);
        store.run(&s); // miss
        store.run(&s); // mem hit
        let st = store.stats();
        assert_eq!(st.misses, 1);
        assert_eq!(st.mem_hits, 1);
        assert_eq!(
            crate::obs::counter_value(&format!("{scope}.misses")),
            st.misses,
            "report counters must match the [artifact-store] summary"
        );
        assert_eq!(
            crate::obs::counter_value(&format!("{scope}.mem_hits")),
            st.mem_hits
        );
        assert_eq!(crate::obs::counter_value(&format!("{scope}.disk_hits")), 0);
    }

    #[test]
    fn compute_runs_under_its_stage_label() {
        let store = ArtifactStore::memory_only();
        let key = ArtifactKey::new("test/labeled", 1, |h| h.write_u64(3));
        let seen = store.get_or_compute(&key, Persistence::MemoryOnly, || {
            vec![crate::context::current_stage_label().unwrap_or_default()]
        });
        assert_eq!(*seen, vec!["test/labeled".to_string()]);
    }

    impl ArtifactStore {
        /// Test helper: disk layer on, memory layer off — forces every call
        /// through the disk read/write path.
        fn disabled_memory_with_dir(dir: &Path) -> Self {
            let mut s = ArtifactStore::with_dir(dir);
            s.memory_enabled = false;
            s
        }
    }
}
