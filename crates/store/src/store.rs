//! The two-level content-addressed artifact store.

use crate::key::{ArtifactKey, STORE_FORMAT_VERSION};
use crate::stage::{Artifact, Persistence, Stage};
use parking_lot::Mutex;
use std::any::Any;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// On-disk artifact envelope: `(format version, stage name, payload)`. The
/// metadata lets the reader reject files written by an incompatible store
/// version or a different stage. (A tuple rather than a struct because the
/// workspace's offline serde shim does not derive generic structs.)
type Envelope<T> = (u32, String, T);

/// Hit/miss counters (monotonic, process-wide per store).
#[derive(Default)]
struct Stats {
    mem_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    disk_writes: AtomicU64,
}

/// A point-in-time copy of a store's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Artifacts served from the in-process `Arc` layer.
    pub mem_hits: u64,
    /// Artifacts deserialized from disk.
    pub disk_hits: u64,
    /// Artifacts that had to be computed.
    pub misses: u64,
    /// Artifacts written to disk.
    pub disk_writes: u64,
}

impl StatsSnapshot {
    /// Total cache hits across both layers.
    pub fn hits(&self) -> u64 {
        self.mem_hits + self.disk_hits
    }
}

/// A content-addressed artifact store: in-process `Arc` layer over a disk
/// layer of JSON files named by [`ArtifactKey`].
pub struct ArtifactStore {
    /// Disk directory; `None` disables the disk layer.
    dir: Option<PathBuf>,
    /// `false` disables the in-process layer too (full recompute mode).
    memory_enabled: bool,
    mem: Mutex<HashMap<String, Arc<dyn Any + Send + Sync>>>,
    stats: Stats,
}

impl ArtifactStore {
    /// A store persisting to `dir` (created lazily on first write).
    pub fn with_dir(dir: impl Into<PathBuf>) -> Self {
        ArtifactStore {
            dir: Some(dir.into()),
            memory_enabled: true,
            mem: Mutex::new(HashMap::new()),
            stats: Stats::default(),
        }
    }

    /// A store with only the in-process layer.
    pub fn memory_only() -> Self {
        ArtifactStore {
            dir: None,
            memory_enabled: true,
            mem: Mutex::new(HashMap::new()),
            stats: Stats::default(),
        }
    }

    /// A fully disabled store: every lookup recomputes.
    pub fn disabled() -> Self {
        ArtifactStore {
            dir: None,
            memory_enabled: false,
            mem: Mutex::new(HashMap::new()),
            stats: Stats::default(),
        }
    }

    /// Build from the environment (see crate docs for the variables).
    pub fn from_env() -> Self {
        if std::env::var_os("STRUCTMINE_NO_CACHE").is_some() {
            return ArtifactStore::disabled();
        }
        if std::env::var_os("STRUCTMINE_STORE_NO_DISK").is_some() {
            return ArtifactStore::memory_only();
        }
        let dir = std::env::var_os("STRUCTMINE_STORE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| std::env::temp_dir().join("structmine-store"));
        ArtifactStore::with_dir(dir)
    }

    /// The disk directory, if the disk layer is enabled.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Run a [`Stage`] memoized: return the stored artifact when the key
    /// hits, otherwise compute, store, and return.
    pub fn run<S: Stage>(&self, stage: &S) -> Arc<S::Output> {
        self.get_or_compute(&stage.key(), stage.persistence(), || stage.compute())
    }

    /// Memoize an ad-hoc computation under `key`.
    pub fn get_or_compute<T: Artifact>(
        &self,
        key: &ArtifactKey,
        persistence: Persistence,
        compute: impl FnOnce() -> T,
    ) -> Arc<T> {
        let id = key.id();
        let use_mem = self.memory_enabled && persistence != Persistence::DiskOnly;
        let use_disk = self.dir.is_some() && persistence != Persistence::MemoryOnly;

        if use_mem {
            if let Some(hit) = self.mem.lock().get(&id) {
                if let Ok(typed) = Arc::clone(hit).downcast::<T>() {
                    self.stats.mem_hits.fetch_add(1, Ordering::Relaxed);
                    return typed;
                }
            }
        }
        if use_disk {
            if let Some(payload) = self.read_disk::<T>(key) {
                self.stats.disk_hits.fetch_add(1, Ordering::Relaxed);
                let arc = Arc::new(payload);
                if use_mem {
                    self.memoize(&id, &arc);
                }
                return arc;
            }
        }

        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        let arc = Arc::new(compute());
        if use_disk {
            self.write_disk(key, arc.as_ref());
        }
        if use_mem {
            self.memoize(&id, &arc);
        }
        arc
    }

    fn memoize<T: Artifact>(&self, id: &str, arc: &Arc<T>) {
        let clone: Arc<dyn Any + Send + Sync> = Arc::clone(arc) as Arc<dyn Any + Send + Sync>;
        self.mem.lock().entry(id.to_string()).or_insert(clone);
    }

    /// Drop every in-process artifact (disk files are kept). Long-running
    /// harnesses call this between experiments to bound memory.
    pub fn clear_memory(&self) {
        self.mem.lock().clear();
    }

    fn read_disk<T: Artifact>(&self, key: &ArtifactKey) -> Option<T> {
        let path = self.dir.as_ref()?.join(key.file_name());
        // Any failure — missing, truncated, corrupt, wrong format version,
        // or a digest collision across stages — falls through to recompute;
        // the subsequent write repairs the slot.
        let bytes = std::fs::read(path).ok()?;
        let (format, stage, payload): Envelope<T> = serde_json::from_slice(&bytes).ok()?;
        if format != STORE_FORMAT_VERSION || stage != key.stage {
            return None;
        }
        Some(payload)
    }

    fn write_disk<T: Artifact>(&self, key: &ArtifactKey, payload: &T) {
        let Some(dir) = self.dir.as_ref() else {
            return;
        };
        let env: Envelope<&T> = (STORE_FORMAT_VERSION, key.stage.clone(), payload);
        let Ok(bytes) = serde_json::to_vec(&env) else {
            return;
        };
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        // Write to a private temp file, then atomically rename into place:
        // a reader never observes a torn artifact, and the slot always holds
        // some complete artifact no matter how many writers race. The temp
        // name carries pid *and* a process-local sequence number so
        // concurrent threads of one process cannot interleave writes either.
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(key.file_name());
        let tmp = path.with_extension(format!("tmp-{}-{seq}", std::process::id()));
        if std::fs::write(&tmp, bytes).is_ok() && std::fs::rename(&tmp, &path).is_ok() {
            self.stats.disk_writes.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current counters.
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            mem_hits: self.stats.mem_hits.load(Ordering::Relaxed),
            disk_hits: self.stats.disk_hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            disk_writes: self.stats.disk_writes.load(Ordering::Relaxed),
        }
    }

    /// One-line human- and grep-friendly summary of the counters, e.g. for
    /// a table binary to log after its run.
    pub fn summary(&self) -> String {
        let s = self.stats();
        let dir = match (&self.dir, self.memory_enabled) {
            (Some(d), _) => format!("dir {}", d.display()),
            (None, true) => "memory only".to_string(),
            (None, false) => "disabled".to_string(),
        };
        format!(
            "[artifact-store] hits={} (mem_hits={} disk_hits={}) misses={} disk_writes={} ({dir})",
            s.hits(),
            s.mem_hits,
            s.disk_hits,
            s.misses,
            s.disk_writes
        )
    }
}

static GLOBAL: OnceLock<ArtifactStore> = OnceLock::new();

/// The process-wide store, configured from the environment on first use.
/// CLI flags that must influence it (`--no-cache`, `--cache-dir`) set the
/// corresponding environment variables before any store access.
pub fn global() -> &'static ArtifactStore {
    GLOBAL.get_or_init(ArtifactStore::from_env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::StableHasher;
    use std::sync::atomic::AtomicUsize;

    struct Doubler {
        input: Vec<u32>,
        version: u32,
        calls: AtomicUsize,
    }

    impl Stage for Doubler {
        type Output = Vec<u32>;
        fn name(&self) -> &'static str {
            "test/doubler"
        }
        fn version(&self) -> u32 {
            self.version
        }
        fn fingerprint(&self, h: &mut StableHasher) {
            crate::StableHash::stable_hash(&self.input, h);
        }
        fn compute(&self) -> Vec<u32> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            self.input.iter().map(|x| x * 2).collect()
        }
    }

    fn doubler(input: Vec<u32>, version: u32) -> Doubler {
        Doubler {
            input,
            version,
            calls: AtomicUsize::new(0),
        }
    }

    fn tmp_store(tag: &str) -> (ArtifactStore, PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "structmine-store-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        (ArtifactStore::with_dir(&dir), dir)
    }

    #[test]
    fn warm_read_equals_cold_compute_bitwise() {
        let (store, dir) = tmp_store("warm");
        let s = doubler(vec![1, 2, 3], 1);
        let cold = store.run(&s);
        assert_eq!(s.calls.load(Ordering::Relaxed), 1);

        // Same process: memory hit.
        let warm_mem = store.run(&s);
        assert_eq!(s.calls.load(Ordering::Relaxed), 1);
        assert_eq!(*cold, *warm_mem);

        // Fresh store over the same dir: disk hit, byte-identical payload.
        let store2 = ArtifactStore::with_dir(&dir);
        let warm_disk = store2.run(&s);
        assert_eq!(s.calls.load(Ordering::Relaxed), 1, "must not recompute");
        assert_eq!(*cold, *warm_disk);
        assert_eq!(store2.stats().disk_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_bump_invalidates() {
        let (store, dir) = tmp_store("version");
        let v1 = doubler(vec![5], 1);
        store.run(&v1);
        assert_eq!(v1.calls.load(Ordering::Relaxed), 1);
        let v2 = doubler(vec![5], 2);
        store.run(&v2);
        assert_eq!(
            v2.calls.load(Ordering::Relaxed),
            1,
            "bumped version must recompute"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_and_truncated_artifacts_are_recomputed() {
        let (store, dir) = tmp_store("corrupt");
        let s = doubler(vec![7, 8], 1);
        let good = store.run(&s);
        let path = dir.join(s.key().file_name());
        assert!(path.exists());

        for garbage in [&b"{\"truncat"[..], &b"not json at all"[..], &b""[..]] {
            std::fs::write(&path, garbage).unwrap();
            let fresh = ArtifactStore::with_dir(&dir);
            let back = fresh.run(&s);
            assert_eq!(*good, *back, "corrupt file must be recomputed");
            assert_eq!(fresh.stats().misses, 1);
            assert_eq!(fresh.stats().disk_writes, 1, "slot must be repaired");
        }
        // After the repair, a fresh store reads it from disk again.
        let fresh = ArtifactStore::with_dir(&dir);
        fresh.run(&s);
        assert_eq!(fresh.stats().disk_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_format_version_on_disk_is_ignored() {
        let (store, dir) = tmp_store("format");
        let s = doubler(vec![9], 1);
        store.run(&s);
        let path = dir.join(s.key().file_name());
        let text = std::fs::read_to_string(&path).unwrap();
        // The envelope is `[format, stage, payload]`; bump the leading
        // format number.
        let bumped = text.replacen(
            &format!("[{STORE_FORMAT_VERSION},"),
            &format!("[{},", STORE_FORMAT_VERSION + 1),
            1,
        );
        assert_ne!(text, bumped, "envelope must lead with the format field");
        std::fs::write(&path, bumped).unwrap();
        let fresh = ArtifactStore::with_dir(&dir);
        fresh.run(&s);
        assert_eq!(
            fresh.stats().misses,
            1,
            "future-format file must be ignored"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn racing_writers_leave_a_complete_artifact() {
        let (_, dir) = tmp_store("race");
        let s = doubler((0..512).collect(), 1);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..5 {
                        // Each iteration uses a cold store so every call
                        // races through the disk write path.
                        let store = ArtifactStore::disabled_memory_with_dir(&dir);
                        store.run(&s);
                    }
                });
            }
        });
        // Whatever writer won, the slot must hold a complete artifact.
        let reader = ArtifactStore::with_dir(&dir);
        let back = reader.run(&s);
        assert_eq!(*back, s.compute());
        assert_eq!(reader.stats().disk_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persistence_modes_route_layers() {
        let (store, dir) = tmp_store("persist");
        let key = ArtifactKey::new("test/mem", 1, |h| h.write_u64(1));
        store.get_or_compute(&key, Persistence::MemoryOnly, || vec![1u32]);
        assert!(!dir.join(key.file_name()).exists(), "MemoryOnly wrote disk");
        store.get_or_compute(&key, Persistence::MemoryOnly, || vec![2u32]);
        assert_eq!(store.stats().mem_hits, 1);

        let key2 = ArtifactKey::new("test/disk", 1, |h| h.write_u64(2));
        store.get_or_compute(&key2, Persistence::DiskOnly, || vec![3u32]);
        assert!(dir.join(key2.file_name()).exists());
        store.get_or_compute(&key2, Persistence::DiskOnly, || vec![4u32]);
        assert_eq!(store.stats().disk_hits, 1, "DiskOnly must skip memory");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_store_always_recomputes() {
        let store = ArtifactStore::disabled();
        let s = doubler(vec![1], 1);
        store.run(&s);
        store.run(&s);
        assert_eq!(s.calls.load(Ordering::Relaxed), 2);
        assert_eq!(store.stats().misses, 2);
        assert_eq!(store.stats().hits(), 0);
    }

    #[test]
    fn clear_memory_falls_back_to_disk() {
        let (store, dir) = tmp_store("clear");
        let s = doubler(vec![6], 1);
        store.run(&s);
        store.clear_memory();
        store.run(&s);
        assert_eq!(s.calls.load(Ordering::Relaxed), 1);
        assert_eq!(store.stats().disk_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    impl ArtifactStore {
        /// Test helper: disk layer on, memory layer off — forces every call
        /// through the disk read/write path.
        fn disabled_memory_with_dir(dir: &Path) -> Self {
            ArtifactStore {
                dir: Some(dir.to_path_buf()),
                memory_enabled: false,
                mem: Mutex::new(HashMap::new()),
                stats: Stats::default(),
            }
        }
    }
}
