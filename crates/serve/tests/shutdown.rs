//! Graceful-shutdown coverage: the real `structmine-serve` binary is
//! killed with SIGTERM mid-load and must still answer every accepted
//! request, flush the final micro-batch, write a schema-valid JSON run
//! report, and exit 0.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn report_path() -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "structmine-serve-shutdown-{}.json",
        std::process::id()
    ))
}

fn spawn_server(report: &std::path::Path) -> (Child, std::net::SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_structmine-serve"))
        .args([
            "--labels",
            "sports,business,politics,technology",
            "--method",
            "match",
            "--tier",
            "test",
            "--port",
            "0",
            "--flush-us",
            "4000",
            "--report-json",
            report.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn structmine-serve");
    // The binary prints `listening on 127.0.0.1:<port>` once ready.
    let stdout = child.stdout.take().expect("child stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("server exited before listening")
            .expect("read stdout");
        if let Some(rest) = line.strip_prefix("listening on ") {
            break rest.parse().expect("parse listen address");
        }
    };
    (child, addr)
}

#[test]
fn sigterm_mid_load_drains_and_writes_report() {
    let report = report_path();
    let _ = std::fs::remove_file(&report);
    let (mut child, addr) = spawn_server(&report);

    // Load the server from a few client threads while the signal lands.
    let stop = std::sync::atomic::AtomicBool::new(false);
    let answered: Vec<usize> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let stop = &stop;
                scope.spawn(move || {
                    let mut ok = 0;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        // Connections may be refused once shutdown begins;
                        // that is expected. Accepted ones must be answered.
                        if let Ok(mut stream) = TcpStream::connect(addr) {
                            let body = "the striker scored a goal";
                            let req = format!(
                                "POST /classify HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
                                body.len()
                            );
                            if stream.write_all(req.as_bytes()).is_ok() {
                                let mut response = String::new();
                                if stream.read_to_string(&mut response).is_ok()
                                    && response.starts_with("HTTP/1.1 200")
                                {
                                    ok += 1;
                                }
                            }
                        }
                    }
                    ok
                })
            })
            .collect();

        // Let some requests through, then SIGTERM the server mid-load.
        std::thread::sleep(Duration::from_millis(300));
        let killed = Command::new("kill")
            .args(["-TERM", &child.id().to_string()])
            .status()
            .expect("run kill");
        assert!(killed.success(), "kill -TERM failed");
        std::thread::sleep(Duration::from_millis(400));
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert!(
        answered.iter().sum::<usize>() > 0,
        "load generator never got a successful response"
    );

    // The server must exit 0 (graceful), not be killed by the signal.
    let status = wait_with_deadline(&mut child, Duration::from_secs(30));
    assert_eq!(status.code(), Some(0), "server must exit 0 after SIGTERM");

    // And its run report must exist and validate.
    let json = std::fs::read_to_string(&report)
        .unwrap_or_else(|e| panic!("report {} missing: {e}", report.display()));
    let value = structmine_store::obs::validate_report(&json)
        .unwrap_or_else(|e| panic!("schema-invalid report after shutdown: {e}"));
    let text = serde_json::to_string(&value).unwrap();
    assert!(
        text.contains("serve.requests"),
        "report should include serve counters: {text}"
    );
    let _ = std::fs::remove_file(&report);
}

fn wait_with_deadline(child: &mut Child, deadline: Duration) -> std::process::ExitStatus {
    let started = std::time::Instant::now();
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        if started.elapsed() > deadline {
            let _ = child.kill();
            panic!("server did not exit within {deadline:?} after SIGTERM");
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}
