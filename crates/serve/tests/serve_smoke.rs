//! In-process server smoke: concurrent `/classify` requests return exactly
//! the bytes the CLI path produces for the same documents, and `/stats`
//! parses against the run-report schema.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use structmine_engine::{
    format_prediction_line, Engine, EngineConfig, EngineSource, MethodKind, PlmSpec,
};
use structmine_serve::{BatcherConfig, ServeConfig, Server};

const DOCS: &[&str] = &[
    "the striker scored a goal and the keeper was offside",
    "the stock market fell as the company reported earnings",
    "the senator won the election after the campaign debate",
    "the processor chip in the new device runs fast software",
];

fn load_engine() -> Engine {
    Engine::load(EngineConfig {
        source: EngineSource::Labels(
            ["sports", "business", "politics", "technology"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        ),
        method: MethodKind::Match,
        plm: PlmSpec::Pretrained(structmine_plm::cache::Tier::Test),
        seed: None,
        exec: structmine_linalg::ExecPolicy::default(),
    })
    .expect("engine loads")
}

fn request(addr: &SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {response:?}"));
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn post_classify(addr: &SocketAddr, body: &str) -> (u16, String) {
    request(
        addr,
        &format!(
            "POST /classify HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

#[test]
fn concurrent_requests_match_cli_bytes_and_stats_parses() {
    let engine = load_engine();
    engine.warm().expect("warm");

    // The reference: what `structmine classify` prints for these documents.
    let lines: Vec<String> = DOCS.iter().map(|s| s.to_string()).collect();
    let expected: String = engine
        .classify(&lines)
        .expect("cli-path classify")
        .iter()
        .zip(&lines)
        .map(|(p, l)| format_prediction_line(p, l) + "\n")
        .collect();

    let mut server = Server::start(
        Arc::new(engine),
        ServeConfig {
            port: 0,
            // A tight flush deadline plus a small size cap so the
            // concurrent wave below actually exercises coalescing.
            batch: BatcherConfig {
                max_batch: 8,
                flush_us: 3_000,
                queue_cap: 64,
            },
            ..Default::default()
        },
    )
    .expect("server starts");
    let addr = server.addr();

    // Health first.
    let (status, body) = request(&addr, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
    assert_eq!((status, body.as_str()), (200, "ok (precision=exact)\n"));

    // A wave of concurrent whole-set requests: every response must carry
    // the exact CLI bytes, however the batcher coalesced them.
    let responses: Vec<(u16, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let body = lines.join("\n");
                scope.spawn(move || post_classify(&addr, &body))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (status, body) in &responses {
        assert_eq!(*status, 200);
        assert_eq!(
            body, &expected,
            "a concurrent response must be byte-identical to the CLI output"
        );
    }

    // Single-document requests agree with the corresponding CLI line.
    for (i, doc) in DOCS.iter().enumerate() {
        let (status, body) = post_classify(&addr, doc);
        assert_eq!(status, 200);
        assert_eq!(body, expected.lines().nth(i).unwrap().to_string() + "\n");
    }

    // /stats is a live, schema-valid run report with the serve counters.
    let (status, body) = request(&addr, "GET /stats HTTP/1.1\r\nHost: x\r\n\r\n");
    assert_eq!(status, 200);
    let report = structmine_store::obs::validate_report(&body)
        .unwrap_or_else(|e| panic!("/stats failed schema validation: {e}"));
    let json = serde_json::to_string(&report).unwrap();
    assert!(
        json.contains("serve.requests"),
        "report should count serve requests: {json}"
    );
    assert!(json.contains("serve.batches"));

    // Bad requests are answered, not dropped.
    let (status, _) = post_classify(&addr, "\n\n");
    assert_eq!(status, 400, "empty body is a client error");
    let (status, _) = request(&addr, "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
    assert_eq!(status, 404);

    server.stop();
}

#[test]
fn oversized_bodies_are_rejected() {
    let engine = load_engine();
    let mut server = Server::start(
        Arc::new(engine),
        ServeConfig {
            port: 0,
            ..Default::default()
        },
    )
    .expect("server starts");
    let addr = server.addr();
    let (status, _) = request(
        &addr,
        &format!(
            "POST /classify HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n",
            2 * 1024 * 1024
        ),
    );
    assert_eq!(status, 413);
    server.stop();
}

fn post_ingest(addr: &SocketAddr, body: &str) -> (u16, String) {
    request(
        addr,
        &format!(
            "POST /ingest HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

#[test]
fn ingest_appends_generations_and_matches_classify_bytes() {
    let engine = load_engine();
    engine.warm().expect("warm");

    let lines: Vec<String> = DOCS.iter().map(|s| s.to_string()).collect();
    let expected: String = engine
        .classify(&lines)
        .expect("cli-path classify")
        .iter()
        .zip(&lines)
        .map(|(p, l)| format_prediction_line(p, l) + "\n")
        .collect();

    let mut server = Server::start(
        Arc::new(engine),
        ServeConfig {
            port: 0,
            ..Default::default()
        },
    )
    .expect("server starts");
    let addr = server.addr();

    // Two deltas; each response is a generation receipt plus exactly the
    // prediction lines /classify (and the CLI) would emit.
    let (status, body) = post_ingest(&addr, &lines[..2].join("\n"));
    assert_eq!(status, 200);
    let mut it = body.lines();
    assert_eq!(it.next(), Some("generation\t1"));
    let rest: String = it.map(|l| l.to_string() + "\n").collect();
    let first_two: String = expected
        .lines()
        .take(2)
        .map(|l| l.to_string() + "\n")
        .collect();
    assert_eq!(
        rest, first_two,
        "/ingest predictions must match /classify bytes"
    );

    let (status, body) = post_ingest(&addr, &lines[2..].join("\n"));
    assert_eq!(status, 200);
    assert_eq!(body.lines().next(), Some("generation\t2"));

    // Classify after ingestion: the serving rule is frozen, bytes unchanged.
    let (status, body) = post_classify(&addr, &lines.join("\n"));
    assert_eq!(status, 200);
    assert_eq!(body, expected, "ingest must not move the serving rule");

    // /stats now carries the engine's generation counters.
    let (status, body) = request(&addr, "GET /stats HTTP/1.1\r\nHost: x\r\n\r\n");
    assert_eq!(status, 200);
    let report = structmine_store::obs::validate_report(&body)
        .unwrap_or_else(|e| panic!("/stats failed schema validation: {e}"));
    let json = serde_json::to_string(&report).unwrap();
    assert!(
        json.contains("serve.ingests"),
        "report should count ingests: {json}"
    );
    assert!(
        json.contains("engine.generation"),
        "report should carry the live generation: {json}"
    );

    // Empty deltas are client errors, not silent no-ops.
    let (status, _) = post_ingest(&addr, "\n\n");
    assert_eq!(status, 400);

    server.stop();
}
