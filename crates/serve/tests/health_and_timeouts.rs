//! Robustness coverage for the serve layer, in its own process (the
//! health registry is process-global, so these tests must not share a
//! binary with the smoke tests that expect a pristine `/healthz`):
//!
//! * the `/healthz` ladder — ok → degraded (still 200) → unusable (503);
//! * socket deadlines — a stalled (slowloris) client is disconnected at
//!   the deadline, counted under `serve.timeouts`, and can never wedge the
//!   batcher or a graceful shutdown.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use structmine_engine::{Engine, EngineConfig, EngineSource, MethodKind, PlmSpec};
use structmine_serve::{ServeConfig, Server};

fn load_engine() -> Engine {
    Engine::load(EngineConfig {
        source: EngineSource::Labels(
            ["sports", "business"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        ),
        method: MethodKind::Match,
        plm: PlmSpec::Pretrained(structmine_plm::cache::Tier::Test),
        seed: None,
        exec: structmine_linalg::ExecPolicy::default(),
    })
    .expect("engine loads")
}

fn request(addr: &SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {response:?}"));
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn healthz(addr: &SocketAddr) -> (u16, String) {
    request(addr, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
}

/// One test fn drives the whole ladder: the registry is process-global and
/// `set_unusable` is sticky, so the ordering must be controlled here, not
/// left to the test harness's thread scheduling.
#[test]
fn healthz_renders_the_degradation_ladder_and_slow_clients_time_out() {
    let engine = load_engine();
    engine.warm().expect("warm");
    let mut server = Server::start(
        Arc::new(engine),
        ServeConfig {
            port: 0,
            socket_timeout_ms: 250,
            ..Default::default()
        },
    )
    .expect("server starts");
    let addr = server.addr();

    // Healthy process: plain ok.
    assert_eq!(healthz(&addr), (200, "ok (precision=exact)\n".to_string()));

    // A slowloris client: opens the connection, sends half a request line,
    // then stalls. The handler must cut it loose at the socket deadline
    // while healthy clients keep getting answers.
    let mut stalled = TcpStream::connect(addr).expect("connect stalled client");
    stalled
        .write_all(b"POST /classify HT")
        .expect("write partial request");

    let body = "the striker scored a goal";
    let started = Instant::now();
    let (status, _) = request(
        &addr,
        &format!(
            "POST /classify HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    );
    assert_eq!(status, 200, "a stalled client must not block healthy ones");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "healthy request took {:?} behind a stalled client",
        started.elapsed()
    );

    // Past the deadline the stalled connection is dead and counted.
    std::thread::sleep(Duration::from_millis(600));
    let (status, stats) = request(&addr, "GET /stats HTTP/1.1\r\nHost: x\r\n\r\n");
    assert_eq!(status, 200);
    assert!(
        stats.contains("serve.timeouts"),
        "stalled client must be counted under serve.timeouts: {stats}"
    );
    let mut probe = [0u8; 64];
    let n = stalled.read(&mut probe).unwrap_or(0);
    assert_eq!(n, 0, "the server must have closed the stalled connection");

    // Degraded: still 200, body names the step.
    structmine_store::health::note_degraded("store: memory-only (test)");
    let (status, body) = healthz(&addr);
    assert_eq!(status, 200, "a degraded process still answers");
    assert!(
        body.starts_with("degraded: ") && body.contains("memory-only"),
        "degraded body must name the step: {body:?}"
    );

    // Unusable: the probe fails.
    structmine_store::health::set_unusable("batcher thread died (test)");
    let (status, body) = healthz(&addr);
    assert_eq!(status, 503, "an unusable process must fail the probe");
    assert!(body.contains("batcher thread died"), "body: {body:?}");

    // Shutdown must complete promptly even though a slow client connected
    // this session — the deadline guarantees no handler thread is pinned.
    let started = Instant::now();
    server.stop();
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "shutdown wedged for {:?}",
        started.elapsed()
    );
    structmine_store::health::reset();
}
