//! A deliberately tiny HTTP/1.1 layer over `std::net::TcpStream`: request
//! line + headers + `Content-Length` bodies in, `Connection: close`
//! responses out. No keep-alive, no chunked encoding, no TLS — exactly the
//! surface the serve binary needs and nothing more (DESIGN §10).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Request line + headers may not exceed this many bytes.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
/// A request body may not exceed this many bytes.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request: method, path, and the raw body.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ... (uppercased by the client; not normalized here).
    pub method: String,
    /// The request target, e.g. `/classify`.
    pub path: String,
    /// The body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line or headers → 400.
    BadRequest(String),
    /// Header block or body over the hard caps → 413.
    TooLarge(String),
    /// The socket failed mid-read; there is nobody left to answer.
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequest(m) => write!(f, "bad request: {m}"),
            HttpError::TooLarge(m) => write!(f, "request too large: {m}"),
            HttpError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

/// Read one request from the stream.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).map_err(HttpError::Io)?;
    let mut header_bytes = line.len();
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty request line".into()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("request line has no path".into()))?
        .to_string();

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        let n = reader.read_line(&mut header).map_err(HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::BadRequest(
                "connection closed mid-headers".into(),
            ));
        }
        header_bytes += n;
        if header_bytes > MAX_HEADER_BYTES {
            return Err(HttpError::TooLarge(format!(
                "headers exceed {MAX_HEADER_BYTES} bytes"
            )));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    HttpError::BadRequest(format!("bad content-length {:?}", value.trim()))
                })?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge(format!(
            "body of {content_length} bytes exceeds {MAX_BODY_BYTES}"
        )));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(HttpError::Io)?;
    Ok(Request { method, path, body })
}

/// Write a full response and close the connection (the only mode we speak).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}
