//! `bench_serve` — load-test the in-process server and write the current
//! trajectory points to `BENCH_serve.json` (methodology: EXPERIMENTS.md
//! §"Serving throughput trajectory"; prior entries are preserved by hand
//! when recording a new point next to historical ones).
//!
//! Runs a Test-tier X-Class engine on a fixed label set at **both
//! precision tiers** (DESIGN §13) — the Fast twin shares the Exact
//! engine's dataset, PLM, and serving-rule fit — then drives
//! `POST /classify` with 1, 4 and 16 concurrent clients per tier.
//! Reports docs/sec and p50/p99 request latency per concurrency level.
//! Environment knobs: `STRUCTMINE_BENCH_REQUESTS` (requests per client,
//! default 50) and `STRUCTMINE_BENCH_DOCS` (documents per request,
//! default 4).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

use structmine_engine::{Engine, EngineConfig, EngineSource, MethodKind, PlmSpec};
use structmine_serve::{ServeConfig, Server};

const DOC_POOL: &[&str] = &[
    "the striker scored a goal and the keeper was offside",
    "the stock market fell as the company reported earnings",
    "the senator won the election after the campaign debate",
    "the processor chip in the new device runs fast software",
    "the band played a melody at the concert for the chorus",
    "the doctor treated the patient with a new vaccine",
    "the coach praised the team after the championship match",
    "the startup raised funding from the investor this quarter",
];

fn env_num(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// One blocking HTTP request against the server; returns the body.
fn post_classify(addr: &std::net::SocketAddr, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "POST /classify HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    assert!(
        response.starts_with("HTTP/1.1 200"),
        "request failed: {}",
        response.lines().next().unwrap_or("")
    );
    response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default()
}

/// Percentile over sorted microsecond latencies (nearest-rank).
fn percentile(sorted: &[u128], p: f64) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// `YYYY-MM-DD` from the system clock (days-to-civil, Hinnant's algorithm).
fn today() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let z = secs as i64 / 86_400 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

struct Level {
    clients: usize,
    docs_per_sec: f64,
    p50_us: u128,
    p99_us: u128,
}

fn run_level(addr: std::net::SocketAddr, clients: usize, requests: usize, docs: usize) -> Level {
    let started = Instant::now();
    let mut latencies: Vec<u128> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(requests);
                    for r in 0..requests {
                        let body: String = (0..docs)
                            .map(|k| DOC_POOL[(c + r + k) % DOC_POOL.len()])
                            .collect::<Vec<_>>()
                            .join("\n");
                        let t = Instant::now();
                        post_classify(&addr, &body);
                        lat.push(t.elapsed().as_micros());
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall = started.elapsed().as_secs_f64();
    latencies.sort_unstable();
    Level {
        clients,
        docs_per_sec: (clients * requests * docs) as f64 / wall,
        p50_us: percentile(&latencies, 50.0),
        p99_us: percentile(&latencies, 99.0),
    }
}

/// Load-test one engine (already warm) and return its per-level results.
fn run_tier(engine: Arc<Engine>, requests: usize, docs: usize) -> Vec<Level> {
    let tier = engine.precision().name();
    let mut server = Server::start(
        engine,
        ServeConfig {
            port: 0,
            ..Default::default()
        },
    )
    .expect("start server");
    let addr = server.addr();
    eprintln!("bench_serve: {tier} tier serving on {addr}");
    let levels: Vec<Level> = [1usize, 4, 16]
        .iter()
        .map(|&c| {
            let l = run_level(addr, c, requests, docs);
            eprintln!(
                "  {c:>2} clients: {:>8.1} docs/s, p50 {:>6} us, p99 {:>6} us",
                l.docs_per_sec, l.p50_us, l.p99_us
            );
            l
        })
        .collect();
    server.stop();
    levels
}

fn levels_json(levels: &[Level]) -> String {
    let mut out = String::new();
    for (i, l) in levels.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "        {{ \"clients\": {}, \"docs_per_sec\": {:.1}, \"p50_us\": {}, \"p99_us\": {} }}",
            l.clients, l.docs_per_sec, l.p50_us, l.p99_us
        ));
    }
    out
}

fn main() {
    structmine_store::obs::init();
    let requests = env_num("STRUCTMINE_BENCH_REQUESTS", 50);
    let docs = env_num("STRUCTMINE_BENCH_DOCS", 4);

    let exact = Engine::load(EngineConfig {
        source: EngineSource::Labels(
            ["sports", "business", "politics", "technology"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        ),
        method: MethodKind::XClass,
        plm: PlmSpec::Pretrained(structmine_plm::cache::Tier::Test),
        seed: None,
        exec: structmine_linalg::ExecPolicy::default()
            .with_precision(structmine_linalg::Precision::Exact),
    })
    .expect("load engine");
    exact.warm().expect("warm engine");
    // The Fast twin shares the dataset, PLM, and (Exact-pinned) fit — the
    // comparison isolates query-time encoding, like production serving.
    let fast = exact.at_precision(structmine_linalg::Precision::Fast);

    let exact_levels = run_tier(Arc::new(exact), requests, docs);
    let fast_levels = run_tier(Arc::new(fast), requests, docs);
    let date = today();
    let entry = |precision: &str, change: &str, levels: &str| {
        format!(
            "    {{\n      \"date\": \"{date}\",\n      \"change\": \"{change}\",\n      \"tier\": \"test\",\n      \"method\": \"xclass\",\n      \"precision\": \"{precision}\",\n      \"requests_per_client\": {requests},\n      \"docs_per_request\": {docs},\n      \"levels\": [\n{levels}\n      ]\n    }}"
        )
    };
    let json = format!(
        "{{\n  \"description\": \"Serving throughput trajectory of structmine-serve (DESIGN §10): docs/sec and request latency of POST /classify against a Test-tier X-Class engine with adaptive micro-batching (max_batch 32, flush 2000us), at both precision tiers (DESIGN §13). Regeneration: EXPERIMENTS.md §'Serving throughput trajectory'.\",\n  \"entries\": [\n{},\n{}\n  ]\n}}\n",
        entry("exact", "precision tiers: exact-tier measurement", &levels_json(&exact_levels)),
        entry("fast", "precision tiers: fast-tier measurement (same fit, fast query encode)", &levels_json(&fast_levels)),
    );
    std::fs::write("BENCH_serve.json", json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}
