//! The HTTP server: bounded accept loop, one handler thread per
//! connection, all classification funneled through the [`Batcher`].

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use structmine_engine::{format_prediction_line, Engine};
use structmine_store::obs;

use crate::batcher::{BatchQueue, Batcher, BatcherConfig};
use crate::http::{self, HttpError, Request};

/// Server knobs: where to listen plus the batching configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// TCP port on 127.0.0.1; `0` lets the OS pick (tests, benches).
    pub port: u16,
    /// Micro-batching knobs.
    pub batch: BatcherConfig,
    /// Socket read *and* write deadline in milliseconds
    /// (`--socket-timeout-ms`); `0` disables. A client that stalls
    /// mid-request or stops reading its response loses its connection at
    /// the deadline instead of pinning a handler thread — a slow client
    /// can never wedge the batcher or a graceful shutdown.
    pub socket_timeout_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            port: 7878,
            batch: BatcherConfig::default(),
            socket_timeout_ms: 10_000,
        }
    }
}

/// A running server. [`Server::stop`] (also called on drop) stops
/// accepting, drains in-flight connections, then flushes the batcher.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    batcher: Option<Batcher>,
}

impl Server {
    /// Bind `127.0.0.1:port` and start serving `engine`.
    pub fn start(engine: Arc<Engine>, cfg: ServeConfig) -> std::io::Result<Server> {
        // Advertise the engine's tier so every `/healthz` body names it.
        structmine_store::health::set_precision_tier(engine.precision().name());
        let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
        // Non-blocking accept so the loop can observe the shutdown flag.
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let batcher = Batcher::start(Arc::clone(&engine), cfg.batch)?;
        let queue = batcher.queue();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let timeout = socket_timeout(cfg.socket_timeout_ms);
        let accept_handle = std::thread::Builder::new()
            .name("serve-accept".into())
            .spawn(move || accept_loop(listener, queue, engine, flag, timeout))?;
        Ok(Server {
            addr,
            shutdown,
            accept_handle: Some(accept_handle),
            batcher: Some(batcher),
        })
    }

    /// The bound address (relevant with `port: 0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, finish in-flight requests,
    /// flush the final micro-batch. Idempotent.
    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        if let Some(b) = self.batcher.take() {
            b.shutdown();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Resolve the configured deadline: `0` means no timeout at all (`None` —
/// `set_read_timeout(Some(ZERO))` is an error, not "disabled").
fn socket_timeout(ms: u64) -> Option<Duration> {
    (ms > 0).then(|| Duration::from_millis(ms))
}

fn accept_loop(
    listener: TcpListener,
    queue: BatchQueue,
    engine: Arc<Engine>,
    shutdown: Arc<AtomicBool>,
    timeout: Option<Duration>,
) {
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Both deadlines up front: a client that stalls sending its
                // request *or* stops reading its response is disconnected,
                // so handler threads (and shutdown's join) stay bounded.
                let _ = stream.set_read_timeout(timeout);
                let _ = stream.set_write_timeout(timeout);
                let q = queue.clone();
                let e = Arc::clone(&engine);
                match std::thread::Builder::new()
                    .name("serve-conn".into())
                    .spawn(move || handle_connection(stream, q, e))
                {
                    Ok(h) => {
                        handlers.push(h);
                        // Reap finished handlers so the vec stays bounded
                        // under load.
                        handlers.retain(|h| !h.is_finished());
                    }
                    Err(e) => {
                        // Thread exhaustion is load, not corruption: the
                        // connection is closed (client retries) and the
                        // server keeps accepting.
                        obs::counter_add("serve.spawn_failures", 1);
                        obs::log_warn(&format!(
                            "[serve] spawn connection thread failed ({e}); dropping connection"
                        ));
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => {
                obs::log_warn(&format!("[serve] accept error: {e}"));
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    // Drain: every accepted connection gets its response before the
    // batcher (whose queue this thread's `queue` clone keeps open) closes.
    for h in handlers {
        let _ = h.join();
    }
}

/// True when an IO error is a socket deadline expiring (the two kinds the
/// platform may report for a timed-out read/write).
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

fn handle_connection(mut stream: TcpStream, queue: BatchQueue, engine: Arc<Engine>) {
    let _span = obs::span("serve/request");
    obs::counter_add("serve.requests", 1);
    let request = match http::read_request(&mut stream) {
        Ok(r) => r,
        Err(HttpError::Io(e)) => {
            // A stalled client hit the socket deadline (or hung up); there
            // is nobody left to answer, only the counter to bump.
            if is_timeout(&e) {
                obs::counter_add("serve.timeouts", 1);
            }
            return;
        }
        Err(e @ HttpError::BadRequest(_)) => {
            respond_text(&mut stream, 400, "Bad Request", &format!("{e}\n"));
            return;
        }
        Err(e @ HttpError::TooLarge(_)) => {
            respond_text(&mut stream, 413, "Payload Too Large", &format!("{e}\n"));
            return;
        }
    };
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            // Render the process health registry (DESIGN §12): degraded
            // subsystems still answer 200 with a body naming each step;
            // an unusable process fails the probe with 503.
            let (status, body) = structmine_store::health::health_body();
            let reason = if status == 200 {
                "OK"
            } else {
                "Service Unavailable"
            };
            respond_text(&mut stream, status, reason, &body);
        }
        ("GET", "/stats") => {
            let report = obs::report("structmine-serve");
            match serde_json::to_string(&report) {
                Ok(mut json) => {
                    json.push('\n');
                    send_response(&mut stream, 200, "OK", "application/json", json.as_bytes());
                }
                Err(e) => respond_text(
                    &mut stream,
                    500,
                    "Internal Server Error",
                    &format!("serialize report: {e}\n"),
                ),
            }
        }
        ("POST", "/classify") => classify_route(&mut stream, &queue, &request),
        ("POST", "/ingest") => ingest_route(&mut stream, &engine, &request),
        _ => respond_text(
            &mut stream,
            404,
            "Not Found",
            "routes: GET /healthz, GET /stats, POST /classify, POST /ingest\n",
        ),
    }
}

/// `POST /classify`: body is one document per line; the response body is
/// one `label<TAB>confidence<TAB>doc` line per input document —
/// byte-identical to `structmine classify` on the same documents.
fn classify_route(stream: &mut TcpStream, queue: &BatchQueue, request: &Request) {
    let body = match std::str::from_utf8(&request.body) {
        Ok(s) => s,
        Err(_) => {
            respond_text(stream, 400, "Bad Request", "body must be UTF-8 text\n");
            return;
        }
    };
    let lines: Vec<String> = body
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| l.to_string())
        .collect();
    if lines.is_empty() {
        respond_text(stream, 400, "Bad Request", "no input documents\n");
        return;
    }
    let rx = match queue.submit(lines.clone()) {
        Some(rx) => rx,
        None => {
            respond_text(
                stream,
                503,
                "Service Unavailable",
                "admission queue full; retry later\n",
            );
            return;
        }
    };
    match rx.recv() {
        Ok(Ok(preds)) => {
            let mut out = String::new();
            for (pred, line) in preds.iter().zip(&lines) {
                out.push_str(&format_prediction_line(pred, line));
                out.push('\n');
            }
            send_response(stream, 200, "OK", "text/plain", out.as_bytes());
        }
        Ok(Err(msg)) => respond_text(stream, 400, "Bad Request", &format!("{msg}\n")),
        Err(_) => {
            // The reply channel disconnected with the request still
            // outstanding: the batcher thread is gone while the server is
            // accepting, so classification can never be answered again —
            // mark the process unusable and /healthz starts failing.
            structmine_store::health::set_unusable("batcher exited before replying");
            respond_text(
                stream,
                500,
                "Internal Server Error",
                "batcher exited before replying\n",
            );
        }
    }
}

/// `POST /ingest`: body is one document per line; the batch is appended to
/// the engine's corpus as its next generation and classified. The response
/// is a `generation<TAB>g` receipt line followed by one prediction line per
/// document — `tail -n +2` of the body byte-matches `POST /classify` (and
/// the CLI) on the same documents, because the serving rule is frozen at
/// generation 0.
///
/// Ingestion bypasses the micro-batcher on purpose: deltas are stateful and
/// strictly ordered (generation N+1 follows N), while the batcher exists to
/// coalesce stateless per-document work. The engine serializes concurrent
/// ingests internally.
fn ingest_route(stream: &mut TcpStream, engine: &Engine, request: &Request) {
    let body = match std::str::from_utf8(&request.body) {
        Ok(s) => s,
        Err(_) => {
            respond_text(stream, 400, "Bad Request", "body must be UTF-8 text\n");
            return;
        }
    };
    let lines: Vec<String> = body
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| l.to_string())
        .collect();
    if lines.is_empty() {
        respond_text(stream, 400, "Bad Request", "no input documents\n");
        return;
    }
    match engine.ingest(&lines) {
        Ok(ingested) => {
            obs::counter_add("serve.ingests", 1);
            let mut out = format!("generation\t{}\n", ingested.generation);
            for (pred, line) in ingested.predictions.iter().zip(&lines) {
                out.push_str(&format_prediction_line(pred, line));
                out.push('\n');
            }
            send_response(stream, 200, "OK", "text/plain", out.as_bytes());
        }
        Err(e) => respond_text(stream, 400, "Bad Request", &format!("{e}\n")),
    }
}

fn respond_text(stream: &mut TcpStream, status: u16, reason: &str, body: &str) {
    send_response(stream, status, reason, "text/plain", body.as_bytes());
    let _ = stream.flush();
}

/// Write a response, counting a write-side socket deadline under the same
/// `serve.timeouts` counter as a read-side one: a client that stops
/// reading its response is the same slowloris shape as one that stops
/// sending its request.
fn send_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) {
    if let Err(e) = http::write_response(stream, status, reason, content_type, body) {
        if is_timeout(&e) {
            obs::counter_add("serve.timeouts", 1);
        }
    }
}
