//! `structmine-serve` — an HTTP/1.1 classification server over the
//! load-once/run-many [`structmine_engine::Engine`] (DESIGN §10).
//!
//! The library exposes the server so tests and the `bench_serve` load
//! generator can run it in-process; the `structmine-serve` binary adds flag
//! parsing and signal handling on top.
//!
//! Invariants, pinned by `tests/serve_smoke.rs`:
//! - a `/classify` response is byte-identical to `structmine classify` on
//!   the same documents (both go through [`Engine::classify`] and
//!   [`structmine_engine::format_prediction_line`]);
//! - concurrent requests coalesced into one micro-batch get the same bytes
//!   as sequential ones (batching invariance, proven at the engine layer);
//! - `/stats` is the live JSON run report, schema-identical to the one
//!   written by `STRUCTMINE_REPORT` at exit;
//! - a `/ingest` response (after its `generation<TAB>g` receipt line)
//!   byte-matches `/classify` on the same documents: the serving rule stays
//!   frozen at generation 0, and the delta's freshly encoded doc reps go
//!   through the same per-document code paths.

pub mod batcher;
pub mod http;
pub mod server;

pub use batcher::{BatchQueue, Batcher, BatcherConfig};
pub use server::{ServeConfig, Server};

pub use structmine_engine::Engine;
