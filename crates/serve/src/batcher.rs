//! Adaptive micro-batching over one [`Engine`].
//!
//! Requests enter a bounded admission queue; a single batcher thread
//! coalesces whatever is queued into one `Engine::classify` call, flushing
//! when the batch reaches `max_batch` documents or when `flush_us` has
//! elapsed since the oldest queued request arrived — whichever comes first.
//!
//! Coalescing is *free* of output risk: every engine method scores each
//! document independently (index-ordered chunking, per-row forward passes),
//! so a document's prediction is byte-identical whether it is classified
//! alone or inside any batch. The batching-invariance property test in
//! `structmine-engine` pins that contract; this module merely relies on it.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use structmine_engine::{Engine, Prediction};
use structmine_store::obs;

/// Batching knobs (`--max-batch`, `--flush-us`, `--queue-cap`).
#[derive(Clone, Copy, Debug)]
pub struct BatcherConfig {
    /// Flush once this many documents are queued.
    pub max_batch: usize,
    /// Flush this many microseconds after the oldest queued request.
    pub flush_us: u64,
    /// Bounded admission queue length, in *requests*; an arriving request
    /// that finds the queue full is rejected with 503 instead of piling up.
    pub queue_cap: usize,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        BatcherConfig {
            max_batch: 32,
            flush_us: 2_000,
            queue_cap: 64,
        }
    }
}

/// One queued request: its documents and the channel its reply goes to.
struct Job {
    lines: Vec<String>,
    reply: mpsc::Sender<Result<Vec<Prediction>, String>>,
}

/// A cloneable handle for submitting work to the batcher thread.
#[derive(Clone)]
pub struct BatchQueue {
    tx: mpsc::SyncSender<Job>,
}

impl BatchQueue {
    /// Submit `lines` for classification. Returns the receiver the reply
    /// will arrive on, or `None` when the admission queue is full (503).
    pub fn submit(
        &self,
        lines: Vec<String>,
    ) -> Option<mpsc::Receiver<Result<Vec<Prediction>, String>>> {
        let (reply, rx) = mpsc::channel();
        match self.tx.try_send(Job { lines, reply }) {
            Ok(()) => Some(rx),
            Err(_) => {
                obs::counter_add("serve.rejections", 1);
                None
            }
        }
    }
}

/// The batcher thread plus its admission queue. Dropping the last
/// [`BatchQueue`] *and* calling [`Batcher::shutdown`] drains the queue,
/// flushes the final micro-batch, and joins the thread.
pub struct Batcher {
    queue: BatchQueue,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Batcher {
    /// Spawn the batcher thread over `engine`. A failed spawn is an IO
    /// error for the caller to surface — a server without a batcher cannot
    /// answer anything, so it must not start.
    pub fn start(engine: Arc<Engine>, cfg: BatcherConfig) -> std::io::Result<Batcher> {
        let (tx, rx) = mpsc::sync_channel::<Job>(cfg.queue_cap.max(1));
        let handle = std::thread::Builder::new()
            .name("serve-batcher".into())
            .spawn(move || run(engine, cfg, rx))?;
        Ok(Batcher {
            queue: BatchQueue { tx },
            handle: Some(handle),
        })
    }

    /// A handle for submitting requests.
    pub fn queue(&self) -> BatchQueue {
        self.queue.clone()
    }

    /// Close the queue and wait for the final micro-batch to flush.
    pub fn shutdown(mut self) {
        // Replace the held sender with a dangling one so the channel
        // disconnects once in-flight handlers drop their clones.
        let (dangling, _) = mpsc::sync_channel(1);
        self.queue.tx = dangling;
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Why a batch was flushed; becomes a counter name on the run report.
enum Flush {
    Size,
    Deadline,
    Drain,
}

fn run(engine: Arc<Engine>, cfg: BatcherConfig, rx: mpsc::Receiver<Job>) {
    while let Ok(first) = rx.recv() {
        let deadline = Instant::now() + Duration::from_micros(cfg.flush_us);
        let mut jobs = vec![first];
        let mut n_docs = jobs[0].lines.len();
        let mut flush = Flush::Size;
        while n_docs < cfg.max_batch {
            let now = Instant::now();
            if now >= deadline {
                flush = Flush::Deadline;
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(job) => {
                    n_docs += job.lines.len();
                    jobs.push(job);
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    flush = Flush::Deadline;
                    break;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    flush = Flush::Drain;
                    break;
                }
            }
        }
        obs::counter_add(
            match flush {
                Flush::Size => "serve.flushes_size",
                Flush::Deadline => "serve.flushes_deadline",
                Flush::Drain => "serve.flushes_drain",
            },
            1,
        );
        classify_batch(&engine, jobs, n_docs);
    }
}

/// One coalesced `Engine::classify` call, results scattered back per job.
fn classify_batch(engine: &Engine, mut jobs: Vec<Job>, n_docs: usize) {
    obs::counter_add("serve.batches", 1);
    obs::counter_add("serve.docs", n_docs as u64);
    // Move the lines out of the jobs instead of cloning every string per
    // batch; reply scattering below only needs the per-job counts.
    let counts: Vec<usize> = jobs.iter().map(|j| j.lines.len()).collect();
    let mut all: Vec<String> = Vec::with_capacity(n_docs);
    for job in &mut jobs {
        all.append(&mut job.lines);
    }
    let result = {
        let _span = obs::span("serve/batch-classify");
        engine.classify(&all)
    };
    match result {
        Ok(preds) => {
            let mut offset = 0;
            for (job, n) in jobs.into_iter().zip(counts) {
                // A receiver may have hung up (client gone); that is its
                // problem, not the batch's.
                let _ = job.reply.send(Ok(preds[offset..offset + n].to_vec()));
                offset += n;
            }
        }
        Err(e) => {
            let msg = e.to_string();
            for job in jobs {
                let _ = job.reply.send(Err(msg.clone()));
            }
        }
    }
}
