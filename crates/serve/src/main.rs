//! `structmine-serve` — serve a label-names classifier over HTTP.
//!
//! ```text
//! structmine-serve --labels sports,business,technology [--method xclass]
//!                  [--tier test|standard] [--port 7878] [--max-batch 32]
//!                  [--flush-us 2000] [--queue-cap 64] [--threads <n>]
//!                  [--precision exact|fast] [--socket-timeout-ms 10000]
//!                  [--no-cache | --cache-dir <dir>] [--report-json <path>]
//! ```
//!
//! Every flag falls back to a `STRUCTMINE_SERVE_*` environment variable
//! (`STRUCTMINE_SERVE_PORT`, `_MAX_BATCH`, `_FLUSH_US`, `_QUEUE_CAP`,
//! `_LABELS`, `_METHOD`, `_TIER`, `_SOCKET_TIMEOUT_MS`); `--precision`
//! falls back to `STRUCTMINE_PRECISION` itself. A Fast-tier server runs
//! the accuracy-tolerance self-check after warming: it classifies the
//! engine's eval split under both tiers, and if the Fast rule drifts
//! beyond the published bounds the process marks itself unusable —
//! `/healthz` answers 503 — while Exact serving is never gated. Every
//! `/healthz` body names the active tier (`ok (precision=fast)`), as does
//! the `/stats` config fingerprint. Routes:
//! `GET /healthz` (renders the process health registry: `200 ok`,
//! `200 degraded: …`, or `503 unusable: …`), `GET /stats`
//! (live JSON run report, including generation counters), `POST /classify`
//! (one document per line in, one `label<TAB>confidence<TAB>doc` line out —
//! byte-identical to `structmine classify`), and `POST /ingest` (append the
//! documents as the corpus's next generation; a `generation<TAB>g` receipt
//! line, then the same prediction lines `/classify` would emit).
//!
//! SIGTERM / SIGINT trigger a graceful shutdown: stop accepting, answer
//! in-flight requests, flush the final micro-batch, write the JSON run
//! report (when configured), exit 0.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use structmine_engine::{Engine, EngineConfig, EngineSource, MethodKind, PlmSpec};
use structmine_serve::{BatcherConfig, ServeConfig, Server};
use structmine_store::obs;

/// Set from the signal handler; the main loop polls it.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    // Only async-signal-safe work here: one atomic store.
    SHUTDOWN.store(true, Ordering::SeqCst);
}

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

fn install_signal_handlers() {
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: structmine-serve --labels <a,b,c> [--method xclass|lotclass|prompt|match]\n\
         \x20                       [--tier test|standard] [--port 7878] [--max-batch 32]\n\
         \x20                       [--flush-us 2000] [--queue-cap 64] [--threads <n>]\n\
         \x20                       [--socket-timeout-ms 10000]\n\
         \x20                       [--no-cache | --cache-dir <dir>] [--report-json <path>]"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    obs::log_warn(&format!("error: {msg}"));
    std::process::exit(2);
}

/// Flag value, else `STRUCTMINE_SERVE_<NAME>`, else the default.
fn flag_or_env(flags: &std::collections::HashMap<String, String>, key: &str) -> Option<String> {
    flags.get(key).cloned().or_else(|| {
        let env = format!("STRUCTMINE_SERVE_{}", key.replace('-', "_").to_uppercase());
        std::env::var(env).ok()
    })
}

fn parse_num<T: std::str::FromStr>(name: &str, value: &str) -> T {
    value
        .parse()
        .unwrap_or_else(|_| fail(&format!("bad --{name} {value}")))
}

fn main() {
    obs::init();
    install_signal_handlers();

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut flags = std::collections::HashMap::new();
    let mut i = 0;
    while i < argv.len() {
        let key = match argv[i].strip_prefix("--") {
            Some(k) => k,
            None => usage(),
        };
        if key == "help" {
            usage();
        }
        if key == "no-cache" {
            flags.insert(key.to_string(), String::new());
            i += 1;
            continue;
        }
        let value = argv.get(i + 1).unwrap_or_else(|| usage());
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    for key in flags.keys() {
        if !matches!(
            key.as_str(),
            "labels"
                | "method"
                | "tier"
                | "port"
                | "max-batch"
                | "flush-us"
                | "queue-cap"
                | "socket-timeout-ms"
                | "threads"
                | "precision"
                | "no-cache"
                | "cache-dir"
                | "report-json"
        ) {
            fail(&format!("unknown flag --{key}"));
        }
    }

    // Environment plumbing, mirroring the CLI: these run before the global
    // store / exec policy are first read.
    if flags.contains_key("no-cache") {
        std::env::set_var("STRUCTMINE_NO_CACHE", "1");
    }
    if let Some(dir) = flags.get("cache-dir") {
        std::env::set_var("STRUCTMINE_STORE_DIR", dir);
        std::env::set_var("STRUCTMINE_PLM_CACHE_DIR", dir);
    }
    if let Some(path) = flags.get("report-json") {
        std::env::set_var(obs::REPORT_ENV, path);
    }
    // Resolve the precision tier (flag > STRUCTMINE_PRECISION env > Exact)
    // and export the resolved name so it lands in the run-report config
    // fingerprint alongside every other STRUCTMINE_* knob.
    let precision = match flags.get("precision") {
        Some(v) => structmine_linalg::Precision::parse(v).unwrap_or_else(|e| fail(&e)),
        None => structmine_linalg::Precision::from_env(),
    };
    std::env::set_var("STRUCTMINE_PRECISION", precision.name());
    let exec = match flags.get("threads") {
        Some(n) => {
            let n: usize = parse_num("threads", n);
            std::env::set_var("STRUCTMINE_THREADS", n.to_string());
            structmine_linalg::ExecPolicy::with_threads(n)
        }
        None => structmine_linalg::ExecPolicy::default(),
    }
    .with_precision(precision);

    let labels: Vec<String> = flag_or_env(&flags, "labels")
        .unwrap_or_else(|| fail("--labels a,b,c (or STRUCTMINE_SERVE_LABELS) is required"))
        .split(',')
        .map(|s| s.trim().to_lowercase())
        .filter(|s| !s.is_empty())
        .collect();
    let method_name = flag_or_env(&flags, "method").unwrap_or_else(|| "xclass".into());
    let method = MethodKind::parse(&method_name)
        .filter(|k| k.servable())
        .unwrap_or_else(|| {
            fail(&format!(
                "unknown or non-servable method {method_name} (expected xclass, lotclass, prompt, match)"
            ))
        });
    let tier = match flag_or_env(&flags, "tier")
        .unwrap_or_else(|| "test".into())
        .as_str()
    {
        "standard" => structmine_plm::cache::Tier::Standard,
        _ => structmine_plm::cache::Tier::Test,
    };
    let cfg = ServeConfig {
        port: parse_num(
            "port",
            &flag_or_env(&flags, "port").unwrap_or_else(|| "7878".into()),
        ),
        batch: BatcherConfig {
            max_batch: parse_num(
                "max-batch",
                &flag_or_env(&flags, "max-batch").unwrap_or_else(|| "32".into()),
            ),
            flush_us: parse_num(
                "flush-us",
                &flag_or_env(&flags, "flush-us").unwrap_or_else(|| "2000".into()),
            ),
            queue_cap: parse_num(
                "queue-cap",
                &flag_or_env(&flags, "queue-cap").unwrap_or_else(|| "64".into()),
            ),
        },
        socket_timeout_ms: parse_num(
            "socket-timeout-ms",
            &flag_or_env(&flags, "socket-timeout-ms").unwrap_or_else(|| "10000".into()),
        ),
    };

    obs::log_info(&format!(
        "loading {} engine for labels {labels:?} ...",
        method.name()
    ));
    let engine = Engine::load(EngineConfig {
        source: EngineSource::Labels(labels),
        method,
        plm: PlmSpec::Pretrained(tier),
        seed: None,
        exec,
    })
    .unwrap_or_else(|e| fail(&e.to_string()));
    // Fit the serving model now so the first request doesn't pay for it.
    engine.warm().unwrap_or_else(|e| fail(&e.to_string()));
    // Fast tier: prove the approximation holds on this dataset before
    // taking traffic. The server still starts either way — an out-of-bounds
    // engine answers 503 on `/healthz` so orchestrators never route to it.
    if engine.precision() == structmine_linalg::Precision::Fast {
        match structmine_engine::tolerance::self_check(&engine) {
            Ok(report) if report.within_bounds() => {
                obs::log_info(&format!(
                    "[serve] tolerance self-check: {}",
                    report.summary()
                ));
            }
            Ok(report) => {
                let msg = format!(
                    "fast tier failed tolerance self-check ({})",
                    report.summary()
                );
                obs::log_warn(&format!("[serve] {msg}"));
                structmine_store::health::set_unusable(&msg);
            }
            Err(e) => {
                let msg = format!("fast tier tolerance self-check errored: {e}");
                obs::log_warn(&format!("[serve] {msg}"));
                structmine_store::health::set_unusable(&msg);
            }
        }
    }

    let mut server = match Server::start(Arc::new(engine), cfg) {
        Ok(s) => s,
        Err(e) => fail(&format!("bind 127.0.0.1:{}: {e}", cfg.port)),
    };
    // The smoke tests parse this line to learn the bound port (`--port 0`).
    println!("listening on {}", server.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(25));
    }
    obs::log_info("[serve] shutdown signal received; draining");
    server.stop();
    obs::write_report_if_configured("structmine-serve");
}
