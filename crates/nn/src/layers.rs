//! Layer modules over the autograd tape.
//!
//! A layer owns [`ParamId`]s in a shared [`ParamStore`] and exposes a
//! `forward(graph, binding, input)` method that binds its parameters into
//! the current tape and appends its computation.

use crate::graph::{Graph, NodeId};
use crate::params::{Binding, ParamId, ParamStore};
use rand::rngs::StdRng;

/// Fully-connected layer `y = x W + b`.
#[derive(Clone, Copy, Debug)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
}

impl Linear {
    /// Register a `d_in -> d_out` linear layer.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        d_in: usize,
        d_out: usize,
        rng: &mut StdRng,
    ) -> Self {
        let w = store.xavier(&format!("{name}.w"), d_in, d_out, rng);
        let b = store.zeros(&format!("{name}.b"), 1, d_out);
        Linear { w, b }
    }

    /// Apply the layer to `x` (`n x d_in`), yielding `n x d_out`.
    pub fn forward(
        &self,
        store: &ParamStore,
        g: &mut Graph,
        binding: &mut Binding,
        x: NodeId,
    ) -> NodeId {
        let w = store.bind(g, self.w, binding);
        let b = store.bind(g, self.b, binding);
        let xw = g.matmul(x, w);
        g.add_row_broadcast(xw, b)
    }

    /// Inference-only forward through the store's cached pre-packed weight
    /// panels ([`ParamStore::prepacked`]): skips both the per-call weight
    /// copy into the tape and the per-call panel pack, with per-element
    /// arithmetic identical to [`Self::forward`] at the same precision.
    pub fn forward_prepacked(&self, store: &ParamStore, g: &mut Graph, x: NodeId) -> NodeId {
        let w = store.prepacked(self.w);
        let xw = g.matmul_prepacked(x, &w);
        let b = g.leaf_copied(store.value(self.b));
        g.add_row_broadcast(xw, b)
    }

    /// The weight parameter (for weight tying / inspection).
    pub fn weight(&self) -> ParamId {
        self.w
    }

    /// The bias parameter.
    pub fn bias(&self) -> ParamId {
        self.b
    }
}

/// Token embedding table.
#[derive(Clone, Copy, Debug)]
pub struct Embedding {
    table: ParamId,
}

impl Embedding {
    /// Register a `vocab x d` embedding table.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        vocab: usize,
        d: usize,
        rng: &mut StdRng,
    ) -> Self {
        let table = store.xavier(name, vocab, d, rng);
        Embedding { table }
    }

    /// Gather embeddings for a token-id sequence, yielding `len x d`.
    ///
    /// On an inference (non-recording) binding no gradient ever flows back
    /// to the table, so only the addressed rows are gathered as a leaf
    /// instead of copying the whole `vocab x d` table into the tape.
    pub fn forward(
        &self,
        store: &ParamStore,
        g: &mut Graph,
        binding: &mut Binding,
        ids: &[usize],
    ) -> NodeId {
        if !binding.is_recording() {
            return g.leaf_gather(store.value(self.table), ids);
        }
        let table = store.bind(g, self.table, binding);
        g.select_rows(table, ids)
    }

    /// Bind the full table into the graph (for tied output projections).
    pub fn bind_table(&self, store: &ParamStore, g: &mut Graph, binding: &mut Binding) -> NodeId {
        store.bind(g, self.table, binding)
    }

    /// The underlying parameter.
    pub fn table(&self) -> ParamId {
        self.table
    }
}

/// Layer normalization with learned gain and bias.
#[derive(Clone, Copy, Debug)]
pub struct LayerNorm {
    gain: ParamId,
    bias: ParamId,
}

impl LayerNorm {
    /// Register a layer-norm over feature dimension `d`.
    pub fn new(store: &mut ParamStore, name: &str, d: usize) -> Self {
        let gain = store.ones(&format!("{name}.g"), 1, d);
        let bias = store.zeros(&format!("{name}.b"), 1, d);
        LayerNorm { gain, bias }
    }

    /// Apply to `x` rows.
    pub fn forward(
        &self,
        store: &ParamStore,
        g: &mut Graph,
        binding: &mut Binding,
        x: NodeId,
    ) -> NodeId {
        let gain = store.bind(g, self.gain, binding);
        let bias = store.bind(g, self.bias, binding);
        g.layer_norm(x, gain, bias)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Adam;
    use structmine_linalg::{rng as lrng, Matrix};

    #[test]
    fn linear_learns_a_linear_map() {
        // Fit y = 2x + 1 with a 1->1 linear layer.
        let mut store = ParamStore::new();
        let mut rng = lrng::seeded(1);
        let layer = Linear::new(&mut store, "l", 1, 1, &mut rng);
        let mut adam = Adam::new(&store, 0.05, 0.0);
        for step in 0..400 {
            let x_val = (step % 10) as f32 / 10.0;
            let y_val = 2.0 * x_val + 1.0;
            let mut g = Graph::new();
            let mut binding = Binding::new();
            let x = g.leaf(Matrix::from_vec(1, 1, vec![x_val]));
            let y = layer.forward(&store, &mut g, &mut binding, x);
            let t = g.leaf(Matrix::from_vec(1, 1, vec![-y_val]));
            let diff = g.add(y, t);
            let loss = g.mul(diff, diff);
            g.backward(loss);
            adam.step(&mut store, &g, &binding);
        }
        assert!((store.value(layer.weight()).get(0, 0) - 2.0).abs() < 0.1);
        assert!((store.value(layer.bias()).get(0, 0) - 1.0).abs() < 0.1);
    }

    #[test]
    fn embedding_gathers_rows() {
        let mut store = ParamStore::new();
        let mut rng = lrng::seeded(2);
        let emb = Embedding::new(&mut store, "e", 5, 3, &mut rng);
        let mut g = Graph::new();
        let mut binding = Binding::new();
        let out = emb.forward(&store, &mut g, &mut binding, &[4, 0, 4]);
        assert_eq!(g.value(out).shape(), (3, 3));
        assert_eq!(g.value(out).row(0), g.value(out).row(2));
        assert_eq!(g.value(out).row(1), store.value(emb.table()).row(0));
    }

    #[test]
    fn layer_norm_normalizes_rows() {
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 4);
        let mut g = Graph::new();
        let mut binding = Binding::new();
        let x = g.leaf(Matrix::from_rows(&[&[10.0, 20.0, 30.0, 40.0]]));
        let y = ln.forward(&store, &mut g, &mut binding, x);
        let row = g.value(y).row(0);
        let mean: f32 = row.iter().sum::<f32>() / 4.0;
        let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-4);
        assert!((var - 1.0).abs() < 1e-2);
    }
}
